#!/usr/bin/env python3
"""Check that relative links in the repo's Markdown files resolve.

Stdlib-only so it runs anywhere (CI docs job, pre-commit, bare checkout):

    python tools/check_md_links.py [FILE.md ...]

With no arguments it scans every ``*.md`` file in the repository root and
``docs/`` (if present).  For each ``[text](target)`` link it verifies:

- relative file targets exist (anchors after ``#`` are checked against the
  target file's GitHub-style heading slugs);
- bare ``#anchor`` targets match a heading in the same file.

External links (``http(s)://``, ``mailto:``) are *not* fetched — CI must
stay deterministic and offline.  Exit status: 0 when every link resolves,
1 otherwise (one diagnostic line per broken link).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — ignores images' leading "!" since the target rules match
LINK = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_FENCE = re.compile(r"^(```|~~~)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dashes for spaces."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs defined by a Markdown file's headings."""
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            slugs.add(slugify(match.group(1)))
    return slugs


def iter_links(path: Path):
    """Yield (line_number, target) for each link outside code fences."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            yield number, match.group(1)


def check_file(path: Path) -> list[str]:
    """Return a diagnostic line for every broken link in ``path``."""
    problems = []
    for number, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path
        if not resolved.exists():
            problems.append(f"{path}:{number}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if slugify(anchor) not in heading_slugs(resolved):
                problems.append(
                    f"{path}:{number}: missing anchor -> {target}"
                )
    return problems


def main(argv: list[str]) -> int:
    """Entry point; returns the process exit status."""
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = sorted(REPO_ROOT.glob("*.md"))
        docs = REPO_ROOT / "docs"
        if docs.is_dir():
            files.extend(sorted(docs.rglob("*.md")))
    problems = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: no such file")
            continue
        problems.extend(check_file(path))
    for line in problems:
        print(line, file=sys.stderr)
    checked = len(files)
    print(f"checked {checked} file(s): {len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
