#!/usr/bin/env python3
"""HyperCube configuration in practice — the paper's Sec. 4 contribution.

The theoretically optimal shares are fractional (``63**(1/3)`` servers per
dimension is not a thing), and naive fixes are bad in different ways:

- *rounding down* can waste most of the cluster (for the 4-clique on 15
  servers it collapses to a single worker!);
- *virtual cells with random placement* destroys locality, so nearly every
  relation is broadcast to every worker (Appendix B, Fig. 18).

The paper's Algorithm 1 sidesteps both by exhaustively searching integral
configurations.  This example reproduces the Sec. 4 narrative end to end.

Run with::

    python examples/hypercube_configuration.py
"""

from repro import fractional_shares, optimize_config, parse_query, round_down_config
from repro.hypercube import (
    allocation_workload,
    config_workload,
    coverage_fractions,
    optimal_fractional_workload,
    random_cell_allocation,
)

TRIANGLE = parse_query("Q1(x,y,z) :- R:T(x,y), S:T(y,z), T:T(z,x).")
CLIQUE = parse_query(
    "Q2(x,y,z,p) :- R:T(x,y), S:T(y,z), T:T(z,p), P:T(p,x), K:T(x,z), L:T(y,p)."
)


def uniform(query, size=1_000_000):
    return {atom.alias: size for atom in query.atoms}


def main() -> None:
    print("== The motivating example: 4-clique on 15 servers ==")
    cards = uniform(CLIQUE)
    shares = fractional_shares(CLIQUE, cards, 15)
    print("fractional shares:", {v.name: round(s, 3) for v, s in shares.shares.items()})
    down = round_down_config(CLIQUE, cards, 15)
    ours = optimize_config(CLIQUE, cards, 15)
    print(f"round down  -> dims {down.dim_sizes()}  (uses {down.workers_used} worker!)")
    print(f"Algorithm 1 -> dims {ours.dim_sizes()}  (uses {ours.workers_used} workers)")

    print("\n== Triangle query: workload-to-optimal ratio (paper Fig. 11) ==")
    cards = uniform(TRIANGLE)
    print(f"{'N':>4} {'our alg.':>10} {'round down':>11} {'random(4096)':>13}")
    for workers in (64, 63, 65):
        optimal = optimal_fractional_workload(TRIANGLE, cards, workers)
        ours_ratio = config_workload(
            TRIANGLE, cards, optimize_config(TRIANGLE, cards, workers)
        ) / optimal
        down_ratio = config_workload(
            TRIANGLE, cards, round_down_config(TRIANGLE, cards, workers)
        ) / optimal
        random_ratio = allocation_workload(
            TRIANGLE, cards, random_cell_allocation(TRIANGLE, cards, workers, 4096)
        ) / optimal
        print(
            f"{workers:>4} {ours_ratio:>10.2f} {down_ratio:>11.2f} "
            f"{random_ratio:>13.2f}"
        )

    print("\n== Why random cell allocation replicates (Appendix B) ==")
    path = parse_query("A(x,y,z,p) :- R(x,y), S(y,z), T(z,p).")
    allocation = random_cell_allocation(
        path, {"R": 10**6, "S": 10**6, "T": 10**6}, workers=4, cells=64
    )
    for worker, fractions in enumerate(coverage_fractions(allocation)):
        covered = ", ".join(
            f"dim{d}={frac:.0%}" for d, frac in sorted(fractions.items())
        )
        print(f"worker {worker}: covers {covered} of each hash range")
    print(
        "\nEach worker covers most of every dimension, so most of R and T\n"
        "must be replicated to every worker — exactly Fig. 18's pathology."
    )


if __name__ == "__main__":
    main()
