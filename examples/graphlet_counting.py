#!/usr/bin/env python3
"""Graphlet counting on a social network — the paper's motivating workload.

The introduction cites Yaveroglu et al.: the structure of a complex network
is characterized by counting small patterns ("graphlets") — triangles,
rectangles, cliques — each of which is a *cyclic* self-join of the edge
relation.  Traditional engines evaluate these with trees of binary joins and
drown in intermediate results; the HyperCube shuffle + Tributary join
combination evaluates each pattern in one communication round with no
intermediates at all.

This example counts three graphlets on a synthetic power-law graph and
reports, for each, how much data a traditional plan shuffles versus the
single-round HyperCube plan.

Run with::

    python examples/graphlet_counting.py
"""

from repro import run_query, twitter_database

GRAPHLETS = {
    "triangle (Q1)": (
        "Tri(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."
    ),
    "rectangle (Q5)": (
        "Rect(x,y,z,p) :- R:Twitter(x,y), S:Twitter(y,z), "
        "T:Twitter(z,p), K:Twitter(p,x)."
    ),
    "two-rings (Q6)": (
        "Rings(x,y,z,p) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,p), "
        "P:Twitter(p,x), K:Twitter(x,z)."
    ),
}


def main() -> None:
    database = twitter_database(nodes=1_500, edges=5_000)
    edges = len(database["Twitter"])
    print(f"network: {edges:,} directed edges\n")

    header = (
        f"{'graphlet':<18} {'count':>9} {'RS shuffled':>12} {'HC shuffled':>12} "
        f"{'saving':>8} {'RS wall':>10} {'HC_TJ wall':>11}"
    )
    print(header)
    for name, query in GRAPHLETS.items():
        traditional = run_query(query, database, strategy="RS_HJ", workers=16)
        hypercube = run_query(query, database, strategy="HC_TJ", workers=16)
        assert set(traditional.rows) == set(hypercube.rows)
        rs_sent = traditional.stats.tuples_shuffled
        hc_sent = hypercube.stats.tuples_shuffled
        saving = 1 - hc_sent / rs_sent if rs_sent else 0.0
        print(
            f"{name:<18} {len(hypercube.rows):>9,} {rs_sent:>12,} "
            f"{hc_sent:>12,} {saving:>7.0%} "
            f"{traditional.stats.wall_clock:>10,.0f} "
            f"{hypercube.stats.wall_clock:>11,.0f}"
        )

    print(
        "\nEach graphlet is cyclic, so the binary-join plan must shuffle a\n"
        "huge path-shaped intermediate; the HyperCube plan only replicates\n"
        "the input edges (paper Sec. 3: up to 98% less data transmitted)."
    )


if __name__ == "__main__":
    main()
