#!/usr/bin/env python3
"""Quickstart: count directed triangles six ways on a simulated cluster.

This is the paper's headline experiment (Q1, Fig. 3) in miniature: the same
triangle query runs under every shuffle x join configuration — Regular,
Broadcast, or HyperCube shuffle, combined with a pipeline of symmetric hash
joins or the worst-case-optimal Tributary join — and we compare the three
metrics the paper reports: modeled wall clock, total CPU work, and tuples
shuffled over the network.

Run with::

    python examples/quickstart.py
"""

from repro import run_query, twitter_database

TRIANGLES = "Triangles(x, y, z) :- R:Twitter(x, y), S:Twitter(y, z), T:Twitter(z, x)."


def main() -> None:
    # A power-law follower graph; hubs make single-attribute hash
    # partitioning skewed and two-hop paths vastly outnumber edges.
    database = twitter_database(nodes=2_000, edges=8_000)
    print(f"input: {len(database['Twitter']):,} follower edges\n")

    print(
        f"{'config':>8} {'wall clock':>12} {'total CPU':>12} "
        f"{'shuffled':>10} {'triangles':>10}"
    )
    for strategy in ("RS_HJ", "RS_TJ", "BR_HJ", "BR_TJ", "HC_HJ", "HC_TJ"):
        result = run_query(TRIANGLES, database, strategy=strategy, workers=16)
        stats = result.stats
        print(
            f"{strategy:>8} {stats.wall_clock:>12,.0f} {stats.total_cpu:>12,.0f} "
            f"{stats.tuples_shuffled:>10,} {len(result.rows):>10,}"
        )

    hc = run_query(TRIANGLES, database, strategy="HC_TJ", workers=16)
    print(f"\nHyperCube configuration chosen: {hc.hc_config}")
    print(f"Tributary variable order: {hc.variable_order}")

    # the same optimizer decisions, without executing anything:
    from repro import explain, parse_query

    print("\n" + explain(parse_query(TRIANGLES), database, workers=16).render())
    print(
        "\nExpected shape (paper Fig. 3): HC_TJ wins wall clock and CPU, and\n"
        "the HyperCube shuffle moves several times fewer tuples than the\n"
        "regular shuffle because the two-hop intermediate is never shuffled."
    )


if __name__ == "__main__":
    main()
