#!/usr/bin/env python3
"""Knowledge-base exploration — when the *traditional* plan wins.

The paper is careful to show there is no overall best plan: its Freebase
queries Q3 and Q7 start from highly selective name lookups ("Joe Pesci",
"The Academy Awards"), so intermediates stay tiny and the regular shuffle
beats HyperCube (which must replicate base data into a high-dimensional
cube).  This example reproduces both queries on the synthetic knowledge
base, compares all three shuffles, and also runs the Sec. 3.6 semijoin plan
for Q3/Q7 — showing, as the paper found, that the extra semijoin rounds do
not pay off on these queries.

Run with::

    python examples/knowledge_base_exploration.py
"""

from repro import freebase_database, run_query
from repro.workloads import Q3, Q7


def main() -> None:
    database = freebase_database()
    sizes = ", ".join(
        f"{name}={len(rel):,}" for name, rel in database.relations().items()
    )
    print(f"knowledge base: {sizes}\n")

    for query, description in (
        (Q3, "Q3: cast members of films starring Joe Pesci AND Robert De Niro"),
        (Q7, "Q7: actors honored by the Academy Awards in the 90s"),
    ):
        print(description)
        print(
            f"  {'strategy':>8} {'wall clock':>12} {'total CPU':>12} "
            f"{'shuffled':>10} {'answers':>8}"
        )
        reference = None
        for strategy in ("RS_HJ", "RS_TJ", "BR_HJ", "HC_HJ", "HC_TJ", "SJ_HJ"):
            result = run_query(query, database, strategy=strategy, workers=16)
            rows = set(result.rows)
            if reference is None:
                reference = rows
            assert rows == reference, f"{strategy} disagrees"
            stats = result.stats
            print(
                f"  {strategy:>8} {stats.wall_clock:>12,.0f} "
                f"{stats.total_cpu:>12,.0f} {stats.tuples_shuffled:>10,} "
                f"{len(rows):>8}"
            )
        # decode a couple of answers to show the dictionary round-trip
        sample = [database.decode(row[0]) for row in list(reference)[:3]]
        print(f"  sample answers (entity ids): {sample}\n")

    print(
        "Expected shape (paper Figs. 6/15, Sec. 3.6): the regular shuffle\n"
        "moves the least data on Q3 (selective first join), HyperCube's\n"
        "high-dimensional cube replicates too much, and the semijoin plan's\n"
        "extra communication rounds cancel its savings."
    )


if __name__ == "__main__":
    main()
