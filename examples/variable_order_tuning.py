#!/usr/bin/env python3
"""Tuning the Tributary join's variable order — the paper's Sec. 5.

LFTJ-style joins are worst-case optimal under *any* global variable order,
but "worst case" can be far from typical: Table 7 of the paper shows up to
~100x between a random order and the one picked by its cost model.  The
model estimates the number of binary searches from ordinary statistics
(cardinalities and distinct-prefix counts).

This example mirrors the paper's methodology on Q8 (actor/director pairs,
six-way cyclic join): draw random variable orders, estimate each one's cost,
run the join for real, and compare against the order the model picks.

Run with::

    python examples/variable_order_tuning.py
"""

import statistics

from repro import best_join_order, estimate_order_cost
from repro.leapfrog.tributary import TributaryJoin
from repro.leapfrog.variable_order import enumerate_join_orders, full_variable_order
from repro.query import Catalog
from repro.storage import FreebaseConfig, freebase_database
from repro.workloads import Q8


def main() -> None:
    # deliberately tiny: pathological orders can be ~100x worse and we run
    # a dozen of them
    database = freebase_database(
        FreebaseConfig(
            actors=200,
            films=80,
            performances=600,
            directors=25,
            filler_objects=1_000,
            honors=100,
            awards=5,
        )
    )
    catalog = Catalog(database)
    relations = {
        atom.alias: database[atom.relation] for atom in Q8.atoms
    }

    print("query: Q8 (actor/director pairs in two films, 6-way cyclic join)")
    print(f"{'order':<28} {'estimated cost':>15} {'actual seeks':>13}")
    from repro.leapfrog.tributary import SeekBudgetExceeded

    seek_cap = 2_000_000  # the paper terminated queries after 1,000s
    sampled = list(enumerate_join_orders(Q8, sample=12, seed=4))
    actual_seeks = {}
    for order in sampled:
        estimate = estimate_order_cost(Q8, catalog, order)
        join = TributaryJoin(
            Q8, relations, order=full_variable_order(Q8, order),
            max_seeks=seek_cap,
        )
        try:
            join.run()
            seeks = join.total_seeks()
            note = ""
        except SeekBudgetExceeded:
            seeks = seek_cap
            note = "  (terminated)"
        actual_seeks[order] = seeks
        label = "<".join(v.name for v in order)
        print(f"{label:<28} {estimate.cost:>15,.0f} {seeks:>13,}{note}")

    best = best_join_order(Q8, catalog)
    join = TributaryJoin(
        Q8, relations, order=full_variable_order(Q8, best.order)
    )
    join.run()
    best_label = "<".join(v.name for v in best.order)
    random_mean = statistics.mean(actual_seeks.values())
    print(f"\ncost model picks: {best_label}")
    print(f"its actual seeks: {join.total_seeks():,}")
    print(f"random-order mean seeks: {random_mean:,.0f}")
    print(
        f"speedup over a random order: {random_mean / join.total_seeks():.1f}x "
        f"(worst sampled: {max(actual_seeks.values()) / join.total_seeks():.1f}x)"
    )
    print(
        "\nThe estimates need not be exact — the paper's Fig. 12 only claims\n"
        "a positive correlation — but picking the min-cost order avoids the\n"
        "pathological orders that dominate a random draw (Table 7: up to\n"
        "~100x on Q8)."
    )


if __name__ == "__main__":
    main()
