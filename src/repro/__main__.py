"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run       Execute a Datalog query on a built-in dataset under one strategy.
explain   Show the optimizer's decisions and the lowered physical plan;
          with ``--analyze``, execute it and annotate every operator with
          its counted metrics (EXPLAIN ANALYZE).
grid      Run one of the paper's workloads (Q1..Q8) under all six
          configurations and print the paper-style figure.
config    Show the fractional shares and the Algorithm-1 integral
          configuration for a query on a cluster size.
serve     Drive a concurrent mix of the paper's workloads through the
          multi-query serving layer and print throughput + latency.
workloads List the registered workloads.

Examples
--------
::

    python -m repro run "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)." \
        --dataset twitter --strategy HC_TJ --workers 16
    python -m repro explain "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)." \
        --dataset twitter --workers 16 --analyze --strategy RS_HJ
    python -m repro run "..." --faults plan.json --recovery retry
    python -m repro grid Q1 --workers 16 --scale unit
    python -m repro config Q2 --workers 15
    python -m repro serve --queries 64 --concurrency 8 --scale unit

Exit codes
----------
- 0 — success (including a ``degrade`` recovery that fell back and succeeded)
- 1 — generic execution failure
- 2 — usage error: bad arguments, unknown strategy/dataset/recovery spec,
  unreadable fault plan (argparse errors also exit 2)
- 3 — the query aborted on a (simulated) out-of-memory condition
- 4 — an injected fault exhausted its recovery policy (fault abort)
"""

from __future__ import annotations

import argparse
import sys

from .engine.faults import FaultPlan, resolve_policy
from .engine.kernels import KERNEL_BACKENDS, set_backend
from .engine.service import QueryRequest, QueryService
from .experiments.harness import format_figure, run_workload
from .hypercube.config import optimize_config
from .hypercube.shares import fractional_shares
from .planner.api import run_query
from .planner.explain import explain, explain_analyze
from .query.catalog import cardinalities_for
from .query.parser import parse_query
from .storage.generators import freebase_database, twitter_database
from .workloads.registry import PAPER_ORDER, WORKLOADS, get_workload
from .workloads.traffic import latency_summary, zipf_mix


#: documented exit codes (see the module docstring)
EXIT_OK = 0
EXIT_FAIL = 1
EXIT_USAGE = 2
EXIT_OOM = 3
EXIT_FAULT = 4


def _dataset(name: str):
    """Build a built-in dataset by name (usage error for unknown names)."""
    if name == "twitter":
        return twitter_database()
    if name == "freebase":
        return freebase_database()
    raise ValueError(f"unknown dataset {name!r}; use 'twitter' or 'freebase'")


def _load_faults(args: argparse.Namespace):
    """Load ``--faults plan.json`` into a FaultPlan (None when absent)."""
    if not getattr(args, "faults", None):
        return None
    try:
        return FaultPlan.load(args.faults)
    except OSError as error:
        raise ValueError(f"cannot read fault plan {args.faults!r}: {error}") from None


def _recovery(args: argparse.Namespace):
    """Validate ``--recovery`` eagerly so a bad spec is a usage error
    even when no fault plan is supplied."""
    spec = getattr(args, "recovery", None)
    if spec is None:
        return None
    return resolve_policy(spec)


def _failure_code(result) -> int:
    """Map a FAILed ExecutionResult to its documented exit code."""
    if result.failure_report is not None:
        return EXIT_FAULT
    if result.stats.failure_kind == "oom":
        return EXIT_OOM
    return EXIT_FAIL


def _cmd_run(args: argparse.Namespace) -> int:
    """The ``run`` command: execute one query, print its counted metrics."""
    if args.kernels:
        set_backend(args.kernels)
    database = _dataset(args.dataset)
    result = run_query(
        args.query,
        database,
        strategy=args.strategy,
        workers=args.workers,
        memory_tuples=args.memory_tuples,
        runtime=args.runtime,
        faults=_load_faults(args),
        recovery=_recovery(args),
    )
    stats = result.stats
    if result.cost_report is not None:
        print(result.cost_report.render())
        print()
    if result.failed:
        print(f"FAILED: {stats.failure}")
        return _failure_code(result)
    if result.cost_report is not None:
        print(f"strategy:        {stats.strategy} (chosen by the optimizer)")
    print(f"results:         {len(result.rows):,}")
    print(f"tuples shuffled: {stats.tuples_shuffled:,}")
    print(f"wall clock:      {stats.wall_clock:,.0f} work units")
    print(f"total CPU:       {stats.total_cpu:,.0f} work units")
    peak = max(stats.peak_memory.values(), default=0)
    print(f"peak memory:     {peak:,} tuples (fullest worker)")
    if result.hc_config is not None:
        print(f"hypercube:       {result.hc_config}")
    if stats.retries or stats.faults_injected:
        print(
            f"recovery:        {stats.faults_injected} fault(s) injected, "
            f"{stats.retries} round retr{'y' if stats.retries == 1 else 'ies'}, "
            f"{stats.recovery_cpu:,.0f} work units charged"
        )
    if result.failure_report is not None:
        print(f"degraded:        {result.failure_report.describe()}")
    print("phases:")
    for phase in stats.phases():
        print(
            f"  {phase:<24} wall {stats.phase_wall(phase):>12,.0f}  "
            f"cpu {stats.phase_cpu(phase):>12,.0f}"
        )
    if args.show_rows:
        for row in result.rows[: args.show_rows]:
            print("  ", row)
    return EXIT_OK


def _cmd_explain(args: argparse.Namespace) -> int:
    """The ``explain`` command; with ``--analyze`` it executes the plan."""
    database = _dataset(args.dataset)
    if args.analyze:
        analyzed = explain_analyze(
            args.query,
            database,
            strategy=args.strategy,
            workers=args.workers,
            memory_tuples=args.memory_tuples,
            runtime=args.runtime,
            kernels=args.kernels,
            faults=_load_faults(args),
            recovery=_recovery(args),
        )
        if analyzed.result.cost_report is not None:
            print(analyzed.result.cost_report.render())
            print()
        print(analyzed.render())
        if analyzed.result.failed:
            return _failure_code(analyzed.result)
        return EXIT_OK
    explanation = explain(
        args.query,
        database,
        workers=args.workers,
        strategy=args.strategy,
        memory_tuples=args.memory_tuples,
    )
    print(explanation.render())
    return EXIT_OK


def _cmd_grid(args: argparse.Namespace) -> int:
    """The ``grid`` command: one workload under all six configurations."""
    if args.kernels:
        set_backend(args.kernels)
    grid = run_workload(
        args.workload,
        scale=args.scale,
        workers=args.workers,
        enforce_memory=not args.no_memory_budget,
        runtime=args.runtime,
    )
    print(format_figure(grid, f"{args.workload} ({args.scale}, p={args.workers})"))
    print(f"consistent: {grid.consistent()}  best: {grid.best_strategy()}")
    return 0


def _cmd_config(args: argparse.Namespace) -> int:
    """The ``config`` command: shares + Algorithm-1 configuration."""
    if args.workload_or_query in WORKLOADS:
        workload = get_workload(args.workload_or_query)
        query = workload.query
        cards = dict(cardinalities_for(query, workload.dataset(args.scale)))
    else:
        query = parse_query(args.workload_or_query)
        cards = {atom.alias: args.cardinality for atom in query.atoms}
    shares = fractional_shares(query, cards, args.workers)
    config = optimize_config(query, cards, args.workers)
    print(f"query:             {query}")
    print(
        "fractional shares: "
        + ", ".join(f"{v.name}={s:.3f}" for v, s in shares.shares.items())
    )
    print(f"Algorithm 1:       {config}  (uses {config.workers_used} workers)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: a concurrent traffic mix through the service."""
    import time

    names = (
        [name.strip() for name in args.workloads.split(",") if name.strip()]
        if args.workloads
        else list(PAPER_ORDER)
    )
    for name in names:
        if name not in WORKLOADS:
            raise ValueError(f"unknown workload {name!r}; use Q1..Q8")
    trace = zipf_mix(names, args.queries, exponent=args.zipf, seed=args.seed)
    databases: dict = {}
    service = QueryService(
        runtime=args.runtime,
        kernels=args.kernels,
        max_inflight=args.concurrency,
        memory_tuples=args.memory_tuples,
    )
    started = time.perf_counter()
    for name in trace:
        workload = get_workload(name)
        builder = (workload.name, args.scale)
        if builder not in databases:
            databases[builder] = workload.dataset(args.scale)
        service.submit(
            QueryRequest(
                query=workload.query,
                database=databases[builder],
                workers=args.workers,
                deadline_ticks=args.deadline_ticks,
                timeout_seconds=args.timeout,
                label=name,
            )
        )
    outcomes = service.run_until_complete()
    elapsed = time.perf_counter() - started
    stats = service.stats
    latency = latency_summary([o.wall_seconds for o in outcomes if o.ok])
    print(f"queries:     {len(outcomes)} over {sorted(set(trace))}")
    print("outcomes:    " + ", ".join(
        f"{status}={count}"
        for status, count in stats.outcome_counts().items()
        if count
    ))
    print(f"elapsed:     {elapsed:.2f}s  "
          f"throughput {len(outcomes) / elapsed:.1f} queries/s")
    print(f"latency:     p50 {latency['p50_seconds'] * 1000:.1f}ms  "
          f"p95 {latency['p95_seconds'] * 1000:.1f}ms  "
          f"p99 {latency['p99_seconds'] * 1000:.1f}ms")
    cached = stats.cache_hits + stats.cache_misses
    if cached:
        print(f"plan cache:  {stats.cache_hits}/{cached} hits "
              f"({100 * stats.cache_hits / cached:.0f}%)")
    print(f"scheduler:   {stats.ticks} ticks, {stats.rounds_executed} rounds, "
          f"peak in-flight {stats.peak_inflight}, "
          f"{stats.oom_retries} grant escalations")
    if args.show_outcomes:
        for outcome in outcomes:
            print(f"  #{outcome.query_id:<4} {outcome.label:<4} "
                  f"{outcome.status:<9} rows={len(outcome.rows):<8,} "
                  f"{outcome.wall_seconds * 1000:8.1f}ms  {outcome.detail}")
    if stats.failed:
        return EXIT_FAIL
    return EXIT_OK


def _cmd_workloads(args: argparse.Namespace) -> int:
    """The ``workloads`` command: list the paper's registered queries."""
    for name in PAPER_ORDER:
        workload = WORKLOADS[name]
        kind = "cyclic" if workload.cyclic else "acyclic"
        print(f"{name}: {len(workload.query.atoms)} atoms, {kind}, "
              f"paper best {workload.paper_best} — {workload.query}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Assemble the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="HyperCube shuffle + Tributary join on a simulated cluster",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_cmd = commands.add_parser("run", help="execute one query")
    run_cmd.add_argument("query", help="Datalog rule text")
    run_cmd.add_argument("--dataset", default="twitter",
                         choices=("twitter", "freebase"))
    run_cmd.add_argument("--strategy", default="HC_TJ",
                         help="RS/BR/HC x HJ/TJ grid name, SJ_HJ, or "
                              "'auto' for the cost-based optimizer")
    run_cmd.add_argument("--workers", type=int, default=16)
    run_cmd.add_argument("--runtime", default="serial",
                         help="worker runtime: 'serial', 'parallel[:N]' (threads), or 'parallel:N:proc' (processes)")
    run_cmd.add_argument("--kernels", choices=KERNEL_BACKENDS, default=None,
                         help="kernel backend (default: $REPRO_KERNELS or numpy)")
    run_cmd.add_argument("--show-rows", type=int, default=0,
                         help="print the first N result rows")
    run_cmd.add_argument("--memory-tuples", type=int, default=None,
                         help="per-worker tuple budget (default: unlimited)")
    run_cmd.add_argument("--faults", default=None, metavar="PLAN.JSON",
                         help="JSON fault plan to inject (see engine/faults.py)")
    run_cmd.add_argument("--recovery", default=None,
                         help="recovery policy: 'retry[:N]', 'degrade', or "
                              "'fail' (default: retry)")
    run_cmd.set_defaults(func=_cmd_run)

    explain_cmd = commands.add_parser(
        "explain", help="show the plan; --analyze to execute and annotate it"
    )
    explain_cmd.add_argument("query", help="Datalog rule text")
    explain_cmd.add_argument("--dataset", default="twitter",
                             choices=("twitter", "freebase"))
    explain_cmd.add_argument("--workers", type=int, default=16)
    explain_cmd.add_argument("--strategy", default="HC_TJ",
                             help="RS/BR/HC x HJ/TJ grid name, SJ_HJ, or "
                                  "'auto' to print the per-strategy cost "
                                  "table and the optimizer's pick")
    explain_cmd.add_argument("--memory-tuples", type=int, default=None,
                             help="per-worker tuple budget the optimizer "
                                  "costs against (default: unlimited)")
    explain_cmd.add_argument("--analyze", action="store_true",
                             help="execute the plan and annotate each "
                                  "operator with its counted metrics")
    explain_cmd.add_argument("--runtime", default="serial",
                             help="worker runtime: 'serial', 'parallel[:N]' (threads), or 'parallel:N:proc' (processes)")
    explain_cmd.add_argument("--kernels", choices=KERNEL_BACKENDS, default=None,
                             help="kernel backend (default: $REPRO_KERNELS or numpy)")
    explain_cmd.add_argument("--faults", default=None, metavar="PLAN.JSON",
                             help="JSON fault plan to inject (with --analyze)")
    explain_cmd.add_argument("--recovery", default=None,
                             help="recovery policy: 'retry[:N]', 'degrade', or "
                                  "'fail' (default: retry)")
    explain_cmd.set_defaults(func=_cmd_explain)

    grid_cmd = commands.add_parser("grid", help="run a workload's 6-config grid")
    grid_cmd.add_argument("workload", choices=sorted(WORKLOADS))
    grid_cmd.add_argument("--workers", type=int, default=64)
    grid_cmd.add_argument("--scale", default="bench", choices=("unit", "bench"))
    grid_cmd.add_argument("--runtime", default="serial",
                          help="worker runtime: 'serial', 'parallel[:N]' (threads), or 'parallel:N:proc' (processes)")
    grid_cmd.add_argument("--kernels", choices=KERNEL_BACKENDS, default=None,
                          help="kernel backend (default: $REPRO_KERNELS or numpy)")
    grid_cmd.add_argument("--no-memory-budget", action="store_true")
    grid_cmd.set_defaults(func=_cmd_grid)

    config_cmd = commands.add_parser(
        "config", help="show shares + integral configuration"
    )
    config_cmd.add_argument(
        "workload_or_query", help="a workload name (Q1..Q8) or a Datalog rule"
    )
    config_cmd.add_argument("--workers", type=int, default=64)
    config_cmd.add_argument("--scale", default="bench", choices=("unit", "bench"))
    config_cmd.add_argument(
        "--cardinality", type=int, default=1_000_000,
        help="assumed relation size for ad-hoc queries",
    )
    config_cmd.set_defaults(func=_cmd_config)

    serve_cmd = commands.add_parser(
        "serve", help="run a concurrent workload mix through the serving layer"
    )
    serve_cmd.add_argument("--queries", type=int, default=64,
                           help="how many queries to submit (default 64)")
    serve_cmd.add_argument("--concurrency", type=int, default=8,
                           help="max in-flight queries (default 8)")
    serve_cmd.add_argument("--workers", type=int, default=16)
    serve_cmd.add_argument("--scale", default="unit", choices=("unit", "bench"))
    serve_cmd.add_argument("--workloads", default=None,
                           help="comma-separated subset of Q1..Q8 in "
                                "popularity order (default: all eight)")
    serve_cmd.add_argument("--zipf", type=float, default=1.0,
                           help="Zipf popularity exponent (0 = uniform)")
    serve_cmd.add_argument("--seed", type=int, default=0,
                           help="traffic-trace seed")
    serve_cmd.add_argument("--memory-tuples", type=int, default=None,
                           help="service-wide per-worker tuple budget the "
                                "governor apportions (default: ungoverned)")
    serve_cmd.add_argument("--deadline-ticks", type=int, default=None,
                           help="per-query logical deadline in scheduler ticks")
    serve_cmd.add_argument("--timeout", type=float, default=None,
                           help="per-query wall-clock timeout in seconds")
    serve_cmd.add_argument("--runtime", default="serial",
                           help="worker runtime: 'serial', 'parallel[:N]' (threads), or 'parallel:N:proc' (processes)")
    serve_cmd.add_argument("--kernels", choices=KERNEL_BACKENDS, default=None,
                           help="kernel backend (default: $REPRO_KERNELS or numpy)")
    serve_cmd.add_argument("--show-outcomes", action="store_true",
                           help="print one line per query outcome")
    serve_cmd.set_defaults(func=_cmd_serve)

    list_cmd = commands.add_parser("workloads", help="list the paper's queries")
    list_cmd.set_defaults(func=_cmd_workloads)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns one of the documented exit codes.

    Configuration errors the argument parser cannot catch — an unknown
    strategy, dataset, or recovery spec, or an unreadable/invalid fault
    plan — surface as :class:`ValueError` from the layers below and exit
    with the usage code (2), matching argparse's own convention.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
