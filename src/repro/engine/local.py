"""Per-worker local execution helpers.

After a shuffle delivers frames to a worker, the rest of the query runs
locally.  For Tributary-join strategies that means sorting every fragment
and running the multiway leapfrog; this module wraps
:class:`~repro.leapfrog.tributary.TributaryJoin` over frames and charges
its sort and seek work to the right worker and phase (the paper separates
"time on sorting" from "time on TJ", e.g. Table 5 and Fig. 10c).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..leapfrog.tributary import TributaryJoin
from ..query.atoms import Atom, ConjunctiveQuery, Variable
from .frame import Frame, frame_relation
from .memory import MemorySink
from .stats import StatsSink

#: Cost of one sort comparison relative to one hash-join work unit (a hash
#: table insert/probe).  A merge-sort comparison of two int tuples is far
#: cheaper than a hash build/probe (hashing, allocation, pointer chasing);
#: 0.25 calibrates the simulator so the paper's Table 5 shape holds (sorting
#: dominates Tributary-join time, ~73% for BR_TJ on Q1) while TJ still beats
#: the hash-join pipeline whenever intermediates are large (Q1/Q2/Q4/Q5/Q6).
SORT_COMPARISON_WEIGHT = 0.25


def scanned_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Rewrite a query to run over already-scanned frames.

    Scans apply constants and repeated variables (see
    :func:`~repro.engine.frame.atom_frame`), so the local query's atoms are
    simply ``alias(vars...)`` over the frame data; comparisons and the head
    are unchanged.
    """
    atoms = tuple(
        Atom(relation=atom.alias, terms=atom.variables(), alias=atom.alias)
        for atom in query.atoms
    )
    return ConjunctiveQuery(
        name=query.name,
        head=query.head,
        atoms=atoms,
        comparisons=query.comparisons,
    )


def local_tributary_join(
    query: ConjunctiveQuery,
    frames: Mapping[str, Frame],
    worker: int,
    stats: StatsSink,
    order: Optional[Sequence[Variable]] = None,
    sort_phase: str = "sort",
    join_phase: str = "tributary join",
    memory: Optional[MemorySink] = None,
) -> list[tuple[int, ...]]:
    """Run one worker's Tributary join over its local frames.

    ``query`` must be a *scanned* query (see :func:`scanned_query`) whose
    atom aliases key the ``frames`` mapping.  Sorting work (``n log n``
    comparisons) is charged to ``sort_phase``; seeks plus result
    materialization to ``join_phase``.
    """
    relations = {
        alias: frame_relation(frame, alias) for alias, frame in frames.items()
    }
    sorted_copies = sum(len(f) for f in frames.values())
    if memory is not None:
        # sorting materializes a reordered copy of every input fragment;
        # charge it *before* doing the work so a simulated OOM fires first
        memory.allocate(worker, sorted_copies, sort_phase)
        stats.record_memory(worker, memory.resident(worker))
    join = TributaryJoin(query, relations, order=order)
    results = join.run()
    stats.charge(worker, join.stats.sort_cost * SORT_COMPARISON_WEIGHT, sort_phase)
    stats.charge(worker, join.total_seeks() + len(results), join_phase)
    if memory is not None:
        memory.allocate(worker, len(results), join_phase)
        stats.record_memory(worker, memory.resident(worker))
        # the sorted copies are scratch space, dropped once the join is done
        memory.release(worker, sorted_copies)
    return results


def dedup_rows(rows: Sequence[tuple[int, ...]]) -> list[tuple[int, ...]]:
    """Order-preserving duplicate elimination."""
    return list(dict.fromkeys(rows))
