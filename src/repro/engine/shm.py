"""Shared-memory row transport for the process-backed runtime.

The process runtime (:class:`~repro.engine.runtime.ProcessRuntime`) forks
its worker pool, so *inbound* data — the cluster's relation fragments,
frames, and column arrays — reaches every worker for free through
copy-on-write page sharing.  The expensive direction is the way back:
a worker's result rows would otherwise be pickled tuple by tuple through
the pool's result pipe.  This module moves large row blocks through
``multiprocessing.shared_memory`` instead: the child packs the block into
one int64 column-major array in ``/dev/shm``, ships only the segment name,
and the parent reattaches, materializes, and unlinks it.

Small payloads stay on the pickle path — below a few tens of thousands of
rows the copy into shared memory costs more than pickling saves, so
:func:`share_rows` declines them (``SHARED_MIN_ROWS``).

Both transports are invisible to the engine: counted metrics, row values,
and row order are identical either way (``tests/test_wcoj_differential.py``
and the shm unit tests pin this).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional, Sequence

import numpy as np

Row = tuple[int, ...]

#: below this row count, pickling beats the shared-memory round trip
SHARED_MIN_ROWS = 16384


@dataclass
class SharedRows:
    """A picklable handle to a row block parked in shared memory."""

    name: str
    count: int
    width: int

    def load(self) -> list[Row]:
        """Materialize the rows, then release the shared segment."""
        segment = shared_memory.SharedMemory(name=self.name)
        try:
            data = np.ndarray(
                (self.width, self.count), dtype=np.int64, buffer=segment.buf
            ).copy()
        finally:
            segment.close()
            segment.unlink()
        if self.width == 0:
            return [()] * self.count
        return list(zip(*data.tolist()))


def share_rows(rows: Sequence[Row]) -> Optional[SharedRows]:
    """Park a row block in shared memory; ``None`` when not worthwhile.

    Declines blocks that are too small to pay for the copy, ragged, or not
    plain int64 tuples (the engine's rows always are; anything else keeps
    the pickle path).  The segment is created unregistered from the child's
    resource tracker — the parent owns the unlink, in
    :meth:`SharedRows.load`.
    """
    count = len(rows)
    if count < SHARED_MIN_ROWS:
        return None
    width = len(rows[0])
    try:
        data = np.asarray(rows, dtype=np.int64)
    except (ValueError, OverflowError):
        return None
    if data.shape != (count, width):
        return None
    columns = np.ascontiguousarray(data.T)
    segment = shared_memory.SharedMemory(
        create=True, size=max(1, columns.nbytes)
    )
    try:
        np.ndarray(
            columns.shape, dtype=np.int64, buffer=segment.buf
        )[:] = columns
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    # the forked child exits before the parent reads the segment; hand
    # cleanup responsibility to the parent (SharedRows.load unlinks) so the
    # child's resource tracker does not reap or double-free it
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass
    segment.close()
    return SharedRows(name=segment.name, count=count, width=width)
