"""The simulated shared-nothing execution engine."""

from .cluster import Cluster
from .faults import (
    FailureReport,
    FaultAbort,
    FaultPlan,
    FaultSession,
    FaultSpec,
    InjectedFault,
    RecoveryPolicy,
    resolve_faults,
    resolve_policy,
)
from .frame import Frame, atom_frame, frame_relation
from .hash_join import apply_comparisons, join_output_variables, symmetric_hash_join
from .kernels import (
    KERNEL_BACKENDS,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from .local import dedup_rows, local_tributary_join, scanned_query
from .memory import MemoryBudget, OutOfMemoryError, WorkerMemoryAccount
from .runtime import (
    ParallelRuntime,
    SerialRuntime,
    WorkerLedger,
    WorkerRuntime,
    resolve_runtime,
)
from .scheduler import (
    ExecutionCheckpoint,
    OperatorTrace,
    PlanExecution,
    ScheduledRun,
    run_plan,
)
from .service import (
    MemoryGovernor,
    QueryOutcome,
    QueryRequest,
    QueryService,
    ServiceStats,
)
from .shuffle import broadcast, hash_row, hypercube_shuffle, regular_shuffle
from .stats import (
    RECOVERY_PHASE,
    ExecutionStats,
    ShuffleRecord,
    StatsCheckpoint,
    WorkerStats,
    skew_factor,
)

__all__ = [
    "Cluster",
    "ExecutionCheckpoint",
    "ExecutionStats",
    "FailureReport",
    "FaultAbort",
    "FaultPlan",
    "FaultSession",
    "FaultSpec",
    "Frame",
    "InjectedFault",
    "KERNEL_BACKENDS",
    "MemoryBudget",
    "MemoryGovernor",
    "OperatorTrace",
    "OutOfMemoryError",
    "ParallelRuntime",
    "PlanExecution",
    "QueryOutcome",
    "QueryRequest",
    "QueryService",
    "RECOVERY_PHASE",
    "RecoveryPolicy",
    "ScheduledRun",
    "SerialRuntime",
    "ServiceStats",
    "ShuffleRecord",
    "StatsCheckpoint",
    "WorkerLedger",
    "WorkerMemoryAccount",
    "WorkerRuntime",
    "WorkerStats",
    "apply_comparisons",
    "atom_frame",
    "broadcast",
    "dedup_rows",
    "frame_relation",
    "get_backend",
    "hash_row",
    "hypercube_shuffle",
    "join_output_variables",
    "local_tributary_join",
    "regular_shuffle",
    "resolve_backend",
    "resolve_faults",
    "resolve_policy",
    "resolve_runtime",
    "run_plan",
    "scanned_query",
    "set_backend",
    "skew_factor",
    "symmetric_hash_join",
    "use_backend",
]
