"""The simulated shared-nothing execution engine."""

from .cluster import Cluster
from .frame import Frame, atom_frame, frame_relation
from .hash_join import apply_comparisons, join_output_variables, symmetric_hash_join
from .local import dedup_rows, local_tributary_join, scanned_query
from .memory import MemoryBudget, OutOfMemoryError
from .shuffle import broadcast, hash_row, hypercube_shuffle, regular_shuffle
from .stats import ExecutionStats, ShuffleRecord, skew_factor

__all__ = [
    "Cluster",
    "ExecutionStats",
    "Frame",
    "MemoryBudget",
    "OutOfMemoryError",
    "ShuffleRecord",
    "apply_comparisons",
    "atom_frame",
    "broadcast",
    "dedup_rows",
    "frame_relation",
    "hash_row",
    "hypercube_shuffle",
    "join_output_variables",
    "local_tributary_join",
    "regular_shuffle",
    "scanned_query",
    "skew_factor",
]
