"""The simulated shared-nothing cluster.

The paper deploys 64 Myria workers over 16 machines, each with its own
storage, and partitions every input relation across them round-robin.  Our
:class:`Cluster` reproduces exactly that starting state: ``load`` splits each
relation's rows round-robin over ``p`` per-worker fragment lists.  All
shuffles and local operators then run against these fragments, charging work
and memory through :class:`~repro.engine.stats.ExecutionStats` and
:class:`~repro.engine.memory.MemoryBudget`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..storage.relation import Database, Relation
from .frame import Frame
from .memory import MemoryBudget


class Cluster:
    """``p`` workers, each holding round-robin fragments of the input."""

    def __init__(self, workers: int, memory: Optional[MemoryBudget] = None) -> None:
        if workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.workers = workers
        self.memory = memory or MemoryBudget()
        self._fragments: dict[str, list[list[tuple[int, ...]]]] = {}
        self.database: Optional[Database] = None

    def load(self, database: Database) -> None:
        """Round-robin partition every relation of the database."""
        self.database = database
        self._fragments.clear()
        for name, relation in database.relations().items():
            fragments: list[list[tuple[int, ...]]] = [[] for _ in range(self.workers)]
            for index, row in enumerate(relation.rows):
                fragments[index % self.workers].append(row)
            self._fragments[name] = fragments

    def view(self, memory: Optional[MemoryBudget] = None) -> "Cluster":
        """A cluster sharing this one's loaded fragments under its own budget.

        Fragments are read-only during execution (scans copy rows into
        fresh frames), so many concurrent executions can share one loaded
        partitioning; what must *not* be shared is the memory accounting —
        each execution resets and charges its budget privately.  The
        serving layer (:mod:`~repro.engine.service`) admits every query on
        a view of one template cluster per (database, workers) pair,
        paying the round-robin partitioning cost once instead of per
        query.  Views are indistinguishable from a freshly loaded cluster:
        the partitioning is deterministic, so a view's fragments equal
        what ``Cluster(workers).load(database)`` would produce.
        """
        clone = Cluster(self.workers, memory or MemoryBudget())
        clone.database = self.database
        clone._fragments = self._fragments
        return clone

    def fragments(self, relation_name: str) -> list[list[tuple[int, ...]]]:
        """Per-worker row lists of a loaded relation."""
        try:
            return self._fragments[relation_name]
        except KeyError:
            raise KeyError(
                f"relation {relation_name!r} not loaded; known: "
                f"{sorted(self._fragments)}"
            ) from None

    def fragment_relation(self, relation_name: str, worker: int) -> Relation:
        """One worker's fragment, viewed as a Relation."""
        if self.database is None:
            raise RuntimeError("cluster has no loaded database")
        base = self.database[relation_name]
        return Relation(base.name, base.columns, self.fragments(relation_name)[worker])

    def encoder(self):
        """The database's dictionary encoder (for string query constants)."""
        if self.database is None:
            raise RuntimeError("cluster has no loaded database")
        return self.database.encode

    def release_frames(self, frames: Sequence[Frame]) -> None:
        """Release per-worker frames from the memory budget.

        Used when a distributed data structure is consumed or superseded —
        scanned fragments streamed out by a shuffle, an intermediate
        replaced by its re-partitioned copy — so residency tracks the peak
        working set instead of growing monotonically.
        """
        for worker, frame in enumerate(frames):
            if len(frame):
                self.memory.release(worker, len(frame))

    def __repr__(self) -> str:
        return f"Cluster(workers={self.workers}, relations={sorted(self._fragments)})"
