"""Execution statistics — the metrics every figure and table reports.

Layer: engine / accounting (written by shuffles and local operators, read by
the experiments harness and EXPLAIN ANALYZE).

The paper measures three things per configuration (Figs. 3/4/6/9/13/14/15/17):
wall-clock time, total CPU time across workers, and the number of tuples
shuffled; plus per-shuffle load-balance detail (Tables 2-4): tuples sent and
producer/consumer skew (max load / average load).

The simulator reproduces these as *counted* quantities:

- each shuffle records tuples sent per producer and received per consumer;
- each local operator charges work units (tuples built/probed/sorted/sought)
  to its worker within a named *phase*;
- ``total_cpu`` is the sum of all charges; ``wall_clock`` is the sum over
  phases of the maximum per-worker charge — the paper's observation that the
  runtime of a communication round is the runtime of its slowest worker.

Skew semantics: a shuffle's consumer skew is computed over the workers that
*participate* in the shuffle.  A HyperCube configuration may leave machines
idle (``workers_used < p``, paper Sec. 4); those idle machines receive
nothing by construction and must not dilute the average load — an integral
configuration using 60 of 64 workers would otherwise report a skew inflated
by 64/60, contradicting the paper's ~1.05 Table 3 measurement.

Local-join phases run through a worker runtime
(:mod:`~repro.engine.runtime`): each worker task records its charges into an
isolated :class:`WorkerStats` ledger, merged deterministically (in worker-id
order) via :meth:`ExecutionStats.merge_worker` — so serial and parallel
execution produce identical counted metrics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

#: the stats phase that retry-with-recompute charges wasted work and backoff
#: into (:mod:`~repro.engine.faults`); never owned by a physical operator, so
#: EXPLAIN ANALYZE reports it separately from the per-operator attribution
RECOVERY_PHASE = "recovery"


def recovery_phase(stage: int = 0) -> str:
    """The recovery stat phase for a Round of the given plan stage.

    Stage-0 (pure single-strategy) rounds keep the historical ``recovery``
    phase name bit-for-bit; hybrid multi-stage plans qualify it per stage
    (``recovery:stageN``) so per-stage CPU conservation holds under faults.
    """
    return RECOVERY_PHASE if stage == 0 else f"{RECOVERY_PHASE}:stage{stage}"


def skew_factor(loads: Iterable[float]) -> float:
    """max / average over non-negative loads (1.0 for empty or all-zero)."""
    loads = list(loads)
    if not loads:
        return 1.0
    total = sum(loads)
    if total == 0:
        return 1.0
    return max(loads) / (total / len(loads))


@dataclass
class WorkerStats:
    """One worker's isolated stat ledger for a single runtime task.

    Duck-type compatible with :class:`ExecutionStats` for the local
    operators (``charge``/``record_memory`` take a worker id, which must
    match the ledger's own).  Filled in isolation by a worker task and
    merged into the shared :class:`ExecutionStats` afterward.
    """

    worker: int
    #: phase name -> charged work units (insertion-ordered, single worker)
    phase_loads: dict[str, float] = field(default_factory=dict)
    #: high-water resident tuple count observed by this task
    peak_memory: int = 0

    def _check_worker(self, worker: int) -> None:
        if worker != self.worker:
            raise ValueError(
                f"ledger for worker {self.worker} charged by worker {worker}"
            )

    def charge(self, worker: int, amount: float, phase: str) -> None:
        """Charge ``amount`` work units into ``phase`` (worker must match)."""
        self._check_worker(worker)
        self.phase_loads[phase] = self.phase_loads.get(phase, 0.0) + amount

    def record_memory(self, worker: int, resident_tuples: int) -> None:
        """Raise this task's high-water mark to ``resident_tuples`` if higher."""
        self._check_worker(worker)
        if resident_tuples > self.peak_memory:
            self.peak_memory = resident_tuples


#: what local operators charge into: the shared stats (serial callers,
#: shuffles) or one task's isolated ledger (worker runtimes)
StatsSink = Union["ExecutionStats", WorkerStats]


@dataclass
class ShuffleRecord:
    """One shuffle operation's load-balance summary (a row of Tables 2-4)."""

    name: str
    tuples_sent: int
    producer_skew: float
    consumer_skew: float

    def __repr__(self) -> str:
        return (
            f"{self.name}: sent={self.tuples_sent} "
            f"prod_skew={self.producer_skew:.2f} cons_skew={self.consumer_skew:.2f}"
        )


@dataclass(frozen=True)
class StatsCheckpoint:
    """An immutable snapshot of the mutable charge state of one stats object.

    Captured at a Round boundary by the recovery layer
    (:mod:`~repro.engine.faults`) so a failed Round attempt can be rolled
    back: ``phase_loads`` deep-copies the phase/worker charges and
    ``shuffle_count`` remembers how many shuffle records existed.  Peak
    memory is deliberately *not* part of the snapshot — high-water marks are
    true observations even when the work that produced them is retried.
    """

    phase_loads: dict[str, dict[int, float]]
    shuffle_count: int


@dataclass
class ExecutionStats:
    """All metrics collected while executing one (query, strategy) pair."""

    query: str = ""
    strategy: str = ""
    workers: int = 0
    shuffles: list[ShuffleRecord] = field(default_factory=list)
    result_count: int = 0
    failed: bool = False
    failure: str = ""
    #: machine-readable failure class: ``""`` (not failed), ``"oom"`` for a
    #: genuine memory-budget breach, ``"fault"`` for an injected-fault abort
    failure_kind: str = ""
    #: Round attempts re-run by the recovery layer (0 on fault-free runs)
    retries: int = 0
    #: injected faults that actually fired during execution
    faults_injected: int = 0
    elapsed_seconds: float = 0.0
    #: phase name -> worker -> charged work units
    _phase_loads: dict[str, dict[int, float]] = field(default_factory=dict)
    #: per-worker high-water materialized tuple count
    peak_memory: dict[int, int] = field(default_factory=dict)

    # -- recording ----------------------------------------------------------

    def charge(self, worker: int, amount: float, phase: str) -> None:
        """Charge ``amount`` work units to ``worker`` within ``phase``."""
        loads = self._phase_loads.setdefault(phase, defaultdict(float))
        loads[worker] += amount

    def record_shuffle(
        self,
        name: str,
        sent_per_producer: Iterable[float],
        received_per_consumer: Iterable[float],
    ) -> ShuffleRecord:
        """Append one shuffle's load-balance summary (a row of Tables 2-4)."""
        sent = list(sent_per_producer)
        received = list(received_per_consumer)
        record = ShuffleRecord(
            name=name,
            tuples_sent=int(sum(sent)),
            producer_skew=skew_factor(sent),
            consumer_skew=skew_factor(received),
        )
        self.shuffles.append(record)
        return record

    def record_memory(self, worker: int, resident_tuples: int) -> None:
        """Raise ``worker``'s high-water mark to ``resident_tuples`` if higher."""
        previous = self.peak_memory.get(worker, 0)
        if resident_tuples > previous:
            self.peak_memory[worker] = resident_tuples

    def merge_worker(self, ledger: WorkerStats) -> None:
        """Fold one worker's isolated ledger into the shared stats.

        Called by the worker runtime in worker-id order, which makes the
        merged phase/worker insertion order — and hence every derived
        metric — independent of the runtime's actual execution schedule.
        """
        for phase, amount in ledger.phase_loads.items():
            self.charge(ledger.worker, amount, phase)
        if ledger.peak_memory > self.peak_memory.get(ledger.worker, 0):
            self.peak_memory[ledger.worker] = ledger.peak_memory

    def mark_failed(self, reason: str, kind: str = "") -> None:
        """Record a failed outcome with a reason and machine-readable kind."""
        self.failed = True
        self.failure = reason
        self.failure_kind = kind

    # -- Round checkpoint/rollback (the recovery layer's hooks) --------------

    def checkpoint(self) -> StatsCheckpoint:
        """Snapshot the charge state so a failed Round can be rolled back."""
        return StatsCheckpoint(
            phase_loads={
                phase: dict(loads) for phase, loads in self._phase_loads.items()
            },
            shuffle_count=len(self.shuffles),
        )

    def rollback(self, snapshot: StatsCheckpoint) -> dict[int, float]:
        """Restore a checkpoint, returning each worker's discarded charge.

        Charges and shuffle records made after the checkpoint are removed;
        the per-worker difference (the work the failed attempt wasted) is
        returned so the caller can re-charge it into
        :data:`RECOVERY_PHASE`.  Peak memory is left untouched — the failed
        attempt really did hold that many tuples resident.
        """
        wasted: dict[int, float] = defaultdict(float)
        for phase, loads in self._phase_loads.items():
            base = snapshot.phase_loads.get(phase, {})
            for worker, amount in loads.items():
                delta = amount - base.get(worker, 0.0)
                if delta:
                    wasted[worker] += delta
        self._phase_loads = {
            phase: defaultdict(float, loads)
            for phase, loads in snapshot.phase_loads.items()
        }
        del self.shuffles[snapshot.shuffle_count:]
        return dict(wasted)

    # -- derived metrics ----------------------------------------------------

    @property
    def tuples_shuffled(self) -> int:
        """Total tuples sent over the (simulated) network — Figs. 3c, 4c, ..."""
        return sum(record.tuples_sent for record in self.shuffles)

    @property
    def total_cpu(self) -> float:
        """Sum of work units over all workers and phases — Figs. 3b, 4b, ..."""
        return sum(
            amount
            for loads in self._phase_loads.values()
            for amount in loads.values()
        )

    @property
    def wall_clock(self) -> float:
        """Sum over phases of the slowest worker's charge — Figs. 3a, 4a, ..."""
        return sum(
            max(loads.values(), default=0.0) for loads in self._phase_loads.values()
        )

    def phase_wall(self, phase: str) -> float:
        """One phase's wall clock: its slowest worker's charge."""
        loads = self._phase_loads.get(phase, {})
        return max(loads.values(), default=0.0)

    def phase_cpu(self, phase: str) -> float:
        """One phase's total CPU: the sum of its per-worker charges."""
        return sum(self._phase_loads.get(phase, {}).values())

    def phases(self) -> tuple[str, ...]:
        """Phase names in first-charge order (the per-phase report order)."""
        return tuple(self._phase_loads)

    @property
    def recovery_cpu(self) -> float:
        """Total CPU across every recovery phase, stage-qualified included.

        Pure plans charge retries to :data:`RECOVERY_PHASE`; multi-stage
        hybrid plans to per-stage ``recovery:stageN`` phases — this sums
        them all, so ``total_cpu - recovery_cpu`` is the fault-free total
        regardless of plan shape.
        """
        return sum(
            self.phase_cpu(phase)
            for phase in self._phase_loads
            if phase == RECOVERY_PHASE
            or phase.startswith(f"{RECOVERY_PHASE}:")
        )

    def worker_loads(self, phase: Optional[str] = None) -> dict[int, float]:
        """Per-worker total charge, optionally restricted to one phase."""
        if phase is not None:
            return dict(self._phase_loads.get(phase, {}))
        totals: dict[int, float] = defaultdict(float)
        for loads in self._phase_loads.values():
            for worker, amount in loads.items():
                totals[worker] += amount
        return dict(totals)

    @property
    def cpu_skew(self) -> float:
        """max/avg per-worker total CPU — the Fig. 8 'long tail' metric."""
        loads = self.worker_loads()
        full = [loads.get(w, 0.0) for w in range(max(self.workers, 1))]
        return skew_factor(full)

    @property
    def max_consumer_skew(self) -> float:
        """Worst consumer skew over all shuffles — Table 6's 'RS Skew (max)'."""
        return max((r.consumer_skew for r in self.shuffles), default=1.0)

    def summary(self) -> str:
        """One-line outcome summary (used by benchmark progress output)."""
        status = "FAIL" if self.failed else "ok"
        return (
            f"{self.query}/{self.strategy} [{status}] "
            f"wall={self.wall_clock:.0f} cpu={self.total_cpu:.0f} "
            f"shuffled={self.tuples_shuffled} results={self.result_count}"
        )
