"""Heavy-hitter-aware shuffling — the classic skew mitigation.

The paper's footnote 2 notes that "some parallel hash join algorithms
detect the heavy hitters and treat them specially, to avoid skew" — and its
Sec. 2.1 argues the HyperCube shuffle needs no such machinery because every
value is hashed into only ``p^(1/k)`` buckets.  This module implements the
footnote's technique so the comparison can be made concrete:

- :func:`detect_heavy_hitters` finds join-key values whose frequency would
  overload a single worker;
- :func:`skew_resilient_shuffle` partitions the build side normally except
  that heavy keys are *split* round-robin across all workers, while the
  probe side's heavy tuples are *broadcast* — the standard
  partial-duplication skew join.  Every join result is still produced
  exactly once.

See ``benchmarks/test_ablation_skew_shuffle.py`` for the effect on the Q1
first join, and the HyperCube comparison it sets up.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from ..query.atoms import Variable
from .frame import Frame
from .memory import MemoryBudget
from .shuffle import hash_row
from .stats import ExecutionStats


def detect_heavy_hitters(
    frames: Sequence[Frame],
    key: Sequence[Variable],
    workers: int,
    factor: float = 2.0,
) -> set[tuple[int, ...]]:
    """Join-key values with frequency above ``factor * average worker load``.

    The threshold mirrors the paper's Sec. 2.1 analysis: under a plain hash
    partition any value with degree above ``m/p`` necessarily overloads its
    worker, so values past ``factor * m/p`` are flagged.
    """
    if not frames:
        return set()
    indices = frames[0].indices_of(key)
    counts: Counter = Counter()
    total = 0
    for frame in frames:
        for row in frame.rows:
            counts[tuple(row[i] for i in indices)] += 1
            total += 1
    if total == 0:
        return set()
    threshold = factor * total / workers
    return {value for value, count in counts.items() if count > threshold}


def skew_resilient_shuffle(
    build_frames: Sequence[Frame],
    probe_frames: Sequence[Frame],
    key: Sequence[Variable],
    workers: int,
    stats: ExecutionStats,
    name: str,
    phase: str,
    memory: Optional[MemoryBudget] = None,
    factor: float = 2.0,
    salt: int = 0,
) -> tuple[list[Frame], list[Frame], set[tuple[int, ...]]]:
    """Co-partition two inputs on ``key`` with heavy-hitter special-casing.

    Light keys hash-partition as usual on both sides.  For heavy keys
    (detected on the *build* side), build tuples are dealt round-robin
    across all workers and probe tuples are replicated to all workers, so
    each (build tuple, probe tuple) pair still meets exactly once.

    Returns ``(build partitions, probe partitions, heavy keys)``.
    """
    heavy = detect_heavy_hitters(build_frames, key, workers, factor=factor)
    build_vars = build_frames[0].variables
    probe_vars = probe_frames[0].variables
    build_key = build_frames[0].indices_of(key)
    probe_key = probe_frames[0].indices_of(key)

    build_out: list[list[tuple[int, ...]]] = [[] for _ in range(workers)]
    probe_out: list[list[tuple[int, ...]]] = [[] for _ in range(workers)]
    build_sent = [0] * len(build_frames)
    probe_sent = [0] * len(probe_frames)

    round_robin = 0
    for producer, frame in enumerate(build_frames):
        for row in frame.rows:
            value = tuple(row[i] for i in build_key)
            if value in heavy:
                destination = round_robin % workers
                round_robin += 1
            else:
                destination = hash_row(value, salt) % workers
            build_out[destination].append(row)
            build_sent[producer] += 1

    for producer, frame in enumerate(probe_frames):
        for row in frame.rows:
            value = tuple(row[i] for i in probe_key)
            if value in heavy:
                for destination in range(workers):
                    probe_out[destination].append(row)
                probe_sent[producer] += workers
            else:
                destination = hash_row(value, salt) % workers
                probe_out[destination].append(row)
                probe_sent[producer] += 1

    stats.record_shuffle(
        f"{name} build", build_sent, [len(rows) for rows in build_out]
    )
    stats.record_shuffle(
        f"{name} probe", probe_sent, [len(rows) for rows in probe_out]
    )
    for worker in range(workers):
        received = len(build_out[worker]) + len(probe_out[worker])
        stats.charge(worker, received, phase)
        if memory is not None:
            memory.allocate(worker, received, phase)
            stats.record_memory(worker, memory.resident(worker))
    for producer, count in enumerate(build_sent):
        stats.charge(producer, count, phase)
    for producer, count in enumerate(probe_sent):
        stats.charge(producer, count, phase)

    return (
        [Frame(build_vars, rows) for rows in build_out],
        [Frame(probe_vars, rows) for rows in probe_out],
        heavy,
    )
