"""The three shuffle algorithms compared throughout the paper (Sec. 3).

1. **Regular shuffle** — hash-partition a frame on its join attribute(s).
   Vulnerable to value skew: all tuples of a heavy-hitter value land on one
   consumer (Table 2's consumer skew of 1.35/1.72 on the Twitter data and
   20.8 after the first join).
2. **Broadcast** — keep the largest relation in place, copy every other
   relation to all workers (``|R| * p`` tuples sent, Table 4).
3. **HyperCube shuffle** — route every base tuple to its hypercube
   coordinates in a single round, replicating along the unconstrained
   dimensions (Table 3: ``|R| * p^(1/3)`` for the triangle query, skew
   ~1.05 because every value is hashed into only ``p^(1/3)`` buckets).

Every shuffle records tuples sent, producer skew, and consumer skew into
:class:`~repro.engine.stats.ExecutionStats`, charges 1 work unit per tuple
sent (producer side) and 1 per tuple received (consumer side) — so consumer
skew translates into wall-clock penalty exactly as the paper observes — and
registers received tuples against the consumers' memory budget.

Destination routing runs through the kernel layer
(:mod:`~repro.engine.kernels`): the numpy backend hashes key columns in one
vectorized batch and partitions via a single radix sort instead of per-row
appends, with bit-identical destinations and within-bucket order.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..hypercube.mapping import HyperCubeMapping
from ..query.atoms import Atom, Variable
from .frame import Frame
from .kernels import hash_row, hypercube_partition, shuffle_partition
from .memory import MemoryBudget
from .stats import ExecutionStats

__all__ = [
    "broadcast",
    "hash_row",
    "hypercube_shuffle",
    "regular_shuffle",
]


def _charge_shuffle(
    stats: ExecutionStats,
    phase: str,
    sent: Sequence[int],
    received: Sequence[int],
    memory: Optional[MemoryBudget],
) -> None:
    for worker, count in enumerate(sent):
        if count:
            stats.charge(worker, count, phase)
    for worker, count in enumerate(received):
        if count:
            stats.charge(worker, count, phase)
        if memory is not None:
            memory.allocate(worker, count, phase)
            stats.record_memory(worker, memory.resident(worker))


def regular_shuffle(
    frames: Sequence[Frame],
    key: Sequence[Variable],
    workers: int,
    stats: ExecutionStats,
    name: str,
    phase: str,
    memory: Optional[MemoryBudget] = None,
    salt: int = 0,
) -> list[Frame]:
    """Hash-partition per-worker frames on the key variables."""
    if not frames:
        raise ValueError("no input frames")
    variables = frames[0].variables
    key_indices = frames[0].indices_of(key)
    outputs: list[list[tuple[int, ...]]] = [[] for _ in range(workers)]
    sent = [0] * len(frames)
    for producer, frame in enumerate(frames):
        buckets = shuffle_partition(frame.rows, key_indices, workers, salt)
        for destination, bucket in enumerate(buckets):
            if bucket:
                outputs[destination].extend(bucket)
        sent[producer] = len(frame.rows)
    received = [len(rows) for rows in outputs]
    stats.record_shuffle(name, sent, received)
    _charge_shuffle(stats, phase, sent, received, memory)
    return [Frame(variables, rows) for rows in outputs]


def broadcast(
    frames: Sequence[Frame],
    workers: int,
    stats: ExecutionStats,
    name: str,
    phase: str,
    memory: Optional[MemoryBudget] = None,
) -> list[Frame]:
    """Replicate the union of all fragments to every worker."""
    variables = frames[0].variables
    all_rows: list[tuple[int, ...]] = []
    sent = [0] * len(frames)
    for producer, frame in enumerate(frames):
        all_rows.extend(frame.rows)
        sent[producer] = len(frame.rows) * workers
    received = [len(all_rows)] * workers
    stats.record_shuffle(name, sent, received)
    _charge_shuffle(stats, phase, sent, received, memory)
    return [Frame(variables, list(all_rows)) for _ in range(workers)]


def hypercube_shuffle(
    frames: Sequence[Frame],
    atom: Atom,
    mapping: HyperCubeMapping,
    workers: int,
    stats: ExecutionStats,
    name: str,
    phase: str,
    memory: Optional[MemoryBudget] = None,
) -> list[Frame]:
    """Route each tuple of ``atom`` to its hypercube coordinates.

    The frame's variables must be the atom's variables (the scan output);
    hashing uses the per-dimension hash functions of ``mapping``.  Workers
    beyond ``mapping.workers_used`` receive nothing (the optimal integral
    configuration may leave machines idle, paper Sec. 4) — consumer skew is
    therefore computed over the ``workers_used`` participating consumers
    only, so idle machines do not dilute the average load and inflate the
    reported skew (Table 3's ~1.05).
    """
    variables = frames[0].variables
    if set(variables) != set(atom.variables()):
        raise ValueError(
            f"frame variables {variables} do not match atom {atom.alias}"
        )
    bound, offsets = mapping.frame_routing(atom, variables)
    copies = len(offsets)
    outputs: list[list[tuple[int, ...]]] = [[] for _ in range(workers)]
    sent = [0] * len(frames)
    for producer, frame in enumerate(frames):
        buckets = hypercube_partition(frame.rows, bound, offsets, workers)
        for destination, bucket in enumerate(buckets):
            if bucket:
                outputs[destination].extend(bucket)
        sent[producer] = len(frame.rows) * copies
    received = [len(rows) for rows in outputs]
    # idle workers beyond the integral configuration are not consumers
    stats.record_shuffle(name, sent, received[: mapping.workers_used])
    _charge_shuffle(stats, phase, sent, received, memory)
    return [Frame(variables, rows) for rows in outputs]
