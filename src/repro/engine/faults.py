"""Deterministic fault injection and the Round-level recovery policy.

Layer: engine / faults (consulted by the scheduler at Round boundaries and
operator completion points; configured from the CLI via ``--faults`` /
``--recovery`` and programmatically via ``run_query(faults=...)``).

The paper's single-round evaluation makes wall clock equal to the slowest
worker, so worker failures and stragglers are exactly the adversities a
production-scale reproduction must model.  This module provides:

- a **FaultPlan DSL** — a seedable, JSON-loadable list of
  :class:`FaultSpec` entries describing *deterministic* adversities: a
  worker crash at a Round boundary or inside a named stat phase, a
  straggler slowdown multiplier, the loss of a shuffle's partitions, or an
  injected (transient) per-worker OOM;
- a **recovery policy** — :class:`RecoveryPolicy` selects what the
  scheduler does when an injected fault fires: ``retry`` re-runs the failed
  Round from surviving lineage (bounded attempts, optional exponential
  backoff charged to the cost model), ``degrade`` lets the executor fall
  back to a more conservative strategy (BR -> RS), and ``fail`` aborts with
  a structured :class:`FailureReport`.

Everything is counted, never timed: a straggler multiplies the charges a
worker's operators record, a retry re-charges the wasted attempt into the
:data:`~repro.engine.stats.RECOVERY_PHASE` phase, and the same FaultPlan
seed produces bit-identical metrics under every worker runtime and kernel
backend.  An empty plan injects nothing and leaves execution bit-identical
to the fault-free golden captures.

The recovery model leans on the Round structure of the physical-plan IR:
every Round is a barrier whose inputs (prior slots and the cluster's
round-robin fragments) survive a failed attempt, so re-running the Round is
always possible from lineage — fragments are durable, and the scheduler's
checkpoint/rollback restores stats, residency, and trace to the barrier.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from .runtime import WorkerLedger
from .stats import WorkerStats

__all__ = [
    "FAULT_KINDS",
    "FaultAbort",
    "FaultPlan",
    "FaultSession",
    "FaultSpec",
    "FailureReport",
    "InjectedFault",
    "RECOVERY_MODES",
    "RecoveryPolicy",
    "resolve_faults",
    "resolve_policy",
]

#: the four injectable adversities
FAULT_KINDS = ("crash", "straggler", "partition_loss", "oom")

#: the three recovery dispositions a policy may select
RECOVERY_MODES = ("retry", "degrade", "fail")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic adversity to inject.

    ``kind`` is one of :data:`FAULT_KINDS`:

    - ``"crash"`` — the target worker dies.  With ``phase=None`` it dies at
      the Round boundary (before running any local operator); with a phase
      name it dies right after the operator charging that phase completes
      (matching either a local operator on the target worker or a driver-side
      global operator).
    - ``"straggler"`` — the target worker runs ``factor`` times slower: every
      charge its local operators record is multiplied by ``factor``.
      Stragglers are slowdowns, not failures — they fire on every attempt and
      are never retried.
    - ``"partition_loss"`` — the output partitions of the exchange whose
      shuffle-record name contains ``exchange`` are lost after the exchange
      completes; the Round must be recomputed.
    - ``"oom"`` — a transient allocator failure on the target worker at the
      Round boundary.  Unlike a genuine budget breach
      (:class:`~repro.engine.memory.OutOfMemoryError`, which always aborts),
      an injected OOM is recoverable by retrying the Round.

    ``round`` targets a Round by index (int) or label (str); ``None`` means
    every round.  ``worker`` is the target worker id, or ``None`` to draw one
    deterministically from the plan's seed.  ``attempts`` lists the Round
    attempt numbers on which the fault fires (default: first attempt only),
    so a retried Round succeeds unless the spec says otherwise.
    """

    kind: str
    round: Union[int, str, None] = None
    worker: Optional[int] = None
    phase: Optional[str] = None
    exchange: Optional[str] = None
    factor: float = 1.0
    attempts: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid: {', '.join(FAULT_KINDS)}"
            )
        if self.kind == "straggler" and self.factor <= 1.0:
            raise ValueError("a straggler needs factor > 1.0")
        if self.kind == "partition_loss" and not self.exchange:
            raise ValueError("partition_loss needs an exchange name fragment")

    def matches_round(self, round_index: int, label: str) -> bool:
        """Whether this spec targets the given Round."""
        if self.round is None:
            return True
        if isinstance(self.round, int):
            return self.round == round_index
        return self.round == label


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic collection of faults to inject.

    The JSON form (accepted by :meth:`from_dict` / :meth:`load` and the CLI's
    ``--faults plan.json``)::

        {"seed": 42,
         "faults": [
           {"kind": "crash", "round": "step 1", "worker": 1,
            "phase": "step1:join", "attempts": [0]},
           {"kind": "straggler", "worker": 0, "factor": 3.0},
           {"kind": "partition_loss", "round": 2, "exchange": "RS S"},
           {"kind": "oom", "round": 1}
         ]}

    ``seed`` only matters for specs with ``worker: null`` — the target worker
    is drawn from ``random.Random`` seeded by ``(seed, fault index)``, so the
    same plan hits the same workers on every run, runtime, and backend.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not self.faults

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Build a plan from the JSON-dict form documented on the class."""
        specs = []
        for entry in data.get("faults", ()):
            entry = dict(entry)
            if "attempts" in entry:
                entry["attempts"] = tuple(entry["attempts"])
            specs.append(FaultSpec(**entry))
        return cls(faults=tuple(specs), seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse the JSON text form of a plan."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--faults`` argument)."""
        with open(path) as handle:
            return cls.from_json(handle.read())


FaultsLike = Union[FaultPlan, dict, None]


def resolve_faults(spec: FaultsLike) -> Optional[FaultPlan]:
    """Normalize a faults argument: a plan, its dict form, or ``None``.

    Empty plans normalize to ``None`` so callers can gate the entire fault
    machinery on a single ``is None`` check — the fault-free path stays
    bit-identical to the golden captures.
    """
    if spec is None:
        return None
    if isinstance(spec, dict):
        spec = FaultPlan.from_dict(spec)
    if not isinstance(spec, FaultPlan):
        raise TypeError(f"faults must be a FaultPlan or dict, got {spec!r}")
    return None if spec.is_empty() else spec


@dataclass(frozen=True)
class RecoveryPolicy:
    """What the scheduler does when an injected fault fires.

    ``mode`` is one of :data:`RECOVERY_MODES`.  Under ``retry`` a failed
    Round is re-run from surviving lineage at most ``max_retries`` times;
    each retry charges the wasted attempt's work into the ``recovery`` stats
    phase plus ``backoff_units * 2**attempt`` units of backoff against the
    crashed worker.  When retries are exhausted — or under ``degrade`` /
    ``fail`` immediately — a :class:`FaultAbort` carrying a structured
    :class:`FailureReport` is raised; the executor then degrades BR -> RS
    (mode ``degrade``, broadcast strategies only) or reports the failure.
    """

    mode: str = "retry"
    max_retries: int = 2
    backoff_units: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in RECOVERY_MODES:
            raise ValueError(
                f"unknown recovery mode {self.mode!r}; "
                f"valid: {', '.join(RECOVERY_MODES)}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


PolicyLike = Union[str, RecoveryPolicy, None]


def resolve_policy(spec: PolicyLike) -> RecoveryPolicy:
    """Turn a policy spec into a :class:`RecoveryPolicy`.

    Accepts an existing policy, ``None`` (→ the default retry policy), or
    the CLI spellings ``"retry"``, ``"retry:N"`` (N bounded retries),
    ``"degrade"``, and ``"fail"``.
    """
    if spec is None:
        return RecoveryPolicy()
    if isinstance(spec, RecoveryPolicy):
        return spec
    text = str(spec).strip().lower()
    if text.startswith("retry:"):
        try:
            count = int(text.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                f"bad recovery spec {spec!r}; use 'retry[:N]', 'degrade', or 'fail'"
            ) from None
        return RecoveryPolicy(mode="retry", max_retries=count)
    if text in RECOVERY_MODES:
        return RecoveryPolicy(mode=text)
    raise ValueError(
        f"unknown recovery policy {spec!r}; use 'retry[:N]', 'degrade', or 'fail'"
    )


class InjectedFault(Exception):
    """An injected adversity fired (internal control flow, always caught).

    Raised by :class:`FaultSession` hooks inside a Round attempt; the
    scheduler's recovery loop catches it at the Round barrier and either
    retries the Round or escalates to :class:`FaultAbort`.
    """

    def __init__(
        self,
        spec: FaultSpec,
        round_index: int,
        round_label: str,
        worker: Optional[int],
        phase: Optional[str] = None,
    ) -> None:
        where = f"round {round_index} <{round_label}>"
        if phase:
            where += f" phase {phase!r}"
        super().__init__(
            f"injected {spec.kind} on worker {worker} at {where}"
        )
        self.spec = spec
        self.round_index = round_index
        self.round_label = round_label
        self.worker = worker
        self.phase = phase


@dataclass(frozen=True)
class FailureReport:
    """Structured description of an unrecovered fault (the abort artifact).

    Carried by :class:`FaultAbort` and attached to the
    :class:`~repro.planner.executor.ExecutionResult` as ``failure_report``.
    ``lineage`` lists the slots the failed Round consumed — the inputs a
    recompute would need, all reconstructible from the durable round-robin
    fragments and earlier Rounds.  ``disposition`` is ``"aborted"`` or, once
    the executor has fallen back to a regular shuffle, ``"degraded"``.
    """

    kind: str
    worker: Optional[int]
    round_index: int
    round_label: str
    phase: Optional[str]
    attempts_used: int
    policy: str
    disposition: str = "aborted"
    fallback: Optional[str] = None
    lineage: tuple[str, ...] = ()

    def describe(self) -> str:
        """One-line human-readable form (printed by the CLI on abort)."""
        where = f"round {self.round_index} <{self.round_label}>"
        if self.phase:
            where += f" phase {self.phase!r}"
        text = (
            f"injected {self.kind} on worker {self.worker} at {where} "
            f"after {self.attempts_used} attempt(s) under policy "
            f"{self.policy!r}: {self.disposition}"
        )
        if self.fallback:
            text += f" to {self.fallback}"
        if self.lineage:
            text += f" [lineage: {', '.join(self.lineage)}]"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form (for harness tables and tooling)."""
        return {
            "kind": self.kind,
            "worker": self.worker,
            "round_index": self.round_index,
            "round_label": self.round_label,
            "phase": self.phase,
            "attempts_used": self.attempts_used,
            "policy": self.policy,
            "disposition": self.disposition,
            "fallback": self.fallback,
            "lineage": list(self.lineage),
        }


class FaultAbort(Exception):
    """A fault exhausted its recovery policy; execution cannot continue.

    The executor catches this: under ``degrade`` it re-plans BR -> RS and
    re-executes fault-free, otherwise it marks the result FAILed with the
    attached :class:`FailureReport`.
    """

    def __init__(self, report: FailureReport) -> None:
        super().__init__(report.describe())
        self.report = report


class _StragglerStats:
    """Write-through stats proxy that multiplies every charge by a factor.

    Wraps one worker task's :class:`~repro.engine.stats.WorkerStats` ledger;
    the runtime still commits the *underlying* ledger, so the inflation is
    visible to every derived metric exactly as if the worker were slower.
    """

    def __init__(self, inner: WorkerStats, factor: float) -> None:
        self._inner = inner
        self._factor = factor

    def charge(self, worker: int, amount: float, phase: str) -> None:
        """Charge the slowed-down amount into the underlying ledger."""
        self._inner.charge(worker, amount * self._factor, phase)

    def record_memory(self, worker: int, resident_tuples: int) -> None:
        """Memory observations pass through unscaled."""
        self._inner.record_memory(worker, resident_tuples)


class FaultSession:
    """One execution's view of a fault plan: resolved targets plus hooks.

    Built by the executor when a non-empty plan is supplied.  Worker targets
    left as ``None`` in the plan are resolved here with the plan's seed, so
    a session is deterministic given (plan, cluster size).  The scheduler
    calls the hooks at well-defined points; each hook either returns quietly
    or raises :class:`InjectedFault`:

    - :meth:`at_worker` — a worker task is starting (Round-boundary crashes
      and injected OOMs fire here);
    - :meth:`after_local_op` — a local operator finished on a worker
      (phase-targeted crashes fire here);
    - :meth:`after_global_op` — a driver-side operator finished (global
      phase crashes and partition loss fire here);
    - :meth:`wrap_ledger` — intercepts a worker's ledger so straggler
      charges are inflated;
    - :meth:`needs_recovery` — whether any recoverable fault targets a
      Round, i.e. whether the scheduler should checkpoint it.
    """

    def __init__(
        self, plan: FaultPlan, policy: RecoveryPolicy, workers: int
    ) -> None:
        self.plan = plan
        self.policy = policy
        self.workers = workers
        self._targets: list[Optional[int]] = []
        for index, spec in enumerate(plan.faults):
            if spec.kind != "partition_loss" and spec.worker is None:
                # str seeds hash via sha512 — stable across runs and
                # interpreters, unaffected by PYTHONHASHSEED
                draw = random.Random(f"{plan.seed}:{index}")
                self._targets.append(draw.randrange(workers))
            else:
                self._targets.append(spec.worker)

    def target(self, spec_index: int) -> Optional[int]:
        """The resolved target worker of one spec (None for partition loss)."""
        return self._targets[spec_index]

    def _active(self, kind: str, round_index: int, label: str, attempt: int):
        for index, spec in enumerate(self.plan.faults):
            if spec.kind != kind:
                continue
            if not spec.matches_round(round_index, label):
                continue
            if kind != "straggler" and attempt not in spec.attempts:
                continue
            yield index, spec

    def needs_recovery(self, round_index: int, label: str) -> bool:
        """Whether any recoverable (non-straggler) fault targets this Round."""
        return any(
            spec.kind != "straggler" and spec.matches_round(round_index, label)
            for spec in self.plan.faults
        )

    def at_worker(self, round_index: int, label: str, attempt: int, worker: int):
        """Fire Round-boundary crashes and injected OOMs for this worker."""
        for kind in ("crash", "oom"):
            for index, spec in self._active(kind, round_index, label, attempt):
                if kind == "crash" and spec.phase is not None:
                    continue
                if self._targets[index] == worker:
                    raise InjectedFault(spec, round_index, label, worker)

    def after_local_op(
        self, round_index: int, label: str, attempt: int, worker: int, op
    ) -> None:
        """Fire phase-targeted crashes after a local operator on a worker."""
        for index, spec in self._active("crash", round_index, label, attempt):
            if spec.phase is None or self._targets[index] != worker:
                continue
            if spec.phase in op.phases:
                raise InjectedFault(spec, round_index, label, worker, spec.phase)

    def after_global_op(
        self, round_index: int, label: str, attempt: int, op
    ) -> None:
        """Fire global phase crashes and partition loss after a driver op."""
        for index, spec in self._active("crash", round_index, label, attempt):
            if spec.phase is not None and spec.phase in op.phases:
                raise InjectedFault(
                    spec, round_index, label, self._targets[index], spec.phase
                )
        name = getattr(op, "name", None)
        if name is None:
            return
        for _, spec in self._active("partition_loss", round_index, label, attempt):
            if spec.exchange in name:
                raise InjectedFault(spec, round_index, label, None, op.phase)

    def straggler_factor(self, round_index: int, label: str, worker: int) -> float:
        """The combined slowdown multiplier for a worker in a Round (1.0 = none)."""
        factor = 1.0
        for index, spec in self._active("straggler", round_index, label, 0):
            if self._targets[index] == worker:
                factor *= spec.factor
        return factor

    def wrap_ledger(
        self, round_index: int, label: str, ledger: WorkerLedger
    ) -> WorkerLedger:
        """Return a straggler-slowed view of a worker's ledger (or it unchanged).

        The returned ledger shares the memory account and writes charges
        through to the original stats ledger (inflated), so the runtime's
        commit path is untouched.
        """
        factor = self.straggler_factor(round_index, label, ledger.worker)
        if factor == 1.0:
            return ledger
        return WorkerLedger(
            worker=ledger.worker,
            stats=_StragglerStats(ledger.stats, factor),
            memory=ledger.memory,
        )
