"""The operator scheduler: one interpreter for every physical plan.

Where :mod:`~repro.planner.physical` makes the paper's strategies *data*,
this module makes their execution *one* loop: walk a
:class:`~repro.planner.physical.PhysicalPlan` round by round, run each
round's global operators (scans, exchanges, configuration) on the driver,
then fuse the round's local operators into a single worker task dispatched
through the pluggable worker runtime (:mod:`~repro.engine.runtime`).  Each
worker task charges an isolated :class:`~repro.engine.runtime.WorkerLedger`
merged back in worker-id order, so serial and parallel runtimes produce
identical counted metrics — exactly the contract the hand-written
per-strategy loops upheld, now enforced in one place.

The scheduler reproduces the historical executor's metric stream
byte-for-byte: the same shuffle record order, the same phase insertion
order, the same memory registration/release points (scans register
residency, exchanges stream their input out before receive buffers fill,
joins release consumed inputs and filter-dropped rows), and the same
:class:`~repro.engine.memory.OutOfMemoryError` propagation — the
differential suite pins all of it against golden seed-executor captures.

Alongside execution the scheduler appends one :class:`OperatorTrace` per
operator into a caller-supplied list — tuples in/out, the index of the
shuffle record an exchange produced, whether a broadcast was skipped as the
anchor.  Traces are appended as operators complete, so a failed (OOM) run
leaves a truthful partial trace; the EXPLAIN ANALYZE layer
(:mod:`~repro.planner.explain`) joins traces with
:class:`~repro.engine.stats.ExecutionStats` phases to annotate the plan.

Fault injection and recovery (:mod:`~repro.engine.faults`) hook in at the
Round barrier: a Round targeted by a recoverable fault is checkpointed
(stats charges, shuffle records, memory residency, slot bindings, trace
length) before it runs; when an :class:`~repro.engine.faults.InjectedFault`
fires mid-Round, the checkpoint is rolled back and the Round is re-run from
surviving lineage — prior slots are untouched and scan rounds re-read the
cluster's durable fragments — with the wasted attempt's work re-charged
into the ``recovery`` stats phase.  With no fault session the hooks are
never consulted and execution is bit-identical to the fault-free captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional, Union

from .faults import FaultAbort, FaultSession, FailureReport, InjectedFault

from ..hypercube.config import HyperCubeConfig, optimize_config
from ..hypercube.mapping import HyperCubeMapping
from ..query.atoms import Atom, ConjunctiveQuery
from .cluster import Cluster
from .frame import Frame, atom_frame
from .hash_join import apply_comparisons, symmetric_hash_join
from .local import local_tributary_join
from .runtime import WorkerLedger, WorkerRuntime
from .shuffle import broadcast, hypercube_shuffle, regular_shuffle
from .stats import ExecutionStats, recovery_phase

__all__ = [
    "ExecutionCheckpoint",
    "OperatorTrace",
    "PlanExecution",
    "ScheduledRun",
    "run_plan",
]

#: a slot's per-worker payload: frames (most operators) or raw result rows
#: (the Tributary join emits projected head rows directly)
SlotValue = Union[Frame, list]


@dataclass
class OperatorTrace:
    """What one operator actually did, recorded as the scheduler ran it.

    ``tuples_in``/``tuples_out`` are summed over workers; ``shuffle_index``
    points into ``ExecutionStats.shuffles`` for exchanges; ``skipped`` marks
    broadcast exchanges elided because their input is the anchor."""

    round_index: int
    op_index: int
    op: "PhysicalOp"
    tuples_in: int = 0
    tuples_out: int = 0
    shuffle_index: Optional[int] = None
    skipped: bool = False


@dataclass
class ScheduledRun:
    """Everything a plan execution produced beyond the stats it filled in."""

    rows: list
    hc_config: Optional[HyperCubeConfig] = None
    anchor: Optional[str] = None
    trace: Optional[list[OperatorTrace]] = None


def _binary_merge_join(
    left: Frame,
    right: Frame,
    join_vars,
    worker: int,
    ledger: WorkerLedger,
    step: int,
) -> Frame:
    """Binary Tributary join == sort-merge join: build a 2-atom query over
    the two frames and run the multiway machinery on it."""
    left_atom = Atom("L", left.variables, alias="L")
    right_atom = Atom("R", right.variables, alias="R")
    out_vars = tuple(left.variables) + tuple(
        v for v in right.variables if v not in set(left.variables)
    )
    two_way = ConjunctiveQuery(
        name="merge", head=out_vars, atoms=(left_atom, right_atom)
    )
    order = tuple(join_vars) + tuple(v for v in out_vars if v not in set(join_vars))
    rows = local_tributary_join(
        two_way,
        {"L": left, "R": right},
        worker,
        ledger.stats,
        order=order,
        sort_phase=f"step{step}:sort",
        join_phase=f"step{step}:join",
        memory=ledger.memory,
    )
    return Frame(out_vars, rows)


def _run_local_op(
    op: PhysicalOp,
    worker: int,
    ledger: WorkerLedger,
    read,
    write,
) -> None:
    """Execute one local operator against a worker's slot views."""
    if isinstance(op, (LocalHashJoin, MergeJoinStep)):
        left, right = read(op.left), read(op.right)
        if isinstance(op, LocalHashJoin):
            out = symmetric_hash_join(
                left,
                right,
                op.join_vars,
                worker,
                ledger.stats,
                f"step{op.step}:join",
                ledger.memory,
            )
        else:
            out = _binary_merge_join(
                left, right, op.join_vars, worker, ledger, op.step
            )
        produced = len(out.rows)
        # every worker filters against the full pending list; the deferred
        # remainder is statically known and the same for all of them
        out, _ = apply_comparisons(
            out, list(op.pending), worker, ledger.stats, f"step{op.step}:filter"
        )
        # consumed inputs and filter-dropped rows leave worker memory
        dropped = produced - len(out.rows)
        if dropped:
            ledger.memory.release(worker, dropped)
        consumed = len(left) + len(right)
        if consumed:
            ledger.memory.release(worker, consumed)
        write(op.out, out)
    elif isinstance(op, LocalTributaryJoin):
        frames_of_worker = {alias: read(slot) for alias, slot in op.inputs}
        rows = local_tributary_join(
            op.query,
            frames_of_worker,
            worker,
            ledger.stats,
            order=op.order,
            memory=ledger.memory,
        )
        consumed = sum(len(f) for f in frames_of_worker.values())
        if consumed:
            ledger.memory.release(worker, consumed)
        write(op.out, rows)
    elif isinstance(op, SemiJoinFilter):
        target, key_frame = read(op.target), read(op.keys)
        keys = set(key_frame.rows)
        indices = target.indices_of(op.key)
        kept = [
            row
            for row in target.rows
            if tuple(row[i] for i in indices) in keys
        ]
        ledger.stats.charge(worker, len(target.rows) + len(keys), op.phase)
        # the key buffer and the filtered-out target rows leave memory
        released = len(key_frame.rows) + (len(target.rows) - len(kept))
        if released:
            ledger.memory.release(worker, released)
        write(op.out, Frame(target.variables, kept))
    else:  # pragma: no cover - lowering only emits the ops above
        raise TypeError(f"unknown local operator {op!r}")


def _run_local_task(
    worker: int, ledger: WorkerLedger, inputs: dict, ops=()
) -> dict:
    """Run one round's fused local operators over shipped slot inputs.

    The structured (picklable) counterpart of the scheduler's in-process
    worker-task closure: ``inputs`` maps slot names to this worker's input
    payloads, so a persistent process-pool child needs no live driver
    state.  Returns the slots the operators produced.
    """
    produced: dict[str, SlotValue] = {}

    def read(name: str) -> SlotValue:
        """Resolve a slot: this task's output, else a shipped input."""
        return produced[name] if name in produced else inputs[name]

    def write(name: str, value: SlotValue) -> None:
        """Bind an operator output within this task."""
        produced[name] = value

    for op in ops:
        _run_local_op(op, worker, ledger, read, write)
    return produced


def _scanned_sizes(slots: dict, aliases) -> dict[str, int]:
    """Exact post-selection cardinality per atom alias."""
    return {
        alias: max(1, sum(len(f) for f in slots[alias]))
        for alias in aliases
    }


@dataclass
class _ExecState:
    """The mutable driver-side bindings a plan execution accumulates.

    ``slots`` maps slot names to per-worker payloads; the remaining fields
    are the run-time decisions (HyperCube configuration and mapping, the
    broadcast anchor) bound by the data-driven global operators.  Grouped in
    one object so the recovery layer can snapshot and restore everything a
    Round may have written.
    """

    slots: dict[str, list[SlotValue]] = field(default_factory=dict)
    hc_config: Optional[HyperCubeConfig] = None
    mapping: Optional[HyperCubeMapping] = None
    anchor: Optional[str] = None


@dataclass(frozen=True)
class _RoundCheckpoint:
    """Everything needed to roll an execution back to a Round boundary.

    Slot payloads are never mutated in place by operators (every operator
    writes fresh frames), so a shallow copy of the slot map suffices; the
    stats snapshot and residency snapshot restore the accounting, and the
    trace length truncates the failed attempt's trace entries.
    """

    stats_checkpoint: object
    residency: dict[int, int]
    slots: dict[str, list[SlotValue]]
    hc_config: Optional[HyperCubeConfig]
    mapping: Optional[HyperCubeMapping]
    anchor: Optional[str]
    trace_length: int

    @classmethod
    def capture(
        cls,
        stats: ExecutionStats,
        cluster: Cluster,
        state: _ExecState,
        trace: Optional[list[OperatorTrace]],
    ) -> "_RoundCheckpoint":
        """Snapshot stats, residency, slots, bindings, and trace length."""
        return cls(
            stats_checkpoint=stats.checkpoint(),
            residency=cluster.memory.checkpoint_residency(),
            slots=dict(state.slots),
            hc_config=state.hc_config,
            mapping=state.mapping,
            anchor=state.anchor,
            trace_length=0 if trace is None else len(trace),
        )

    def rollback(
        self,
        stats: ExecutionStats,
        cluster: Cluster,
        state: _ExecState,
        trace: Optional[list[OperatorTrace]],
    ) -> dict[int, float]:
        """Restore the boundary state; return per-worker wasted charges."""
        wasted = stats.rollback(self.stats_checkpoint)
        cluster.memory.restore_residency(self.residency)
        state.slots = dict(self.slots)
        state.hc_config = self.hc_config
        state.mapping = self.mapping
        state.anchor = self.anchor
        if trace is not None:
            del trace[self.trace_length:]
        return wasted


def _run_round(
    plan: PhysicalPlan,
    round_: "Round",
    round_index: int,
    cluster: Cluster,
    stats: ExecutionStats,
    runtime: WorkerRuntime,
    trace: Optional[list[OperatorTrace]],
    state: _ExecState,
    faults: Optional[FaultSession] = None,
    attempt: int = 0,
) -> None:
    """Execute one Round: global operators, then the fused local task.

    With a fault session, injection hooks are consulted after every global
    operator, at each worker task's start, and after every local operator;
    without one (``faults is None``) the hooks are never touched and the
    Round runs exactly as the fault-free golden captures pin down.
    """
    encoder = cluster.encoder()
    workers = cluster.workers
    slots = state.slots
    label = round_.label

    def record(entry: OperatorTrace) -> None:
        """Append a trace entry when the caller asked for tracing."""
        if trace is not None:
            trace.append(entry)

    def slot_tuples(name: str) -> int:
        """Total tuples currently bound to one slot across workers."""
        return sum(len(value) for value in slots[name])

    for op_index, op in enumerate(round_.ops):
        if not op.GLOBAL:
            continue
        if isinstance(op, Scan):
            per_worker: list[Frame] = []
            for worker in range(workers):
                relation = cluster.fragment_relation(op.atom.relation, worker)
                frame = atom_frame(op.atom, relation, encoder)
                for comparison in op.filters:
                    index = {v: i for i, v in enumerate(frame.variables)}
                    frame = Frame(
                        frame.variables,
                        [
                            row
                            for row in frame.rows
                            if comparison.evaluate(
                                {v: row[i] for v, i in index.items()}
                            )
                        ],
                    )
                per_worker.append(frame)
            slots[op.out] = per_worker
            for worker, frame in enumerate(per_worker):
                if len(frame):
                    cluster.memory.allocate(worker, len(frame), "scan")
                    stats.record_memory(worker, cluster.memory.resident(worker))
            record(
                OperatorTrace(
                    round_index, op_index, op,
                    tuples_out=slot_tuples(op.out),
                )
            )
        elif isinstance(op, ChooseAnchor):
            sizes = _scanned_sizes(slots, op.aliases)
            state.anchor = max(sizes, key=lambda alias: sizes[alias])
            record(OperatorTrace(round_index, op_index, op))
        elif isinstance(op, ConfigureHyperCube):
            sizes = _scanned_sizes(slots, op.aliases)
            # hybrid plans configure per stage: the boundary round carries
            # its own subquery (intermediate + residual atoms)
            state.hc_config = op.config or optimize_config(
                op.query or plan.query, sizes, workers
            )
            state.mapping = HyperCubeMapping(state.hc_config, seed=op.seed)
            record(OperatorTrace(round_index, op_index, op))
        elif isinstance(op, ScanIntermediate):
            source = slots[op.input]
            projected: list[Frame] = []
            for worker, frame in enumerate(source):
                stats.charge(worker, len(frame), op.phase)
                out_frame = frame.project(op.variables, dedup=op.dedup)
                dropped = len(frame) - len(out_frame)
                if dropped:
                    # de-duplicated rows leave residency; the projection
                    # itself is width-free (the memory model counts tuples)
                    cluster.memory.release(worker, dropped)
                projected.append(out_frame)
            slots[op.out] = projected
            record(
                OperatorTrace(
                    round_index, op_index, op,
                    tuples_in=sum(len(f) for f in source),
                    tuples_out=slot_tuples(op.out),
                )
            )
        elif isinstance(op, Exchange):
            frames = slots[op.input]
            if op.skip_if_anchor and op.input == state.anchor:
                # anchor fragments stay in place; the scan already
                # registered their residency, so nothing moves
                slots[op.out] = frames
                record(
                    OperatorTrace(
                        round_index, op_index, op,
                        tuples_in=slot_tuples(op.input),
                        tuples_out=slot_tuples(op.out),
                        skipped=True,
                    )
                )
                continue
            if op.release_input:
                # the exchange streams the old partitioning out as it
                # sends, so its residency is freed before receive
                # buffers fill
                cluster.release_frames(frames)
            if op.kind is ExchangeKind.REGULAR:
                slots[op.out] = regular_shuffle(
                    frames,
                    op.key,
                    workers,
                    stats,
                    name=op.name,
                    phase=op.phase,
                    memory=cluster.memory,
                )
            elif op.kind is ExchangeKind.BROADCAST:
                slots[op.out] = broadcast(
                    frames,
                    workers,
                    stats,
                    name=op.name,
                    phase=op.phase,
                    memory=cluster.memory,
                )
            else:
                slots[op.out] = hypercube_shuffle(
                    frames,
                    op.atom,
                    state.mapping,
                    workers,
                    stats,
                    name=op.name,
                    phase=op.phase,
                    memory=cluster.memory,
                )
            record(
                OperatorTrace(
                    round_index, op_index, op,
                    tuples_in=sum(len(f) for f in frames),
                    tuples_out=slot_tuples(op.out),
                    shuffle_index=len(stats.shuffles) - 1,
                )
            )
        elif isinstance(op, SemiJoinProject):
            source = slots[op.source]
            projected: list[Frame] = []
            for worker, frame in enumerate(source):
                stats.charge(worker, len(frame), op.phase)
                projected.append(frame.project(op.key, dedup=True))
            slots[op.out] = projected
            record(
                OperatorTrace(
                    round_index, op_index, op,
                    tuples_in=sum(len(f) for f in source),
                    tuples_out=slot_tuples(op.out),
                )
            )
        else:  # pragma: no cover - lowering only emits the ops above
            raise TypeError(f"unknown global operator {op!r}")
        if faults is not None:
            faults.after_global_op(round_index, label, attempt, op)

    local = round_.local_ops()
    if not local:
        return
    if round_.local_workers == LOCAL_HC:
        worker_ids = range(state.mapping.workers_used)
    else:
        worker_ids = range(workers)

    if faults is None:
        # Structured path: ship each worker's input slot values explicitly so
        # session-based runtimes (persistent process pools) can transfer only
        # the per-phase payload instead of re-pickling a fresh closure.
        needed = list(
            dict.fromkeys(
                name
                for op in local
                for name in op.input_slots()
                if name in slots
            )
        )
        payloads = {
            worker: {name: slots[name][worker] for name in needed}
            for worker in worker_ids
        }
        runner = partial(_run_local_task, ops=local)
        outcomes = runtime.map_local(
            worker_ids, runner, payloads, stats, cluster.memory
        )
    else:

        def local_task(worker: int, ledger: WorkerLedger, ops=local):
            """Run the round's fused local operators as one worker task."""
            faults.at_worker(round_index, label, attempt, worker)
            ledger = faults.wrap_ledger(round_index, label, ledger)
            produced: dict[str, SlotValue] = {}

            def read(name: str) -> SlotValue:
                """Resolve a slot: task output, else the shared binding."""
                return produced[name] if name in produced else slots[name][worker]

            def write(name: str, value: SlotValue) -> None:
                """Bind an operator output within this task."""
                produced[name] = value

            for op in ops:
                _run_local_op(op, worker, ledger, read, write)
                faults.after_local_op(round_index, label, attempt, worker, op)
            return produced

        outcomes = runtime.map_workers(
            worker_ids, local_task, stats, cluster.memory
        )
    local_positions = [
        i for i, candidate in enumerate(round_.ops) if not candidate.GLOBAL
    ]
    for op_offset, op in enumerate(local):
        inputs = list(op.input_slots())
        tuples_in = sum(slot_tuples(name) for name in inputs if name in slots)
        slots[op.out] = [produced[op.out] for produced in outcomes]
        record(
            OperatorTrace(
                round_index,
                local_positions[op_offset],
                op,
                tuples_in=tuples_in
                + sum(
                    len(produced[name])
                    for produced in outcomes
                    for name in inputs
                    if name not in slots
                ),
                tuples_out=slot_tuples(op.out),
            )
        )


def _run_round_recovering(
    plan: PhysicalPlan,
    round_: "Round",
    round_index: int,
    cluster: Cluster,
    stats: ExecutionStats,
    runtime: WorkerRuntime,
    trace: Optional[list[OperatorTrace]],
    state: _ExecState,
    faults: FaultSession,
) -> None:
    """Run one fault-targeted Round under the session's recovery policy.

    The Round boundary is checkpointed; when an injected fault fires the
    checkpoint is rolled back and — under the ``retry`` policy, while
    attempts remain — the Round is re-run from surviving lineage, with the
    wasted attempt's per-worker charges plus exponential backoff re-charged
    into the ``recovery`` stats phase.  Exhausted retries (or the
    ``degrade``/``fail`` policies) raise :class:`~repro.engine.faults.FaultAbort`
    with a structured report; the aborted attempt's partial charges and
    trace are kept, mirroring the genuine-OOM contract.  A real
    :class:`~repro.engine.memory.OutOfMemoryError` is never caught here.
    """
    policy = faults.policy
    attempt = 0
    while True:
        checkpoint = _RoundCheckpoint.capture(stats, cluster, state, trace)
        try:
            _run_round(
                plan, round_, round_index, cluster, stats, runtime,
                trace, state, faults, attempt,
            )
            return
        except InjectedFault as fault:
            stats.faults_injected += 1
            if policy.mode == "retry" and attempt < policy.max_retries:
                phase = recovery_phase(round_.stage)
                wasted = checkpoint.rollback(stats, cluster, state, trace)
                for worker in sorted(wasted):
                    if wasted[worker]:
                        stats.charge(worker, wasted[worker], phase)
                backoff = policy.backoff_units * (2 ** attempt)
                if backoff and fault.worker is not None:
                    stats.charge(fault.worker, backoff, phase)
                stats.retries += 1
                attempt += 1
                continue
            raise FaultAbort(
                FailureReport(
                    kind=fault.spec.kind,
                    worker=fault.worker,
                    round_index=round_index,
                    round_label=round_.label,
                    phase=fault.phase,
                    attempts_used=attempt + 1,
                    policy=policy.mode,
                    lineage=round_.consumed_slots(),
                )
            ) from fault


@dataclass(frozen=True)
class ExecutionCheckpoint:
    """An opaque Round-boundary snapshot of a :class:`PlanExecution`.

    Wraps the recovery layer's :class:`_RoundCheckpoint` together with the
    round cursor it was captured at, so callers (the serving layer's
    timeout eviction) can roll a stepped execution back to the boundary
    without knowing the checkpoint internals.
    """

    round_index: int
    inner: _RoundCheckpoint


class PlanExecution:
    """Round-granularity execution of one physical plan.

    The scheduler has always executed plans Round by Round;
    :func:`run_plan` drives all rounds to completion in one call.  This
    class exposes the same loop as a *stepper*: :meth:`step` runs exactly
    one Round, :meth:`finalize` performs the union/project/de-duplicate
    tail once every Round has run, and :meth:`checkpoint` /
    :meth:`rollback` expose the recovery layer's Round-boundary snapshot
    machinery.  The concurrent serving layer
    (:mod:`~repro.engine.service`) interleaves :meth:`step` calls from
    many queries onto one shared worker runtime; a single query stepped to
    completion is bit-identical to :func:`run_plan` by construction
    (:func:`run_plan` *is* this class stepped in a loop).

    ``manage_session`` controls the worker-runtime session bracket: by
    default the execution opens a per-plan session on construction and
    :meth:`close` ends it, exactly as :func:`run_plan` always did.  A
    caller multiplexing several executions over one long-lived runtime
    session (the serving layer) passes ``manage_session=False`` and owns
    the ``open_session()``/``close_session()`` bracket itself.
    """

    def __init__(
        self,
        plan: PhysicalPlan,
        cluster: Cluster,
        stats: ExecutionStats,
        runtime: WorkerRuntime,
        trace: Optional[list[OperatorTrace]] = None,
        faults: Optional[FaultSession] = None,
        manage_session: bool = True,
    ) -> None:
        if faults is not None:
            runtime = runtime.fault_safe()
        self.plan = plan
        self.cluster = cluster
        self.stats = stats
        self.runtime = runtime
        self.trace = trace
        self.faults = faults
        self._state = _ExecState()
        self._next_round = 0
        self._manage_session = manage_session
        self._session_open = False
        if manage_session:
            runtime.open_session()
            self._session_open = True

    @property
    def rounds_total(self) -> int:
        """How many Rounds the plan has."""
        return len(self.plan.rounds)

    @property
    def rounds_done(self) -> int:
        """How many Rounds have completed (the cursor position)."""
        return self._next_round

    @property
    def finished(self) -> bool:
        """Whether every Round has run (ready to :meth:`finalize`)."""
        return self._next_round >= len(self.plan.rounds)

    def checkpoint(self) -> ExecutionCheckpoint:
        """Snapshot the current Round boundary (stats, residency, slots)."""
        return ExecutionCheckpoint(
            round_index=self._next_round,
            inner=_RoundCheckpoint.capture(
                self.stats, self.cluster, self._state, self.trace
            ),
        )

    def rollback(self, checkpoint: ExecutionCheckpoint) -> dict[int, float]:
        """Restore a boundary snapshot; return per-worker discarded charges.

        Rounds run after the checkpoint are un-done exactly as the
        recovery layer un-does a failed Round attempt: charges and shuffle
        records are removed (and returned, per worker), memory residency
        is restored, slot bindings revert, and the trace is truncated.
        Peak-memory high-water marks survive — the rolled-back work really
        did hold those tuples.
        """
        wasted = checkpoint.inner.rollback(
            self.stats, self.cluster, self._state, self.trace
        )
        self._next_round = checkpoint.round_index
        return wasted

    def step(self) -> bool:
        """Run the next Round; return ``True`` while Rounds remain after it.

        Rounds targeted by an active fault session run under its recovery
        policy, exactly as in :func:`run_plan`.
        :class:`~repro.engine.memory.OutOfMemoryError` and
        :class:`~repro.engine.faults.FaultAbort` propagate with ``stats``
        and ``trace`` reflecting the partial execution.
        """
        if self.finished:
            raise RuntimeError("plan has no rounds left to step")
        round_index = self._next_round
        round_ = self.plan.rounds[round_index]
        if self.faults is not None and self.faults.needs_recovery(
            round_index, round_.label
        ):
            _run_round_recovering(
                self.plan, round_, round_index, self.cluster, self.stats,
                self.runtime, self.trace, self._state, self.faults,
            )
        else:
            _run_round(
                self.plan, round_, round_index, self.cluster, self.stats,
                self.runtime, self.trace, self._state, self.faults,
            )
        self._next_round += 1
        return not self.finished

    def close(self) -> None:
        """End the per-plan runtime session, if this execution owns one."""
        if self._session_open:
            self._session_open = False
            self.runtime.close_session()

    def finalize(self) -> ScheduledRun:
        """Union worker outputs, project, de-duplicate; build the result.

        Call once after the last Round (``finished`` is True); sets
        ``stats.result_count`` and returns the :class:`ScheduledRun`.
        """
        if not self.finished:
            raise RuntimeError(
                f"cannot finalize: {self.rounds_total - self._next_round} "
                "round(s) have not run"
            )
        plan = self.plan
        slots = self._state.slots
        if plan.result_kind == RESULT_ROWS:
            per_worker_rows = slots[plan.result]
        else:
            per_worker_rows = [frame.rows for frame in slots[plan.result]]
        rows: list = []
        for worker_rows in per_worker_rows:
            rows.extend(worker_rows)
        if plan.head_indices is not None:
            rows = [tuple(row[i] for i in plan.head_indices) for row in rows]
        if not plan.query.is_full():
            rows = list(dict.fromkeys(rows))
        self.stats.result_count = len(rows)
        # HC evaluates all atoms at once but full-query bindings can repeat
        # when two workers received overlapping replicas ONLY via projection;
        # full results are produced exactly once (each binding fixes every
        # coordinate)
        if plan.dedup_full and plan.query.is_full():
            rows = list(dict.fromkeys(rows))
            self.stats.result_count = len(rows)
        return ScheduledRun(
            rows=rows,
            hc_config=self._state.hc_config,
            anchor=self._state.anchor,
            trace=self.trace,
        )

    def release_residency(self) -> None:
        """Drop every worker's resident tuples for this execution's cluster.

        Eviction hook for the serving layer: after a rollback the boundary
        residency (scanned fragments, surviving intermediates) is still
        registered against the query's private memory budget; an evicted
        query frees all of it so the governor's grant returns clean.
        """
        for worker in range(self.cluster.workers):
            self.cluster.memory.release_all(worker)


def run_plan(
    plan: PhysicalPlan,
    cluster: Cluster,
    stats: ExecutionStats,
    runtime: WorkerRuntime,
    trace: Optional[list[OperatorTrace]] = None,
    faults: Optional[FaultSession] = None,
) -> ScheduledRun:
    """Execute a physical plan on a loaded cluster.

    Fills ``stats`` with the plan's counted metrics, appends an
    :class:`OperatorTrace` per operator into ``trace`` (when given) as each
    completes, and returns the finalized result rows plus the run-time
    bindings (HyperCube configuration, broadcast anchor).
    :class:`~repro.engine.memory.OutOfMemoryError` propagates to the caller
    with ``stats`` and ``trace`` reflecting the partial execution.

    ``faults`` (a :class:`~repro.engine.faults.FaultSession`) enables fault
    injection: Rounds targeted by a recoverable fault run under the
    session's recovery policy (checkpoint, retry-with-recompute, or
    :class:`~repro.engine.faults.FaultAbort`), and stragglers slow their
    target workers in every Round.  With ``faults=None`` execution is
    bit-identical to the fault-free golden captures.  An active session
    swaps the runtime for its in-process stand-in
    (:meth:`~repro.engine.runtime.WorkerRuntime.fault_safe`): injection
    hooks mutate driver-side session state from inside worker tasks, which
    forked processes would silently lose.

    This is :class:`PlanExecution` stepped to completion in one call — the
    one-query path and the serving layer's interleaved path execute the
    exact same per-Round code.
    """
    execution = PlanExecution(
        plan, cluster, stats, runtime, trace=trace, faults=faults
    )
    try:
        while not execution.finished:
            execution.step()
    finally:
        execution.close()
    return execution.finalize()


# Imported last on purpose: importing the planner package re-enters this
# module (planner.api -> planner.executor -> here), and by deferring the
# import every name the re-entry needs is already defined above.  The
# operator names are only *referenced* inside function bodies, so binding
# them after the definitions is safe.
from ..planner.physical import (  # noqa: E402
    LOCAL_HC,
    RESULT_ROWS,
    ChooseAnchor,
    ConfigureHyperCube,
    Exchange,
    ExchangeKind,
    LocalHashJoin,
    LocalTributaryJoin,
    MergeJoinStep,
    PhysicalOp,
    PhysicalPlan,
    Scan,
    ScanIntermediate,
    SemiJoinFilter,
    SemiJoinProject,
)
