"""The operator scheduler: one interpreter for every physical plan.

Where :mod:`~repro.planner.physical` makes the paper's strategies *data*,
this module makes their execution *one* loop: walk a
:class:`~repro.planner.physical.PhysicalPlan` round by round, run each
round's global operators (scans, exchanges, configuration) on the driver,
then fuse the round's local operators into a single worker task dispatched
through the pluggable worker runtime (:mod:`~repro.engine.runtime`).  Each
worker task charges an isolated :class:`~repro.engine.runtime.WorkerLedger`
merged back in worker-id order, so serial and parallel runtimes produce
identical counted metrics — exactly the contract the hand-written
per-strategy loops upheld, now enforced in one place.

The scheduler reproduces the historical executor's metric stream
byte-for-byte: the same shuffle record order, the same phase insertion
order, the same memory registration/release points (scans register
residency, exchanges stream their input out before receive buffers fill,
joins release consumed inputs and filter-dropped rows), and the same
:class:`~repro.engine.memory.OutOfMemoryError` propagation — the
differential suite pins all of it against golden seed-executor captures.

Alongside execution the scheduler appends one :class:`OperatorTrace` per
operator into a caller-supplied list — tuples in/out, the index of the
shuffle record an exchange produced, whether a broadcast was skipped as the
anchor.  Traces are appended as operators complete, so a failed (OOM) run
leaves a truthful partial trace; the EXPLAIN ANALYZE layer
(:mod:`~repro.planner.explain`) joins traces with
:class:`~repro.engine.stats.ExecutionStats` phases to annotate the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..hypercube.config import HyperCubeConfig, optimize_config
from ..hypercube.mapping import HyperCubeMapping
from ..query.atoms import Atom, ConjunctiveQuery
from .cluster import Cluster
from .frame import Frame, atom_frame
from .hash_join import apply_comparisons, symmetric_hash_join
from .local import local_tributary_join
from .runtime import WorkerLedger, WorkerRuntime
from .shuffle import broadcast, hypercube_shuffle, regular_shuffle
from .stats import ExecutionStats

__all__ = ["OperatorTrace", "ScheduledRun", "run_plan"]

#: a slot's per-worker payload: frames (most operators) or raw result rows
#: (the Tributary join emits projected head rows directly)
SlotValue = Union[Frame, list]


@dataclass
class OperatorTrace:
    """What one operator actually did, recorded as the scheduler ran it.

    ``tuples_in``/``tuples_out`` are summed over workers; ``shuffle_index``
    points into ``ExecutionStats.shuffles`` for exchanges; ``skipped`` marks
    broadcast exchanges elided because their input is the anchor."""

    round_index: int
    op_index: int
    op: "PhysicalOp"
    tuples_in: int = 0
    tuples_out: int = 0
    shuffle_index: Optional[int] = None
    skipped: bool = False


@dataclass
class ScheduledRun:
    """Everything a plan execution produced beyond the stats it filled in."""

    rows: list
    hc_config: Optional[HyperCubeConfig] = None
    anchor: Optional[str] = None
    trace: Optional[list[OperatorTrace]] = None


def _binary_merge_join(
    left: Frame,
    right: Frame,
    join_vars,
    worker: int,
    ledger: WorkerLedger,
    step: int,
) -> Frame:
    """Binary Tributary join == sort-merge join: build a 2-atom query over
    the two frames and run the multiway machinery on it."""
    left_atom = Atom("L", left.variables, alias="L")
    right_atom = Atom("R", right.variables, alias="R")
    out_vars = tuple(left.variables) + tuple(
        v for v in right.variables if v not in set(left.variables)
    )
    two_way = ConjunctiveQuery(
        name="merge", head=out_vars, atoms=(left_atom, right_atom)
    )
    order = tuple(join_vars) + tuple(v for v in out_vars if v not in set(join_vars))
    rows = local_tributary_join(
        two_way,
        {"L": left, "R": right},
        worker,
        ledger.stats,
        order=order,
        sort_phase=f"step{step}:sort",
        join_phase=f"step{step}:join",
        memory=ledger.memory,
    )
    return Frame(out_vars, rows)


def _run_local_op(
    op: PhysicalOp,
    worker: int,
    ledger: WorkerLedger,
    read,
    write,
) -> None:
    """Execute one local operator against a worker's slot views."""
    if isinstance(op, (LocalHashJoin, MergeJoinStep)):
        left, right = read(op.left), read(op.right)
        if isinstance(op, LocalHashJoin):
            out = symmetric_hash_join(
                left,
                right,
                op.join_vars,
                worker,
                ledger.stats,
                f"step{op.step}:join",
                ledger.memory,
            )
        else:
            out = _binary_merge_join(
                left, right, op.join_vars, worker, ledger, op.step
            )
        produced = len(out.rows)
        # every worker filters against the full pending list; the deferred
        # remainder is statically known and the same for all of them
        out, _ = apply_comparisons(
            out, list(op.pending), worker, ledger.stats, f"step{op.step}:filter"
        )
        # consumed inputs and filter-dropped rows leave worker memory
        dropped = produced - len(out.rows)
        if dropped:
            ledger.memory.release(worker, dropped)
        consumed = len(left) + len(right)
        if consumed:
            ledger.memory.release(worker, consumed)
        write(op.out, out)
    elif isinstance(op, LocalTributaryJoin):
        frames_of_worker = {alias: read(slot) for alias, slot in op.inputs}
        rows = local_tributary_join(
            op.query,
            frames_of_worker,
            worker,
            ledger.stats,
            order=op.order,
            memory=ledger.memory,
        )
        consumed = sum(len(f) for f in frames_of_worker.values())
        if consumed:
            ledger.memory.release(worker, consumed)
        write(op.out, rows)
    elif isinstance(op, SemiJoinFilter):
        target, key_frame = read(op.target), read(op.keys)
        keys = set(key_frame.rows)
        indices = target.indices_of(op.key)
        kept = [
            row
            for row in target.rows
            if tuple(row[i] for i in indices) in keys
        ]
        ledger.stats.charge(worker, len(target.rows) + len(keys), op.phase)
        # the key buffer and the filtered-out target rows leave memory
        released = len(key_frame.rows) + (len(target.rows) - len(kept))
        if released:
            ledger.memory.release(worker, released)
        write(op.out, Frame(target.variables, kept))
    else:  # pragma: no cover - lowering only emits the ops above
        raise TypeError(f"unknown local operator {op!r}")


def _scanned_sizes(slots: dict, aliases) -> dict[str, int]:
    """Exact post-selection cardinality per atom alias."""
    return {
        alias: max(1, sum(len(f) for f in slots[alias]))
        for alias in aliases
    }


def run_plan(
    plan: PhysicalPlan,
    cluster: Cluster,
    stats: ExecutionStats,
    runtime: WorkerRuntime,
    trace: Optional[list[OperatorTrace]] = None,
) -> ScheduledRun:
    """Execute a physical plan on a loaded cluster.

    Fills ``stats`` with the plan's counted metrics, appends an
    :class:`OperatorTrace` per operator into ``trace`` (when given) as each
    completes, and returns the finalized result rows plus the run-time
    bindings (HyperCube configuration, broadcast anchor).
    :class:`~repro.engine.memory.OutOfMemoryError` propagates to the caller
    with ``stats`` and ``trace`` reflecting the partial execution.
    """
    encoder = cluster.encoder()
    workers = cluster.workers
    slots: dict[str, list[SlotValue]] = {}
    hc_config: Optional[HyperCubeConfig] = None
    mapping: Optional[HyperCubeMapping] = None
    anchor: Optional[str] = None

    def record(entry: OperatorTrace) -> None:
        if trace is not None:
            trace.append(entry)

    def slot_tuples(name: str) -> int:
        return sum(len(value) for value in slots[name])

    for round_index, round_ in enumerate(plan.rounds):
        for op_index, op in enumerate(round_.ops):
            if not op.GLOBAL:
                continue
            if isinstance(op, Scan):
                per_worker: list[Frame] = []
                for worker in range(workers):
                    relation = cluster.fragment_relation(op.atom.relation, worker)
                    frame = atom_frame(op.atom, relation, encoder)
                    for comparison in op.filters:
                        index = {v: i for i, v in enumerate(frame.variables)}
                        frame = Frame(
                            frame.variables,
                            [
                                row
                                for row in frame.rows
                                if comparison.evaluate(
                                    {v: row[i] for v, i in index.items()}
                                )
                            ],
                        )
                    per_worker.append(frame)
                slots[op.out] = per_worker
                for worker, frame in enumerate(per_worker):
                    if len(frame):
                        cluster.memory.allocate(worker, len(frame), "scan")
                        stats.record_memory(worker, cluster.memory.resident(worker))
                record(
                    OperatorTrace(
                        round_index, op_index, op,
                        tuples_out=slot_tuples(op.out),
                    )
                )
            elif isinstance(op, ChooseAnchor):
                sizes = _scanned_sizes(slots, op.aliases)
                anchor = max(sizes, key=lambda alias: sizes[alias])
                record(OperatorTrace(round_index, op_index, op))
            elif isinstance(op, ConfigureHyperCube):
                sizes = _scanned_sizes(slots, op.aliases)
                hc_config = op.config or optimize_config(
                    plan.query, sizes, workers
                )
                mapping = HyperCubeMapping(hc_config, seed=op.seed)
                record(OperatorTrace(round_index, op_index, op))
            elif isinstance(op, Exchange):
                frames = slots[op.input]
                if op.skip_if_anchor and op.input == anchor:
                    # anchor fragments stay in place; the scan already
                    # registered their residency, so nothing moves
                    slots[op.out] = frames
                    record(
                        OperatorTrace(
                            round_index, op_index, op,
                            tuples_in=slot_tuples(op.input),
                            tuples_out=slot_tuples(op.out),
                            skipped=True,
                        )
                    )
                    continue
                if op.release_input:
                    # the exchange streams the old partitioning out as it
                    # sends, so its residency is freed before receive
                    # buffers fill
                    cluster.release_frames(frames)
                if op.kind is ExchangeKind.REGULAR:
                    slots[op.out] = regular_shuffle(
                        frames,
                        op.key,
                        workers,
                        stats,
                        name=op.name,
                        phase=op.phase,
                        memory=cluster.memory,
                    )
                elif op.kind is ExchangeKind.BROADCAST:
                    slots[op.out] = broadcast(
                        frames,
                        workers,
                        stats,
                        name=op.name,
                        phase=op.phase,
                        memory=cluster.memory,
                    )
                else:
                    slots[op.out] = hypercube_shuffle(
                        frames,
                        op.atom,
                        mapping,
                        workers,
                        stats,
                        name=op.name,
                        phase=op.phase,
                        memory=cluster.memory,
                    )
                record(
                    OperatorTrace(
                        round_index, op_index, op,
                        tuples_in=sum(len(f) for f in frames),
                        tuples_out=slot_tuples(op.out),
                        shuffle_index=len(stats.shuffles) - 1,
                    )
                )
            elif isinstance(op, SemiJoinProject):
                source = slots[op.source]
                projected: list[Frame] = []
                for worker, frame in enumerate(source):
                    stats.charge(worker, len(frame), op.phase)
                    projected.append(frame.project(op.key, dedup=True))
                slots[op.out] = projected
                record(
                    OperatorTrace(
                        round_index, op_index, op,
                        tuples_in=sum(len(f) for f in source),
                        tuples_out=slot_tuples(op.out),
                    )
                )
            else:  # pragma: no cover - lowering only emits the ops above
                raise TypeError(f"unknown global operator {op!r}")

        local = round_.local_ops()
        if not local:
            continue
        if round_.local_workers == LOCAL_HC:
            worker_ids = range(mapping.workers_used)
        else:
            worker_ids = range(workers)

        def local_task(worker: int, ledger: WorkerLedger, ops=local):
            produced: dict[str, SlotValue] = {}

            def read(name: str) -> SlotValue:
                return produced[name] if name in produced else slots[name][worker]

            def write(name: str, value: SlotValue) -> None:
                produced[name] = value

            for op in ops:
                _run_local_op(op, worker, ledger, read, write)
            return produced

        outcomes = runtime.map_workers(worker_ids, local_task, stats, cluster.memory)
        local_positions = [
            i for i, candidate in enumerate(round_.ops) if not candidate.GLOBAL
        ]
        for op_offset, op in enumerate(local):
            inputs = (
                [op.left, op.right]
                if isinstance(op, (LocalHashJoin, MergeJoinStep))
                else [op.target, op.keys]
                if isinstance(op, SemiJoinFilter)
                else [slot for _, slot in op.inputs]
            )
            tuples_in = sum(slot_tuples(name) for name in inputs if name in slots)
            slots[op.out] = [produced[op.out] for produced in outcomes]
            record(
                OperatorTrace(
                    round_index,
                    local_positions[op_offset],
                    op,
                    tuples_in=tuples_in
                    + sum(
                        len(produced[name])
                        for produced in outcomes
                        for name in inputs
                        if name not in slots
                    ),
                    tuples_out=slot_tuples(op.out),
                )
            )

    # finalize: union worker outputs; project and de-duplicate
    if plan.result_kind == RESULT_ROWS:
        per_worker_rows = slots[plan.result]
    else:
        per_worker_rows = [frame.rows for frame in slots[plan.result]]
    rows: list = []
    for worker_rows in per_worker_rows:
        rows.extend(worker_rows)
    if plan.head_indices is not None:
        rows = [tuple(row[i] for i in plan.head_indices) for row in rows]
    if not plan.query.is_full():
        rows = list(dict.fromkeys(rows))
    stats.result_count = len(rows)
    # HC evaluates all atoms at once but full-query bindings can repeat when
    # two workers received overlapping replicas ONLY via projection; full
    # results are produced exactly once (each binding fixes every coordinate)
    if plan.dedup_full and plan.query.is_full():
        rows = list(dict.fromkeys(rows))
        stats.result_count = len(rows)
    return ScheduledRun(rows=rows, hc_config=hc_config, anchor=anchor, trace=trace)


# Imported last on purpose: importing the planner package re-enters this
# module (planner.api -> planner.executor -> here), and by deferring the
# import every name the re-entry needs is already defined above.  The
# operator names are only *referenced* inside function bodies, so binding
# them after the definitions is safe.
from ..planner.physical import (  # noqa: E402
    LOCAL_HC,
    RESULT_ROWS,
    ChooseAnchor,
    ConfigureHyperCube,
    Exchange,
    ExchangeKind,
    LocalHashJoin,
    LocalTributaryJoin,
    MergeJoinStep,
    PhysicalOp,
    PhysicalPlan,
    Scan,
    SemiJoinFilter,
    SemiJoinProject,
)
