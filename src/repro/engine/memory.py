"""Per-worker memory budgets and the OOM failure mode.

Layer: engine / accounting (enforced inside shuffles and local operators,
reset per execution by the executor, checkpointed by the recovery layer).

The paper's engines are in-memory; when a plan materializes an intermediate
result that exceeds worker memory, the query fails (Fig. 9: RS_TJ on Q4
"fails because it runs out of memory").  The simulator models worker memory
as a tuple budget: operators register the tuples they hold resident,
*release* them once an input is consumed or an intermediate is superseded
(so residency tracks the peak working set, not a monotonically growing
cumulative sum), and exceeding the budget raises :class:`OutOfMemoryError`,
which the executor reports as a FAIL outcome rather than crashing the
benchmark run.

Local-join phases run through a worker runtime
(:mod:`~repro.engine.runtime`), which hands each worker task an isolated
:class:`WorkerMemoryAccount` — a delta ledger opened against the budget's
current residency for that worker — and commits the accounts back in
worker-id order.  This keeps the accounting identical whether the workers
execute serially or concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


class OutOfMemoryError(RuntimeError):
    """A worker exceeded its tuple budget while materializing data."""

    def __init__(self, worker: int, phase: str, resident: int, budget: int) -> None:
        super().__init__(
            f"worker {worker} out of memory in phase {phase!r}: "
            f"{resident} resident tuples > budget {budget}"
        )
        self.worker = worker
        self.phase = phase
        self.resident = resident
        self.budget = budget

    def __reduce__(self):
        """Pickle support: the default exception reduction replays only the
        formatted message into the 4-argument ``__init__`` and fails; the
        process runtime ships these across worker pipes."""
        return (OutOfMemoryError, (self.worker, self.phase, self.resident, self.budget))


@dataclass
class MemoryBudget:
    """Tracks resident tuples per worker against an optional hard budget.

    ``per_worker_tuples=None`` disables the limit (used by correctness
    tests); workloads set it to emulate the paper's cluster memory.
    """

    per_worker_tuples: Optional[int] = None
    _resident: dict[int, int] = field(default_factory=dict)
    _peak: dict[int, int] = field(default_factory=dict)

    def allocate(self, worker: int, tuples: int, phase: str = "") -> None:
        """Register ``tuples`` as resident; raise on a budget breach."""
        resident = self._resident.get(worker, 0) + tuples
        self._resident[worker] = resident
        if resident > self._peak.get(worker, 0):
            self._peak[worker] = resident
        if self.per_worker_tuples is not None and resident > self.per_worker_tuples:
            raise OutOfMemoryError(worker, phase, resident, self.per_worker_tuples)

    def release(self, worker: int, tuples: int) -> None:
        """Drop ``tuples`` from the worker's residency (floored at zero)."""
        self._resident[worker] = max(0, self._resident.get(worker, 0) - tuples)

    def release_all(self, worker: int) -> None:
        """Drop the worker's entire residency."""
        self._resident[worker] = 0

    def resident(self, worker: int) -> int:
        """Tuples currently registered as resident on ``worker``."""
        return self._resident.get(worker, 0)

    def peak(self, worker: int) -> int:
        """The worker's high-water resident tuple count."""
        return self._peak.get(worker, 0)

    def reset(self) -> None:
        """Clear residency and peaks (a fresh execution on the same cluster)."""
        self._resident.clear()
        self._peak.clear()

    # -- Round checkpoint/rollback (the recovery layer's hooks) --------------

    def checkpoint_residency(self) -> dict[int, int]:
        """Snapshot per-worker residency at a Round boundary.

        Peaks are not part of the snapshot: a failed Round attempt really
        did hold its tuples, so its high-water marks survive the rollback.
        """
        return dict(self._resident)

    def restore_residency(self, snapshot: dict[int, int]) -> None:
        """Restore a :meth:`checkpoint_residency` snapshot (peaks kept)."""
        self._resident = dict(snapshot)

    # -- worker-task isolation ----------------------------------------------

    def open_account(self, worker: int) -> "WorkerMemoryAccount":
        """Open an isolated delta ledger for one worker task.

        The account snapshots the worker's current residency as its
        baseline; allocations and releases accumulate locally (raising
        :class:`OutOfMemoryError` against the same budget) until
        :meth:`commit` folds them back in.
        """
        return WorkerMemoryAccount(
            worker=worker,
            baseline=self.resident(worker),
            limit=self.per_worker_tuples,
        )

    def commit(self, account: "WorkerMemoryAccount") -> None:
        """Fold a worker account's net residency and peak back in."""
        worker = account.worker
        self._resident[worker] = account.resident(worker)
        if account.peak(worker) > self._peak.get(worker, 0):
            self._peak[worker] = account.peak(worker)


@dataclass
class WorkerMemoryAccount:
    """One worker's isolated memory ledger for a single runtime task.

    Duck-type compatible with :class:`MemoryBudget` for the operators
    (``allocate``/``release``/``resident``/``peak`` all take a worker id,
    which must match the account's own), so local-join code is oblivious to
    whether it runs against the shared budget or a per-task account.
    """

    worker: int
    baseline: int = 0
    limit: Optional[int] = None
    _delta: int = 0
    _peak: int = 0

    def __post_init__(self) -> None:
        self._peak = self.baseline

    def _check_worker(self, worker: int) -> None:
        if worker != self.worker:
            raise ValueError(
                f"account for worker {self.worker} used with worker {worker}"
            )

    def allocate(self, worker: int, tuples: int, phase: str = "") -> None:
        """Register ``tuples`` against this task; raise on a budget breach."""
        self._check_worker(worker)
        self._delta += tuples
        resident = self.baseline + self._delta
        if resident > self._peak:
            self._peak = resident
        if self.limit is not None and resident > self.limit:
            raise OutOfMemoryError(worker, phase, resident, self.limit)

    def release(self, worker: int, tuples: int) -> None:
        """Drop ``tuples`` from this task's residency (floored at zero)."""
        self._check_worker(worker)
        self._delta = max(-self.baseline, self._delta - tuples)

    def resident(self, worker: int) -> int:
        """Baseline plus this task's net allocation so far."""
        self._check_worker(worker)
        return self.baseline + self._delta

    def peak(self, worker: int) -> int:
        """This task's high-water resident count (starts at the baseline)."""
        self._check_worker(worker)
        return self._peak


#: what local operators register residency with: the shared budget (serial
#: callers, shuffles) or one task's isolated account (worker runtimes)
MemorySink = Union[MemoryBudget, WorkerMemoryAccount]
