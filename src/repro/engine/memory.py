"""Per-worker memory budgets and the OOM failure mode.

The paper's engines are in-memory; when a plan materializes an intermediate
result that exceeds worker memory, the query fails (Fig. 9: RS_TJ on Q4
"fails because it runs out of memory").  The simulator models worker memory
as a tuple budget: operators register the tuples they hold resident and
exceeding the budget raises :class:`OutOfMemoryError`, which the executor
reports as a FAIL outcome rather than crashing the benchmark run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class OutOfMemoryError(RuntimeError):
    """A worker exceeded its tuple budget while materializing data."""

    def __init__(self, worker: int, phase: str, resident: int, budget: int) -> None:
        super().__init__(
            f"worker {worker} out of memory in phase {phase!r}: "
            f"{resident} resident tuples > budget {budget}"
        )
        self.worker = worker
        self.phase = phase
        self.resident = resident
        self.budget = budget


@dataclass
class MemoryBudget:
    """Tracks resident tuples per worker against an optional hard budget.

    ``per_worker_tuples=None`` disables the limit (used by correctness
    tests); workloads set it to emulate the paper's cluster memory.
    """

    per_worker_tuples: Optional[int] = None
    _resident: dict[int, int] = field(default_factory=dict)
    _peak: dict[int, int] = field(default_factory=dict)

    def allocate(self, worker: int, tuples: int, phase: str = "") -> None:
        resident = self._resident.get(worker, 0) + tuples
        self._resident[worker] = resident
        if resident > self._peak.get(worker, 0):
            self._peak[worker] = resident
        if self.per_worker_tuples is not None and resident > self.per_worker_tuples:
            raise OutOfMemoryError(worker, phase, resident, self.per_worker_tuples)

    def release(self, worker: int, tuples: int) -> None:
        self._resident[worker] = max(0, self._resident.get(worker, 0) - tuples)

    def release_all(self, worker: int) -> None:
        self._resident[worker] = 0

    def resident(self, worker: int) -> int:
        return self._resident.get(worker, 0)

    def peak(self, worker: int) -> int:
        return self._peak.get(worker, 0)

    def reset(self) -> None:
        self._resident.clear()
        self._peak.clear()
