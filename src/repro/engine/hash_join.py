"""Symmetric (pipelined) hash join and left-deep pipelines over frames.

This is the paper's baseline join operator: "creates a hash table for each
of its two inputs; when data arrives on an input, the join inserts it into a
hash table and probes the other hash table for matches".  In the simulator
the symmetry matters for cost accounting — both inputs are fully hashed, so
we charge one build unit per input tuple, one probe unit per input tuple,
and one unit per output tuple; both hash tables plus the materialized output
count against worker memory.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..query.atoms import Comparison, Variable
from .frame import Frame
from .kernels import hash_join_rows
from .memory import MemorySink
from .stats import StatsSink


def join_output_variables(
    left: Sequence[Variable], right: Sequence[Variable]
) -> tuple[Variable, ...]:
    """Left variables followed by the right's new variables."""
    left_set = set(left)
    return tuple(left) + tuple(v for v in right if v not in left_set)


def symmetric_hash_join(
    left: Frame,
    right: Frame,
    join_vars: Sequence[Variable],
    worker: int,
    stats: StatsSink,
    phase: str,
    memory: Optional[MemorySink] = None,
) -> Frame:
    """Join two frames on ``join_vars`` (cross product when empty)."""
    output_variables = join_output_variables(left.variables, right.variables)
    left_key = left.indices_of(join_vars)
    right_key = right.indices_of(join_vars)
    right_extra = [
        i for i, v in enumerate(right.variables) if v not in set(left.variables)
    ]

    # build/probe runs through the kernel layer: the numpy backend encodes
    # keys columnar and expands match ranges vectorized, with output rows in
    # the exact order of the tuple-at-a-time build/probe loop
    output_rows = hash_join_rows(
        left.rows, right.rows, left_key, right_key, right_extra
    )

    # build units + probe units + output materialization
    work = 2 * (len(left.rows) + len(right.rows)) + len(output_rows)
    stats.charge(worker, work, phase)
    if memory is not None:
        # the hash tables are built over buffers already charged at shuffle
        # receive time; only the produced output adds resident tuples.  (The
        # Tributary path, by contrast, charges an extra sorted copy of its
        # inputs — that difference is what makes RS_TJ hit the budget first,
        # the paper's Fig. 9 failure mode.)
        memory.allocate(worker, len(output_rows), phase)
        stats.record_memory(worker, memory.resident(worker))
    return Frame(output_variables, output_rows)


def apply_comparisons(
    frame: Frame,
    comparisons: Sequence[Comparison],
    worker: int,
    stats: StatsSink,
    phase: str,
) -> tuple[Frame, list[Comparison]]:
    """Apply every comparison whose variables are all present in the frame.

    Returns the filtered frame and the comparisons that remain deferred.
    """
    available = set(frame.variables)
    ready = [c for c in comparisons if set(c.variables()) <= available]
    deferred = [c for c in comparisons if set(c.variables()) - available]
    if not ready:
        return frame, deferred
    index = {v: i for i, v in enumerate(frame.variables)}
    kept: list[tuple[int, ...]] = []
    for row in frame.rows:
        binding = {v: row[i] for v, i in index.items()}
        if all(comparison.evaluate(binding) for comparison in ready):
            kept.append(row)
    stats.charge(worker, len(frame.rows), phase)
    return Frame(frame.variables, kept), deferred
