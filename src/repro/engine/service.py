"""Concurrent multi-query serving runtime.

The paper (Secs. 4-6) evaluates one query at a time on a dedicated
cluster; a production engine serves many simultaneous queries contending
for the same worker pool, memory budget, and plan cache.  This module is
that serving layer.  :class:`QueryService` admits queries from a FIFO
queue, plans them through the shared plan cache
(:data:`~repro.planner.optimizer.GLOBAL_PLAN_CACHE` by default), and
interleaves their execution *Round by Round* on one shared worker runtime
— the seam the operator scheduler has always had
(:class:`~repro.engine.scheduler.PlanExecution`), now multiplexed.

Four cooperating mechanisms:

- **Admission queue** — submitted queries wait in FIFO order; a query is
  admitted when the in-flight count is below ``max_inflight`` *and* the
  memory governor can reserve its demand.  A query whose demand can never
  fit is rejected at submit time (outcome ``rejected``) instead of
  wedging the queue head.
- **Memory governor** (:class:`MemoryGovernor`) — apportions the
  cluster's per-worker tuple budget across admitted queries.  Each
  admitted query executes against a *private*
  :class:`~repro.engine.memory.MemoryBudget` capped at its grant, reusing
  the engine's residency accounting unchanged; the governor blocks
  admission when the budget is exhausted rather than letting concurrent
  queries OOM each other.
- **Fair round-granularity scheduler** — one global *tick* executes one
  Round of the query at the head of the runnable queue, then rotates it
  to the back.  Scheduling state is driven purely by submission order and
  round counts, so a fixed workload replays deterministically; and
  because every query owns its stats, memory budget, cluster view, and
  slot state outright, its counted metrics are bit-identical to a solo
  run regardless of what else is in flight.
- **Cancellation and deadlines** — built on the recovery layer's
  Round-boundary checkpoints.  ``deadline_ticks`` (logical time) is
  checked before a query's turn and evicts it cleanly at the boundary;
  ``timeout_seconds`` (wall time) is checked after each Round, and a
  Round that finishes past the deadline is *rolled back* through
  :meth:`~repro.engine.scheduler.PlanExecution.rollback` — its results
  cannot be delivered, so its charges and residency are un-done exactly
  like a failed Round attempt — before the query is evicted.  Either way
  eviction releases the query's entire memory residency and returns its
  grant to the governor.

Every query finishes with a structured :class:`QueryOutcome` — status
``ok`` / ``failed`` / ``timeout`` / ``cancelled`` / ``rejected`` — and
the service aggregates :class:`ServiceStats` (admissions, outcomes,
plan-cache hit rate, peak in-flight and granted memory).

The solo-query path is untouched: :func:`~repro.engine.scheduler.run_plan`
is :class:`~repro.engine.scheduler.PlanExecution` stepped in a loop, so a
service running one query at a time executes the exact code the golden
captures pin down.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..planner.optimizer import AUTO_STRATEGY, GLOBAL_PLAN_CACHE, PlanCache, optimize
from ..planner.physical import PhysicalPlan, lower
from ..query.atoms import ConjunctiveQuery, Variable
from ..query.catalog import Catalog
from ..query.parser import parse_query
from ..storage.relation import Database
from .cluster import Cluster
from .kernels import use_backend
from .memory import MemoryBudget, OutOfMemoryError
from .runtime import RuntimeLike, resolve_runtime
from .scheduler import PlanExecution
from .stats import ExecutionStats

__all__ = [
    "MemoryGovernor",
    "QueryOutcome",
    "QueryRequest",
    "QueryService",
    "ServiceStats",
]

#: terminal outcome statuses a query can finish with
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CANCELLED = "cancelled"
STATUS_REJECTED = "rejected"


@dataclass
class QueryRequest:
    """One query submitted to the service.

    ``query`` is Datalog rule text or a parsed
    :class:`~repro.query.atoms.ConjunctiveQuery`; ``database`` is the
    (shared) dataset it runs over.  ``strategy`` is any name
    :func:`~repro.planner.api.run_query` accepts — ``"auto"`` (default)
    goes through the cost-based optimizer and the shared plan cache.

    ``memory_demand`` is the per-worker tuple reservation the governor
    holds for this query; ``None`` derives it from the optimizer's
    predicted peak (with headroom) under ``"auto"``, or falls back to an
    equal share of the service budget.  ``deadline_ticks`` bounds how
    many scheduler ticks may elapse after admission before the query is
    evicted (logical, deterministic); ``timeout_seconds`` is the
    wall-clock analogue, checked after every Round.
    """

    query: Union[str, ConjunctiveQuery]
    database: Database
    strategy: str = AUTO_STRATEGY
    workers: int = 16
    memory_demand: Optional[int] = None
    deadline_ticks: Optional[int] = None
    timeout_seconds: Optional[float] = None
    variable_order: Optional[Sequence[Variable]] = None
    #: display label carried into the outcome (defaults to the query name)
    label: str = ""


@dataclass
class QueryOutcome:
    """What one submitted query came to — the service's per-query report."""

    query_id: int
    label: str
    status: str
    #: result rows (``ok`` outcomes only; empty otherwise)
    rows: list = field(default_factory=list)
    #: the query's isolated counted metrics (None when never admitted)
    stats: Optional[ExecutionStats] = None
    #: the executed (or optimizer-chosen) strategy; "" when never planned
    strategy: str = ""
    #: True when the plan came out of the plan cache without re-costing
    cache_hit: bool = False
    submitted_tick: int = 0
    admitted_tick: int = -1
    finished_tick: int = -1
    rounds_completed: int = 0
    #: grant-escalation restarts this query went through before finishing
    retries: int = 0
    #: submit-to-finish latency in wall seconds (the serving latency)
    wall_seconds: float = 0.0
    #: the query's private memory budget (residency is zero after any
    #: eviction; exposed for tests and diagnostics)
    memory: Optional[MemoryBudget] = None
    #: human-readable failure / eviction detail
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Whether the query completed and delivered rows."""
        return self.status == STATUS_OK


@dataclass
class ServiceStats:
    """Aggregate counters across everything the service has processed."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    cancelled: int = 0
    rejected: int = 0
    #: scheduler ticks consumed (one tick = one query turn)
    ticks: int = 0
    #: Rounds actually executed (rolled-back Rounds still count: they ran)
    rounds_executed: int = 0
    #: Rounds whose effects were rolled back by timeout eviction
    rounds_rolled_back: int = 0
    peak_inflight: int = 0
    #: plan-cache hits/misses for this service's ``auto`` admissions only
    cache_hits: int = 0
    cache_misses: int = 0
    #: queries re-queued with an escalated grant after under-predicted OOM
    oom_retries: int = 0

    def outcome_counts(self) -> dict[str, int]:
        """Terminal statuses to counts (the bench's outcome histogram)."""
        return {
            STATUS_OK: self.completed,
            STATUS_FAILED: self.failed,
            STATUS_TIMEOUT: self.timeouts,
            STATUS_CANCELLED: self.cancelled,
            STATUS_REJECTED: self.rejected,
        }


@dataclass
class MemoryGovernor:
    """Apportions the per-worker tuple budget across admitted queries.

    ``total`` is the service-wide per-worker budget (``None`` disables
    governance, as :class:`~repro.engine.memory.MemoryBudget` does).  Each
    admitted query reserves its demand; reservations are released on any
    terminal outcome.  The residency *within* a grant is enforced by the
    query's private budget — the governor only decides whether a new
    query may start holding tuples at all, which converts concurrent
    memory pressure into queueing delay instead of mid-flight OOMs.
    """

    total: Optional[int] = None
    _grants: dict[int, int] = field(default_factory=dict)
    peak_granted: int = 0

    @property
    def granted(self) -> int:
        """Per-worker tuples currently reserved across active queries."""
        return sum(self._grants.values())

    def admissible(self, demand: int) -> bool:
        """Whether a demand could *ever* be satisfied (fits an idle budget)."""
        return self.total is None or demand <= self.total

    def try_reserve(self, query_id: int, demand: int) -> bool:
        """Reserve ``demand`` for a query if capacity allows, else refuse."""
        if self.total is not None and self.granted + demand > self.total:
            return False
        self._grants[query_id] = demand
        if self.granted > self.peak_granted:
            self.peak_granted = self.granted
        return True

    def release(self, query_id: int) -> None:
        """Return a query's reservation to the pool (idempotent)."""
        self._grants.pop(query_id, None)

    def grant_of(self, query_id: int) -> Optional[int]:
        """The active reservation of one query (None when not admitted)."""
        return self._grants.get(query_id)


#: safety headroom multiplied onto the optimizer's predicted peak when the
#: caller did not declare a demand (predictions are within ~1.4x measured;
#: 2x keeps an honest under-prediction from tripping the private budget)
DEMAND_HEADROOM = 2.0


@dataclass
class _Pending:
    """One queued query, with its planning memoized on first consideration."""

    query_id: int
    request: QueryRequest
    submitted_at: float
    submitted_tick: int
    #: lazily bound at the first admission attempt (plan once, not per tick)
    physical: Optional[PhysicalPlan] = None
    cache_hit: bool = False
    demand: Optional[int] = None
    #: times this query has been re-queued after tripping a derived grant
    retries: int = 0


@dataclass
class _ActiveQuery:
    """Driver-side state of one admitted, in-flight query."""

    query_id: int
    request: QueryRequest
    outcome: QueryOutcome
    execution: PlanExecution
    cluster: Cluster
    #: global tick at which the logical deadline expires (None = none)
    deadline_tick: Optional[int]
    #: wall-clock deadline from perf_counter (None = none)
    deadline_time: Optional[float]
    submitted_at: float
    cancelled: bool = False


class QueryService:
    """Admit, schedule, and complete many concurrent queries.

    One service owns: a worker runtime shared by every query, a memory
    governor over ``memory_tuples`` per-worker tuples, a plan cache
    (shared :data:`~repro.planner.optimizer.GLOBAL_PLAN_CACHE` unless a
    private one is passed), and per-database template clusters whose
    loaded fragments all admitted queries share read-only.

    Drive it either with :meth:`run_until_complete` (drain everything) or
    tick by tick with :meth:`step` — the latter is what tests and the
    traffic bench use to interleave submissions with execution.  The
    service is single-threaded and cooperative: determinism comes from
    the tick loop, isolation from per-query state ownership, and
    parallelism from the worker runtime *within* each Round (exactly as
    in solo execution).
    """

    def __init__(
        self,
        runtime: RuntimeLike = None,
        kernels: Optional[str] = None,
        max_inflight: int = 8,
        memory_tuples: Optional[int] = None,
        plan_cache: Optional[PlanCache] = GLOBAL_PLAN_CACHE,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("the service needs max_inflight >= 1")
        self.runtime = resolve_runtime(runtime)
        self.kernels = kernels
        self.max_inflight = max_inflight
        self.governor = MemoryGovernor(total=memory_tuples)
        self.plan_cache = plan_cache
        self.stats = ServiceStats()
        self.outcomes: dict[int, QueryOutcome] = {}
        self._queue: deque[_Pending] = deque()
        self._runnable: deque[_ActiveQuery] = deque()
        self._next_id = 0
        self._tick = 0
        #: template clusters keyed by (database identity, workers); the
        #: database object rides in the value to pin its id() alive
        self._templates: dict[tuple[int, int], tuple[Database, Cluster]] = {}
        self._catalogs: dict[int, tuple[Database, Catalog]] = {}
        self._session_depth = 0

    # -- submission ----------------------------------------------------------

    def submit(self, request: QueryRequest) -> int:
        """Queue one query; return its id (outcomes are keyed on it).

        A request whose *declared* memory demand exceeds the governor's
        total budget can never be admitted and is rejected immediately;
        derived demands (from the optimizer's prediction) are checked when
        the query reaches the head of the queue, with the same
        ``rejected`` outcome.  The id is returned either way.
        """
        query_id = self._next_id
        self._next_id += 1
        self.stats.submitted += 1
        if request.memory_demand is not None and not self.governor.admissible(
            request.memory_demand
        ):
            self._reject(query_id, self._label(request), request.memory_demand)
            return query_id
        self._queue.append(
            _Pending(query_id, request, time.perf_counter(), self._tick)
        )
        return query_id

    def _reject(self, query_id: int, label: str, demand: int) -> None:
        """Record an admission-rejected outcome for an unservable demand."""
        self.stats.rejected += 1
        self.outcomes[query_id] = QueryOutcome(
            query_id=query_id,
            label=label,
            status=STATUS_REJECTED,
            submitted_tick=self._tick,
            finished_tick=self._tick,
            detail=(
                f"memory demand {demand:,} tuples/worker exceeds the "
                f"service budget {self.governor.total:,}"
            ),
        )

    def cancel(self, query_id: int) -> bool:
        """Request cooperative cancellation of a queued or in-flight query.

        Queued queries are removed immediately; in-flight queries are
        evicted at their next scheduler turn (a Round in progress is never
        interrupted — Rounds are the atomic unit).  Returns ``False`` when
        the id is unknown or already finished.
        """
        for entry in list(self._queue):
            if entry.query_id == query_id:
                self._queue.remove(entry)
                self.stats.cancelled += 1
                self.outcomes[query_id] = QueryOutcome(
                    query_id=query_id,
                    label=self._label(entry.request),
                    status=STATUS_CANCELLED,
                    submitted_tick=entry.submitted_tick,
                    finished_tick=self._tick,
                    detail="cancelled while queued",
                )
                return True
        for active in self._runnable:
            if active.query_id == query_id:
                active.cancelled = True
                return True
        return False

    # -- the scheduler loop --------------------------------------------------

    def step(self) -> bool:
        """One scheduler tick: admit what fits, run one Round of one query.

        Returns ``True`` while queries remain queued or in flight.
        """
        self._admit()
        if not self._runnable:
            return bool(self._queue)
        active = self._runnable.popleft()
        tick = self._tick
        self._tick += 1
        self.stats.ticks += 1
        if active.cancelled:
            self._evict(active, STATUS_CANCELLED, "cancelled by caller")
            return bool(self._queue or self._runnable)
        if active.deadline_tick is not None and tick >= active.deadline_tick:
            self._evict(
                active,
                STATUS_TIMEOUT,
                f"logical deadline expired at tick {active.deadline_tick}",
            )
            return bool(self._queue or self._runnable)
        checkpoint = active.execution.checkpoint()
        try:
            with use_backend(self.kernels):
                active.execution.step()
        except OutOfMemoryError as oom:
            if self._grant_escalatable(active):
                self._requeue_escalated(active, str(oom))
            else:
                active.execution.stats.mark_failed(str(oom), kind="oom")
                self._finish(active, STATUS_FAILED, detail=str(oom))
            return bool(self._queue or self._runnable)
        self.stats.rounds_executed += 1
        active.outcome.rounds_completed = active.execution.rounds_done
        if (
            active.deadline_time is not None
            and time.perf_counter() > active.deadline_time
            and not active.execution.finished
        ):
            # the Round outran the wall-clock deadline: its results cannot
            # be delivered, so un-do it at the boundary like a failed
            # attempt, then evict
            active.execution.rollback(checkpoint)
            self.stats.rounds_rolled_back += 1
            active.outcome.rounds_completed = active.execution.rounds_done
            self._evict(
                active,
                STATUS_TIMEOUT,
                f"wall-clock timeout after {active.request.timeout_seconds}s; "
                "last round rolled back",
            )
        elif active.execution.finished:
            with use_backend(self.kernels):
                run = active.execution.finalize()
            active.outcome.rows = run.rows
            self._finish(active, STATUS_OK)
        else:
            self._runnable.append(active)
        return bool(self._queue or self._runnable)

    def run_until_complete(self) -> list[QueryOutcome]:
        """Drain the service: tick until no query is queued or in flight.

        Brackets the drain in one worker-runtime session, so a
        process-backed runtime forks its pool once for the whole batch.
        Returns every outcome recorded so far, in query-id order.
        """
        self.open()
        try:
            while self.step():
                pass
        finally:
            self.close()
        return [self.outcomes[key] for key in sorted(self.outcomes)]

    def open(self) -> None:
        """Open the shared worker-runtime session (re-entrant)."""
        if self._session_depth == 0:
            self.runtime.open_session()
        self._session_depth += 1

    def close(self) -> None:
        """Close the shared worker-runtime session (re-entrant)."""
        if self._session_depth > 0:
            self._session_depth -= 1
            if self._session_depth == 0:
                self.runtime.close_session()

    @property
    def inflight(self) -> int:
        """How many queries are currently admitted and runnable."""
        return len(self._runnable)

    @property
    def queued(self) -> int:
        """How many queries are waiting for admission."""
        return len(self._queue)

    # -- admission internals -------------------------------------------------

    def _admit(self) -> None:
        """Admit queued queries in FIFO order while capacity allows.

        Each candidate is planned once (memoized on its queue entry), its
        demand derived, and its reservation attempted.  Admission stops at
        the first query that does not *currently* fit — strict FIFO: later,
        smaller queries never jump a blocked head, trading maximal packing
        for predictable latency ordering.  A head that could *never* fit
        (demand above the whole budget) or fails to plan is removed with a
        terminal outcome instead of wedging the queue.
        """
        while self._queue and len(self._runnable) < self.max_inflight:
            pending = self._queue[0]
            if pending.physical is None:
                try:
                    self._prepare(pending)
                except Exception as error:
                    self._queue.popleft()
                    self.stats.failed += 1
                    self.outcomes[pending.query_id] = QueryOutcome(
                        query_id=pending.query_id,
                        label=self._label(pending.request),
                        status=STATUS_FAILED,
                        submitted_tick=pending.submitted_tick,
                        finished_tick=self._tick,
                        detail=f"planning failed: {error}",
                    )
                    continue
            if not self.governor.admissible(pending.demand):
                self._queue.popleft()
                self._reject(
                    pending.query_id, self._label(pending.request), pending.demand
                )
                continue
            if not self.governor.try_reserve(pending.query_id, pending.demand):
                break
            self._queue.popleft()
            self._runnable.append(self._start(pending))
            self.stats.admitted += 1
            if len(self._runnable) > self.stats.peak_inflight:
                self.stats.peak_inflight = len(self._runnable)

    def _prepare(self, pending: _Pending) -> None:
        """Plan a queued query and derive its memory demand (memoized).

        ``auto`` requests go through the plan cache (hit/miss counted once
        per admission here); explicit strategies lower directly.  The
        optimizer is invoked with an *unlimited* memory budget: at serving
        time the governor owns memory, and grants vary with load, so
        baking a grant into the plan-cache key would shatter the cache.
        """
        request = pending.request
        parsed = self._parse(request)
        if request.strategy == AUTO_STRATEGY:
            optimized = optimize(
                parsed,
                self._catalog(request.database),
                workers=request.workers,
                memory_tuples=None,
                variable_order=request.variable_order,
                cache=self.plan_cache,
            )
            if optimized.cache_hit:
                self.stats.cache_hits += 1
            else:
                self.stats.cache_misses += 1
            pending.physical = optimized.physical
            pending.cache_hit = optimized.cache_hit
            predicted = optimized.report.cost_of(optimized.choice).peak_memory
        else:
            pending.physical = lower(
                parsed,
                request.strategy,
                self._catalog(request.database),
                variable_order=request.variable_order,
            )
            predicted = None
        pending.demand = self._demand(request, predicted)

    def _demand(
        self, request: QueryRequest, predicted_peak: Optional[float]
    ) -> int:
        """The per-worker tuple reservation admission holds for a request.

        Explicit ``memory_demand`` wins; otherwise the optimizer's
        predicted peak for the chosen strategy (times
        :data:`DEMAND_HEADROOM`, capped at the total so the biggest query
        can still run alone); without a prediction, an equal
        ``total / max_inflight`` share.  With no governed budget the
        demand is 0 — admission is limited by ``max_inflight`` alone.
        """
        if self.governor.total is None:
            return 0
        if request.memory_demand is not None:
            return request.memory_demand
        if predicted_peak is not None and predicted_peak == predicted_peak:
            demand = int(predicted_peak * DEMAND_HEADROOM) + 1
            return min(demand, self.governor.total)
        return max(1, self.governor.total // self.max_inflight)

    def _start(self, pending: _Pending) -> _ActiveQuery:
        """Stand up one admitted query's isolated execution state."""
        request = pending.request
        parsed = self._parse(request)
        physical = pending.physical
        budget = MemoryBudget(
            per_worker_tuples=self.governor.grant_of(pending.query_id)
            if self.governor.total is not None
            else None
        )
        cluster = self._template(request).view(budget)
        stats = ExecutionStats(
            query=parsed.name,
            strategy=physical.strategy,
            workers=cluster.workers,
        )
        execution = PlanExecution(
            physical,
            cluster,
            stats,
            self.runtime,
            manage_session=False,
        )
        outcome = QueryOutcome(
            query_id=pending.query_id,
            label=request.label or parsed.name or "query",
            status="",
            stats=stats,
            strategy=physical.strategy,
            cache_hit=pending.cache_hit,
            submitted_tick=pending.submitted_tick,
            admitted_tick=self._tick,
            retries=pending.retries,
            memory=budget,
        )
        deadline_tick = (
            self._tick + request.deadline_ticks
            if request.deadline_ticks is not None
            else None
        )
        deadline_time = (
            pending.submitted_at + request.timeout_seconds
            if request.timeout_seconds is not None
            else None
        )
        return _ActiveQuery(
            query_id=pending.query_id,
            request=request,
            outcome=outcome,
            execution=execution,
            cluster=cluster,
            deadline_tick=deadline_tick,
            deadline_time=deadline_time,
            submitted_at=pending.submitted_at,
        )

    # -- completion / eviction -----------------------------------------------

    def _finish(
        self, active: _ActiveQuery, status: str, detail: str = ""
    ) -> None:
        """Record a terminal outcome and free the query's admission state."""
        active.outcome.status = status
        active.outcome.detail = detail
        active.outcome.finished_tick = self._tick
        active.outcome.wall_seconds = time.perf_counter() - active.submitted_at
        if active.outcome.stats is not None:
            active.outcome.stats.elapsed_seconds = active.outcome.wall_seconds
        self.governor.release(active.query_id)
        self.outcomes[active.query_id] = active.outcome
        if status == STATUS_OK:
            self.stats.completed += 1
        elif status == STATUS_FAILED:
            self.stats.failed += 1
        elif status == STATUS_TIMEOUT:
            self.stats.timeouts += 1
        elif status == STATUS_CANCELLED:
            self.stats.cancelled += 1

    def _evict(self, active: _ActiveQuery, status: str, detail: str) -> None:
        """Evict an in-flight query: free all residency, return the grant."""
        active.execution.release_residency()
        self._finish(active, status, detail)

    def _grant_escalatable(self, active: _ActiveQuery) -> bool:
        """Whether an OOM under a *derived* grant can retry with a bigger one.

        The optimizer's predicted peak (plus headroom) occasionally
        under-estimates a real plan's working set; failing the query for
        our own mis-prediction would be wrong.  Escalation applies only
        when the demand was derived — an explicit ``memory_demand`` is the
        caller's declared cap and is honoured as a hard limit — and only
        while the grant is still below the whole budget.
        """
        grant = self.governor.grant_of(active.query_id)
        return (
            self.governor.total is not None
            and active.request.memory_demand is None
            and grant is not None
            and grant < self.governor.total
        )

    def _requeue_escalated(self, active: _ActiveQuery, reason: str) -> None:
        """Evict an under-granted query and re-queue it with double the grant.

        The fresh attempt restarts from scratch with new isolated state
        (stats, budget, cluster view), so its counted metrics — when it
        eventually completes — are exactly a solo run's.  It re-enters at
        the queue *head*: it was admitted earliest, and strict FIFO should
        keep it earliest.  A logical deadline restarts on re-admission.
        """
        grant = self.governor.grant_of(active.query_id) or 0
        active.execution.release_residency()
        self.governor.release(active.query_id)
        self.stats.oom_retries += 1
        pending = _Pending(
            query_id=active.query_id,
            request=active.request,
            submitted_at=active.submitted_at,
            submitted_tick=active.outcome.submitted_tick,
            physical=active.execution.plan,
            cache_hit=active.outcome.cache_hit,
            demand=min(max(grant * 2, grant + 1), self.governor.total),
            retries=active.outcome.retries + 1,
        )
        self._queue.appendleft(pending)

    # -- shared-state caches -------------------------------------------------

    def _parse(self, request: QueryRequest) -> ConjunctiveQuery:
        """The request's parsed query (parse text lazily, exactly once)."""
        if isinstance(request.query, ConjunctiveQuery):
            return request.query
        request.query = parse_query(request.query)
        return request.query

    def _label(self, request: QueryRequest) -> str:
        """Display label for a request that may never have been parsed."""
        if request.label:
            return request.label
        if isinstance(request.query, ConjunctiveQuery):
            return request.query.name or "query"
        return "query"

    def _catalog(self, database: Database) -> Catalog:
        """One shared :class:`Catalog` per database (statistics memoize)."""
        entry = self._catalogs.get(id(database))
        if entry is None or entry[0] is not database:
            entry = (database, Catalog(database))
            self._catalogs[id(database)] = entry
        return entry[1]

    def _template(self, request: QueryRequest) -> Cluster:
        """One loaded template cluster per (database, workers) pair."""
        key = (id(request.database), request.workers)
        entry = self._templates.get(key)
        if entry is None or entry[0] is not request.database:
            cluster = Cluster(request.workers)
            cluster.load(request.database)
            entry = (request.database, cluster)
            self._templates[key] = entry
        return entry[1]
