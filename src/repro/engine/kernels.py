"""Vectorized columnar kernels for the engine's per-tuple hot loops.

The simulator's *counted* cost model (tuples shuffled, skews, seeks,
sort_cost) is what reproduces the paper's figures, but DESIGN.md also
promises real measured time for the kernels themselves.  This module is the
seam between the two: every per-tuple loop in the shuffle, sort, and join
hot paths is expressed as a kernel with two interchangeable backends,

- ``python`` — the original tuple-at-a-time loops, kept verbatim as the
  reference implementation;
- ``numpy``  — columnar, vectorized implementations of the same kernels
  (batched multiplicative hashing, stable argsort partitioning,
  ``np.lexsort`` sorting, ``np.searchsorted`` seeks, group-by join
  build/probe).

Backends are *semantics-preserving by construction*: destinations, row
orders, result rows, and every counted metric are bit-identical between
them (``tests/test_kernels_differential.py`` proves it across all six
shuffle x join strategies).  Only wall-clock time differs — that difference
is what ``benchmarks/bench_kernels.py`` records into ``BENCH_kernels.json``.

Backend selection, in priority order:

1. an explicit ``backend=`` argument on a kernel call,
2. :func:`set_backend` / the :func:`use_backend` context manager,
3. the ``REPRO_KERNELS`` environment variable (``python`` or ``numpy``),
4. the default, ``numpy``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..query.atoms import Atom

Row = tuple[int, ...]

#: the available kernel backends
KERNEL_BACKENDS = ("python", "numpy")

#: multiplicative-hash constants (Knuth's 2^32 golden-ratio multiplier)
_KNUTH = 2654435761
_MASK = 0xFFFFFFFF

_U_KNUTH = np.uint64(_KNUTH)
_U_MASK = np.uint64(_MASK)
_U16 = np.uint64(16)


def _initial_backend() -> str:
    choice = os.environ.get("REPRO_KERNELS", "numpy").strip().lower()
    if choice not in KERNEL_BACKENDS:
        raise ValueError(
            f"REPRO_KERNELS={choice!r} is not a kernel backend; "
            f"use one of {KERNEL_BACKENDS}"
        )
    return choice


_backend = _initial_backend()


def get_backend() -> str:
    """The currently selected kernel backend."""
    return _backend


def set_backend(name: str) -> None:
    """Select the kernel backend globally (``python`` or ``numpy``)."""
    global _backend
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; use one of {KERNEL_BACKENDS}"
        )
    _backend = name


def resolve_backend(backend: Optional[str] = None) -> str:
    """An explicit backend argument, or the global selection."""
    if backend is None:
        return _backend
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; use one of {KERNEL_BACKENDS}"
        )
    return backend


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[str]:
    """Temporarily select a kernel backend (``None`` keeps the current one)."""
    global _backend
    previous = _backend
    if name is not None:
        set_backend(name)
    try:
        yield _backend
    finally:
        _backend = previous


# ----------------------------------------------------------------------
# Hashing
# ----------------------------------------------------------------------


def hash_row(values: Sequence[int], salt: int = 0) -> int:
    """Deterministic multiplicative hash of a key tuple (scalar reference)."""
    mixed = salt
    for value in values:
        mixed = ((mixed ^ value) * _KNUTH) & _MASK
        mixed ^= mixed >> 16
    return mixed


def dim_hash(value: int, salt: int, dim: int) -> int:
    """One hypercube dimension's hash of a single value (scalar reference)."""
    if dim == 1:
        return 0
    mixed = ((value + salt) * _KNUTH) & _MASK
    mixed ^= mixed >> 16
    return mixed % dim


def _column(rows: Sequence[Row], position: int, count: int) -> np.ndarray:
    """One column of a row list as an int64 array."""
    return np.fromiter((row[position] for row in rows), dtype=np.int64, count=count)


def _hash_columns(columns: Sequence[np.ndarray], salt: int, count: int) -> np.ndarray:
    """Vectorized :func:`hash_row` over parallel key columns.

    Every step re-masks to 32 bits, so 64-bit wraparound in the product
    never diverges from Python's arbitrary-precision arithmetic: the low 32
    bits of ``(a * _KNUTH) mod 2**64`` equal those of the exact product.
    """
    mixed = np.full(count, np.uint64(salt & _MASK), dtype=np.uint64)
    for column in columns:
        mixed = ((mixed ^ column.astype(np.uint64)) * _U_KNUTH) & _U_MASK
        mixed ^= mixed >> _U16
    return mixed


def hash_rows(
    rows: Sequence[Row],
    key_indices: Sequence[int],
    salt: int = 0,
    backend: Optional[str] = None,
) -> list[int]:
    """Batched :func:`hash_row` of each row's key columns."""
    if resolve_backend(backend) == "numpy" and rows:
        n = len(rows)
        columns = [_column(rows, i, n) for i in key_indices]
        return [int(h) for h in _hash_columns(columns, salt, n)]
    return [hash_row([row[i] for i in key_indices], salt) for row in rows]


# ----------------------------------------------------------------------
# Shuffle routing / partitioning
# ----------------------------------------------------------------------


_U32 = np.uint64(32)


def _bucketize(
    rows: Sequence[Row],
    destinations: np.ndarray,
    buckets: int,
    copies: int = 1,
) -> list[list[Row]]:
    """Split rows into destination buckets, preserving scan order.

    ``destinations`` is a flat uint64 array of ``len(rows) * copies``
    destination ids in scan-major order (row ``i``'s copies at positions
    ``i*copies .. i*copies+copies-1``).  Packs ``(destination, flat index)``
    into one uint64 so a single non-indirect radix sort replaces a stable
    argsort; the embedded index keeps the within-bucket order identical to
    the python backends' append order.
    """
    total = destinations.size
    packed = (destinations << _U32) | np.arange(total, dtype=np.uint64)
    packed.sort()
    sources = packed & _U_MASK
    if copies != 1:
        sources //= np.uint64(copies)
    reordered = [rows[i] for i in sources.tolist()]
    boundaries = np.arange(1, buckets, dtype=np.uint64) << _U32
    cuts = [0, *np.searchsorted(packed, boundaries).tolist(), total]
    return [reordered[cuts[b]: cuts[b + 1]] for b in range(buckets)]


def shuffle_partition(
    rows: Sequence[Row],
    key_indices: Sequence[int],
    workers: int,
    salt: int = 0,
    backend: Optional[str] = None,
) -> list[list[Row]]:
    """Hash-partition rows on their key columns into ``workers`` buckets.

    Rows keep their scan order within each bucket (the numpy path's stable
    partitioning matches the python path's append order exactly).
    """
    if resolve_backend(backend) == "numpy" and rows and len(rows) < _MASK:
        n = len(rows)
        columns = [_column(rows, i, n) for i in key_indices]
        destinations = _hash_columns(columns, salt, n) % np.uint64(workers)
        return _bucketize(rows, destinations, workers)
    outputs: list[list[Row]] = [[] for _ in range(workers)]
    for row in rows:
        destination = hash_row([row[i] for i in key_indices], salt) % workers
        outputs[destination].append(row)
    return outputs


def hypercube_partition(
    rows: Sequence[Row],
    bound: Sequence[tuple[int, int, int, int]],
    offsets: Sequence[int],
    workers: int,
    backend: Optional[str] = None,
) -> list[list[Row]]:
    """Route rows to their hypercube coordinates (with replication).

    ``bound`` holds one ``(column, salt, dim, stride)`` entry per hypercube
    dimension constrained by the atom; ``offsets`` enumerates the
    replication targets over the unconstrained dimensions (see
    :meth:`~repro.hypercube.mapping.HyperCubeMapping.frame_routing`).  Each
    row lands on ``base + offset`` for every offset, where ``base`` is the
    sum of its bound coordinates' strides.  Within a bucket, rows keep scan
    order, then offset order — identical for both backends.
    """
    copies = len(offsets)
    if (
        resolve_backend(backend) == "numpy"
        and rows
        and copies
        and len(rows) * copies < _MASK
    ):
        n = len(rows)
        base = np.zeros(n, dtype=np.uint64)
        for column, salt, dim, stride in bound:
            if dim == 1:
                continue
            values = _column(rows, column, n).astype(np.uint64)
            mixed = ((values + np.uint64(salt & _MASK)) * _U_KNUTH) & _U_MASK
            mixed ^= mixed >> _U16
            base += (mixed % np.uint64(dim)) * np.uint64(stride)
        destinations = (
            base[:, None] + np.asarray(offsets, dtype=np.uint64)[None, :]
        ).ravel()  # row-major == (scan order, offset order)
        return _bucketize(rows, destinations, workers, copies=copies)
    outputs: list[list[Row]] = [[] for _ in range(workers)]
    for row in rows:
        base = 0
        for column, salt, dim, stride in bound:
            base += dim_hash(row[column], salt, dim) * stride
        for offset in offsets:
            outputs[base + offset].append(row)
    return outputs


# ----------------------------------------------------------------------
# Sorting and sorted-array primitives
# ----------------------------------------------------------------------


def _pack_columns(
    columns: Sequence[np.ndarray],
) -> Optional[tuple[np.ndarray, int]]:
    """Pack parallel key columns into one uint64 whose numeric order is the
    columns' lexicographic order, or ``None`` when the value ranges do not
    fit in 64 bits.  A single radix sort of the packed key then replaces a
    multi-pass ``np.lexsort`` (and packed equality is key-tuple equality).

    Returns the packed keys plus their capacity (the product of the column
    spans, an exclusive upper bound on the packed values).
    """
    if not columns:
        return None
    spans: list[tuple[int, int]] = []
    capacity = 1
    for column in columns:
        low = int(column.min())
        span = int(column.max()) - low + 1
        capacity *= span
        if capacity > 2**63:  # conservative headroom below 2**64
            return None
        spans.append((low, span))
    packed = np.zeros(len(columns[0]), dtype=np.uint64)
    stride = 1
    for column, (low, span) in zip(reversed(columns), reversed(spans)):
        packed += (column - low).astype(np.uint64) * np.uint64(stride)
        stride *= span
    return packed, capacity


def _lex_order(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Stable lexicographic argsort of parallel columns (primary first)."""
    packing = _pack_columns(columns)
    if packing is None:
        # lexsort's *last* key is the primary one
        return np.lexsort(tuple(reversed(columns)))
    packed, capacity = packing
    n = packed.size
    if capacity <= 2**63 // max(n, 1):
        # append the element index as the least-significant digit: the keys
        # become unique, so a plain (non-indirect) radix sort yields the
        # stable permutation directly — measurably faster than argsort
        keyed = packed * np.uint64(n) + np.arange(n, dtype=np.uint64)
        keyed.sort()
        return (keyed % np.uint64(n)).astype(np.int64)
    return np.argsort(packed, kind="stable")


def sort_projected(
    rows: Sequence[Row],
    positions: Sequence[int],
    backend: Optional[str] = None,
) -> tuple[Optional[list[Row]], Optional[np.ndarray]]:
    """Project rows onto ``positions`` and sort them lexicographically.

    The python backend returns ``(sorted row list, None)``.  The numpy
    backend stays columnar: it returns ``(None, sorted data)`` as a
    ``(width, n)`` int64 array with each column contiguous, ready for
    ``np.searchsorted``-backed seeks; row tuples are only materialized
    lazily by the caller (see
    :attr:`~repro.storage.sorted.SortedRelation.rows`).
    """
    positions = list(positions)
    if resolve_backend(backend) == "numpy":
        n = len(rows)
        width = len(positions)
        if n == 0 or width == 0:
            return None, np.empty((width, n), dtype=np.int64)
        columns = [_column(rows, p, n) for p in positions]
        order = _lex_order(columns)
        sorted_columns = np.empty((width, n), dtype=np.int64)
        for i, column in enumerate(columns):
            sorted_columns[i] = column[order]
        return None, sorted_columns
    return sorted(tuple(row[p] for p in positions) for row in rows), None


def rows_from_columns(columns: np.ndarray) -> list[Row]:
    """Materialize a ``(width, n)`` column array back into row tuples."""
    width, count = columns.shape
    if count == 0:
        return []
    if width == 0:
        return [()] * count
    return list(zip(*columns.tolist()))


def lower_bound(
    rows: Sequence[Row],
    depth: int,
    value: int,
    lo: int,
    hi: int,
    columns: Optional[np.ndarray] = None,
) -> int:
    """First index in ``[lo, hi)`` whose ``depth``-th key is ``>= value``.

    Only valid when rows in ``[lo, hi)`` share a common prefix of length
    ``depth`` (so the ``depth``-th column is non-decreasing there), which
    the trie iterator guarantees.
    """
    if columns is not None:
        return lo + int(np.searchsorted(columns[depth, lo:hi], value, side="left"))
    while lo < hi:
        mid = (lo + hi) // 2
        if rows[mid][depth] < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def upper_bound(
    rows: Sequence[Row],
    depth: int,
    value: int,
    lo: int,
    hi: int,
    columns: Optional[np.ndarray] = None,
) -> int:
    """First index in ``[lo, hi)`` whose ``depth``-th key is ``> value``."""
    if columns is not None:
        return lo + int(np.searchsorted(columns[depth, lo:hi], value, side="right"))
    while lo < hi:
        mid = (lo + hi) // 2
        if rows[mid][depth] <= value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def distinct_prefix_count(
    rows: Sequence[Row],
    length: int,
    columns: Optional[np.ndarray] = None,
) -> int:
    """Number of distinct key prefixes of the given length over sorted rows."""
    if not rows:
        return 0
    if length == 0:
        return 1
    if columns is not None:
        head = columns[:length]
        changed = (head[:, 1:] != head[:, :-1]).any(axis=0)
        return 1 + int(np.count_nonzero(changed))
    count = 0
    previous: Optional[Row] = None
    for row in rows:
        prefix = row[:length]
        if prefix != previous:
            count += 1
            previous = prefix
    return count


# ----------------------------------------------------------------------
# Batched WCOJ trie seeks (the vectorized leapfrog inner loop)
# ----------------------------------------------------------------------


def packed_key_levels(
    columns: np.ndarray,
) -> Optional[tuple[list[np.ndarray], list[int], list[int]]]:
    """Per-depth packed prefix keys of a sorted ``(width, n)`` column array.

    ``packed[d]`` holds one uint64 per row encoding the row's key prefix of
    length ``d + 1`` (``packed[d] = packed[d-1] * span_d + (col_d - low_d)``).
    Because the rows are sorted lexicographically, every ``packed[d]`` is
    globally non-decreasing, so a binary search *within one trie block* is
    the same as a single global ``np.searchsorted`` over ``packed[d]`` —
    which is what lets :mod:`~repro.leapfrog.vectorized` batch the seeks of
    thousands of sibling trie contexts into one call.

    Returns ``(packed levels, lows, spans)``, or ``None`` when the
    cumulative span product does not fit 64 bits (callers fall back to the
    scalar iterator).
    """
    width, _ = columns.shape
    packed_levels: list[np.ndarray] = []
    lows: list[int] = []
    spans: list[int] = []
    capacity = 1
    previous: Optional[np.ndarray] = None
    for depth in range(width):
        column = columns[depth]
        low = int(column.min())
        span = int(column.max()) - low + 1
        capacity *= span
        if capacity >= 2**63:  # conservative headroom below 2**64
            return None
        offsets = (column - low).astype(np.uint64)
        if previous is None:
            current = offsets
        else:
            current = previous * np.uint64(span) + offsets
        packed_levels.append(current)
        lows.append(low)
        spans.append(span)
        previous = current
    return packed_levels, lows, spans


def run_bounds(packed: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Batched ``upper_bound``: the end of each position's equal-key run.

    Equivalent to one :func:`upper_bound` call per position (the trie
    iterator's block-end search after ``open``/``next``/``seek``), answered
    with a single vectorized ``np.searchsorted``.
    """
    return np.searchsorted(packed, packed[positions], side="right")


def batched_seek_lower_bounds(
    packed: np.ndarray,
    prefix_keys: np.ndarray,
    values: np.ndarray,
    low: int,
    span: int,
) -> np.ndarray:
    """Batched LFTJ ``seek``: first index whose key under ``prefix`` is
    ``>= value``, for many (prefix, value) pairs at once.

    ``prefix_keys`` are the packed keys *above* this level (zeros at level
    0); ``values`` are the seek targets.  Clipping the target offset into
    ``[0, span]`` makes out-of-range targets resolve to the run start /
    run end exactly like the scalar binary search bounded by the block.
    """
    offsets = np.clip(values - low, 0, span).astype(np.uint64)
    targets = prefix_keys * np.uint64(span) + offsets
    return np.searchsorted(packed, targets, side="left")


# ----------------------------------------------------------------------
# Hash-join build/probe
# ----------------------------------------------------------------------


def hash_join_rows(
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    left_key: Sequence[int],
    right_key: Sequence[int],
    right_extra: Sequence[int],
    backend: Optional[str] = None,
) -> list[Row]:
    """Equi-join two row lists: for each right row (in order), emit
    ``left_row + right_extra_columns`` for every matching left row in left
    scan order — the exact output order of the tuple-at-a-time build/probe.

    An empty key joins everything with everything (cross product).
    """
    if resolve_backend(backend) == "numpy" and left_rows and right_rows:
        return _hash_join_numpy(left_rows, right_rows, left_key, right_key, right_extra)
    table: dict[Row, list[Row]] = {}
    for row in left_rows:
        table.setdefault(tuple(row[i] for i in left_key), []).append(row)
    output: list[Row] = []
    for row in right_rows:
        matches = table.get(tuple(row[i] for i in right_key))
        if not matches:
            continue
        extra = tuple(row[i] for i in right_extra)
        for left_row in matches:
            output.append(left_row + extra)
    return output


def _encode_join_keys(
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    left_key: Sequence[int],
    right_key: Sequence[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Scalar key ids with exact tuple-equality semantics for both sides."""
    n_left, n_right = len(left_rows), len(right_rows)
    if not left_key:  # cross product: a single shared key
        return (
            np.zeros(n_left, dtype=np.uint64),
            np.zeros(n_right, dtype=np.uint64),
        )
    merged = [
        np.concatenate([_column(left_rows, li, n_left), _column(right_rows, ri, n_right)])
        for li, ri in zip(left_key, right_key)
    ]
    packing = _pack_columns(merged)
    if packing is None:
        # ranges too wide for 64-bit packing: dense ids via np.unique
        _, inverse = np.unique(np.stack(merged, axis=1), axis=0, return_inverse=True)
        packed = inverse.reshape(-1).astype(np.uint64)
    else:
        packed = packing[0]
    return packed[:n_left], packed[n_left:]


def _hash_join_numpy(
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    left_key: Sequence[int],
    right_key: Sequence[int],
    right_extra: Sequence[int],
) -> list[Row]:
    n_left, n_right = len(left_rows), len(right_rows)
    left_ids, right_ids = _encode_join_keys(left_rows, right_rows, left_key, right_key)
    order = np.argsort(left_ids, kind="stable")  # (key id, left scan order)
    sorted_ids = left_ids[order]
    starts = np.searchsorted(sorted_ids, right_ids, side="left")
    ends = np.searchsorted(sorted_ids, right_ids, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return []
    if total > 4 * (n_left + n_right):
        # Output-dominated join: materialization cost rules.  Emitting
        # ``left_row + extra`` reuses the input rows' boxed ints, while the
        # columnar gather below would box a fresh int per output cell —
        # slower than the scalar loop for large outputs.
        starts_list = starts.tolist()
        ends_list = ends.tolist()
        sorted_left = [left_rows[i] for i in order.tolist()]
        output: list[Row] = []
        append = output.append
        for j, row in enumerate(right_rows):
            lo, hi = starts_list[j], ends_list[j]
            if lo == hi:
                continue
            extra = tuple(row[i] for i in right_extra)
            for left_row in sorted_left[lo:hi]:
                append(left_row + extra)
        return output
    # expand each right row's [start, end) slice of the sorted left side
    output_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    flat = (
        np.arange(total, dtype=np.int64)
        - np.repeat(output_starts, counts)
        + np.repeat(starts, counts)
    )
    left_take = order[flat]
    right_take = np.repeat(np.arange(n_right, dtype=np.int64), counts)
    left_width = len(left_rows[0])
    output_columns = [
        _column(left_rows, i, n_left)[left_take] for i in range(left_width)
    ]
    output_columns.extend(
        _column(right_rows, i, n_right)[right_take] for i in right_extra
    )
    if not output_columns:  # zero-arity join output
        return [()] * total
    return list(zip(*(column.tolist() for column in output_columns)))


# ----------------------------------------------------------------------
# Columnar scan filters / projections
# ----------------------------------------------------------------------


def atom_selection(atom: "Atom", encoder) -> tuple[list[tuple[int, int]], list[tuple[int, ...]]]:
    """An atom's pushed-down scan filters (paper footnote 3), shared by the
    frame scan (:func:`~repro.engine.frame.atom_frame`) and the Tributary
    preparation (:func:`~repro.leapfrog.tributary.prepare_atom`).

    Returns ``(constant_filters, repeat_groups)``: encoded ``(position,
    value)`` constant selections, and the position groups of repeated
    variables that must be pairwise equal.
    """
    constant_filters = [
        (position, encoder(constant.value)) for position, constant in atom.constants()
    ]
    repeat_groups = [
        atom.positions_of(variable)
        for variable in atom.variables()
        if len(atom.positions_of(variable)) > 1
    ]
    return constant_filters, repeat_groups


def filter_atom_rows(
    rows: Sequence[Row],
    constant_filters: Sequence[tuple[int, int]],
    repeat_groups: Sequence[Sequence[int]],
    backend: Optional[str] = None,
):
    """Apply constant selections and repeated-variable equality filters.

    Returns ``rows`` itself (same object) when there is nothing to filter,
    so callers can keep zero-copy fast paths; otherwise a new list.

    Deliberately scalar on both backends: scan filters run exactly once per
    fragment over row-major tuples, so a vectorized mask would first have to
    convert the filtered columns — and that conversion alone costs more than
    the plain list comprehension (measured ~2-4x slower at 100k rows).
    Vectorization pays only where the conversion is amortized over more work
    (sort, shuffle routing) or the data is already columnar (seeks).  The
    ``backend`` parameter is accepted for interface uniformity.
    """
    if not constant_filters and not repeat_groups:
        return rows
    filtered = rows
    for position, value in constant_filters:
        filtered = [row for row in filtered if row[position] == value]
    for positions in repeat_groups:
        first = positions[0]
        filtered = [
            row for row in filtered if all(row[p] == row[first] for p in positions)
        ]
    return filtered


def project_rows(
    rows: Sequence[Row],
    indices: Sequence[int],
    backend: Optional[str] = None,
) -> list[Row]:
    """Gather the given columns of every row (columnar on numpy)."""
    if resolve_backend(backend) == "numpy" and rows and indices:
        count = len(rows)
        columns = [_column(rows, i, count) for i in indices]
        return list(zip(*(column.tolist() for column in columns)))
    return [tuple(row[i] for i in indices) for row in rows]
