"""Pluggable worker runtimes for the per-worker local-join phases.

The simulator's "workers" are logical partitions; the executor's local-join
loops (``for worker in range(p): ...``) historically ran them one after
another on a single core.  HoneyComb (Wu & Suciu, 2025) makes the case that
worst-case-optimal distributed joins only pay off at scale when local
evaluation exploits multicores — this module is that seam.

Three runtimes implement the same contract:

- :class:`SerialRuntime` — runs worker tasks in worker-id order on the
  calling thread (bit-identical to the historical behavior);
- :class:`ParallelRuntime` — runs them concurrently on a
  :class:`concurrent.futures.ThreadPoolExecutor`;
- :class:`ProcessRuntime` — runs them on a forked
  :class:`multiprocessing.Pool` (``--runtime parallel:N:proc``), the only
  mode that escapes the GIL for true multicore wall-clock speedup.
  Inbound state (relation fragments, slots, closures) reaches the children
  through fork copy-on-write; large result blocks return through
  :mod:`~repro.engine.shm` shared-memory segments instead of the pickle
  pipe; each worker's ledger is pickled back and merged exactly like the
  thread runtime's.

Determinism is guaranteed by construction rather than by locking: every
worker task receives an isolated :class:`WorkerLedger` — a per-worker
:class:`~repro.engine.stats.WorkerStats` recorder plus a
:class:`~repro.engine.memory.WorkerMemoryAccount` delta ledger — so no
shared mutable ``stats``/``memory`` object is threaded through concurrent
operator calls.  Ledgers are merged back into the shared
:class:`~repro.engine.stats.ExecutionStats` and
:class:`~repro.engine.memory.MemoryBudget` in worker-id order, making result
rows and every counted metric (CPU charges, wall clock, peak memory, skews)
identical across runtimes.  Failure is deterministic too: when workers run
out of memory, the runtime commits the ledgers of every worker *before* the
lowest failing worker id (plus that worker's partial ledger) and re-raises
its :class:`~repro.engine.memory.OutOfMemoryError` — exactly the state a
serial execution leaves behind.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Union

from .frame import Frame
from .memory import MemoryBudget, WorkerMemoryAccount
from .shm import SharedRows, share_rows
from .stats import ExecutionStats, WorkerStats

#: a worker task: called with (worker id, its ledger), returns any value
WorkerTask = Callable[[int, "WorkerLedger"], Any]

#: a structured local task: (worker id, ledger, shipped slot inputs) -> value;
#: must be picklable (a module-level function or functools.partial of one)
LocalRunner = Callable[[int, "WorkerLedger", dict], Any]


@dataclass
class WorkerLedger:
    """Isolated per-worker stat recorder and memory account for one task."""

    worker: int
    stats: WorkerStats
    memory: WorkerMemoryAccount


def _open_ledger(worker: int, memory: MemoryBudget) -> WorkerLedger:
    return WorkerLedger(
        worker=worker,
        stats=WorkerStats(worker),
        memory=memory.open_account(worker),
    )


class WorkerRuntime:
    """Contract shared by the serial and parallel runtimes."""

    name = "abstract"

    def map_workers(
        self,
        worker_ids: Iterable[int],
        task: WorkerTask,
        stats: ExecutionStats,
        memory: MemoryBudget,
    ) -> list:
        """Run ``task`` once per worker id; return values in worker order.

        Ledgers are committed into ``stats``/``memory`` in worker-id order.
        If any task raises, the error of the lowest failing worker id is
        re-raised after committing the ledgers of all earlier workers plus
        the failing worker's partial ledger (discarding later workers),
        which matches a serial execution stopping at the first failure.
        """
        raise NotImplementedError

    @staticmethod
    def _commit(
        stats: ExecutionStats, memory: MemoryBudget, ledger: WorkerLedger
    ) -> None:
        stats.merge_worker(ledger.stats)
        memory.commit(ledger.memory)

    def map_local(
        self,
        worker_ids: Iterable[int],
        runner: LocalRunner,
        payloads: dict,
        stats: ExecutionStats,
        memory: MemoryBudget,
    ) -> list:
        """Structured variant of :meth:`map_workers` for local-join rounds.

        ``runner`` is a *picklable* callable ``(worker, ledger, inputs) ->
        value`` and ``payloads[worker]`` holds the slot inputs that worker
        reads.  In-process runtimes simply wrap the pair into a worker
        task; :class:`ProcessRuntime` overrides this to ship the payloads
        to a persistent forked pool (see :meth:`open_session`) instead of
        re-forking one pool per scheduler phase.  Ordering and
        commit-before-lowest-failure semantics match :meth:`map_workers`.
        """

        def task(worker: int, ledger: "WorkerLedger"):
            return runner(worker, ledger, payloads[worker])

        return self.map_workers(worker_ids, task, stats, memory)

    def open_session(self) -> None:
        """Start a per-plan worker session (no-op for in-process runtimes).

        The scheduler brackets each plan execution with
        ``open_session()`` / ``close_session()``; :class:`ProcessRuntime`
        uses the bracket to keep one forked pool alive across every phase
        of the plan, shipping per-phase slot inputs and ledger diffs over
        pipes rather than paying a fork per Round.
        """

    def close_session(self) -> None:
        """End the per-plan worker session (no-op for in-process runtimes)."""

    def fault_safe(self) -> "WorkerRuntime":
        """The runtime to substitute while a fault session is active.

        Fault injection mutates driver-side session state (fired specs,
        straggler ledger wrappers) from inside worker tasks; a forked child
        would lose those mutations, so :class:`ProcessRuntime` degrades to
        the thread pool here.  In-process runtimes return themselves.
        """
        return self

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialRuntime(WorkerRuntime):
    """Run worker tasks one after another on the calling thread."""

    name = "serial"

    def map_workers(
        self,
        worker_ids: Iterable[int],
        task: WorkerTask,
        stats: ExecutionStats,
        memory: MemoryBudget,
    ) -> list:
        """Run ``task`` for each worker sequentially, committing each
        ledger (even on failure) before moving on."""
        values = []
        for worker in worker_ids:
            ledger = _open_ledger(worker, memory)
            try:
                value = task(worker, ledger)
            except Exception:
                self._commit(stats, memory, ledger)
                raise
            self._commit(stats, memory, ledger)
            values.append(value)
        return values


class ParallelRuntime(WorkerRuntime):
    """Run worker tasks concurrently on a thread pool.

    ``max_workers=None`` sizes the pool to the machine's core count.  The
    ledger isolation + ordered merge makes results and counted metrics
    identical to :class:`SerialRuntime`; only real ``elapsed_seconds``
    changes with available cores.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("ParallelRuntime needs at least one pool worker")
        self.max_workers = max_workers

    def map_workers(
        self,
        worker_ids: Iterable[int],
        task: WorkerTask,
        stats: ExecutionStats,
        memory: MemoryBudget,
    ) -> list:
        """Run ``task`` for each worker on the pool, then merge ledgers
        in worker order so counted metrics match :class:`SerialRuntime`."""
        ids = list(worker_ids)
        if not ids:
            return []
        ledgers = {worker: _open_ledger(worker, memory) for worker in ids}
        outcomes: dict[int, tuple[Any, Optional[BaseException]]] = {}
        pool_size = self.max_workers or min(32, os.cpu_count() or 1)
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            futures = {
                worker: pool.submit(task, worker, ledgers[worker])
                for worker in ids
            }
            for worker in ids:
                try:
                    outcomes[worker] = (futures[worker].result(), None)
                except Exception as error:
                    outcomes[worker] = (None, error)
        values = []
        for worker in ids:
            value, error = outcomes[worker]
            self._commit(stats, memory, ledgers[worker])
            if error is not None:
                raise error
            values.append(value)
        return values

    def __repr__(self) -> str:
        return f"ParallelRuntime(max_workers={self.max_workers})"


# ----------------------------------------------------------------------
# Process-backed runtime
# ----------------------------------------------------------------------

#: (task, ledgers) handed to forked children; worker tasks are closures
#: over live scheduler state and cannot pickle, so they travel by fork
#: inheritance instead — set immediately before the pool forks, cleared
#: right after it joins
_FORK_STATE: Optional[tuple[WorkerTask, dict[int, WorkerLedger]]] = None


@dataclass
class _SharedFrame:
    """A :class:`Frame` whose rows crossed the process boundary via shm."""

    variables: tuple
    shared: SharedRows


def _encode_payload(item: Any) -> Any:
    """Swap large row blocks for shared-memory handles before pickling."""
    if isinstance(item, Frame):
        shared = share_rows(item.rows)
        if shared is not None:
            return _SharedFrame(item.variables, shared)
    elif isinstance(item, list) and item and isinstance(item[0], tuple):
        shared = share_rows(item)
        if shared is not None:
            return shared
    return item


def _decode_payload(item: Any) -> Any:
    """Reattach shared-memory handles back into frames / row lists."""
    if isinstance(item, _SharedFrame):
        return Frame(item.variables, item.shared.load())
    if isinstance(item, SharedRows):
        return item.load()
    return item


def _encode_value(value: Any) -> Any:
    if isinstance(value, dict):
        return {key: _encode_payload(item) for key, item in value.items()}
    return _encode_payload(value)


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        return {key: _decode_payload(item) for key, item in value.items()}
    return _decode_payload(value)


def _fork_invoke(worker: int):
    """Run one worker task inside a forked pool child.

    Returns ``(worker, encoded value, mutated ledger, error)``; the ledger
    rides back even when the task raised, so the parent can honor the
    commit-before-lowest-failure contract exactly like the other runtimes.
    """
    task, ledgers = _FORK_STATE
    ledger = ledgers[worker]
    try:
        value = task(worker, ledger)
    except Exception as error:
        return worker, None, ledger, error
    return worker, _encode_value(value), ledger, None


def _session_child_main(connection) -> None:
    """Serve structured local tasks inside one persistent forked child.

    Each message is ``(runner, [(worker, ledger, encoded inputs), ...])``;
    every task's mutated ledger ships back even when it raised, so the
    parent honors the commit-before-lowest-failure contract exactly like
    the fork-per-phase path.  ``None`` (or a closed pipe) ends the loop.
    """
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        runner, batch = message
        results = []
        for worker, ledger, payload in batch:
            try:
                value = runner(worker, ledger, _decode_value(payload))
            except Exception as error:
                results.append((worker, None, ledger, error))
            else:
                results.append((worker, _encode_value(value), ledger, None))
        try:
            connection.send(results)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            break
    connection.close()


class _SessionWorker:
    """One persistent forked child of a :class:`ProcessRuntime` session."""

    def __init__(self, context) -> None:
        parent, child = context.Pipe()
        self.connection = parent
        self.process = context.Process(
            target=_session_child_main, args=(child,), daemon=True
        )
        self.process.start()
        child.close()

    def stop(self) -> None:
        """Ask the child to exit, then reap it."""
        try:
            self.connection.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.connection.close()
        self.process.join(timeout=10)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=10)


class ProcessRuntime(WorkerRuntime):
    """Run worker tasks on a forked :class:`multiprocessing.Pool`.

    The only runtime that escapes the GIL: worker-local joins run on real
    cores, so wall-clock time drops with core count while every counted
    metric stays bit-identical to :class:`SerialRuntime` (the ledgers are
    plain picklable dataclasses; floats survive the pickle round trip
    exactly).  ``processes=None`` sizes the pool to the machine.

    Requires the ``fork`` start method (closures and live cluster state
    reach children by inheritance); on platforms without it, falls back to
    the thread pool with identical semantics.  Fault-injected executions
    degrade to threads too — see :meth:`WorkerRuntime.fault_safe`.

    Within one plan execution the scheduler opens a *session*
    (:meth:`open_session`): a pool of pipe-connected children forked once
    and reused by every structured local round (:meth:`map_local`), with
    slot inputs and ledgers shipped per phase — short hybrid stages no
    longer pay a fork per Round.  Unstructured :meth:`map_workers` calls
    (closures over live driver state) still fork per call.
    """

    name = "process"

    def __init__(self, processes: Optional[int] = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError("ProcessRuntime needs at least one pool process")
        self.processes = processes
        self._session: Optional[list[_SessionWorker]] = None

    def open_session(self) -> None:
        """Fork the persistent per-plan worker pool (fork platforms only)."""
        if self._session is not None:
            return
        if "fork" not in multiprocessing.get_all_start_methods():
            return
        context = multiprocessing.get_context("fork")
        size = self.processes or (os.cpu_count() or 1)
        self._session = [_SessionWorker(context) for _ in range(size)]

    def close_session(self) -> None:
        """Shut down the persistent pool, if one is open."""
        if self._session is None:
            return
        children, self._session = self._session, None
        for child in children:
            child.stop()

    def map_local(
        self,
        worker_ids: Iterable[int],
        runner: LocalRunner,
        payloads: dict,
        stats: ExecutionStats,
        memory: MemoryBudget,
    ) -> list:
        """Dispatch structured local tasks over the persistent session pool.

        Workers are dealt round-robin over the session children; each child
        runs its batch sequentially and ships back ``(worker, encoded
        value, ledger, error)`` per task.  Ledgers commit in worker-id
        order with the same lowest-failure semantics as every other path.
        Without an open session (or off-fork platforms) this falls back to
        the fork-per-call behavior of the base implementation.
        """
        ids = list(worker_ids)
        if not ids:
            return []
        if self._session is None:
            return super().map_local(ids, runner, payloads, stats, memory)
        ledgers = {worker: _open_ledger(worker, memory) for worker in ids}
        children = self._session
        batches: list[list] = [[] for _ in children]
        for index, worker in enumerate(ids):
            batches[index % len(children)].append(
                (worker, ledgers[worker], _encode_value(payloads[worker]))
            )
        active = []
        for child, batch in zip(children, batches):
            if batch:
                child.connection.send((runner, batch))
                active.append(child)
        shipped: dict[int, tuple] = {}
        for child in active:
            for worker, value, ledger, error in child.connection.recv():
                shipped[worker] = (value, ledger, error)
        values = []
        for worker in ids:
            value, ledger, error = shipped[worker]
            self._commit(stats, memory, ledger)
            if error is not None:
                raise error
            values.append(_decode_value(value))
        return values

    def fault_safe(self) -> WorkerRuntime:
        """Thread-pool stand-in while fault injection is active."""
        return ParallelRuntime(max_workers=self.processes)

    def map_workers(
        self,
        worker_ids: Iterable[int],
        task: WorkerTask,
        stats: ExecutionStats,
        memory: MemoryBudget,
    ) -> list:
        """Fork a pool, run every worker task, merge the shipped-back
        ledgers in worker order; values return via shm above the size
        threshold, the pickle pipe below it."""
        ids = list(worker_ids)
        if not ids:
            return []
        if "fork" not in multiprocessing.get_all_start_methods():
            return ParallelRuntime(max_workers=self.processes).map_workers(
                ids, task, stats, memory
            )
        global _FORK_STATE
        ledgers = {worker: _open_ledger(worker, memory) for worker in ids}
        pool_size = min(self.processes or (os.cpu_count() or 1), len(ids))
        context = multiprocessing.get_context("fork")
        _FORK_STATE = (task, ledgers)
        try:
            with context.Pool(processes=pool_size) as pool:
                outcomes = pool.map(_fork_invoke, ids)
        finally:
            _FORK_STATE = None
        shipped = {outcome[0]: outcome for outcome in outcomes}
        values = []
        for worker in ids:
            _, value, ledger, error = shipped[worker]
            self._commit(stats, memory, ledger)
            if error is not None:
                raise error
            values.append(_decode_value(value))
        return values

    def __repr__(self) -> str:
        return f"ProcessRuntime(processes={self.processes})"


RuntimeLike = Union[str, WorkerRuntime, None]


def resolve_runtime(spec: RuntimeLike) -> WorkerRuntime:
    """Turn a runtime spec into a runtime instance.

    Accepts an existing :class:`WorkerRuntime`, ``None`` (→ serial), or the
    CLI spellings ``"serial"``, ``"parallel"`` / ``"parallel:N"`` for a
    thread pool, and ``"parallel:N:proc"`` (or ``"parallel:proc"`` for a
    machine-sized pool) for forked worker processes.
    """
    if spec is None:
        return SerialRuntime()
    if isinstance(spec, WorkerRuntime):
        return spec
    text = str(spec).strip().lower()
    if text == "serial":
        return SerialRuntime()
    if text == "parallel":
        return ParallelRuntime()
    if text == "parallel:proc":
        return ProcessRuntime()
    if text.startswith("parallel:") and text.endswith(":proc"):
        try:
            count = int(text[len("parallel:"): -len(":proc")])
        except ValueError:
            raise ValueError(
                f"bad runtime spec {spec!r}; "
                "use 'serial', 'parallel[:N]', or 'parallel:N:proc'"
            ) from None
        return ProcessRuntime(processes=count)
    if text.startswith("parallel:"):
        try:
            count = int(text.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                f"bad runtime spec {spec!r}; "
                "use 'serial', 'parallel[:N]', or 'parallel:N:proc'"
            ) from None
        return ParallelRuntime(max_workers=count)
    raise ValueError(
        f"unknown runtime {spec!r}; "
        "use 'serial', 'parallel[:N]', or 'parallel:N:proc'"
    )
