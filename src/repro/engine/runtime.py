"""Pluggable worker runtimes for the per-worker local-join phases.

The simulator's "workers" are logical partitions; the executor's local-join
loops (``for worker in range(p): ...``) historically ran them one after
another on a single core.  HoneyComb (Wu & Suciu, 2025) makes the case that
worst-case-optimal distributed joins only pay off at scale when local
evaluation exploits multicores — this module is that seam.

Two runtimes implement the same contract:

- :class:`SerialRuntime` — runs worker tasks in worker-id order on the
  calling thread (bit-identical to the historical behavior);
- :class:`ParallelRuntime` — runs them concurrently on a
  :class:`concurrent.futures.ThreadPoolExecutor`.

Determinism is guaranteed by construction rather than by locking: every
worker task receives an isolated :class:`WorkerLedger` — a per-worker
:class:`~repro.engine.stats.WorkerStats` recorder plus a
:class:`~repro.engine.memory.WorkerMemoryAccount` delta ledger — so no
shared mutable ``stats``/``memory`` object is threaded through concurrent
operator calls.  Ledgers are merged back into the shared
:class:`~repro.engine.stats.ExecutionStats` and
:class:`~repro.engine.memory.MemoryBudget` in worker-id order, making result
rows and every counted metric (CPU charges, wall clock, peak memory, skews)
identical across runtimes.  Failure is deterministic too: when workers run
out of memory, the runtime commits the ledgers of every worker *before* the
lowest failing worker id (plus that worker's partial ledger) and re-raises
its :class:`~repro.engine.memory.OutOfMemoryError` — exactly the state a
serial execution leaves behind.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Union

from .memory import MemoryBudget, WorkerMemoryAccount
from .stats import ExecutionStats, WorkerStats

#: a worker task: called with (worker id, its ledger), returns any value
WorkerTask = Callable[[int, "WorkerLedger"], Any]


@dataclass
class WorkerLedger:
    """Isolated per-worker stat recorder and memory account for one task."""

    worker: int
    stats: WorkerStats
    memory: WorkerMemoryAccount


def _open_ledger(worker: int, memory: MemoryBudget) -> WorkerLedger:
    return WorkerLedger(
        worker=worker,
        stats=WorkerStats(worker),
        memory=memory.open_account(worker),
    )


class WorkerRuntime:
    """Contract shared by the serial and parallel runtimes."""

    name = "abstract"

    def map_workers(
        self,
        worker_ids: Iterable[int],
        task: WorkerTask,
        stats: ExecutionStats,
        memory: MemoryBudget,
    ) -> list:
        """Run ``task`` once per worker id; return values in worker order.

        Ledgers are committed into ``stats``/``memory`` in worker-id order.
        If any task raises, the error of the lowest failing worker id is
        re-raised after committing the ledgers of all earlier workers plus
        the failing worker's partial ledger (discarding later workers),
        which matches a serial execution stopping at the first failure.
        """
        raise NotImplementedError

    @staticmethod
    def _commit(
        stats: ExecutionStats, memory: MemoryBudget, ledger: WorkerLedger
    ) -> None:
        stats.merge_worker(ledger.stats)
        memory.commit(ledger.memory)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialRuntime(WorkerRuntime):
    """Run worker tasks one after another on the calling thread."""

    name = "serial"

    def map_workers(
        self,
        worker_ids: Iterable[int],
        task: WorkerTask,
        stats: ExecutionStats,
        memory: MemoryBudget,
    ) -> list:
        """Run ``task`` for each worker sequentially, committing each
        ledger (even on failure) before moving on."""
        values = []
        for worker in worker_ids:
            ledger = _open_ledger(worker, memory)
            try:
                value = task(worker, ledger)
            except Exception:
                self._commit(stats, memory, ledger)
                raise
            self._commit(stats, memory, ledger)
            values.append(value)
        return values


class ParallelRuntime(WorkerRuntime):
    """Run worker tasks concurrently on a thread pool.

    ``max_workers=None`` sizes the pool to the machine's core count.  The
    ledger isolation + ordered merge makes results and counted metrics
    identical to :class:`SerialRuntime`; only real ``elapsed_seconds``
    changes with available cores.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("ParallelRuntime needs at least one pool worker")
        self.max_workers = max_workers

    def map_workers(
        self,
        worker_ids: Iterable[int],
        task: WorkerTask,
        stats: ExecutionStats,
        memory: MemoryBudget,
    ) -> list:
        """Run ``task`` for each worker on the pool, then merge ledgers
        in worker order so counted metrics match :class:`SerialRuntime`."""
        ids = list(worker_ids)
        if not ids:
            return []
        ledgers = {worker: _open_ledger(worker, memory) for worker in ids}
        outcomes: dict[int, tuple[Any, Optional[BaseException]]] = {}
        pool_size = self.max_workers or min(32, os.cpu_count() or 1)
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            futures = {
                worker: pool.submit(task, worker, ledgers[worker])
                for worker in ids
            }
            for worker in ids:
                try:
                    outcomes[worker] = (futures[worker].result(), None)
                except Exception as error:
                    outcomes[worker] = (None, error)
        values = []
        for worker in ids:
            value, error = outcomes[worker]
            self._commit(stats, memory, ledgers[worker])
            if error is not None:
                raise error
            values.append(value)
        return values

    def __repr__(self) -> str:
        return f"ParallelRuntime(max_workers={self.max_workers})"


RuntimeLike = Union[str, WorkerRuntime, None]


def resolve_runtime(spec: RuntimeLike) -> WorkerRuntime:
    """Turn a runtime spec into a runtime instance.

    Accepts an existing :class:`WorkerRuntime`, ``None`` (→ serial), or the
    CLI spellings ``"serial"``, ``"parallel"``, and ``"parallel:N"`` for a
    pool of exactly ``N`` threads.
    """
    if spec is None:
        return SerialRuntime()
    if isinstance(spec, WorkerRuntime):
        return spec
    text = str(spec).strip().lower()
    if text == "serial":
        return SerialRuntime()
    if text == "parallel":
        return ParallelRuntime()
    if text.startswith("parallel:"):
        try:
            count = int(text.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                f"bad runtime spec {spec!r}; use 'serial' or 'parallel[:N]'"
            ) from None
        return ParallelRuntime(max_workers=count)
    raise ValueError(
        f"unknown runtime {spec!r}; use 'serial' or 'parallel[:N]'"
    )
