"""Frames: variable-labelled tuple sets flowing between operators.

Once an atom's relation is scanned, columns stop being attribute names and
become *query variables*; every operator downstream of the scan (shuffles,
joins, projections) is defined over variables.  A :class:`Frame` is that
runtime unit: an ordered tuple of variables plus rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, Union

from ..query.atoms import Atom, Variable
from ..storage.relation import Relation
from . import kernels

Encoder = Callable[[Union[int, str]], int]


@dataclass
class Frame:
    """Rows labelled by query variables."""

    variables: tuple[Variable, ...]
    rows: list[tuple[int, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(self.variables)) != len(self.variables):
            raise ValueError(f"duplicate variables in frame: {self.variables}")

    def __len__(self) -> int:
        return len(self.rows)

    def index_of(self, variable: Variable) -> int:
        """Column position of ``variable`` (KeyError when absent)."""
        try:
            return self.variables.index(variable)
        except ValueError:
            raise KeyError(f"frame has no variable {variable!r}") from None

    def indices_of(self, variables: Sequence[Variable]) -> tuple[int, ...]:
        """Column positions of ``variables``, in the order given."""
        return tuple(self.index_of(v) for v in variables)

    def project(self, variables: Sequence[Variable], dedup: bool = False) -> "Frame":
        """Reorder/restrict columns to ``variables``; ``dedup`` drops
        duplicate rows while preserving first-seen order."""
        indices = self.indices_of(variables)
        projected = (tuple(row[i] for i in indices) for row in self.rows)
        rows = list(dict.fromkeys(projected)) if dedup else list(projected)
        return Frame(tuple(variables), rows)

    def empty_like(self) -> "Frame":
        """A zero-row frame with this frame's schema."""
        return Frame(self.variables, [])

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"Frame([{names}], {len(self.rows)} rows)"


def atom_frame(
    atom: Atom,
    relation: Relation,
    encoder: Encoder,
) -> Frame:
    """Scan an atom: apply constant selections and repeated-variable filters
    (selection pushdown, paper footnote 3), and relabel columns as the
    atom's variables."""
    constant_filters, repeat_groups = kernels.atom_selection(atom, encoder)
    rows = kernels.filter_atom_rows(relation.rows, constant_filters, repeat_groups)
    variables = atom.variables()
    indices = [atom.positions_of(v)[0] for v in variables]
    if indices == list(range(len(relation.columns))) and rows is relation.rows:
        return Frame(variables, list(rows))
    return Frame(variables, kernels.project_rows(rows, indices))


def frame_relation(frame: Frame, name: str) -> Relation:
    """View a frame as a storage relation (columns named by variables)."""
    return Relation(name, tuple(v.name for v in frame.variables), frame.rows)
