"""repro — a reproduction of "From Theory to Practice: Efficient Join Query
Evaluation in a Parallel Database System" (Chu, Balazinska, Suciu; SIGMOD'15).

The package marries the two theoretical building blocks the paper makes
practical:

- the **HyperCube shuffle** (single-round distributed evaluation of any
  conjunctive query) with the paper's integral configuration algorithm, and
- the **Tributary join** (a worst-case-optimal leapfrog join over sorted
  arrays) with the paper's variable-order cost model,

running on a deterministic shared-nothing cluster simulator that counts the
paper's metrics: tuples shuffled, producer/consumer skew, per-worker CPU
work, and straggler-dominated wall clock.

Quickstart::

    from repro import run_query, twitter_database

    db = twitter_database(nodes=2000, edges=10000)
    result = run_query(
        "Triangles(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x).",
        db, strategy="HC_TJ", workers=16)
    print(len(result.rows), "triangles,",
          result.stats.tuples_shuffled, "tuples shuffled")
"""

from .engine import (
    Cluster,
    ExecutionStats,
    FailureReport,
    FaultPlan,
    FaultSpec,
    MemoryBudget,
    OutOfMemoryError,
    ParallelRuntime,
    RecoveryPolicy,
    SerialRuntime,
    resolve_runtime,
)
from .hypercube import (
    HyperCubeConfig,
    HyperCubeMapping,
    fractional_shares,
    optimize_config,
    round_down_config,
)
from .leapfrog import TributaryJoin, best_join_order, estimate_order_cost
from .planner import (
    ALL_STRATEGIES,
    CostReport,
    ExecutionResult,
    PhysicalPlan,
    Strategy,
    execute,
    execute_physical,
    execute_semijoin,
    explain,
    explain_analyze,
    lower,
    make_cluster,
    optimize,
    run_all_strategies,
    run_query,
)
from .query import Atom, ConjunctiveQuery, Variable, parse_query
from .storage import (
    Database,
    Relation,
    SortedRelation,
    freebase_database,
    twitter_database,
    twitter_graph,
)

__version__ = "0.1.0"

__all__ = [
    "ALL_STRATEGIES",
    "Atom",
    "Cluster",
    "ConjunctiveQuery",
    "CostReport",
    "Database",
    "ExecutionResult",
    "ExecutionStats",
    "FailureReport",
    "FaultPlan",
    "FaultSpec",
    "HyperCubeConfig",
    "HyperCubeMapping",
    "MemoryBudget",
    "OutOfMemoryError",
    "ParallelRuntime",
    "PhysicalPlan",
    "RecoveryPolicy",
    "Relation",
    "SerialRuntime",
    "SortedRelation",
    "Strategy",
    "TributaryJoin",
    "Variable",
    "best_join_order",
    "estimate_order_cost",
    "execute",
    "execute_physical",
    "execute_semijoin",
    "explain",
    "explain_analyze",
    "fractional_shares",
    "freebase_database",
    "lower",
    "make_cluster",
    "optimize",
    "optimize_config",
    "parse_query",
    "resolve_runtime",
    "round_down_config",
    "run_all_strategies",
    "run_query",
    "twitter_database",
    "twitter_graph",
]
