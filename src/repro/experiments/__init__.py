"""Experiment drivers shared by the benchmark suite."""

from .harness import (
    GridResult,
    fault_sweep,
    figure_rows,
    format_accuracy,
    format_fault_sweep,
    format_figure,
    format_shuffle_table,
    input_size,
    optimizer_accuracy,
    predict_workload,
    run_grid,
    run_workload,
    shuffle_rows,
    table6_row,
)

__all__ = [
    "GridResult",
    "fault_sweep",
    "figure_rows",
    "format_accuracy",
    "format_fault_sweep",
    "format_figure",
    "format_shuffle_table",
    "input_size",
    "optimizer_accuracy",
    "predict_workload",
    "run_grid",
    "run_workload",
    "shuffle_rows",
    "table6_row",
]
