"""Experiment drivers shared by the benchmark suite."""

from .harness import (
    GridResult,
    fault_sweep,
    figure_rows,
    format_fault_sweep,
    format_figure,
    format_shuffle_table,
    input_size,
    run_grid,
    run_workload,
    shuffle_rows,
    table6_row,
)

__all__ = [
    "GridResult",
    "fault_sweep",
    "figure_rows",
    "format_fault_sweep",
    "format_figure",
    "format_shuffle_table",
    "input_size",
    "run_grid",
    "run_workload",
    "shuffle_rows",
    "table6_row",
]
