"""Shared experiment harness: run the 6-configuration grid of the paper.

Every figure of the form "query X under RS/BR/HC x HJ/TJ" (Figs. 3, 4, 6, 9,
13, 14, 15, 17) is produced by :func:`run_grid`; the load-balance tables
(Tables 2-4), the operator breakdown (Table 5), and the summary (Table 6)
read the collected :class:`~repro.engine.stats.ExecutionStats`.

Expensive per-query artifacts (the left-deep plan and the Tributary variable
order) are computed once and shared across the six runs, exactly as a real
optimizer would.

:func:`fault_sweep` adds the fault-injection dimension: one query executed
fault-free and then once per fault scenario, emitting recovery-overhead
rows (retries, recovery CPU, overhead ratio, disposition) for the
:mod:`~repro.engine.faults` subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..engine.cluster import Cluster
from ..engine.faults import FaultsLike, PolicyLike
from ..engine.memory import MemoryBudget
from ..engine.runtime import RuntimeLike
from ..planner.api import QueryLike, _as_query
from ..planner.binary import LeftDeepPlan, left_deep_plan, plan_from_order
from ..planner.executor import ExecutionResult, execute
from ..planner.plans import ALL_STRATEGIES, Strategy
from ..query.atoms import ConjunctiveQuery, Variable
from ..query.catalog import Catalog
from ..leapfrog.variable_order import best_join_order, full_variable_order
from ..storage.relation import Database
from ..workloads.registry import get_workload


@dataclass
class GridResult:
    """Results of one query under every requested strategy."""

    query: ConjunctiveQuery
    workers: int
    results: dict[str, ExecutionResult] = field(default_factory=dict)
    variable_order: tuple[Variable, ...] = ()
    plan: Optional[LeftDeepPlan] = None

    def __getitem__(self, strategy: str) -> ExecutionResult:
        return self.results[strategy]

    def strategies(self) -> tuple[str, ...]:
        return tuple(self.results)

    def consistent(self) -> bool:
        """All non-failed strategies returned the same result set."""
        row_sets = [
            frozenset(result.rows)
            for result in self.results.values()
            if not result.failed
        ]
        return len(set(row_sets)) <= 1

    def best_strategy(self) -> str:
        """The non-failed strategy with the lowest modeled wall clock
        (``"FAIL"`` when every configuration failed)."""
        candidates = {
            name: result.stats.wall_clock
            for name, result in self.results.items()
            if not result.failed
        }
        if not candidates:
            return "FAIL"
        return min(candidates, key=lambda name: candidates[name])


def run_grid(
    query: QueryLike,
    database: Database,
    workers: int = 64,
    strategies: Sequence[Strategy] = ALL_STRATEGIES,
    memory_tuples: Optional[int] = None,
    plan_order: Optional[Sequence[str]] = None,
    runtime: RuntimeLike = None,
) -> GridResult:
    """Run ``query`` under each strategy on fresh clusters over ``database``.

    ``query`` may be Datalog rule text or an already-parsed
    :class:`~repro.query.atoms.ConjunctiveQuery`; it is parsed at most once
    here, and the per-query optimizer artifacts (plan, variable order) are
    computed once and shared across all strategy runs."""
    query = _as_query(query)
    catalog = Catalog(database)
    if plan_order is not None:
        plan = plan_from_order(query, catalog, plan_order)
    else:
        plan = left_deep_plan(query, catalog)
    order = full_variable_order(query, best_join_order(query, catalog).order)
    grid = GridResult(
        query=query, workers=workers, variable_order=order, plan=plan
    )
    for strategy in strategies:
        cluster = Cluster(workers, MemoryBudget(per_worker_tuples=memory_tuples))
        cluster.load(database)
        grid.results[strategy.name] = execute(
            query,
            cluster,
            strategy,
            catalog=catalog,
            variable_order=order,
            plan=plan,
            runtime=runtime,
        )
    return grid


def run_workload(
    name: str,
    scale: str = "bench",
    workers: int = 64,
    strategies: Sequence[Strategy] = ALL_STRATEGIES,
    enforce_memory: bool = True,
    runtime: RuntimeLike = None,
) -> GridResult:
    """Run one registered workload (Q1..Q8) through the strategy grid."""
    workload = get_workload(name)
    database = workload.dataset(scale)
    memory = workload.memory_tuples if (enforce_memory and scale == "bench") else None
    return run_grid(
        workload.query,
        database,
        workers=workers,
        strategies=strategies,
        memory_tuples=memory,
        plan_order=workload.rs_plan_order,
        runtime=runtime,
    )


# ----------------------------------------------------------------------
# Formatting: paper-style rows
# ----------------------------------------------------------------------


def figure_rows(grid: GridResult) -> list[dict[str, object]]:
    """One row per strategy with the three panel metrics of Figs. 3/4/6/9."""
    rows = []
    for name, result in grid.results.items():
        stats = result.stats
        rows.append(
            {
                "strategy": name,
                "failed": result.failed,
                "wall_clock": stats.wall_clock,
                "total_cpu": stats.total_cpu,
                "tuples_shuffled": stats.tuples_shuffled,
                "results": stats.result_count,
                "elapsed_seconds": stats.elapsed_seconds,
            }
        )
    return rows


def format_figure(grid: GridResult, title: str) -> str:
    """Render the three-panel figure as an aligned text table."""
    lines = [title, "-" * len(title)]
    header = (
        f"{'config':>8} {'wall clock':>14} {'total CPU':>14} "
        f"{'tuples shuffled':>16} {'results':>9}"
    )
    lines.append(header)
    for row in figure_rows(grid):
        if row["failed"]:
            lines.append(
                f"{row['strategy']:>8} {'FAIL':>14} {'FAIL':>14} {'FAIL':>16} {'-':>9}"
            )
            continue
        lines.append(
            f"{row['strategy']:>8} {row['wall_clock']:>14,.0f} "
            f"{row['total_cpu']:>14,.0f} {row['tuples_shuffled']:>16,} "
            f"{row['results']:>9,}"
        )
    return "\n".join(lines)


def shuffle_rows(result: ExecutionResult) -> list[dict[str, object]]:
    """Per-shuffle load-balance rows (the format of Tables 2-4)."""
    return [
        {
            "shuffle": record.name,
            "tuples_sent": record.tuples_sent,
            "producer_skew": record.producer_skew,
            "consumer_skew": record.consumer_skew,
        }
        for record in result.stats.shuffles
    ]


def format_shuffle_table(result: ExecutionResult, title: str) -> str:
    """Render per-shuffle load balance in the paper's Tables 2-4 format."""
    lines = [title, "-" * len(title)]
    lines.append(
        f"{'shuffle':<48} {'tuples sent':>12} {'prod skew':>10} {'cons skew':>10}"
    )
    total = 0
    for row in shuffle_rows(result):
        total += int(row["tuples_sent"])
        lines.append(
            f"{str(row['shuffle']):<48} {row['tuples_sent']:>12,} "
            f"{row['producer_skew']:>10.2f} {row['consumer_skew']:>10.2f}"
        )
    lines.append(f"{'Total':<48} {total:>12,} {'N.A.':>10} {'N.A.':>10}")
    return "\n".join(lines)


def fault_sweep(
    query: QueryLike,
    database: Database,
    scenarios: dict[str, FaultsLike],
    strategy: str = "RS_HJ",
    workers: int = 16,
    recovery: PolicyLike = None,
    runtime: RuntimeLike = None,
    memory_tuples: Optional[int] = None,
) -> list[dict[str, object]]:
    """Run one query fault-free, then once per named fault scenario.

    Each scenario is a :class:`~repro.engine.faults.FaultPlan` (or its dict
    form) executed on a fresh cluster under the given ``recovery`` policy.
    Returns one row per run — the fault-free baseline first — with the
    recovery-overhead metrics: retries, injected faults, CPU charged to the
    ``recovery`` phase, total CPU as a ratio of the baseline, whether the
    rows matched the baseline exactly, and the failure disposition (empty,
    ``"aborted"``, or ``"degraded"``).
    """
    from ..planner.api import run_query

    query = _as_query(query)

    def run_one(name: str, faults: FaultsLike) -> dict[str, object]:
        """Execute one sweep entry and project its overhead row."""
        result = run_query(
            query,
            database,
            strategy=strategy,
            workers=workers,
            memory_tuples=memory_tuples,
            runtime=runtime,
            faults=faults,
            recovery=recovery,
        )
        report = result.failure_report
        return {
            "scenario": name,
            "failed": result.failed,
            "disposition": report.disposition if report is not None else "",
            "retries": result.stats.retries,
            "faults_injected": result.stats.faults_injected,
            "recovery_cpu": result.stats.recovery_cpu,
            "total_cpu": result.stats.total_cpu,
            "wall_clock": result.stats.wall_clock,
            "results": result.stats.result_count,
            "rows": frozenset(result.rows),
        }

    rows = [run_one("baseline", None)]
    baseline = rows[0]
    for name, faults in scenarios.items():
        row = run_one(name, faults)
        row["rows_match"] = (not row["failed"]) and row["rows"] == baseline["rows"]
        row["cpu_overhead"] = (
            row["total_cpu"] / baseline["total_cpu"]
            if baseline["total_cpu"]
            else float("nan")
        )
        rows.append(row)
    baseline["rows_match"] = True
    baseline["cpu_overhead"] = 1.0
    for row in rows:
        del row["rows"]
    return rows


def format_fault_sweep(rows: list[dict[str, object]], title: str) -> str:
    """Render :func:`fault_sweep` rows as an aligned recovery-overhead table."""
    lines = [title, "-" * len(title)]
    lines.append(
        f"{'scenario':<24} {'outcome':>10} {'retries':>8} {'recovery cpu':>13} "
        f"{'cpu overhead':>13} {'rows ok':>8}"
    )
    for row in rows:
        if row["failed"]:
            outcome = "ABORT"
        elif row["disposition"] == "degraded":
            outcome = "degraded"
        else:
            outcome = "ok"
        lines.append(
            f"{str(row['scenario']):<24} {outcome:>10} {row['retries']:>8} "
            f"{row['recovery_cpu']:>13,.0f} {row['cpu_overhead']:>13.2f} "
            f"{str(bool(row['rows_match'])):>8}"
        )
    return "\n".join(lines)


def input_size(query: ConjunctiveQuery, database: Database) -> int:
    """Total input tuples over the query's atoms (self-join copies counted
    once per atom, as the paper's Table 6 'Input size' does)."""
    return sum(len(database[atom.relation]) for atom in query.atoms)


def table6_row(
    name: str,
    grid: GridResult,
    database: Database,
) -> dict[str, object]:
    """One row of the paper's Table 6 summary."""
    from ..query.hypergraph import Hypergraph

    query = grid.query
    rs = grid.results.get("RS_HJ")
    hc = grid.results.get("HC_TJ")
    rs_failed = rs is None or rs.failed
    hc_failed = hc is None or hc.failed
    ratio = (
        rs.stats.wall_clock / hc.stats.wall_clock
        if not rs_failed and not hc_failed and hc.stats.wall_clock
        else float("nan")
    )
    return {
        "query": name,
        "tables": len(query.atoms),
        "join_variables": len(query.join_variables()),
        "cyclic": Hypergraph(query).is_cyclic(),
        "input_size": input_size(query, database),
        "rs_shuffled": rs.stats.tuples_shuffled if not rs_failed else None,
        "hc_shuffled": hc.stats.tuples_shuffled if not hc_failed else None,
        "rs_skew": rs.stats.max_consumer_skew if not rs_failed else None,
        "rs_over_hc_time": ratio,
        "best": grid.best_strategy(),
    }


def predict_workload(
    name: str,
    scale: str = "bench",
    workers: int = 64,
    enforce_memory: bool = True,
    database: Optional[Database] = None,
):
    """The cost-based optimizer's prediction for one registered workload.

    Mirrors :func:`run_workload` exactly — same dataset, memory budget,
    pinned plan order, and Tributary variable order — so the returned
    :class:`~repro.planner.optimizer.CostReport` prices the very plans the
    measured grid executes.
    """
    from ..planner.optimizer import estimate_costs

    workload = get_workload(name)
    if database is None:
        database = workload.dataset(scale)
    memory = workload.memory_tuples if (enforce_memory and scale == "bench") else None
    catalog = Catalog(database)
    if workload.rs_plan_order is not None:
        plan = plan_from_order(workload.query, catalog, workload.rs_plan_order)
    else:
        plan = left_deep_plan(workload.query, catalog)
    order = full_variable_order(
        workload.query, best_join_order(workload.query, catalog).order
    )
    return estimate_costs(
        workload.query,
        catalog,
        workers=workers,
        memory_tuples=memory,
        plan=plan,
        variable_order=order,
    )


def optimizer_accuracy(
    names: Sequence[str] = (),
    scale: str = "bench",
    workers: int = 64,
    enforce_memory: bool = True,
    runtime: RuntimeLike = None,
    grids: Optional[dict[str, GridResult]] = None,
) -> dict[str, object]:
    """Predicted-vs-measured winner matrix over the paper's query set.

    For every query, runs the cost-based optimizer's prediction
    (:func:`predict_workload`) next to the measured six-strategy grid
    (:func:`run_workload`, reused from ``grids`` when supplied) and records
    whether the predicted winner equals the measured one.  The returned
    report is JSON-serializable — the benchmark suite writes it out as
    ``BENCH_optimizer.json``.
    """
    from ..workloads.registry import PAPER_ORDER

    names = tuple(names) or PAPER_ORDER
    rows: list[dict[str, object]] = []
    for name in names:
        report = predict_workload(
            name, scale=scale, workers=workers, enforce_memory=enforce_memory
        )
        if grids is not None and name in grids:
            grid = grids[name]
        else:
            grid = run_workload(
                name,
                scale=scale,
                workers=workers,
                enforce_memory=enforce_memory,
                runtime=runtime,
            )
        measured = grid.best_strategy()
        rows.append(
            {
                "query": name,
                "predicted": report.choice,
                "measured": measured,
                "hit": report.choice == measured,
                "predicted_wall": {
                    cost.strategy: None if cost.predicted_oom else cost.wall_clock
                    for cost in report.costs
                },
                "predicted_fail": [
                    cost.strategy for cost in report.costs if cost.predicted_oom
                ],
                "measured_wall": {
                    strategy: None if result.failed else result.stats.wall_clock
                    for strategy, result in grid.results.items()
                },
                "measured_fail": [
                    strategy
                    for strategy, result in grid.results.items()
                    if result.failed
                ],
            }
        )
    hits = sum(1 for row in rows if row["hit"])
    return {
        "scale": scale,
        "workers": workers,
        "queries": rows,
        "hits": hits,
        "total": len(rows),
        "accuracy": hits / len(rows) if rows else 0.0,
    }


def format_accuracy(report: dict[str, object]) -> str:
    """Render an :func:`optimizer_accuracy` report as a readable matrix."""
    lines = [
        f"optimizer accuracy ({report['scale']}, p={report['workers']}): "
        f"{report['hits']}/{report['total']}"
    ]
    lines.append(f"{'query':>6} {'predicted':>10} {'measured':>10}  hit")
    for row in report["queries"]:
        mark = "yes" if row["hit"] else "NO"
        lines.append(
            f"{row['query']:>6} {row['predicted']:>10} {row['measured']:>10}  {mark}"
        )
    return "\n".join(lines)
