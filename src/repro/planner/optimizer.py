"""Cost-based strategy optimizer: pick the winning RS/BR/HC x HJ/TJ plan.

The paper's central claim (Secs. 4-5) is that cheap catalog statistics
*predict* which of the six evaluated configurations wins a query.  This
module is that prediction: :func:`estimate_costs` prices every strategy from
:class:`~repro.query.catalog.Catalog` statistics alone — no execution — and
:func:`optimize` lowers the cheapest one to a
:class:`~repro.planner.physical.PhysicalPlan` through the same lowering
functions an explicitly chosen strategy uses, so an ``"auto"`` execution is
bit-identical to naming the winner by hand.

The cost model mirrors the simulator's counted-cost accounting phase by
phase.  The engine defines ``wall_clock`` as the sum over phases of the
*maximum* per-worker charge (a communication round is as slow as its
slowest worker); the estimator prices each phase the same way:

- **shuffles** charge one unit per tuple sent plus one per tuple received;
  the receive side of a hash shuffle is scaled by a consumer-skew estimate
  ``max(1, p * f, p / V(key))`` where ``f`` is the heaviest key group's
  fraction of its relation (:meth:`Catalog.atom_max_group`) — every tuple
  of a heavy hitter lands on one worker;
- **hash joins** charge ``2*(|L| + |R|) + |out|`` per worker, with
  intermediate sizes from the System-R estimates of the left-deep plan;
- **Tributary joins** charge ``0.25 * n log2 n`` for sorting (the engine's
  ``SORT_COMPARISON_WEIGHT``) plus seeks estimated by the Sec. 5
  variable-order cost model, plus output materialization;
- **broadcast** replicates every non-anchor relation to all workers, and
  **HyperCube** replicates each atom ``prod of unbound dims`` times under
  the Algorithm-1 configuration — both computed from post-selection
  cardinalities exactly as the runtime's data-driven operators do.

Strategies whose estimated per-worker peak residency exceeds the cluster's
memory budget are predicted to FAIL (cost = infinity), reproducing the
paper's Fig. 9 outcome where RS_TJ runs out of memory on Q4.

Chosen plans are cached in a :class:`PlanCache` keyed on the *normalized*
query (rule name ignored), the catalog fingerprint (content digest of every
relation, so data mutation invalidates), and the cluster configuration
(workers, memory budget).

When prediction can miss: the System-R intermediate estimates assume
independence and can be off by orders of magnitude on correlated data; the
seek estimate prices the *best* variable order, not pathological ones; and
ties inside the estimate's error bars (strategies within a few percent)
can flip.  EXPLAIN prints the full per-strategy table so a miss is visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..engine.local import SORT_COMPARISON_WEIGHT
from ..hypercube.config import HyperCubeConfig, optimize_config
from ..leapfrog.variable_order import best_join_order, estimate_order_cost
from ..query.atoms import Atom, ConjunctiveQuery, Variable
from ..query.catalog import Catalog
from .binary import LeftDeepPlan, left_deep_plan, shared_variables
from .decompose import (
    Decomposition,
    HybridCatalog,
    enumerate_decompositions,
    estimate_intermediate,
    lower_hybrid,
    stage_one_query,
    stage_two_query,
)
from .physical import HYBRID_STRATEGY, PhysicalPlan, canonical_key, lower
from .plans import ALL_STRATEGIES, HC_TJ, RS_HJ, JoinKind, ShuffleKind, Strategy

#: the strategy name callers pass to request cost-based selection
AUTO_STRATEGY = "auto"

#: fallback pick for trivially-empty queries (an empty post-selection atom
#: makes every strategy produce zero rows; the regular shuffle moves the
#: least data doing so)
TRIVIAL_STRATEGY = "RS_HJ"


@dataclass(frozen=True)
class StrategyCost:
    """One strategy's predicted price, in the engine's counted units."""

    strategy: str
    #: predicted modeled wall clock (sum over phases of max worker charge)
    wall_clock: float
    #: predicted total CPU across workers
    total_cpu: float
    #: predicted tuples moved by every exchange of the plan
    tuples_shuffled: float
    #: predicted max per-worker resident tuples at the worst point
    peak_memory: float
    #: estimated sizes of the materialized intermediates (empty for the
    #: single-round Tributary strategies, which never materialize any)
    intermediate_sizes: tuple[float, ...] = ()
    #: whether the peak-memory estimate exceeds the cluster budget
    predicted_oom: bool = False
    #: extra shape description (hybrid rows carry their decomposition)
    detail: str = ""

    @property
    def cost(self) -> float:
        """The ranking objective: wall clock, infinite for predicted OOM."""
        return math.inf if self.predicted_oom else self.wall_clock


@dataclass(frozen=True)
class CostReport:
    """The optimizer's full decision: every strategy priced, one chosen."""

    query: ConjunctiveQuery
    workers: int
    memory_tuples: Optional[int]
    costs: tuple[StrategyCost, ...]
    choice: str
    #: True when an empty post-selection atom short-circuited costing
    trivial: bool = False
    #: multi-stage shapes priced alongside the pure strategies (at most the
    #: cheapest hybrid; empty when hybrid search was off or found no shape)
    hybrids: tuple[StrategyCost, ...] = ()
    #: the decomposition behind the cheapest hybrid row, for lowering
    hybrid_decomposition: Optional[Decomposition] = None

    def cost_of(self, strategy: str) -> StrategyCost:
        """Look up one strategy's predicted cost row (pure or hybrid)."""
        for entry in self.costs + self.hybrids:
            if entry.strategy == strategy:
                return entry
        raise KeyError(f"no cost entry for strategy {strategy!r}")

    def ranking(self) -> tuple[StrategyCost, ...]:
        """Cost rows sorted cheapest-first (predicted failures last)."""
        return tuple(
            sorted(self.costs + self.hybrids, key=lambda entry: entry.cost)
        )

    def render(self) -> str:
        """The per-strategy cost table EXPLAIN prints, cheapest first."""
        lines = [
            f"optimizer: predicted winner {self.choice} "
            f"(p={self.workers}"
            + (f", budget={self.memory_tuples:,}" if self.memory_tuples else "")
            + ")"
        ]
        if self.trivial:
            lines.append(
                "  trivial: an empty post-selection atom makes the result "
                "empty; costing short-circuited"
            )
        header = (
            f"  {'strategy':<8} {'est wall':>14} {'est cpu':>14} "
            f"{'est shuffled':>14} {'est peak mem':>13}"
        )
        lines.append(header)
        for entry in self.ranking():
            marker = " <- chosen" if entry.strategy == self.choice else ""
            if entry.predicted_oom:
                lines.append(
                    f"  {entry.strategy:<8} {'FAIL (OOM)':>14} {'-':>14} "
                    f"{entry.tuples_shuffled:>14,.0f} "
                    f"{entry.peak_memory:>13,.0f}{marker}"
                )
                continue
            lines.append(
                f"  {entry.strategy:<8} {entry.wall_clock:>14,.0f} "
                f"{entry.total_cpu:>14,.0f} {entry.tuples_shuffled:>14,.0f} "
                f"{entry.peak_memory:>13,.0f}{marker}"
            )
        for entry in self.hybrids:
            if entry.detail:
                lines.append(f"  {entry.strategy} shape: {entry.detail}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The estimator
# ----------------------------------------------------------------------


class _Estimator:
    """Shared per-query state for pricing all six strategies.

    Pulls every statistic through the :class:`Catalog` caches, so pricing
    six strategies costs one pass over the base relations, not six.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        catalog: Catalog,
        workers: int,
        memory_tuples: Optional[int],
        plan: Optional[LeftDeepPlan] = None,
        variable_order: Optional[Sequence[Variable]] = None,
    ) -> None:
        self.query = query
        self.catalog = catalog
        self.workers = max(1, workers)
        self.memory_tuples = memory_tuples
        self.atoms = {atom.alias: atom for atom in query.atoms}
        #: exact post-selection cardinalities, clamped >= 1 exactly like the
        #: runtime's _scanned_sizes (so Algorithm 1 sees identical inputs)
        self.cards = {
            atom.alias: max(1, catalog.atom_cardinality(atom))
            for atom in query.atoms
        }
        self.plan = plan or left_deep_plan(query, catalog)
        self.sizes = self._step_sizes()
        # seeks for the Tributary strategies: the Sec. 5 cost model's
        # per-level sizes for the order execution will actually use
        if variable_order is not None:
            join_set = set(query.join_variables())
            join_order = tuple(v for v in variable_order if v in join_set)
            self.order = estimate_order_cost(query, catalog, join_order)
        else:
            self.order = best_join_order(query, catalog)
        self.result_size = self.sizes[-1] if self.sizes else 1.0

    # -- shared sub-estimates ------------------------------------------------

    def _step_sizes(self) -> tuple[float, ...]:
        """Intermediate sizes along the plan order, skew-corrected.

        Starts from the System-R independence chain (the left-deep plan's
        ``estimated_sizes``) but anchors each step on the *exact* base-pair
        join size ``sum_v |L_v|*|R_v|`` (:meth:`Catalog.join_group_product`)
        scaled by the intermediate's blow-up over the base atom: on
        power-law data the heavy hitters dominate the join output, and the
        independence estimate misses them by orders of magnitude — exactly
        the intermediates that make the regular-shuffle plans lose.
        """
        order = self.plan.order
        sizes = [max(1.0, float(self.cards[order[0]]))]
        current_vars = self.atoms[order[0]].variables()
        joined = [order[0]]
        for step, alias in enumerate(order[1:], start=1):
            atom = self.atoms[alias]
            key = shared_variables(current_vars, atom)
            estimate = max(1.0, self.plan.estimated_sizes[step])
            if key:
                skewed = self._pair_estimate(joined, sizes[-1], atom, key)
                if skewed is not None:
                    estimate = max(estimate, skewed)
            else:
                estimate = sizes[-1] * float(self.cards[alias])  # cartesian
            sizes.append(max(1.0, estimate))
            joined.append(alias)
            current_vars = tuple(
                dict.fromkeys(tuple(current_vars) + atom.variables())
            )
        return tuple(sizes)

    def _pair_estimate(
        self,
        joined: Sequence[str],
        current_size: float,
        atom: Atom,
        key: Sequence[Variable],
    ) -> Optional[float]:
        """Skew-aware output size of joining the intermediate with ``atom``.

        The intermediate's key distribution is proxied by the base atoms
        already joined: a covering atom's exact pair product
        (:meth:`Catalog.join_group_product`) scaled by the intermediate's
        blow-up over that atom.  When no single joined atom covers the whole
        key, each key variable contributes its own skew-aware selectivity
        and the variables combine under independence — still anchored on
        the true heavy-hitter products per variable.  Returns ``None`` when
        some key variable has no covering atom at all.
        """
        right_size = float(self.cards[atom.alias])
        right_positions = self._key_positions(atom, key)
        whole: list[float] = []
        for prev_alias in joined:
            prev = self.atoms[prev_alias]
            prev_positions = self._key_positions(prev, key)
            if len(prev_positions) != len(key):
                continue  # this atom does not cover the whole key
            product = float(
                self.catalog.join_group_product(
                    prev, prev_positions, atom, right_positions
                )
            )
            blowup = current_size / max(1.0, float(self.cards[prev_alias]))
            whole.append(blowup * product)
        if whole:
            return min(whole)
        # per-variable decomposition: skew-aware selectivity per key
        # variable, combined under independence across the key
        selectivity = 1.0
        for variable in key:
            atom_position = atom.positions_of(variable)[:1]
            candidates: list[float] = []
            for prev_alias in joined:
                prev = self.atoms[prev_alias]
                if variable not in prev.variables():
                    continue
                product = float(
                    self.catalog.join_group_product(
                        prev, prev.positions_of(variable)[:1], atom, atom_position
                    )
                )
                blowup = current_size / max(1.0, float(self.cards[prev_alias]))
                candidates.append(blowup * product)
            if not candidates:
                return None
            selectivity *= min(candidates) / (current_size * right_size)
        return current_size * right_size * selectivity

    def _key_positions(self, atom: Atom, key: Sequence[Variable]) -> list[int]:
        return [atom.positions_of(v)[0] for v in key if v in atom.variables()]

    def _heavy_fraction(self, key: Sequence[Variable]) -> float:
        """The heaviest key group's fraction, maxed over covering atoms.

        Join steps multiply group sizes, so the intermediate's heavy-key
        fraction is at least the heaviest fraction among the base atoms
        that contain the key — the cheap lower bound we shuffle-price with.
        """
        fraction = 0.0
        for atom in self.query.atoms:
            positions = self._key_positions(atom, key)
            if len(positions) != len(key):
                continue  # atom does not cover the whole key
            size = self.cards[atom.alias]
            heavy = self.catalog.atom_max_group(atom, positions)
            fraction = max(fraction, heavy / size if size else 0.0)
        return fraction

    def _key_distinct(self, key: Sequence[Variable]) -> float:
        """Distinct key values, maxed over covering atoms (most optimistic)."""
        distinct = 1.0
        for atom in self.query.atoms:
            positions = self._key_positions(atom, key)
            if len(positions) != len(key):
                continue
            distinct = max(
                distinct,
                float(self.catalog.atom_prefix_count_positions(atom, positions)),
            )
        return distinct

    def _consumer_skew(self, key: Sequence[Variable]) -> float:
        """max load / average load estimate for a hash shuffle on ``key``.

        Two effects bound it from below: the heaviest key value's tuples all
        land on one worker (``p * heavy_fraction``), and a key with fewer
        distinct values than workers leaves consumers idle (``p / V(key)``).
        """
        if not key:
            return float(self.workers)  # broadcast-to-one degenerate case
        p = float(self.workers)
        skew = max(1.0, p * self._heavy_fraction(key))
        distinct = self._key_distinct(key)
        if distinct:
            skew = max(skew, min(p, p / distinct))
        return min(skew, p)

    def _partitioned_seeks(self, scale) -> float:
        """Per-worker LFTJ seek estimate over partitioned fragments.

        The Sec. 5 cost model prices a sequential LFTJ as
        ``sum_i prod_{j<=i} S_j``.  Partitioning shrinks one level's
        residual domain by ``scale(variable)``; deeper levels inherit the
        shrinkage through the running product.  A variable the partitioning
        does not constrain scales by 1 — its full level cost is paid on
        every worker, which is what makes a broadcast Tributary join on a
        late-anchored order expensive.
        """
        cost = 0.0
        product = 1.0
        for variable, size in zip(self.order.order, self.order.step_sizes):
            product *= size / max(1.0, scale(variable))
            cost += product
        return cost

    def _sort_units(self, tuples: float) -> float:
        """Counted sort cost of one fragment: weighted ``n log2 n``."""
        if tuples <= 1.0:
            return 0.0
        return SORT_COMPARISON_WEIGHT * tuples * math.log2(tuples)

    # -- the six strategies --------------------------------------------------

    def estimate(self, strategy: Strategy) -> StrategyCost:
        """Price one strategy (dispatch on its shuffle kind)."""
        if strategy.shuffle is ShuffleKind.REGULAR:
            return self._estimate_regular(strategy)
        if strategy.shuffle is ShuffleKind.BROADCAST:
            return self._estimate_broadcast(strategy)
        return self._estimate_hypercube(strategy)

    def _finish(
        self,
        strategy: Strategy,
        wall: float,
        cpu: float,
        shuffled: float,
        peak: float,
        intermediates: tuple[float, ...],
    ) -> StrategyCost:
        """Assemble the cost row and apply the memory-budget verdict."""
        predicted_oom = (
            self.memory_tuples is not None and peak > float(self.memory_tuples)
        )
        return StrategyCost(
            strategy=strategy.name,
            wall_clock=wall,
            total_cpu=cpu,
            tuples_shuffled=shuffled,
            peak_memory=peak,
            intermediate_sizes=intermediates,
            predicted_oom=predicted_oom,
        )

    def _estimate_regular(self, strategy: Strategy) -> StrategyCost:
        """RS_HJ / RS_TJ: shuffle both sides of every step, join locally."""
        p = float(self.workers)
        order = self.plan.order
        wall = cpu = shuffled = 0.0
        # scan residency: every atom's fragments are registered up front
        scan_resident = sum(self.cards[alias] for alias in order) / p
        resident = scan_resident
        peak = resident
        intermediates: list[float] = []
        current_vars: tuple[Variable, ...] = self.atoms[order[0]].variables()
        current_size = self.sizes[0]
        partition_key: Optional[frozenset[Variable]] = None

        for step, alias in enumerate(order[1:], start=1):
            atom = self.atoms[alias]
            join_vars = shared_variables(current_vars, atom)
            right_size = float(self.cards[alias])
            out_size = self.sizes[step]
            intermediates.append(out_size)

            if join_vars:
                key = canonical_key(join_vars)
                skew = self._consumer_skew(key)
                moved = right_size
                if partition_key != frozenset(key):
                    moved += current_size
                partition_key = frozenset(key)
                # send side spreads over producers; receive side is skewed
                phase_wall = moved / p + skew * moved / p
            else:
                # cartesian step: broadcast the disconnected atom
                skew = 1.0
                moved = right_size * p
                phase_wall = right_size + right_size
            shuffled += moved
            cpu += 2.0 * moved
            wall += phase_wall

            left_w = skew * current_size / p
            right_w = skew * right_size / p
            out_w = skew * out_size / p
            if strategy.join is JoinKind.HASH:
                wall += 2.0 * (left_w + right_w) + out_w
                cpu += 2.0 * (current_size + right_size) + out_size
                step_peak = resident + left_w + right_w + out_w
            else:
                sort_w = self._sort_units(left_w) + self._sort_units(right_w)
                join_w = left_w + right_w + out_w
                wall += sort_w + join_w
                cpu += p * sort_w + (current_size + right_size + out_size)
                # the merge join holds a sorted scratch copy of both inputs
                step_peak = resident + 2.0 * (left_w + right_w) + out_w
            peak = max(peak, step_peak)
            # the consumed inputs are released; the intermediate stays
            resident = scan_resident + out_w
            current_vars = tuple(
                dict.fromkeys(tuple(current_vars) + atom.variables())
            )
            current_size = out_size

        return self._finish(
            strategy, wall, cpu, shuffled, peak, tuple(intermediates)
        )

    def _anchor(self) -> str:
        """The broadcast anchor: largest post-selection input, earliest wins."""
        return max(
            (atom.alias for atom in self.query.atoms),
            key=lambda alias: self.cards[alias],
        )

    def _estimate_broadcast(self, strategy: Strategy) -> StrategyCost:
        """BR_HJ / BR_TJ: anchor the largest input, broadcast the rest."""
        p = float(self.workers)
        anchor = self._anchor()
        order = self.plan.order
        wall = cpu = shuffled = 0.0
        # broadcast phase: every producer sends its fragment p times; every
        # worker receives each non-anchor relation in full — no skew
        replicated = sum(
            self.cards[alias] for alias in order if alias != anchor
        )
        shuffled += replicated * p
        cpu += 2.0 * replicated * p
        wall += replicated + replicated
        # per-worker fragment sizes after the broadcast
        local = {
            alias: (self.cards[alias] / p if alias == anchor else float(self.cards[alias]))
            for alias in order
        }
        resident = sum(local.values())
        peak = resident
        intermediates: list[float] = []

        if strategy.join is JoinKind.TRIBUTARY:
            sort_w = sum(self._sort_units(size) for size in local.values())
            # only the hash partition of the anchor shrinks a worker's
            # search: the first anchor variable in the order divides the
            # running product by p, everything before it is paid in full
            anchor_vars = set(self.atoms[anchor].variables())
            state = {"divided": False}

            def anchor_scale(variable: Variable) -> float:
                if not state["divided"] and variable in anchor_vars:
                    state["divided"] = True
                    return p
                return 1.0

            seeks_w = self._partitioned_seeks(anchor_scale)
            out_w = self.result_size / p
            wall += sort_w + seeks_w + out_w
            cpu += p * (sort_w + seeks_w) + self.result_size
            peak = max(peak, 2.0 * resident + out_w)
            return self._finish(strategy, wall, cpu, shuffled, peak, ())

        # local left-deep hash pipeline on every worker
        anchored = order[0] == anchor
        current_w = local[order[0]]
        current_vars = self.atoms[order[0]].variables()
        for step, alias in enumerate(order[1:], start=1):
            anchored = anchored or alias == anchor
            out_size = self.sizes[step]
            intermediates.append(out_size)
            out_w = out_size / p if anchored else out_size
            right_w = local[alias]
            wall += 2.0 * (current_w + right_w) + out_w
            cpu += p * (2.0 * (current_w + right_w) + out_w)
            peak = max(peak, resident + out_w)
            resident = sum(local.values()) + out_w
            current_w = out_w
            current_vars = tuple(
                dict.fromkeys(tuple(current_vars) + self.atoms[alias].variables())
            )
        return self._finish(
            strategy, wall, cpu, shuffled, peak, tuple(intermediates)
        )

    def _hc_config(self) -> HyperCubeConfig:
        """Algorithm 1 on the post-selection cardinalities (as the runtime)."""
        return optimize_config(self.query, self.cards, self.workers)

    def _estimate_hypercube(self, strategy: Strategy) -> StrategyCost:
        """HC_HJ / HC_TJ: one HyperCube shuffle, one local round."""
        p = float(self.workers)
        config = self._hc_config()
        used = float(max(1, config.workers_used))
        dims = {v: float(config.dim(v)) for v in config.order}

        def replication(variables: Sequence[Variable]) -> float:
            bound = set(variables)
            copies = 1.0
            for variable, dim in dims.items():
                if variable not in bound:
                    copies *= dim
            return copies

        # hypercube shuffle: every atom replicated along its unbound dims
        wall = cpu = shuffled = 0.0
        skew = self._hc_skew(dims)
        received = 0.0
        for atom in self.query.atoms:
            moved = self.cards[atom.alias] * replication(atom.variables())
            shuffled += moved
            cpu += 2.0 * moved
            received += moved
        wall += received / p + skew * received / used
        local_total = {
            atom.alias: self.cards[atom.alias]
            * replication(atom.variables())
            for atom in self.query.atoms
        }
        local = {alias: total / used for alias, total in local_total.items()}
        resident = skew * sum(local.values())
        peak = resident
        intermediates: list[float] = []

        if strategy.join is JoinKind.TRIBUTARY:
            sort_w = sum(self._sort_units(size * skew) for size in local.values())
            # each hypercube dimension hashes its variable into dim buckets,
            # shrinking that level's residual domain on every worker
            seeks_w = self._partitioned_seeks(lambda v: dims.get(v, 1.0))
            out_w = skew * self.result_size / used
            wall += sort_w + seeks_w + out_w
            cpu += used * (sort_w + seeks_w) + self.result_size
            peak = max(peak, 2.0 * resident + out_w)
            return self._finish(strategy, wall, cpu, shuffled, peak, ())

        # local left-deep hash pipeline over the hypercube fragments
        order = self.plan.order
        current_vars = self.atoms[order[0]].variables()
        current_w = skew * local[order[0]]
        current_total = local_total[order[0]]
        for step, alias in enumerate(order[1:], start=1):
            out_size = self.sizes[step]
            intermediates.append(out_size)
            out_vars = tuple(
                dict.fromkeys(tuple(current_vars) + self.atoms[alias].variables())
            )
            out_total = out_size * replication(out_vars)
            out_w = skew * out_total / used
            right_w = skew * local[alias]
            wall += 2.0 * (current_w + right_w) + out_w
            cpu += 2.0 * (current_total + local_total[alias]) + out_total
            peak = max(peak, resident + out_w)
            resident = skew * sum(local.values()) + out_w
            current_vars = out_vars
            current_w = out_w
            current_total = out_total
        return self._finish(
            strategy, wall, cpu, shuffled, peak, tuple(intermediates)
        )

    def _hc_skew(self, dims: Mapping[Variable, float]) -> float:
        """Receive skew of the HyperCube shuffle (Table 3's ~1.05).

        Each dimension hashes one variable into ``dim`` buckets, so a heavy
        value concentrates at most ``heavy_fraction * dim`` of its atom's
        tuples on one coordinate — far gentler than a p-way hash shuffle.
        """
        skew = 1.0
        for atom in self.query.atoms:
            size = self.cards[atom.alias]
            if not size:
                continue
            for variable, dim in dims.items():
                if dim <= 1.0 or variable not in atom.variables():
                    continue
                positions = atom.positions_of(variable)[:1]
                heavy = self.catalog.atom_max_group(atom, positions)
                skew = max(skew, min(dim, dim * heavy / size))
        return skew


def _estimate_hybrid(
    query: ConjunctiveQuery,
    catalog: Catalog,
    workers: int,
    memory_tuples: Optional[int],
    decomposition: Decomposition,
) -> StrategyCost:
    """Price one hybrid shape: RS_HJ stage, boundary, HC_TJ stage.

    Stage one is priced by the regular-shuffle estimator on the stage-one
    subquery; the stage boundary charges one unit per stage-one output tuple
    (the re-scan/projection) spread evenly over workers; stage two is priced
    by the HyperCube estimator on the residual subquery, reading the
    intermediate's statistics through a :class:`HybridCatalog` overlay.
    The phases are sequential, so walls and CPU add and peak residency is
    the worse of the two stages.
    """
    stage_one = stage_one_query(query, decomposition)
    stage_two = stage_two_query(query, decomposition)
    overlay = {
        decomposition.alias: estimate_intermediate(query, catalog, decomposition)
    }
    first = _Estimator(stage_one, catalog, workers, memory_tuples)
    one = first._estimate_regular(RS_HJ)
    boundary_cpu = first.result_size
    boundary_wall = first.result_size / max(1, workers)
    second = _Estimator(
        stage_two, HybridCatalog(catalog, overlay), workers, memory_tuples
    )
    two = second._estimate_hypercube(HC_TJ)
    return StrategyCost(
        strategy=HYBRID_STRATEGY,
        wall_clock=one.wall_clock + boundary_wall + two.wall_clock,
        total_cpu=one.total_cpu + boundary_cpu + two.total_cpu,
        tuples_shuffled=one.tuples_shuffled + two.tuples_shuffled,
        peak_memory=max(one.peak_memory, two.peak_memory),
        intermediate_sizes=(
            one.intermediate_sizes
            + (overlay[decomposition.alias].cardinality,)
            + two.intermediate_sizes
        ),
        predicted_oom=one.predicted_oom or two.predicted_oom,
        detail=decomposition.describe(),
    )


def estimate_costs(
    query: ConjunctiveQuery,
    catalog: Catalog,
    workers: int = 64,
    memory_tuples: Optional[int] = None,
    plan: Optional[LeftDeepPlan] = None,
    variable_order: Optional[Sequence[Variable]] = None,
    hybrid: bool = False,
) -> CostReport:
    """Price all six strategies for a query from catalog statistics alone.

    Returns a :class:`CostReport` whose ``choice`` is the cheapest predicted
    strategy (ties break in the paper's presentation order, matching the
    measured grid's tie-breaking).  A query with an empty post-selection
    atom short-circuits to a trivial report — every strategy returns zero
    rows, so the least data movement wins by fiat and no cost ratios are
    formed over zero counts.

    With ``hybrid=True`` the search additionally enumerates multi-stage
    binary+WCOJ decompositions (:func:`enumerate_decompositions`); the
    cheapest shape is reported in ``hybrids`` and can win ``choice``.
    ``costs`` always holds exactly the six pure rows either way.
    """
    if catalog.empty_atoms(query):
        costs = tuple(
            StrategyCost(
                strategy=strategy.name,
                wall_clock=0.0,
                total_cpu=0.0,
                tuples_shuffled=0.0,
                peak_memory=0.0,
            )
            for strategy in ALL_STRATEGIES
        )
        return CostReport(
            query=query,
            workers=workers,
            memory_tuples=memory_tuples,
            costs=costs,
            choice=TRIVIAL_STRATEGY,
            trivial=True,
        )
    estimator = _Estimator(
        query, catalog, workers, memory_tuples,
        plan=plan, variable_order=variable_order,
    )
    costs = tuple(estimator.estimate(strategy) for strategy in ALL_STRATEGIES)
    hybrids: tuple[StrategyCost, ...] = ()
    hybrid_decomposition: Optional[Decomposition] = None
    if hybrid:
        shapes = enumerate_decompositions(query)
        if shapes:
            priced = [
                (_estimate_hybrid(query, catalog, workers, memory_tuples, d), d)
                for d in shapes
            ]
            best, hybrid_decomposition = min(
                priced, key=lambda pair: (pair[0].cost, pair[0].detail)
            )
            hybrids = (best,)
    choice = min(costs + hybrids, key=lambda entry: entry.cost).strategy
    if all(entry.predicted_oom for entry in costs + hybrids):
        choice = TRIVIAL_STRATEGY  # everything predicted to fail: move least
    return CostReport(
        query=query,
        workers=workers,
        memory_tuples=memory_tuples,
        costs=costs,
        choice=choice,
        hybrids=hybrids,
        hybrid_decomposition=hybrid_decomposition,
    )


# ----------------------------------------------------------------------
# The plan cache
# ----------------------------------------------------------------------


def normalize_query(query: ConjunctiveQuery) -> str:
    """The cache's query key: the rule with its name stripped.

    Two rules that differ only in their head predicate name plan
    identically, so they share a cache entry.
    """
    head = ", ".join(repr(v) for v in query.head)
    body = ", ".join(repr(a) for a in query.atoms)
    if query.comparisons:
        body += ", " + ", ".join(repr(c) for c in query.comparisons)
    return f"({head}) :- {body}"


@dataclass(frozen=True)
class OptimizedPlan:
    """The optimizer's product: the decision plus the executable plan."""

    report: CostReport
    physical: PhysicalPlan
    #: True when this came out of the plan cache without re-costing
    cache_hit: bool = False

    @property
    def choice(self) -> str:
        """The chosen strategy name."""
        return self.report.choice


@dataclass
class PlanCache:
    """Memoizes optimizer decisions per (query, data, cluster) triple.

    The key is ``(normalized query, catalog fingerprint, workers,
    memory budget)``: renaming the rule still hits, mutating any relation
    (the fingerprint digests relation contents) misses, and a different
    cluster shape re-costs.  Physical plans are pure data and execute on
    any cluster of the keyed shape, so cached entries are shared freely.
    """

    entries: dict[tuple, OptimizedPlan] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def key(
        self,
        query: ConjunctiveQuery,
        catalog: Catalog,
        workers: int,
        memory_tuples: Optional[int],
    ) -> tuple:
        """Build the cache key for one lookup."""
        return (
            normalize_query(query),
            catalog.fingerprint(),
            workers,
            memory_tuples,
        )

    def lookup(self, key: tuple) -> Optional[OptimizedPlan]:
        """A cached decision, marked as a hit, or None."""
        entry = self.entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return OptimizedPlan(
            report=entry.report, physical=entry.physical, cache_hit=True
        )

    def store(self, key: tuple, plan: OptimizedPlan) -> None:
        """Insert one decision."""
        self.entries[key] = plan

    def clear(self) -> None:
        """Drop all entries and counters (tests and data reloads)."""
        self.entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self.entries)


#: the process-wide cache ``strategy="auto"`` executions share
GLOBAL_PLAN_CACHE = PlanCache()


def optimize(
    query: ConjunctiveQuery,
    catalog: Catalog,
    workers: int = 64,
    memory_tuples: Optional[int] = None,
    plan: Optional[LeftDeepPlan] = None,
    variable_order: Optional[Sequence[Variable]] = None,
    cache: Optional[PlanCache] = GLOBAL_PLAN_CACHE,
) -> OptimizedPlan:
    """Cost every strategy, lower the winner, and cache the result.

    The winner is lowered through :func:`~repro.planner.physical.lower`
    with exactly the arguments an explicit-strategy execution would use, so
    ``strategy="auto"`` output is bit-identical to naming the chosen
    strategy by hand.  Pass ``cache=None`` to bypass caching (the explicit
    ``plan``/``variable_order`` overrides also bypass it — the cache key
    does not describe them).
    """
    use_cache = cache is not None and plan is None and variable_order is None
    key: Optional[tuple] = None
    if use_cache:
        key = cache.key(query, catalog, workers, memory_tuples)
        cached = cache.lookup(key)
        if cached is not None:
            return cached
    report = estimate_costs(
        query, catalog, workers, memory_tuples,
        plan=plan, variable_order=variable_order,
        # hybrid shapes ignore the pure-strategy plan/order overrides, so
        # only search them when the caller left planning entirely to us
        hybrid=plan is None and variable_order is None,
    )
    if report.choice == HYBRID_STRATEGY:
        physical = lower_hybrid(
            query, catalog, decomposition=report.hybrid_decomposition
        )
    else:
        physical = lower(
            query, report.choice, catalog, plan=plan, variable_order=variable_order
        )
    optimized = OptimizedPlan(report=report, physical=physical)
    if use_cache and key is not None:
        cache.store(key, optimized)
    return optimized
