"""Query decomposition into hybrid multi-round plans.

The paper's Sec. 3 evaluates each query under *one* strategy end to end —
either a binary-join cascade or a single multiway Tributary round.  "Fast
Distributed Complex Join Processing" (arXiv 2102.13370) shows complex
queries (paths feeding a cycle, like Q8) win by decomposing into multi-round
plans that mix both: hash-join the selective subquery first, then
HyperCube-shuffle the materialized intermediate into a worst-case-optimal
round over the residual atoms.

This module is that decomposition pass:

- :func:`enumerate_decompositions` splits a query's hypergraph into every
  valid (connected binary stage, residual WCOJ stage) pair;
- :func:`estimate_intermediate` prices the stage-boundary intermediate from
  catalog statistics (System-R chain anchored on exact pair products);
- :class:`HybridCatalog` overlays those estimates on a real
  :class:`~repro.query.catalog.Catalog` so the existing variable-order and
  left-deep machinery price the residual stage against the *pseudo-atom*
  intermediate exactly like a base relation;
- :func:`lower_hybrid` lowers a chosen :class:`Decomposition` to a
  multi-stage :class:`~repro.planner.physical.PhysicalPlan`: the shared
  scan round, the stage-1 regular shuffle-then-hash-join pipeline, a stage
  boundary (:class:`~repro.planner.physical.ScanIntermediate` projecting
  the stage-1 output onto the residual-facing schema, then a per-stage
  :class:`~repro.planner.physical.ConfigureHyperCube` and HyperCube
  exchanges re-partitioning the intermediate alongside the residual scans),
  and a final Tributary round on the configuration's workers.

A decomposition is *valid* when the binary stage is connected, both stages
keep at least two atoms (a one-atom residual is just a binary cascade with
an extra sort, and a one-atom binary stage is the pure HC plan), and the
stages share at least one variable (a cartesian boundary never helps).  The
intermediate's schema keeps exactly the stage-1 variables the residual
stage can still observe: join variables with residual atoms, head
variables, and stage-1 variables of cross-stage comparisons.  Dropping the
rest is safe projection pushdown; when columns are dropped the boundary
de-duplicates (full queries never drop columns, so their boundary is a
pure rename and stays duplicate-free).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from itertools import combinations
from typing import Optional, Sequence

from ..engine.local import scanned_query
from ..leapfrog.variable_order import best_join_order, full_variable_order
from ..query.atoms import Atom, ConjunctiveQuery, Variable
from ..query.catalog import Catalog
from .binary import left_deep_plan
from .physical import (
    HYBRID_STRATEGY,
    LOCAL_HC,
    RESULT_ROWS,
    ConfigureHyperCube,
    Exchange,
    ExchangeKind,
    LocalTributaryJoin,
    PhysicalOp,
    PhysicalPlan,
    Round,
    ScanIntermediate,
    _regular_rounds,
    _scan_round,
)
from .plans import RS_HJ


@dataclass(frozen=True)
class Decomposition:
    """One hybrid plan shape: a binary stage feeding a residual WCOJ stage.

    ``stage_one`` and ``residual`` partition the query's atom aliases (in
    atom order); ``keep`` is the intermediate's schema (the stage-1
    variables the residual stage observes); ``alias`` names the pseudo
    relation the intermediate is exposed as; ``dedup`` records whether the
    boundary projection dropped columns and must de-duplicate.
    """

    stage_one: tuple[str, ...]
    residual: tuple[str, ...]
    keep: tuple[Variable, ...]
    alias: str
    dedup: bool

    def describe(self) -> str:
        """Compact shape rendering for cost tables and EXPLAIN output."""
        keep = ",".join(v.name for v in self.keep)
        return (
            f"{'*'.join(self.stage_one)} -> {self.alias}({keep}) -> "
            f"HC[{', '.join((self.alias,) + self.residual)}]"
        )

    def intermediate_atom(self) -> Atom:
        """The intermediate as a scannable pseudo-atom."""
        return Atom(relation=self.alias, terms=self.keep)


def _connected(atoms: Sequence[Atom]) -> bool:
    """Whether the atoms form one connected component under shared variables."""
    if not atoms:
        return False
    seen = {0}
    frontier = [0]
    varsets = [set(atom.variables()) for atom in atoms]
    while frontier:
        current = frontier.pop()
        for index, other in enumerate(varsets):
            if index not in seen and varsets[current] & other:
                seen.add(index)
                frontier.append(index)
    return len(seen) == len(atoms)


def intermediate_alias(query: ConjunctiveQuery) -> str:
    """A pseudo-relation name not colliding with the query's aliases."""
    taken = {atom.alias for atom in query.atoms}
    number = 1
    while f"I{number}" in taken:
        number += 1
    return f"I{number}"


def enumerate_decompositions(query: ConjunctiveQuery) -> tuple[Decomposition, ...]:
    """Every valid hybrid shape of a query, in deterministic order.

    Queries with fewer than four atoms admit no hybrid shape (both stages
    need at least two atoms), so the pure-strategy search space is
    untouched for the paper's triangle and two-path queries.
    """
    atoms = list(query.atoms)
    count = len(atoms)
    if count < 4:
        return ()
    head = set(query.head)
    alias = intermediate_alias(query)
    shapes: list[Decomposition] = []
    for size in range(2, count - 1):
        for chosen in combinations(range(count), size):
            picked = [atoms[index] for index in chosen]
            if not _connected(picked):
                continue
            stage_vars_ordered = tuple(
                dict.fromkeys(v for atom in picked for v in atom.variables())
            )
            stage_vars = set(stage_vars_ordered)
            residual_atoms = [
                atom for index, atom in enumerate(atoms) if index not in chosen
            ]
            residual_vars = {
                v for atom in residual_atoms for v in atom.variables()
            }
            cross: set[Variable] = set()
            for comparison in query.comparisons:
                comp_vars = set(comparison.variables())
                if comp_vars & stage_vars and not comp_vars <= stage_vars:
                    cross |= comp_vars & stage_vars
            keep = tuple(
                v
                for v in stage_vars_ordered
                if v in residual_vars or v in head or v in cross
            )
            if not set(keep) & residual_vars:
                continue  # cartesian stage boundary: never a useful shape
            shapes.append(
                Decomposition(
                    stage_one=tuple(atom.alias for atom in picked),
                    residual=tuple(atom.alias for atom in residual_atoms),
                    keep=keep,
                    alias=alias,
                    dedup=len(keep) < len(stage_vars_ordered),
                )
            )
    return tuple(shapes)


def stage_one_query(
    query: ConjunctiveQuery, decomposition: Decomposition
) -> ConjunctiveQuery:
    """The binary stage as a standalone subquery (head = kept schema)."""
    chosen = set(decomposition.stage_one)
    atoms = tuple(atom for atom in query.atoms if atom.alias in chosen)
    stage_vars = {v for atom in atoms for v in atom.variables()}
    comparisons = tuple(
        c for c in query.comparisons if set(c.variables()) <= stage_vars
    )
    return ConjunctiveQuery(
        name=f"{query.name}~s1",
        head=decomposition.keep,
        atoms=atoms,
        comparisons=comparisons,
    )


def stage_two_query(
    query: ConjunctiveQuery, decomposition: Decomposition
) -> ConjunctiveQuery:
    """The residual WCOJ stage over the intermediate plus residual atoms.

    Atoms are the *original* residual atoms (for catalog statistics) plus
    the intermediate pseudo-atom; comparisons are everything the binary
    stage did not fully enforce — each such comparison's variables are all
    visible here (stage-1 variables it touches are in ``keep`` by
    construction).
    """
    chosen = set(decomposition.stage_one)
    stage_vars = {
        v
        for atom in query.atoms
        if atom.alias in chosen
        for v in atom.variables()
    }
    residual_atoms = tuple(
        atom for atom in query.atoms if atom.alias not in chosen
    )
    atoms = (decomposition.intermediate_atom(),) + residual_atoms
    body_vars = {v for atom in atoms for v in atom.variables()}
    comparisons = []
    for comparison in query.comparisons:
        comp_vars = set(comparison.variables())
        if comp_vars <= stage_vars:
            continue  # fully enforced by the binary stage
        assert comp_vars <= body_vars, (
            f"comparison {comparison!r} not covered by either stage"
        )
        comparisons.append(comparison)
    return ConjunctiveQuery(
        name=f"{query.name}~s2",
        head=query.head,
        atoms=atoms,
        comparisons=tuple(comparisons),
    )


@dataclass
class IntermediateStats:
    """Estimated statistics of one stage-boundary intermediate."""

    cardinality: float
    distinct: dict[Variable, float]


def estimate_intermediate(
    query: ConjunctiveQuery,
    catalog: Catalog,
    decomposition: Decomposition,
) -> IntermediateStats:
    """Price the intermediate from catalog statistics alone.

    The raw size is the binary stage's System-R left-deep chain estimate;
    per-variable distinct counts are bounded by any covering base atom's
    post-selection distinct count (the join only ever *narrows* a column's
    value set).  A de-duplicating boundary caps the size by the product of
    kept-column distincts.
    """
    stage = stage_one_query(query, decomposition)
    plan = left_deep_plan(stage, catalog)
    raw = max(1.0, float(plan.estimated_sizes[-1]))
    distinct: dict[Variable, float] = {}
    for variable in decomposition.keep:
        bound = math.inf
        for atom in stage.atoms:
            positions = atom.positions_of(variable)
            if positions:
                bound = min(
                    bound,
                    float(
                        catalog.atom_prefix_count_positions(
                            atom, positions[:1]
                        )
                    ),
                )
        distinct[variable] = max(1.0, min(bound, raw))
    cardinality = raw
    if decomposition.dedup:
        product = 1.0
        for variable in decomposition.keep:
            product *= distinct[variable]
        cardinality = min(cardinality, product)
    return IntermediateStats(
        cardinality=max(1.0, cardinality), distinct=distinct
    )


class HybridCatalog:
    """A :class:`Catalog` facade overlaying estimated intermediate stats.

    Statistics requests for pseudo-atoms (relation names in ``estimates``)
    are answered from the overlay; everything else delegates to the base
    catalog.  This lets :func:`~repro.planner.binary.left_deep_plan`, the
    Sec. 5 variable-order model, and the optimizer's estimator price the
    residual stage with the intermediate as a first-class relation.
    """

    def __init__(
        self, base: Catalog, estimates: dict[str, IntermediateStats]
    ) -> None:
        self.base = base
        self.estimates = estimates

    def _overlay(self, atom: Atom) -> Optional[IntermediateStats]:
        return self.estimates.get(atom.relation)

    def atom_cardinality(self, atom: Atom) -> int:
        """Post-selection cardinality, estimated for pseudo-atoms."""
        overlay = self._overlay(atom)
        if overlay is None:
            return self.base.atom_cardinality(atom)
        return max(1, int(round(overlay.cardinality)))

    def atom_prefix_count_positions(
        self, atom: Atom, positions: Sequence[int]
    ) -> int:
        """Distinct values at ``positions``, estimated for pseudo-atoms."""
        overlay = self._overlay(atom)
        if overlay is None:
            return self.base.atom_prefix_count_positions(atom, positions)
        positions = tuple(positions)
        if not positions:
            return 1
        product = 1.0
        for position in positions:
            term = atom.terms[position]
            product *= overlay.distinct.get(term, overlay.cardinality)
        return max(1, int(round(min(product, overlay.cardinality))))

    def atom_max_group(self, atom: Atom, positions: Sequence[int]) -> int:
        """Heaviest key-group size; uniform-groups estimate for pseudo-atoms."""
        overlay = self._overlay(atom)
        if overlay is None:
            return self.base.atom_max_group(atom, positions)
        values = self.atom_prefix_count_positions(atom, positions)
        return max(1, int(math.ceil(overlay.cardinality / max(1, values))))

    def join_group_product(
        self,
        left: Atom,
        left_positions: Sequence[int],
        right: Atom,
        right_positions: Sequence[int],
    ) -> int:
        """Pairwise join size; independence fallback once a side is estimated."""
        if self._overlay(left) is None and self._overlay(right) is None:
            return self.base.join_group_product(
                left, left_positions, right, right_positions
            )
        left_count = self.atom_cardinality(left)
        right_count = self.atom_cardinality(right)
        left_values = self.atom_prefix_count_positions(left, left_positions)
        right_values = self.atom_prefix_count_positions(right, right_positions)
        values = max(1, max(left_values, right_values))
        return max(1, int(round(left_count * right_count / values)))

    def empty_atoms(self, query: ConjunctiveQuery) -> tuple[str, ...]:
        """Aliases whose (possibly estimated) cardinality is zero."""
        return tuple(
            atom.alias
            for atom in query.atoms
            if self.atom_cardinality(atom) == 0
        )

    def __getattr__(self, name: str):
        """Delegate every other statistic to the base catalog."""
        return getattr(self.base, name)


#: nominal cluster size the explicit-``HYBRID`` shape ranking prices
#: against — lowering is otherwise workers-agnostic (the HyperCube
#: configuration binds at run time), and shape *ranking* is stable across
#: realistic cluster sizes, so one fixed p keeps plans deterministic
DEFAULT_SHAPE_WORKERS = 64


def default_decomposition(
    query: ConjunctiveQuery, catalog: Catalog
) -> Decomposition:
    """The shape an explicit ``strategy="HYBRID"`` run uses.

    Prices every shape with the optimizer's full hybrid estimator (stage-1
    binary chain + boundary + stage-2 HyperCube/Tributary round) against a
    nominal :data:`DEFAULT_SHAPE_WORKERS`-worker cluster and picks the
    cheapest, breaking ties on the rendered shape and then toward smaller
    binary stages — fully deterministic, and the same ranking
    ``--strategy auto`` searches.  Raises ``ValueError`` when the query
    admits no hybrid shape.
    """
    from .optimizer import _estimate_hybrid  # deferred: optimizer imports us

    shapes = enumerate_decompositions(query)
    if not shapes:
        raise ValueError(
            f"query {query.name} admits no hybrid decomposition "
            "(both stages need at least two atoms sharing a variable)"
        )
    return min(
        shapes,
        key=lambda shape: (
            _estimate_hybrid(
                query, catalog, DEFAULT_SHAPE_WORKERS, None, shape
            ).cost,
            shape.describe(),
            len(shape.stage_one),
            shape.stage_one,
        ),
    )


def lower_hybrid(
    query: ConjunctiveQuery,
    catalog: Catalog,
    decomposition: Optional[Decomposition] = None,
    variable_order: Optional[Sequence[Variable]] = None,
    hc_seed: int = 0,
) -> PhysicalPlan:
    """Lower a query to a multi-stage hybrid :class:`PhysicalPlan`.

    Stage 1 is the regular shuffle-then-hash-join pipeline over the binary
    stage's atoms (the RS_HJ lowering, reused verbatim); the stage boundary
    projects the stage-1 output onto the kept schema and re-partitions it —
    together with the residual scans — through a per-stage HyperCube
    configuration; stage 2 is one Tributary round on the configuration's
    workers.  Slot lineage threads through :class:`ScanIntermediate`, so
    checkpoint/recovery works at every round boundary unchanged.
    """
    if decomposition is None:
        decomposition = default_decomposition(query, catalog)
    stage1 = stage_one_query(query, decomposition)
    stage2_stats = stage_two_query(query, decomposition)
    stage2_local = scanned_query(stage2_stats)

    scan_round, pending = _scan_round(query)
    scan_round = replace(scan_round, stage=1)
    stage_vars = {v for atom in stage1.atoms for v in atom.variables()}
    stage1_pending = tuple(
        c for c in pending if set(c.variables()) <= stage_vars
    )
    cross_pending = tuple(
        c for c in pending if not set(c.variables()) <= stage_vars
    )
    slot_of = {atom.alias: atom.alias for atom in stage1.atoms}
    stage1_plan = left_deep_plan(stage1, catalog)
    step_rounds, stage1_slot, _stage1_vars = _regular_rounds(
        stage1, RS_HJ, stage1_plan, stage1_pending, slot_of
    )
    step_rounds = [replace(round_, stage=1) for round_ in step_rounds]

    overlay = {
        decomposition.alias: estimate_intermediate(
            query, catalog, decomposition
        )
    }
    hybrid_catalog = HybridCatalog(catalog, overlay)
    if variable_order is not None:
        order = tuple(variable_order)
    else:
        best = best_join_order(stage2_stats, hybrid_catalog)
        order = full_variable_order(stage2_stats, best.order)

    intermediate = decomposition.intermediate_atom()
    residual_atoms = {
        atom.alias: atom
        for atom in query.atoms
        if atom.alias in set(decomposition.residual)
    }
    aliases = (decomposition.alias,) + decomposition.residual
    boundary_ops: list[PhysicalOp] = [
        ScanIntermediate(
            input=stage1_slot,
            out=decomposition.alias,
            variables=decomposition.keep,
            phase="stage boundary",
            dedup=decomposition.dedup,
        ),
        ConfigureHyperCube(
            aliases=aliases, seed=hc_seed, query=stage2_local
        ),
        Exchange(
            kind=ExchangeKind.HYPERCUBE,
            input=decomposition.alias,
            out=f"{decomposition.alias}@hc",
            atom=intermediate,
            name=f"HCS {decomposition.alias}",
            phase="hypercube shuffle",
        ),
    ]
    for alias in decomposition.residual:
        boundary_ops.append(
            Exchange(
                kind=ExchangeKind.HYPERCUBE,
                input=alias,
                out=f"{alias}@hc",
                atom=residual_atoms[alias],
                name=f"HCS {alias}",
                phase="hypercube shuffle",
            )
        )
    boundary_round = Round(
        label="stage boundary", ops=tuple(boundary_ops), stage=2
    )

    local = LocalTributaryJoin(
        query=stage2_local,
        inputs=tuple((alias, f"{alias}@hc") for alias in aliases),
        out="result",
        order=order,
    )
    tributary_round = Round(
        label="local tributary join",
        ops=(local,),
        local_workers=LOCAL_HC,
        stage=2,
    )
    return PhysicalPlan(
        query=query,
        strategy=HYBRID_STRATEGY,
        rounds=(scan_round, *step_rounds, boundary_round, tributary_round),
        result="result",
        result_kind=RESULT_ROWS,
        dedup_full=True,
        left_deep=stage1_plan,
        variable_order=order,
        pending=cross_pending,
    )
