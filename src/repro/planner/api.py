"""Top-level convenience API.

>>> from repro import run_query, twitter_database
>>> db = twitter_database(nodes=500, edges=2000)
>>> result = run_query(
...     "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x).",
...     db, strategy="HC_TJ", workers=8)
>>> result.stats.tuples_shuffled > 0
True
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..engine.cluster import Cluster
from ..engine.faults import FaultsLike, PolicyLike
from ..engine.memory import MemoryBudget
from ..engine.runtime import RuntimeLike
from ..query.atoms import ConjunctiveQuery, Variable
from ..query.catalog import Catalog
from ..query.parser import parse_query
from ..storage.relation import Database
from .executor import ExecutionResult, execute, execute_physical
from .optimizer import AUTO_STRATEGY, optimize
from .physical import HYBRID_STRATEGY, lower
from .plans import ALL_STRATEGIES, Strategy
from .semijoin import execute_semijoin

QueryLike = Union[str, ConjunctiveQuery]


def _as_query(query: QueryLike) -> ConjunctiveQuery:
    if isinstance(query, ConjunctiveQuery):
        return query
    return parse_query(query)


def make_cluster(
    database: Database,
    workers: int = 64,
    memory_tuples: Optional[int] = None,
) -> Cluster:
    """Build and load a cluster over a database."""
    cluster = Cluster(workers, MemoryBudget(per_worker_tuples=memory_tuples))
    cluster.load(database)
    return cluster


def run_query(
    query: QueryLike,
    database: Database,
    strategy: Union[str, Strategy] = "HC_TJ",
    workers: int = 64,
    memory_tuples: Optional[int] = None,
    variable_order: Optional[Sequence[Variable]] = None,
    runtime: RuntimeLike = None,
    kernels: Optional[str] = None,
    faults: FaultsLike = None,
    recovery: PolicyLike = None,
) -> ExecutionResult:
    """Parse (if needed), plan, and execute a query on a fresh cluster.

    ``strategy`` is one of RS_HJ, RS_TJ, BR_HJ, BR_TJ, HC_HJ, HC_TJ,
    ``"SJ_HJ"`` for the semijoin-reduction plan on acyclic queries,
    ``"HYBRID"`` for the multi-stage binary+WCOJ plan
    (:mod:`~repro.planner.decompose`; the query needs at least four
    atoms), or ``"auto"`` to let the cost-based optimizer
    (:mod:`~repro.planner.optimizer`) pick the cheapest strategy — pure
    or hybrid — from catalog statistics; the result then carries the
    per-strategy cost table as ``result.cost_report``.
    ``runtime`` is ``"serial"`` (default), ``"parallel[:N]"`` (threads),
    ``"parallel:N:proc"`` (forked worker processes — the mode with real
    multicore speedup), or a
    :class:`~repro.engine.runtime.WorkerRuntime` instance.  ``kernels``
    pins the kernel backend (``"python"``/``"numpy"``) for this call;
    ``None`` keeps the process default (``REPRO_KERNELS``).
    ``faults``/``recovery`` enable deterministic fault injection — see
    :func:`~repro.planner.executor.execute_physical`.
    """
    parsed = _as_query(query)
    cluster = make_cluster(database, workers=workers, memory_tuples=memory_tuples)
    if isinstance(strategy, str) and strategy == AUTO_STRATEGY:
        optimized = optimize(
            parsed,
            Catalog(database),
            workers=workers,
            memory_tuples=memory_tuples,
            variable_order=variable_order,
        )
        result = execute_physical(
            optimized.physical,
            cluster,
            runtime=runtime,
            kernels=kernels,
            faults=faults,
            recovery=recovery,
        )
        result.cost_report = optimized.report
        return result
    if isinstance(strategy, str) and strategy == "SJ_HJ":
        return execute_semijoin(
            parsed, cluster, runtime=runtime, kernels=kernels,
            faults=faults, recovery=recovery,
        )
    if isinstance(strategy, str) and strategy == HYBRID_STRATEGY:
        physical = lower(
            parsed, HYBRID_STRATEGY, Catalog(database),
            variable_order=variable_order,
        )
        return execute_physical(
            physical, cluster, runtime=runtime, kernels=kernels,
            faults=faults, recovery=recovery,
        )
    if isinstance(strategy, str):
        strategy = Strategy.parse(strategy)
    return execute(
        parsed,
        cluster,
        strategy,
        variable_order=variable_order,
        runtime=runtime,
        kernels=kernels,
        faults=faults,
        recovery=recovery,
    )


def run_all_strategies(
    query: QueryLike,
    database: Database,
    workers: int = 64,
    memory_tuples: Optional[int] = None,
    runtime: RuntimeLike = None,
    kernels: Optional[str] = None,
) -> dict[str, ExecutionResult]:
    """Run a query under all six configurations (the paper's Figs. 3-17)."""
    parsed = _as_query(query)
    results = {}
    for strategy in ALL_STRATEGIES:
        cluster = make_cluster(database, workers=workers, memory_tuples=memory_tuples)
        results[strategy.name] = execute(
            parsed, cluster, strategy, runtime=runtime, kernels=kernels
        )
    return results
