"""The six shuffle x join strategies of the paper's evaluation (Sec. 3).

Shuffles: Regular (RS), Broadcast (BR), HyperCube (HC).
Joins: symmetric Hash Join (HJ), Tributary Join (TJ).

``RS_TJ`` degenerates to a pipeline of binary merge joins ("this is not what
Tributary join is designed for, but we include the result for
completeness"); the paper's headline configuration is ``HC_TJ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ShuffleKind(Enum):
    """The three data-reshuffling algorithms of Sec. 3."""

    REGULAR = "RS"
    BROADCAST = "BR"
    HYPERCUBE = "HC"


class JoinKind(Enum):
    """The two local join operators of Sec. 3."""

    HASH = "HJ"
    TRIBUTARY = "TJ"


@dataclass(frozen=True)
class Strategy:
    """One point of the paper's 3x2 configuration grid."""

    shuffle: ShuffleKind
    join: JoinKind

    @property
    def name(self) -> str:
        """The paper's strategy label, e.g. ``"HC_TJ"``."""
        return f"{self.shuffle.value}_{self.join.value}"

    def __repr__(self) -> str:
        return self.name

    @classmethod
    def parse(cls, name: str) -> "Strategy":
        """Parse a strategy label like ``"RS_HJ"`` (ValueError if unknown)."""
        try:
            shuffle_name, join_name = name.split("_")
            shuffle = next(s for s in ShuffleKind if s.value == shuffle_name)
            join = next(j for j in JoinKind if j.value == join_name)
        except (ValueError, StopIteration):
            valid = ", ".join(s.name for s in ALL_STRATEGIES)
            raise ValueError(f"unknown strategy {name!r}; valid: {valid}") from None
        return cls(shuffle, join)


RS_HJ = Strategy(ShuffleKind.REGULAR, JoinKind.HASH)
RS_TJ = Strategy(ShuffleKind.REGULAR, JoinKind.TRIBUTARY)
BR_HJ = Strategy(ShuffleKind.BROADCAST, JoinKind.HASH)
BR_TJ = Strategy(ShuffleKind.BROADCAST, JoinKind.TRIBUTARY)
HC_HJ = Strategy(ShuffleKind.HYPERCUBE, JoinKind.HASH)
HC_TJ = Strategy(ShuffleKind.HYPERCUBE, JoinKind.TRIBUTARY)

#: paper presentation order (Figs. 3, 4, 6, 9, 13, 14, 15, 17)
ALL_STRATEGIES: tuple[Strategy, ...] = (RS_HJ, RS_TJ, BR_HJ, BR_TJ, HC_HJ, HC_TJ)
