"""Left-deep binary join planning for the traditional strategies.

The paper assumes "a state of the art optimizer" chooses a good left-deep
join order (e.g. for Q6 it builds the triangle first).  We implement the
textbook greedy: start from the smallest (post-selection) atom, then
repeatedly extend with the connected atom whose estimated join output is
smallest, using the System-R style estimate

    |I join R| ~= |I| * |R| / prod over shared vars of max(V(I, v), V(R, v))

with distinct counts propagated through intermediates under independence.
Disconnected atoms (cross products) are deferred until no connected choice
remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..query.atoms import Atom, ConjunctiveQuery, Variable
from ..query.catalog import Catalog


@dataclass
class _SizeEstimate:
    """Estimated cardinality and per-variable distinct counts."""

    size: float
    distinct: dict[Variable, float]


def _atom_estimate(atom: Atom, catalog: Catalog) -> _SizeEstimate:
    size = float(max(1, catalog.atom_cardinality(atom)))
    distinct = {}
    for variable in atom.variables():
        position = atom.positions_of(variable)[0]
        count = catalog.atom_prefix_count_positions(atom, (position,))
        distinct[variable] = float(max(1, count))
    return _SizeEstimate(size=size, distinct=distinct)


def _join_estimate(left: _SizeEstimate, right: _SizeEstimate) -> _SizeEstimate:
    shared = set(left.distinct) & set(right.distinct)
    size = left.size * right.size
    for variable in shared:
        size /= max(left.distinct[variable], right.distinct[variable])
    distinct: dict[Variable, float] = {}
    for variable in set(left.distinct) | set(right.distinct):
        candidates = []
        if variable in left.distinct:
            candidates.append(left.distinct[variable])
        if variable in right.distinct:
            candidates.append(right.distinct[variable])
        distinct[variable] = min(min(candidates), max(1.0, size))
    return _SizeEstimate(size=max(1.0, size), distinct=distinct)


@dataclass(frozen=True)
class LeftDeepPlan:
    """An ordered sequence of atom aliases forming a left-deep join tree."""

    query_name: str
    order: tuple[str, ...]
    estimated_sizes: tuple[float, ...]  # estimated intermediate size after each step

    def __repr__(self) -> str:
        return f"LeftDeepPlan({' >< '.join(self.order)})"


def left_deep_plan(
    query: ConjunctiveQuery,
    catalog: Catalog,
) -> LeftDeepPlan:
    """Greedy minimum-intermediate left-deep join order."""
    estimates = {atom.alias: _atom_estimate(atom, catalog) for atom in query.atoms}
    remaining = {atom.alias: atom for atom in query.atoms}

    start = min(remaining, key=lambda alias: estimates[alias].size)
    order = [start]
    current = estimates[start]
    current_vars = set(remaining[start].variables())
    del remaining[start]
    sizes = [current.size]

    while remaining:
        connected = [
            alias
            for alias, atom in remaining.items()
            if current_vars & set(atom.variables())
        ]
        candidates = connected or list(remaining)
        best_alias = None
        best_estimate = None
        for alias in candidates:
            estimate = _join_estimate(current, estimates[alias])
            if best_estimate is None or estimate.size < best_estimate.size:
                best_alias, best_estimate = alias, estimate
        assert best_alias is not None and best_estimate is not None
        order.append(best_alias)
        current = best_estimate
        current_vars |= set(remaining[best_alias].variables())
        del remaining[best_alias]
        sizes.append(current.size)

    return LeftDeepPlan(
        query_name=query.name, order=tuple(order), estimated_sizes=tuple(sizes)
    )


def plan_from_order(
    query: ConjunctiveQuery,
    catalog: Catalog,
    order: Sequence[str],
) -> LeftDeepPlan:
    """Build a left-deep plan from an explicit alias order.

    Used to replay the exact plans the paper reports (e.g. Q4's Fig. 7
    plan) instead of the greedy planner's choice.
    """
    atoms = {atom.alias: atom for atom in query.atoms}
    if sorted(order) != sorted(atoms):
        raise ValueError(
            f"plan order {order} must cover the atoms {sorted(atoms)} exactly"
        )
    current = _atom_estimate(atoms[order[0]], catalog)
    sizes = [current.size]
    for alias in order[1:]:
        current = _join_estimate(current, _atom_estimate(atoms[alias], catalog))
        sizes.append(current.size)
    return LeftDeepPlan(
        query_name=query.name, order=tuple(order), estimated_sizes=tuple(sizes)
    )


def shared_variables(
    accumulated: Sequence[Variable], atom: Atom
) -> tuple[Variable, ...]:
    """Join variables between the accumulated intermediate and the next atom."""
    atom_vars = set(atom.variables())
    return tuple(v for v in accumulated if v in atom_vars)
