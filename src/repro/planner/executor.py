"""Distributed query execution for every shuffle x join strategy.

This is the counterpart of the paper's Myria deployment — but where the
strategies used to be six hand-written execution loops, they are now six
small *lowering* functions (:mod:`~repro.planner.physical`) producing an
explicit :class:`~repro.planner.physical.PhysicalPlan`, executed by the one
operator scheduler (:mod:`~repro.engine.scheduler`).  :func:`execute` is
the stable entry point: lower the query for the chosen strategy, run the
plan, and wrap rows + counted metrics into an :class:`ExecutionResult`;
:func:`execute_physical` runs an already-lowered plan (the seam EXPLAIN
ANALYZE and hybrid planners build on).

Plan shapes (see :mod:`~repro.planner.physical` for the operator IR):

- ``RS_*``  — left-deep pipeline: shuffle both inputs of every binary join
  on the join key (skipping re-shuffles when the intermediate is already
  partitioned on it), join locally; HJ uses the symmetric hash join, TJ uses
  a per-step binary merge join (a degenerate Tributary join).
- ``BR_*``  — keep the largest relation partitioned in place, broadcast all
  the others, then run the whole plan locally on every worker.
- ``HC_*``  — a single HyperCube shuffle of every atom (configuration from
  Sec. 4's Algorithm 1 unless one is supplied), then local evaluation: a
  left-deep hash-join tree for HJ or the full multiway Tributary join for
  TJ (variable order from the Sec. 5 cost model unless supplied).

Simulated out-of-memory (:class:`~repro.engine.memory.OutOfMemoryError`)
turns into a FAILed :class:`ExecutionResult` — the paper's Fig. 9 reports
exactly this outcome for RS_TJ on Q4.

The per-worker local-join phases run through a pluggable worker runtime
(:mod:`~repro.engine.runtime`); result rows and counted metrics are
identical across runtimes and kernel backends by construction, and a
differential suite pins them against golden captures of the historical
per-strategy executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..engine.cluster import Cluster
from ..engine.kernels import use_backend
from ..engine.memory import OutOfMemoryError
from ..engine.runtime import RuntimeLike, resolve_runtime
from ..engine.scheduler import OperatorTrace, run_plan
from ..engine.stats import ExecutionStats
from ..hypercube.config import HyperCubeConfig
from ..query.atoms import ConjunctiveQuery, Variable
from ..query.catalog import Catalog
from .binary import LeftDeepPlan
from .physical import PhysicalPlan, lower
from .plans import Strategy


@dataclass
class ExecutionResult:
    """Result rows plus everything observed while producing them."""

    rows: list[tuple[int, ...]]
    stats: ExecutionStats
    hc_config: Optional[HyperCubeConfig] = None
    variable_order: Optional[tuple[Variable, ...]] = None
    plan: Optional[LeftDeepPlan] = None
    #: the lowered plan that was executed (None only for early failures)
    physical: Optional[PhysicalPlan] = None
    #: per-operator execution trace (present when tracing was requested)
    trace: Optional[list[OperatorTrace]] = None

    @property
    def failed(self) -> bool:
        return self.stats.failed


def execute_physical(
    physical: PhysicalPlan,
    cluster: Cluster,
    runtime: RuntimeLike = None,
    kernels: Optional[str] = None,
    trace: Optional[list[OperatorTrace]] = None,
) -> ExecutionResult:
    """Run an already-lowered physical plan on a loaded cluster.

    Resets the cluster's memory budget, executes the plan through the
    scheduler under the requested kernel backend and worker runtime, and
    converts a simulated :class:`~repro.engine.memory.OutOfMemoryError`
    into a FAILed result.  Pass a list as ``trace`` to collect the
    per-operator :class:`~repro.engine.scheduler.OperatorTrace` stream
    (partial on failure).
    """
    if cluster.database is None:
        raise RuntimeError("cluster has no loaded database; call cluster.load()")
    stats = ExecutionStats(
        query=physical.query.name,
        strategy=physical.strategy,
        workers=cluster.workers,
    )
    worker_runtime = resolve_runtime(runtime)
    cluster.memory.reset()
    started = time.perf_counter()
    try:
        with use_backend(kernels):
            run = run_plan(physical, cluster, stats, worker_runtime, trace=trace)
        result = ExecutionResult(
            rows=run.rows,
            stats=stats,
            hc_config=run.hc_config,
            variable_order=physical.variable_order,
            plan=physical.left_deep,
            physical=physical,
            trace=trace,
        )
    except OutOfMemoryError as oom:
        stats.mark_failed(str(oom))
        result = ExecutionResult(
            rows=[], stats=stats, physical=physical, trace=trace
        )
    stats.elapsed_seconds = time.perf_counter() - started
    return result


def execute(
    query: ConjunctiveQuery,
    cluster: Cluster,
    strategy: Strategy,
    catalog: Optional[Catalog] = None,
    hc_config: Optional[HyperCubeConfig] = None,
    variable_order: Optional[Sequence[Variable]] = None,
    plan: Optional[LeftDeepPlan] = None,
    hc_seed: int = 0,
    runtime: RuntimeLike = None,
    kernels: Optional[str] = None,
    trace: Optional[list[OperatorTrace]] = None,
) -> ExecutionResult:
    """Run ``query`` on ``cluster`` with the given strategy.

    Lowers the query to a :class:`~repro.planner.physical.PhysicalPlan`
    and executes it via :func:`execute_physical`.  ``runtime`` selects how
    the per-worker local-join phases execute: ``"serial"`` (default),
    ``"parallel"``/``"parallel:N"``, or a
    :class:`~repro.engine.runtime.WorkerRuntime` instance.  ``kernels``
    pins the kernel backend (``"python"``/``"numpy"``) for this execution;
    ``None`` keeps the process-wide default (``REPRO_KERNELS``).  Result
    rows and counted metrics are identical across runtimes and kernel
    backends; only the real ``elapsed_seconds`` depends on them.
    """
    if cluster.database is None:
        raise RuntimeError("cluster has no loaded database; call cluster.load()")
    catalog = catalog or Catalog(cluster.database)
    physical = lower(
        query,
        strategy,
        catalog,
        plan=plan,
        hc_config=hc_config,
        variable_order=variable_order,
        hc_seed=hc_seed,
    )
    return execute_physical(
        physical, cluster, runtime=runtime, kernels=kernels, trace=trace
    )
