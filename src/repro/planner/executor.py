"""Distributed query execution for every shuffle x join strategy.

This is the counterpart of the paper's Myria deployment: given a query, a
loaded cluster, and one of the six strategies (Sec. 3), it runs the full
distributed plan — scans with selection pushdown, the chosen shuffle(s),
local joins per worker — collecting the exact metrics the paper reports
(tuples shuffled, producer/consumer skew per shuffle, per-worker CPU work by
phase, peak memory) and the result rows.

Plan shapes:

- ``RS_*``  — left-deep pipeline: shuffle both inputs of every binary join
  on the join key (skipping re-shuffles when the intermediate is already
  partitioned on it), join locally; HJ uses the symmetric hash join, TJ uses
  a per-step binary merge join (a degenerate Tributary join).
- ``BR_*``  — keep the largest relation partitioned in place, broadcast all
  the others, then run the whole plan locally on every worker.
- ``HC_*``  — a single HyperCube shuffle of every atom (configuration from
  Sec. 4's Algorithm 1 unless one is supplied), then local evaluation: a
  left-deep hash-join tree for HJ or the full multiway Tributary join for
  TJ (variable order from the Sec. 5 cost model unless supplied).

Simulated out-of-memory (:class:`~repro.engine.memory.OutOfMemoryError`)
turns into a FAILed :class:`ExecutionResult` — the paper's Fig. 9 reports
exactly this outcome for RS_TJ on Q4.

The per-worker local-join phases run through a pluggable worker runtime
(:mod:`~repro.engine.runtime`): each worker task records into an isolated
:class:`~repro.engine.runtime.WorkerLedger` merged back deterministically,
so :class:`~repro.engine.runtime.SerialRuntime` and
:class:`~repro.engine.runtime.ParallelRuntime` produce identical result
rows and counted metrics.

Memory accounting follows one model across all strategies: scans register
each atom's post-selection fragments as resident, shuffles move that
residency to the consumers (the scanned source fragments are released once
streamed out), and every join step releases its consumed inputs and
filter-dropped rows so only live intermediates count — the OOM model fires
on peak working set, not on a monotonically growing cumulative sum.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..engine.cluster import Cluster
from ..engine.frame import Frame, atom_frame
from ..engine.hash_join import apply_comparisons, symmetric_hash_join
from ..engine.kernels import use_backend
from ..engine.local import local_tributary_join, scanned_query
from ..engine.memory import MemorySink, OutOfMemoryError
from ..engine.runtime import RuntimeLike, WorkerRuntime, resolve_runtime
from ..engine.shuffle import broadcast, hypercube_shuffle, regular_shuffle
from ..engine.stats import ExecutionStats, StatsSink
from ..hypercube.config import HyperCubeConfig, optimize_config
from ..hypercube.mapping import HyperCubeMapping
from ..leapfrog.variable_order import best_join_order, full_variable_order
from ..query.atoms import Atom, Comparison, ConjunctiveQuery, Variable
from ..query.catalog import Catalog
from .binary import LeftDeepPlan, left_deep_plan, shared_variables
from .plans import JoinKind, ShuffleKind, Strategy


@dataclass
class ExecutionResult:
    """Result rows plus everything observed while producing them."""

    rows: list[tuple[int, ...]]
    stats: ExecutionStats
    hc_config: Optional[HyperCubeConfig] = None
    variable_order: Optional[tuple[Variable, ...]] = None
    plan: Optional[LeftDeepPlan] = None

    @property
    def failed(self) -> bool:
        return self.stats.failed


def _canonical(variables: Sequence[Variable]) -> tuple[Variable, ...]:
    """Canonical key ordering so co-partitioning checks are order-free."""
    return tuple(sorted(variables, key=lambda v: v.name))


def _scan_atoms(
    query: ConjunctiveQuery, cluster: Cluster, stats: ExecutionStats
) -> tuple[dict[str, list[Frame]], list[Comparison]]:
    """Scan every atom on every worker, pushing down constants and any
    comparison fully covered by a single atom.  Returns per-alias per-worker
    frames and the comparisons that remain for the join pipeline.

    Every post-selection fragment is registered as resident with the
    worker's memory budget — the same scan-residency accounting for all
    strategies, so cross-strategy peak-memory comparisons are
    apples-to-apples."""
    encoder = cluster.encoder()
    remaining: list[Comparison] = []
    coverable: dict[str, list[Comparison]] = {atom.alias: [] for atom in query.atoms}
    for comparison in query.comparisons:
        cover = [
            atom.alias
            for atom in query.atoms
            if set(comparison.variables()) <= set(atom.variables())
        ]
        if cover:
            for alias in cover:
                coverable[alias].append(comparison)
        else:
            remaining.append(comparison)

    frames: dict[str, list[Frame]] = {}
    for atom in query.atoms:
        per_worker: list[Frame] = []
        for worker in range(cluster.workers):
            relation = cluster.fragment_relation(atom.relation, worker)
            frame = atom_frame(atom, relation, encoder)
            for comparison in coverable[atom.alias]:
                index = {v: i for i, v in enumerate(frame.variables)}
                frame = Frame(
                    frame.variables,
                    [
                        row
                        for row in frame.rows
                        if comparison.evaluate(
                            {v: row[i] for v, i in index.items()}
                        )
                    ],
                )
            per_worker.append(frame)
        frames[atom.alias] = per_worker
        for worker, frame in enumerate(per_worker):
            if len(frame):
                cluster.memory.allocate(worker, len(frame), "scan")
                stats.record_memory(worker, cluster.memory.resident(worker))
    return frames, remaining


def _scanned_sizes(frames: Mapping[str, list[Frame]]) -> dict[str, int]:
    """Exact post-selection cardinality per atom alias."""
    return {
        alias: max(1, sum(len(f) for f in per_worker))
        for alias, per_worker in frames.items()
    }


def _finalize(
    query: ConjunctiveQuery,
    per_worker_rows: list[list[tuple[int, ...]]],
    head_indices: Optional[Sequence[int]],
    stats: ExecutionStats,
) -> list[tuple[int, ...]]:
    """Union worker outputs; project and de-duplicate non-full heads."""
    rows: list[tuple[int, ...]] = []
    for worker_rows in per_worker_rows:
        rows.extend(worker_rows)
    if head_indices is not None:
        rows = [tuple(row[i] for i in head_indices) for row in rows]
    if not query.is_full():
        rows = list(dict.fromkeys(rows))
    stats.result_count = len(rows)
    return rows


def execute(
    query: ConjunctiveQuery,
    cluster: Cluster,
    strategy: Strategy,
    catalog: Optional[Catalog] = None,
    hc_config: Optional[HyperCubeConfig] = None,
    variable_order: Optional[Sequence[Variable]] = None,
    plan: Optional[LeftDeepPlan] = None,
    hc_seed: int = 0,
    runtime: RuntimeLike = None,
    kernels: Optional[str] = None,
) -> ExecutionResult:
    """Run ``query`` on ``cluster`` with the given strategy.

    ``runtime`` selects how the per-worker local-join phases execute:
    ``"serial"`` (default), ``"parallel"``/``"parallel:N"``, or a
    :class:`~repro.engine.runtime.WorkerRuntime` instance.  ``kernels``
    pins the kernel backend (``"python"``/``"numpy"``) for this execution;
    ``None`` keeps the process-wide default (``REPRO_KERNELS``).  Result
    rows and counted metrics are identical across runtimes and kernel
    backends; only the real ``elapsed_seconds`` depends on them.
    """
    if cluster.database is None:
        raise RuntimeError("cluster has no loaded database; call cluster.load()")
    stats = ExecutionStats(
        query=query.name, strategy=strategy.name, workers=cluster.workers
    )
    catalog = catalog or Catalog(cluster.database)
    worker_runtime = resolve_runtime(runtime)
    cluster.memory.reset()
    started = time.perf_counter()
    result = ExecutionResult(rows=[], stats=stats)
    try:
        with use_backend(kernels):
            if strategy.shuffle is ShuffleKind.REGULAR:
                result = _execute_regular(
                    query, cluster, strategy, catalog, plan, stats, worker_runtime
                )
            elif strategy.shuffle is ShuffleKind.BROADCAST:
                result = _execute_broadcast(
                    query,
                    cluster,
                    strategy,
                    catalog,
                    plan,
                    variable_order,
                    stats,
                    worker_runtime,
                )
            else:
                result = _execute_hypercube(
                    query,
                    cluster,
                    strategy,
                    catalog,
                    plan,
                    hc_config,
                    variable_order,
                    hc_seed,
                    stats,
                    worker_runtime,
                )
    except OutOfMemoryError as oom:
        stats.mark_failed(str(oom))
        result = ExecutionResult(rows=[], stats=stats)
    stats.elapsed_seconds = time.perf_counter() - started
    return result


# ----------------------------------------------------------------------
# Regular shuffle (RS_HJ / RS_TJ)
# ----------------------------------------------------------------------


def _binary_local_join(
    strategy: Strategy,
    left: Frame,
    right: Frame,
    join_vars: Sequence[Variable],
    worker: int,
    stats: StatsSink,
    step: int,
    memory: MemorySink,
) -> Frame:
    phase = f"step{step}:join"
    if strategy.join is JoinKind.HASH:
        return symmetric_hash_join(
            left, right, join_vars, worker, stats, phase, memory
        )
    # Binary Tributary join == sort-merge join: build a 2-atom query over the
    # two frames and run the multiway machinery on it.
    left_atom = Atom("L", left.variables, alias="L")
    right_atom = Atom("R", right.variables, alias="R")
    out_vars = tuple(left.variables) + tuple(
        v for v in right.variables if v not in set(left.variables)
    )
    two_way = ConjunctiveQuery(
        name="merge", head=out_vars, atoms=(left_atom, right_atom)
    )
    order = tuple(join_vars) + tuple(v for v in out_vars if v not in set(join_vars))
    rows = local_tributary_join(
        two_way,
        {"L": left, "R": right},
        worker,
        stats,
        order=order,
        sort_phase=f"step{step}:sort",
        join_phase=phase,
        memory=memory,
    )
    return Frame(out_vars, rows)


def _execute_regular(
    query: ConjunctiveQuery,
    cluster: Cluster,
    strategy: Strategy,
    catalog: Catalog,
    plan: Optional[LeftDeepPlan],
    stats: ExecutionStats,
    runtime: WorkerRuntime,
) -> ExecutionResult:
    plan = plan or left_deep_plan(query, catalog)
    frames, pending = _scan_atoms(query, cluster, stats)
    rows = run_regular_pipeline(
        query, cluster, strategy, plan, stats, frames, pending, runtime
    )
    return ExecutionResult(rows=rows, stats=stats, plan=plan)


def run_regular_pipeline(
    query: ConjunctiveQuery,
    cluster: Cluster,
    strategy: Strategy,
    plan: LeftDeepPlan,
    stats: ExecutionStats,
    frames: Mapping[str, list[Frame]],
    pending: Sequence[Comparison],
    runtime: RuntimeLike = None,
) -> list[tuple[int, ...]]:
    """The left-deep shuffle-then-join pipeline over given scanned frames.

    Exposed separately so the semijoin planner (Sec. 3.6) can run the final
    join phase over its reduced relations.
    """
    runtime = resolve_runtime(runtime)
    atoms = {atom.alias: atom for atom in query.atoms}
    workers = cluster.workers
    pending = list(pending)

    first = atoms[plan.order[0]]
    current = frames[first.alias]
    current_vars: tuple[Variable, ...] = first.variables()
    partition_key: Optional[frozenset[Variable]] = None

    for step, alias in enumerate(plan.order[1:], start=1):
        atom = atoms[alias]
        join_vars = shared_variables(current_vars, atom)
        shuffle_phase = f"step{step}:shuffle"
        if join_vars:
            key = _canonical(join_vars)
            if partition_key != frozenset(key):
                # the shuffle streams the old partitioning out as it sends,
                # so its residency is freed before receive buffers fill
                cluster.release_frames(current)
                current = regular_shuffle(
                    current,
                    key,
                    workers,
                    stats,
                    name=f"RS {query.name} step{step} left -> h{tuple(v.name for v in key)}",
                    phase=shuffle_phase,
                    memory=cluster.memory,
                )
            cluster.release_frames(frames[alias])
            right = regular_shuffle(
                frames[alias],
                key,
                workers,
                stats,
                name=f"RS {alias} -> h{tuple(v.name for v in key)}",
                phase=shuffle_phase,
                memory=cluster.memory,
            )
            partition_key = frozenset(key)
        else:
            # Cartesian step: replicate the (smaller) atom everywhere.
            cluster.release_frames(frames[alias])
            right = broadcast(
                frames[alias],
                workers,
                stats,
                name=f"BR {alias} (cartesian)",
                phase=shuffle_phase,
                memory=cluster.memory,
            )

        left = current
        step_pending = list(pending)

        def join_step(worker, ledger, left=left, right=right,
                      join_vars=join_vars, step=step, step_pending=step_pending):
            out = _binary_local_join(
                strategy,
                left[worker],
                right[worker],
                join_vars,
                worker,
                ledger.stats,
                step,
                ledger.memory,
            )
            produced = len(out.rows)
            # every worker filters against the full pending list; the
            # deferred remainder is the same for all of them
            out, deferred = apply_comparisons(
                out, step_pending, worker, ledger.stats, f"step{step}:filter"
            )
            # consumed inputs and filter-dropped rows leave worker memory
            dropped = produced - len(out.rows)
            if dropped:
                ledger.memory.release(worker, dropped)
            consumed = len(left[worker]) + len(right[worker])
            if consumed:
                ledger.memory.release(worker, consumed)
            return out, deferred

        outcomes = runtime.map_workers(
            range(workers), join_step, stats, cluster.memory
        )
        joined = [out for out, _ in outcomes]
        pending = outcomes[0][1] if outcomes else pending
        current = joined
        current_vars = joined[0].variables if joined else current_vars

    head_indices = [current_vars.index(v) for v in query.head]
    return _finalize(
        query, [frame.rows for frame in current], head_indices, stats
    )


# ----------------------------------------------------------------------
# Broadcast (BR_HJ / BR_TJ)
# ----------------------------------------------------------------------


def _local_hash_pipeline(
    query: ConjunctiveQuery,
    plan: LeftDeepPlan,
    frames_of_worker: Mapping[str, Frame],
    pending: Sequence[Comparison],
    worker: int,
    stats: StatsSink,
    memory: MemorySink,
) -> Frame:
    atoms = {atom.alias: atom for atom in query.atoms}
    current = frames_of_worker[plan.order[0]]
    current_vars = list(current.variables)
    remaining = list(pending)
    for step, alias in enumerate(plan.order[1:], start=1):
        join_vars = shared_variables(current_vars, atoms[alias])
        left = current
        current = symmetric_hash_join(
            left,
            frames_of_worker[alias],
            join_vars,
            worker,
            stats,
            f"step{step}:join",
            memory,
        )
        produced = len(current.rows)
        current, remaining = apply_comparisons(
            current, remaining, worker, stats, f"step{step}:filter"
        )
        # consumed inputs and filter-dropped rows leave worker memory
        dropped = produced - len(current.rows)
        if dropped:
            memory.release(worker, dropped)
        consumed = len(left.rows) + len(frames_of_worker[alias].rows)
        if consumed:
            memory.release(worker, consumed)
        current_vars = list(current.variables)
    return current


def _local_join_phase(
    query: ConjunctiveQuery,
    strategy: Strategy,
    catalog: Catalog,
    plan: Optional[LeftDeepPlan],
    variable_order: Optional[Sequence[Variable]],
    shuffled: Mapping[str, list[Frame]],
    pending: Sequence[Comparison],
    worker_ids: Sequence[int],
    stats: ExecutionStats,
    cluster: Cluster,
    runtime: WorkerRuntime,
) -> tuple[list[list[tuple[int, ...]]], Optional[list[int]], Optional[tuple[Variable, ...]]]:
    """Run the single-round local evaluation (BR/HC) on every worker.

    Returns per-worker result rows, the head projection indices (hash
    pipeline only), and the variable order (Tributary only)."""
    if strategy.join is JoinKind.TRIBUTARY:
        local_query = scanned_query(query)
        order = _resolve_order(query, catalog, variable_order)

        def tributary_task(worker, ledger):
            frames_of_worker = {
                alias: shuffled[alias][worker] for alias in shuffled
            }
            rows = local_tributary_join(
                local_query,
                frames_of_worker,
                worker,
                ledger.stats,
                order=order,
                memory=ledger.memory,
            )
            consumed = sum(len(f) for f in frames_of_worker.values())
            if consumed:
                ledger.memory.release(worker, consumed)
            return rows

        per_worker_rows = runtime.map_workers(
            worker_ids, tributary_task, stats, cluster.memory
        )
        return per_worker_rows, None, order

    def hash_task(worker, ledger):
        frames_of_worker = {alias: shuffled[alias][worker] for alias in shuffled}
        return _local_hash_pipeline(
            query, plan, frames_of_worker, pending, worker,
            ledger.stats, ledger.memory,
        )

    outs = runtime.map_workers(worker_ids, hash_task, stats, cluster.memory)
    head_indices = (
        [outs[0].variables.index(v) for v in query.head] if outs else None
    )
    return [out.rows for out in outs], head_indices, None


def _execute_broadcast(
    query: ConjunctiveQuery,
    cluster: Cluster,
    strategy: Strategy,
    catalog: Catalog,
    plan: Optional[LeftDeepPlan],
    variable_order: Optional[Sequence[Variable]],
    stats: ExecutionStats,
    runtime: WorkerRuntime,
) -> ExecutionResult:
    plan = plan or left_deep_plan(query, catalog)
    workers = cluster.workers
    frames, pending = _scan_atoms(query, cluster, stats)
    sizes = _scanned_sizes(frames)
    anchor = max(sizes, key=lambda alias: sizes[alias])

    shuffled: dict[str, list[Frame]] = {}
    for atom in query.atoms:
        if atom.alias == anchor:
            # anchor fragments stay in place; the scan already registered
            # their residency, so nothing moves and nothing is re-charged
            shuffled[atom.alias] = frames[atom.alias]
        else:
            # streamed out as the broadcast sends; freed before replicas land
            cluster.release_frames(frames[atom.alias])
            shuffled[atom.alias] = broadcast(
                frames[atom.alias],
                workers,
                stats,
                name=f"Broadcast {atom.alias}",
                phase="broadcast",
                memory=cluster.memory,
            )

    per_worker_rows, head_indices, order = _local_join_phase(
        query, strategy, catalog, plan, variable_order, shuffled, pending,
        range(workers), stats, cluster, runtime,
    )

    rows = _finalize(query, per_worker_rows, head_indices, stats)
    return ExecutionResult(
        rows=rows,
        stats=stats,
        plan=plan,
        variable_order=order,
    )


# ----------------------------------------------------------------------
# HyperCube (HC_HJ / HC_TJ)
# ----------------------------------------------------------------------


def _resolve_order(
    query: ConjunctiveQuery,
    catalog: Catalog,
    variable_order: Optional[Sequence[Variable]],
) -> tuple[Variable, ...]:
    if variable_order is not None:
        return tuple(variable_order)
    best = best_join_order(query, catalog)
    return full_variable_order(query, best.order)


def _execute_hypercube(
    query: ConjunctiveQuery,
    cluster: Cluster,
    strategy: Strategy,
    catalog: Catalog,
    plan: Optional[LeftDeepPlan],
    hc_config: Optional[HyperCubeConfig],
    variable_order: Optional[Sequence[Variable]],
    hc_seed: int,
    stats: ExecutionStats,
    runtime: WorkerRuntime,
) -> ExecutionResult:
    workers = cluster.workers
    frames, pending = _scan_atoms(query, cluster, stats)
    sizes = _scanned_sizes(frames)
    config = hc_config or optimize_config(query, sizes, workers)
    mapping = HyperCubeMapping(config, seed=hc_seed)

    shuffled: dict[str, list[Frame]] = {}
    for atom in query.atoms:
        # streamed out as the shuffle sends; freed before receive buffers fill
        cluster.release_frames(frames[atom.alias])
        shuffled[atom.alias] = hypercube_shuffle(
            frames[atom.alias],
            atom,
            mapping,
            workers,
            stats,
            name=f"HCS {atom.alias}",
            phase="hypercube shuffle",
            memory=cluster.memory,
        )

    if strategy.join is not JoinKind.TRIBUTARY:
        plan = plan or left_deep_plan(query, catalog)
    per_worker_rows, head_indices, order = _local_join_phase(
        query, strategy, catalog, plan, variable_order, shuffled, pending,
        range(mapping.workers_used), stats, cluster, runtime,
    )

    rows = _finalize(query, per_worker_rows, head_indices, stats)
    # HC evaluates all atoms at once but full-query bindings can repeat when
    # two workers received overlapping replicas ONLY via projection; full
    # results are produced exactly once (each binding fixes every coordinate)
    if query.is_full():
        rows = list(dict.fromkeys(rows))
        stats.result_count = len(rows)
    return ExecutionResult(
        rows=rows,
        stats=stats,
        hc_config=config,
        variable_order=order,
        plan=plan,
    )
