"""Distributed query execution for every shuffle x join strategy.

This is the counterpart of the paper's Myria deployment — but where the
strategies used to be six hand-written execution loops, they are now six
small *lowering* functions (:mod:`~repro.planner.physical`) producing an
explicit :class:`~repro.planner.physical.PhysicalPlan`, executed by the one
operator scheduler (:mod:`~repro.engine.scheduler`).  :func:`execute` is
the stable entry point: lower the query for the chosen strategy, run the
plan, and wrap rows + counted metrics into an :class:`ExecutionResult`;
:func:`execute_physical` runs an already-lowered plan (the seam EXPLAIN
ANALYZE and hybrid planners build on).

Plan shapes (see :mod:`~repro.planner.physical` for the operator IR):

- ``RS_*``  — left-deep pipeline: shuffle both inputs of every binary join
  on the join key (skipping re-shuffles when the intermediate is already
  partitioned on it), join locally; HJ uses the symmetric hash join, TJ uses
  a per-step binary merge join (a degenerate Tributary join).
- ``BR_*``  — keep the largest relation partitioned in place, broadcast all
  the others, then run the whole plan locally on every worker.
- ``HC_*``  — a single HyperCube shuffle of every atom (configuration from
  Sec. 4's Algorithm 1 unless one is supplied), then local evaluation: a
  left-deep hash-join tree for HJ or the full multiway Tributary join for
  TJ (variable order from the Sec. 5 cost model unless supplied).

Simulated out-of-memory (:class:`~repro.engine.memory.OutOfMemoryError`)
turns into a FAILed :class:`ExecutionResult` — the paper's Fig. 9 reports
exactly this outcome for RS_TJ on Q4.

The per-worker local-join phases run through a pluggable worker runtime
(:mod:`~repro.engine.runtime`); result rows and counted metrics are
identical across runtimes and kernel backends by construction, and a
differential suite pins them against golden captures of the historical
per-strategy executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence

from ..engine.cluster import Cluster
from ..engine.faults import (
    FailureReport,
    FaultAbort,
    FaultSession,
    FaultsLike,
    PolicyLike,
    resolve_faults,
    resolve_policy,
)
from ..engine.kernels import use_backend
from ..engine.memory import OutOfMemoryError
from ..engine.runtime import RuntimeLike, resolve_runtime
from ..engine.scheduler import OperatorTrace, run_plan
from ..engine.stats import RECOVERY_PHASE, ExecutionStats
from ..hypercube.config import HyperCubeConfig
from ..query.atoms import ConjunctiveQuery, Variable
from ..query.catalog import Catalog
from .binary import LeftDeepPlan
from .physical import PhysicalPlan, lower
from .plans import Strategy

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .optimizer import CostReport


@dataclass
class ExecutionResult:
    """Result rows plus everything observed while producing them."""

    rows: list[tuple[int, ...]]
    stats: ExecutionStats
    hc_config: Optional[HyperCubeConfig] = None
    variable_order: Optional[tuple[Variable, ...]] = None
    plan: Optional[LeftDeepPlan] = None
    #: the lowered plan that was executed (None only for early failures)
    physical: Optional[PhysicalPlan] = None
    #: per-operator execution trace (present when tracing was requested)
    trace: Optional[list[OperatorTrace]] = None
    #: structured report of an injected-fault abort or degrade (None when no
    #: fault escalated past the scheduler's retry loop)
    failure_report: Optional[FailureReport] = None
    #: the optimizer's per-strategy cost table (``strategy="auto"`` runs
    #: only; see :mod:`~repro.planner.optimizer`)
    cost_report: Optional["CostReport"] = None

    @property
    def failed(self) -> bool:
        """Whether execution failed (OOM or unrecovered injected fault)."""
        return self.stats.failed


#: graceful-degradation fallbacks: broadcast plans re-planned as regular
#: shuffles when a fault exhausts recovery (the ``degrade`` policy)
DEGRADE_FALLBACKS = {"BR_HJ": "RS_HJ", "BR_TJ": "RS_TJ"}


def _degrade(
    report: FailureReport,
    physical: PhysicalPlan,
    cluster: Cluster,
    stats: ExecutionStats,
    runtime: RuntimeLike,
    kernels: Optional[str],
    trace: Optional[list[OperatorTrace]],
) -> Optional[ExecutionResult]:
    """Re-plan a fault-aborted broadcast strategy as a regular shuffle.

    Returns ``None`` when the strategy has no fallback (the caller then
    reports the abort).  The aborted attempt's charges are carried into the
    fallback run's ``recovery`` phase so total CPU still accounts for the
    wasted work; the fallback itself runs fault-free (the adversity is
    presumed tied to the broadcast shape, e.g. a worker that cannot hold a
    replica).  The fallback starts from a fresh memory budget, so peak
    memory reflects the fallback plan only.
    """
    fallback_name = DEGRADE_FALLBACKS.get(physical.strategy)
    if fallback_name is None:
        return None
    wasted = stats.worker_loads()
    if trace is not None:
        trace[:] = []
    catalog = Catalog(cluster.database)
    fallback_plan = lower(physical.query, fallback_name, catalog)
    result = execute_physical(
        fallback_plan, cluster, runtime=runtime, kernels=kernels, trace=trace
    )
    for worker in sorted(wasted):
        if wasted[worker]:
            result.stats.charge(worker, wasted[worker], RECOVERY_PHASE)
    result.stats.retries = stats.retries
    result.stats.faults_injected = stats.faults_injected
    result.failure_report = replace(
        report, disposition="degraded", fallback=fallback_name
    )
    return result


def execute_physical(
    physical: PhysicalPlan,
    cluster: Cluster,
    runtime: RuntimeLike = None,
    kernels: Optional[str] = None,
    trace: Optional[list[OperatorTrace]] = None,
    faults: FaultsLike = None,
    recovery: PolicyLike = None,
) -> ExecutionResult:
    """Run an already-lowered physical plan on a loaded cluster.

    Resets the cluster's memory budget, executes the plan through the
    scheduler under the requested kernel backend and worker runtime, and
    converts a simulated :class:`~repro.engine.memory.OutOfMemoryError`
    into a FAILed result.  Pass a list as ``trace`` to collect the
    per-operator :class:`~repro.engine.scheduler.OperatorTrace` stream
    (partial on failure).

    ``faults`` (a :class:`~repro.engine.faults.FaultPlan` or its dict form)
    enables deterministic fault injection under the ``recovery`` policy
    (``"retry"``/``"retry:N"``/``"degrade"``/``"fail"`` or a
    :class:`~repro.engine.faults.RecoveryPolicy`).  An unrecovered fault
    yields a FAILed result carrying a structured ``failure_report`` —
    except under ``degrade``, where broadcast plans are transparently
    re-planned as regular shuffles (see :data:`DEGRADE_FALLBACKS`) and the
    result reports success with ``disposition="degraded"``.
    """
    if cluster.database is None:
        raise RuntimeError("cluster has no loaded database; call cluster.load()")
    stats = ExecutionStats(
        query=physical.query.name,
        strategy=physical.strategy,
        workers=cluster.workers,
    )
    plan_faults = resolve_faults(faults)
    session = None
    if plan_faults is not None:
        session = FaultSession(
            plan_faults, resolve_policy(recovery), cluster.workers
        )
    worker_runtime = resolve_runtime(runtime)
    cluster.memory.reset()
    started = time.perf_counter()
    try:
        with use_backend(kernels):
            run = run_plan(
                physical, cluster, stats, worker_runtime,
                trace=trace, faults=session,
            )
        result = ExecutionResult(
            rows=run.rows,
            stats=stats,
            hc_config=run.hc_config,
            variable_order=physical.variable_order,
            plan=physical.left_deep,
            physical=physical,
            trace=trace,
        )
    except OutOfMemoryError as oom:
        stats.mark_failed(str(oom), kind="oom")
        result = ExecutionResult(
            rows=[], stats=stats, physical=physical, trace=trace
        )
    except FaultAbort as abort:
        degraded = None
        if abort.report.policy == "degrade":
            degraded = _degrade(
                abort.report, physical, cluster, stats, runtime, kernels, trace
            )
        if degraded is not None:
            result = degraded
        else:
            stats.mark_failed(abort.report.describe(), kind="fault")
            result = ExecutionResult(
                rows=[], stats=stats, physical=physical, trace=trace,
                failure_report=abort.report,
            )
    result.stats.elapsed_seconds = time.perf_counter() - started
    return result


def execute(
    query: ConjunctiveQuery,
    cluster: Cluster,
    strategy: Strategy,
    catalog: Optional[Catalog] = None,
    hc_config: Optional[HyperCubeConfig] = None,
    variable_order: Optional[Sequence[Variable]] = None,
    plan: Optional[LeftDeepPlan] = None,
    hc_seed: int = 0,
    runtime: RuntimeLike = None,
    kernels: Optional[str] = None,
    trace: Optional[list[OperatorTrace]] = None,
    faults: FaultsLike = None,
    recovery: PolicyLike = None,
) -> ExecutionResult:
    """Run ``query`` on ``cluster`` with the given strategy.

    Lowers the query to a :class:`~repro.planner.physical.PhysicalPlan`
    and executes it via :func:`execute_physical`.  ``runtime`` selects how
    the per-worker local-join phases execute: ``"serial"`` (default),
    ``"parallel"``/``"parallel:N"``, or a
    :class:`~repro.engine.runtime.WorkerRuntime` instance.  ``kernels``
    pins the kernel backend (``"python"``/``"numpy"``) for this execution;
    ``None`` keeps the process-wide default (``REPRO_KERNELS``).  Result
    rows and counted metrics are identical across runtimes and kernel
    backends; only the real ``elapsed_seconds`` depends on them.
    ``faults``/``recovery`` enable deterministic fault injection — see
    :func:`execute_physical`.
    """
    if cluster.database is None:
        raise RuntimeError("cluster has no loaded database; call cluster.load()")
    catalog = catalog or Catalog(cluster.database)
    physical = lower(
        query,
        strategy,
        catalog,
        plan=plan,
        hc_config=hc_config,
        variable_order=variable_order,
        hc_seed=hc_seed,
    )
    return execute_physical(
        physical, cluster, runtime=runtime, kernels=kernels, trace=trace,
        faults=faults, recovery=recovery,
    )
