"""Plan strategies, the distributed executor, and the semijoin planner."""

from .api import make_cluster, run_all_strategies, run_query
from .binary import LeftDeepPlan, left_deep_plan, shared_variables
from .explain import Explanation, explain
from .executor import ExecutionResult, execute, run_regular_pipeline
from .plans import (
    ALL_STRATEGIES,
    BR_HJ,
    BR_TJ,
    HC_HJ,
    HC_TJ,
    RS_HJ,
    RS_TJ,
    JoinKind,
    ShuffleKind,
    Strategy,
)
from .semijoin import execute_semijoin

__all__ = [
    "ALL_STRATEGIES",
    "BR_HJ",
    "BR_TJ",
    "ExecutionResult",
    "Explanation",
    "HC_HJ",
    "HC_TJ",
    "JoinKind",
    "LeftDeepPlan",
    "RS_HJ",
    "RS_TJ",
    "ShuffleKind",
    "Strategy",
    "execute",
    "explain",
    "execute_semijoin",
    "left_deep_plan",
    "make_cluster",
    "run_all_strategies",
    "run_query",
    "run_regular_pipeline",
    "shared_variables",
]
