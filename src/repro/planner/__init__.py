"""Plan strategies, the physical-plan IR, the executor, and EXPLAIN."""

from .api import make_cluster, run_all_strategies, run_query
from .binary import LeftDeepPlan, left_deep_plan, shared_variables
from .decompose import (
    Decomposition,
    default_decomposition,
    enumerate_decompositions,
    lower_hybrid,
)
from .explain import AnalyzedPlan, Explanation, explain, explain_analyze
from .executor import ExecutionResult, execute, execute_physical
from .optimizer import (
    AUTO_STRATEGY,
    CostReport,
    OptimizedPlan,
    PlanCache,
    StrategyCost,
    estimate_costs,
    optimize,
)
from .physical import (
    HYBRID_STRATEGY,
    PhysicalPlan,
    Round,
    lower,
    lower_broadcast,
    lower_hypercube,
    lower_regular,
    lower_semijoin,
)
from .plans import (
    ALL_STRATEGIES,
    BR_HJ,
    BR_TJ,
    HC_HJ,
    HC_TJ,
    RS_HJ,
    RS_TJ,
    JoinKind,
    ShuffleKind,
    Strategy,
)
from .semijoin import execute_semijoin

__all__ = [
    "ALL_STRATEGIES",
    "AUTO_STRATEGY",
    "AnalyzedPlan",
    "BR_HJ",
    "BR_TJ",
    "CostReport",
    "Decomposition",
    "ExecutionResult",
    "Explanation",
    "HYBRID_STRATEGY",
    "OptimizedPlan",
    "PlanCache",
    "StrategyCost",
    "HC_HJ",
    "HC_TJ",
    "JoinKind",
    "LeftDeepPlan",
    "PhysicalPlan",
    "RS_HJ",
    "RS_TJ",
    "Round",
    "ShuffleKind",
    "Strategy",
    "default_decomposition",
    "enumerate_decompositions",
    "estimate_costs",
    "execute",
    "execute_physical",
    "execute_semijoin",
    "explain",
    "explain_analyze",
    "left_deep_plan",
    "lower",
    "lower_broadcast",
    "lower_hybrid",
    "lower_hypercube",
    "lower_regular",
    "lower_semijoin",
    "make_cluster",
    "optimize",
    "run_all_strategies",
    "run_query",
    "shared_variables",
]
