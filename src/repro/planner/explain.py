"""Query explanation: EXPLAIN (what a strategy would do) and EXPLAIN ANALYZE.

``explain`` assembles the optimizer artifacts the paper's system computes —
the left-deep plan with estimated intermediate sizes, the fractional and
integral HyperCube configurations with expected load and replication, and
the Tributary variable order with its estimated cost — into one readable
report; with a ``strategy`` it also renders the lowered
:class:`~repro.planner.physical.PhysicalPlan`.  Nothing is executed.

``explain_analyze`` *does* execute: it lowers the query, runs the plan
through the operator scheduler with tracing on, and annotates every
operator with its counted metrics — tuples in/out, attributed CPU, the
per-phase wall contribution, and the shuffle record it produced — pulled
from :class:`~repro.engine.stats.ExecutionStats`.  The attribution is
exact and conservative: local operators own their stat phases uniquely
(asserted by :meth:`~repro.planner.physical.PhysicalPlan.local_phase_owners`),
exchanges are charged from their own shuffle record (one work unit per
tuple sent plus one per tuple received, which are equal totals for all
three shuffle kinds), so the per-operator charges sum to ``total_cpu``
and the per-exchange tuple counts sum to ``tuples_shuffled``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..engine.faults import FaultsLike, PolicyLike
from ..engine.runtime import RuntimeLike
from ..engine.scheduler import OperatorTrace
from ..engine.stats import (
    RECOVERY_PHASE,
    ExecutionStats,
    ShuffleRecord,
    recovery_phase,
)
from ..hypercube.config import HyperCubeConfig, config_workload, optimize_config
from ..hypercube.shares import (
    FractionalShares,
    fractional_shares,
    optimal_fractional_workload,
    replication_factor,
)
from ..leapfrog.variable_order import OrderCost, best_join_order, full_variable_order
from ..query.atoms import ConjunctiveQuery, Variable
from ..query.catalog import Catalog, cardinalities_for
from ..query.hypergraph import Hypergraph
from ..query.parser import parse_query
from ..storage.relation import Database
from .binary import LeftDeepPlan, left_deep_plan
from .executor import ExecutionResult, execute_physical
from .optimizer import AUTO_STRATEGY, CostReport, optimize
from .physical import Exchange, PhysicalPlan, lower

QueryLike = Union[str, ConjunctiveQuery]


def _as_query(query: QueryLike) -> ConjunctiveQuery:
    if isinstance(query, ConjunctiveQuery):
        return query
    return parse_query(query)


@dataclass(frozen=True)
class Explanation:
    """Everything the optimizer decided for one query and cluster size."""

    query: ConjunctiveQuery
    workers: int
    cyclic: bool
    agm_bound: float
    plan: LeftDeepPlan
    fractional: FractionalShares
    hc_config: HyperCubeConfig
    hc_workload: float
    hc_optimal_workload: float
    hc_replication: float
    variable_order: tuple[Variable, ...]
    order_cost: OrderCost
    #: strategy the physical plan below was lowered for (None = not lowered;
    #: for ``"auto"`` this is the optimizer's chosen strategy)
    strategy: Optional[str] = None
    #: the lowered physical plan when a strategy was requested
    physical: Optional[PhysicalPlan] = None
    #: the cost-based optimizer's per-strategy table (``"auto"`` only):
    #: predicted cost of every strategy plus the pick
    cost_report: Optional[CostReport] = None

    def render(self) -> str:
        """The multi-line EXPLAIN report (optimizer artifacts + plan)."""
        lines = [f"query: {self.query}"]
        lines.append(
            f"structure: {'cyclic' if self.cyclic else 'acyclic'}, "
            f"{len(self.query.atoms)} atoms, "
            f"{len(self.query.join_variables())} join variables, "
            f"AGM bound ~{self.agm_bound:,.0f}"
        )
        steps = " >< ".join(self.plan.order)
        lines.append(f"left-deep plan: {steps}")
        sizes = ", ".join(f"{s:,.0f}" for s in self.plan.estimated_sizes)
        lines.append(f"  estimated intermediates: {sizes}")
        shares = ", ".join(
            f"{v.name}={s:.2f}" for v, s in self.fractional.shares.items()
        )
        lines.append(f"fractional shares (p={self.workers}): {shares}")
        lines.append(
            f"hypercube config: {self.hc_config} "
            f"(uses {self.hc_config.workers_used} workers, "
            f"replication ~{self.hc_replication:.1f}x, "
            f"load/optimal {self.hc_workload / max(self.hc_optimal_workload, 1e-9):.2f})"
        )
        order = " < ".join(v.name for v in self.variable_order)
        lines.append(
            f"tributary variable order: {order} "
            f"(estimated cost {self.order_cost.cost:,.0f})"
        )
        if self.cost_report is not None:
            lines.append("")
            lines.append(self.cost_report.render())
        if self.physical is not None:
            lines.append("")
            lines.append(self.physical.render())
        return "\n".join(lines)


def explain(
    query: QueryLike,
    database: Database,
    workers: int = 64,
    strategy: Optional[str] = None,
    memory_tuples: Optional[int] = None,
) -> Explanation:
    """Build the full optimizer explanation for a query (no execution).

    ``query`` may be Datalog rule text or an already-parsed
    :class:`~repro.query.atoms.ConjunctiveQuery`.  With ``strategy`` (one
    of the six grid names or ``"SJ_HJ"``) the lowered physical plan is
    attached and rendered as well.  With ``strategy="auto"`` the cost-based
    optimizer prices all six strategies (under ``memory_tuples`` if given),
    the per-strategy cost table is attached as ``cost_report``, and the
    *chosen* strategy's lowered plan is rendered — the report shows
    predicted and chosen side by side.
    """
    query = _as_query(query)
    catalog = Catalog(database)
    cards = dict(cardinalities_for(query, database))
    hypergraph = Hypergraph(query)
    plan = left_deep_plan(query, catalog)
    fractional = fractional_shares(query, cards, workers)
    config = optimize_config(query, cards, workers)
    best = best_join_order(query, catalog)
    shares = {v: float(d) for v, d in config.dims.items()}
    cost_report: Optional[CostReport] = None
    physical: Optional[PhysicalPlan] = None
    if strategy == AUTO_STRATEGY:
        optimized = optimize(
            query, catalog, workers=workers, memory_tuples=memory_tuples
        )
        cost_report = optimized.report
        physical = optimized.physical
        strategy = optimized.choice
    elif strategy is not None:
        physical = lower(query, strategy, catalog)
    return Explanation(
        query=query,
        workers=workers,
        cyclic=hypergraph.is_cyclic(),
        agm_bound=hypergraph.agm_bound(cards),
        plan=plan,
        fractional=fractional,
        hc_config=config,
        hc_workload=config_workload(query, cards, config),
        hc_optimal_workload=optimal_fractional_workload(query, cards, workers),
        hc_replication=replication_factor(query, cards, shares),
        variable_order=full_variable_order(query, best.order),
        order_cost=best,
        strategy=strategy,
        physical=physical,
        cost_report=cost_report,
    )


@dataclass(frozen=True)
class OperatorAnnotation:
    """One operator's EXPLAIN ANALYZE row: what it did and what it cost.

    ``cpu`` is the work attributed to this operator (exact: local phases
    are uniquely owned; exchanges charge ``2 x tuples_sent`` out of their
    shared shuffle phase).  ``wall`` is the operator's phase-wall
    contribution — for exchanges that is the *shared* round shuffle-phase
    wall, reported on each exchange of the round."""

    round_index: int
    op_index: int
    describe: str
    tuples_in: int
    tuples_out: int
    cpu: float
    wall: float
    shuffle: Optional[ShuffleRecord] = None
    skipped: bool = False


@dataclass(frozen=True)
class StageSummary:
    """One plan stage's subtotal row in a multi-stage EXPLAIN ANALYZE."""

    stage: int
    cpu: float
    wall: float
    recovery_cpu: float


@dataclass
class AnalyzedPlan:
    """An executed physical plan with per-operator counted metrics."""

    physical: PhysicalPlan
    result: ExecutionResult
    annotations: list[OperatorAnnotation] = field(default_factory=list)

    @property
    def stats(self) -> ExecutionStats:
        """The execution's counted metrics (shared with ``result``)."""
        return self.result.stats

    def operator_charges(self) -> list[float]:
        """Per-operator CPU attribution.

        Sums exactly to ``total_cpu`` minus :attr:`recovery_cpu` — the
        ``recovery`` phases are charged by the retry machinery, never by a
        physical operator, so they are reported separately.
        """
        return [annotation.cpu for annotation in self.annotations]

    def _recovery_phases(self) -> tuple[str, ...]:
        """Every recovery phase charged: ``recovery`` and ``recovery:stageN``."""
        return tuple(
            phase
            for phase in self.stats.phases()
            if phase == RECOVERY_PHASE
            or phase.startswith(RECOVERY_PHASE + ":")
        )

    @property
    def recovery_cpu(self) -> float:
        """CPU charged to recovery phases (wasted attempts + backoff).

        Sums the plain ``recovery`` phase (pure single-stage plans) and
        every stage-qualified ``recovery:stageN`` phase of a hybrid plan.
        """
        return sum(self.stats.phase_cpu(p) for p in self._recovery_phases())

    @property
    def recovery_wall(self) -> float:
        """Wall contributed by recovery phases (each priced independently)."""
        return sum(self.stats.phase_wall(p) for p in self._recovery_phases())

    def stage_summaries(self) -> tuple[StageSummary, ...]:
        """Per-stage CPU/wall/recovery subtotals, in plan stage order.

        Each stage's CPU is the sum of its operators' attributed charges
        plus the stage's own recovery phase; summed over stages this equals
        ``total_cpu`` exactly (the per-stage conservation invariant a
        multi-stage plan must keep under fault injection).
        """
        rounds = self.physical.rounds
        summaries = []
        for stage in self.physical.stages():
            cpu = sum(
                a.cpu
                for a in self.annotations
                if rounds[a.round_index].stage == stage
            )
            phases: list[str] = []
            for round_ in rounds:
                if round_.stage != stage:
                    continue
                for op in round_.ops:
                    for phase in op.phases:
                        if phase not in phases:
                            phases.append(phase)
            stage_recovery = recovery_phase(stage)
            wall = sum(self.stats.phase_wall(p) for p in phases)
            wall += self.stats.phase_wall(stage_recovery)
            summaries.append(
                StageSummary(
                    stage=stage,
                    cpu=cpu,
                    wall=wall,
                    recovery_cpu=self.stats.phase_cpu(stage_recovery),
                )
            )
        return tuple(summaries)

    def render(self) -> str:
        """The annotated plan: one indented metric line per operator."""
        stats = self.stats
        lines = [
            f"physical plan {self.physical.query.name} "
            f"[{self.physical.strategy}] (analyzed)"
        ]
        multistage = self.physical.is_multistage
        last_round = -1
        for annotation in self.annotations:
            if annotation.round_index != last_round:
                round_ = self.physical.rounds[annotation.round_index]
                header = f"round {annotation.round_index} <{round_.label}>"
                if multistage:
                    header += f" [stage {round_.stage}]"
                lines.append(header + ":")
                last_round = annotation.round_index
            lines.append(f"  {annotation.describe}")
            if annotation.skipped:
                lines.append("      [skipped: anchor stays in place]")
                continue
            detail = (
                f"      tuples in={annotation.tuples_in:,} "
                f"out={annotation.tuples_out:,}  "
                f"cpu={annotation.cpu:,.2f} wall={annotation.wall:,.2f}"
            )
            if annotation.shuffle is not None:
                detail += (
                    f"  [sent={annotation.shuffle.tuples_sent:,} "
                    f"prod_skew={annotation.shuffle.producer_skew:.2f} "
                    f"cons_skew={annotation.shuffle.consumer_skew:.2f}]"
                )
            lines.append(detail)
        lines.append(
            f"totals: cpu={stats.total_cpu:,.2f} wall={stats.wall_clock:,.2f} "
            f"shuffled={stats.tuples_shuffled:,} results={stats.result_count:,}"
        )
        if self.physical.is_multistage:
            for summary in self.stage_summaries():
                line = (
                    f"stage {summary.stage}: cpu={summary.cpu:,.2f} "
                    f"wall={summary.wall:,.2f}"
                )
                if summary.recovery_cpu:
                    line += f" recovery_cpu={summary.recovery_cpu:,.2f}"
                lines.append(line)
        if stats.retries or stats.faults_injected:
            lines.append(
                f"recovery: cpu={self.recovery_cpu:,.2f} "
                f"(wall {self.recovery_wall:,.2f})  "
                f"retries={stats.retries} faults_injected={stats.faults_injected}"
            )
        report = self.result.failure_report
        if report is not None and not stats.failed:
            lines.append(f"degraded: {report.describe()}")
        costs = self.result.cost_report
        if costs is not None:
            try:
                predicted = costs.cost_of(self.physical.strategy).wall_clock
            except KeyError:  # degraded to a strategy outside the grid table
                predicted = None
            line = f"optimizer: chose {costs.choice}"
            if predicted is not None:
                line += (
                    f" (predicted wall {predicted:,.0f}, "
                    f"actual {stats.wall_clock:,.0f})"
                )
            lines.append(line)
        peak = max(stats.peak_memory.values(), default=0)
        lines.append(
            f"peak memory: {peak:,} tuples on the fullest worker "
            f"({len(stats.peak_memory)} workers tracked)"
        )
        if stats.failed:
            lines.append(f"FAILED: {stats.failure} (trace is partial)")
        return "\n".join(lines)


def annotate_plan(
    physical: PhysicalPlan,
    result: ExecutionResult,
    trace: Sequence[OperatorTrace],
) -> AnalyzedPlan:
    """Join an execution trace with its stats into per-operator annotations."""
    stats = result.stats
    physical.local_phase_owners()  # asserts unique ownership of local phases
    annotations: list[OperatorAnnotation] = []
    for entry in trace:
        op = entry.op
        shuffle: Optional[ShuffleRecord] = None
        if isinstance(op, Exchange) and not entry.skipped:
            shuffle = stats.shuffles[entry.shuffle_index]
            # one work unit per tuple sent plus one per tuple received;
            # the totals are equal for all three shuffle kinds
            cpu = 2.0 * shuffle.tuples_sent
            wall = stats.phase_wall(op.phase)
        else:
            cpu = sum(stats.phase_cpu(phase) for phase in op.phases)
            wall = sum(stats.phase_wall(phase) for phase in op.phases)
        annotations.append(
            OperatorAnnotation(
                round_index=entry.round_index,
                op_index=entry.op_index,
                describe=op.describe(),
                tuples_in=entry.tuples_in,
                tuples_out=entry.tuples_out,
                cpu=0.0 if entry.skipped else cpu,
                wall=0.0 if entry.skipped else wall,
                shuffle=shuffle,
                skipped=entry.skipped,
            )
        )
    return AnalyzedPlan(physical=physical, result=result, annotations=annotations)


def explain_analyze(
    query: QueryLike,
    database: Database,
    strategy: str = "HC_TJ",
    workers: int = 64,
    memory_tuples: Optional[int] = None,
    runtime: RuntimeLike = None,
    kernels: Optional[str] = None,
    faults: FaultsLike = None,
    recovery: PolicyLike = None,
) -> AnalyzedPlan:
    """Lower, execute with tracing, and annotate the plan with its metrics.

    ``strategy`` is one of the six grid names or ``"SJ_HJ"``.  The returned
    :class:`AnalyzedPlan` carries the full :class:`ExecutionResult`; on a
    simulated out-of-memory failure the annotations cover the operators
    that completed before the failure.  ``faults``/``recovery`` enable
    deterministic fault injection (retry overhead shows up as a
    ``recovery`` line in the rendered report); when the ``degrade`` policy
    re-plans a broadcast strategy, the annotations describe the fallback
    plan that actually ran.
    """
    from ..engine.cluster import Cluster
    from ..engine.memory import MemoryBudget

    parsed = _as_query(query)
    cluster = Cluster(workers, MemoryBudget(per_worker_tuples=memory_tuples))
    cluster.load(database)
    catalog = Catalog(database)
    cost_report: Optional[CostReport] = None
    if strategy == AUTO_STRATEGY:
        optimized = optimize(
            parsed, catalog, workers=workers, memory_tuples=memory_tuples
        )
        cost_report = optimized.report
        physical = optimized.physical
    else:
        physical = lower(parsed, strategy, catalog)
    trace: list[OperatorTrace] = []
    result = execute_physical(
        physical, cluster, runtime=runtime, kernels=kernels, trace=trace,
        faults=faults, recovery=recovery,
    )
    result.cost_report = cost_report
    executed = result.physical if result.physical is not None else physical
    return annotate_plan(executed, result, trace)
