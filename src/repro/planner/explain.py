"""Query explanation: what each strategy would do, before running it.

``explain`` assembles the optimizer artifacts the paper's system computes —
the left-deep plan with estimated intermediate sizes, the fractional and
integral HyperCube configurations with expected load and replication, and
the Tributary variable order with its estimated cost — into one readable
report.  Nothing is executed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hypercube.config import HyperCubeConfig, config_workload, optimize_config
from ..hypercube.shares import (
    FractionalShares,
    fractional_shares,
    optimal_fractional_workload,
    replication_factor,
)
from ..leapfrog.variable_order import OrderCost, best_join_order, full_variable_order
from ..query.atoms import ConjunctiveQuery, Variable
from ..query.catalog import Catalog, cardinalities_for
from ..query.hypergraph import Hypergraph
from ..storage.relation import Database
from .binary import LeftDeepPlan, left_deep_plan


@dataclass(frozen=True)
class Explanation:
    """Everything the optimizer decided for one query and cluster size."""

    query: ConjunctiveQuery
    workers: int
    cyclic: bool
    agm_bound: float
    plan: LeftDeepPlan
    fractional: FractionalShares
    hc_config: HyperCubeConfig
    hc_workload: float
    hc_optimal_workload: float
    hc_replication: float
    variable_order: tuple[Variable, ...]
    order_cost: OrderCost

    def render(self) -> str:
        lines = [f"query: {self.query}"]
        lines.append(
            f"structure: {'cyclic' if self.cyclic else 'acyclic'}, "
            f"{len(self.query.atoms)} atoms, "
            f"{len(self.query.join_variables())} join variables, "
            f"AGM bound ~{self.agm_bound:,.0f}"
        )
        steps = " >< ".join(self.plan.order)
        lines.append(f"left-deep plan: {steps}")
        sizes = ", ".join(f"{s:,.0f}" for s in self.plan.estimated_sizes)
        lines.append(f"  estimated intermediates: {sizes}")
        shares = ", ".join(
            f"{v.name}={s:.2f}" for v, s in self.fractional.shares.items()
        )
        lines.append(f"fractional shares (p={self.workers}): {shares}")
        lines.append(
            f"hypercube config: {self.hc_config} "
            f"(uses {self.hc_config.workers_used} workers, "
            f"replication ~{self.hc_replication:.1f}x, "
            f"load/optimal {self.hc_workload / max(self.hc_optimal_workload, 1e-9):.2f})"
        )
        order = " < ".join(v.name for v in self.variable_order)
        lines.append(
            f"tributary variable order: {order} "
            f"(estimated cost {self.order_cost.cost:,.0f})"
        )
        return "\n".join(lines)


def explain(
    query: ConjunctiveQuery,
    database: Database,
    workers: int = 64,
) -> Explanation:
    """Build the full optimizer explanation for a query (no execution)."""
    catalog = Catalog(database)
    cards = dict(cardinalities_for(query, database))
    hypergraph = Hypergraph(query)
    plan = left_deep_plan(query, catalog)
    fractional = fractional_shares(query, cards, workers)
    config = optimize_config(query, cards, workers)
    best = best_join_order(query, catalog)
    shares = {v: float(d) for v, d in config.dims.items()}
    return Explanation(
        query=query,
        workers=workers,
        cyclic=hypergraph.is_cyclic(),
        agm_bound=hypergraph.agm_bound(cards),
        plan=plan,
        fractional=fractional,
        hc_config=config,
        hc_workload=config_workload(query, cards, config),
        hc_optimal_workload=optimal_fractional_workload(query, cards, workers),
        hc_replication=replication_factor(query, cards, shares),
        variable_order=full_variable_order(query, best.order),
        order_cost=best,
    )
