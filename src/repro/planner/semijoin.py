"""Distributed semijoin reduction (paper Sec. 3.6 and Appendix).

Implements the distributed Yannakakis reduction as described in the GYM
paper [Afrati et al.] and evaluated by the paper on its acyclic queries
(Q3, Q7): build a join tree (a GHD of the acyclic query, Fig. 16), run a
bottom-up then a top-down pass of semijoins to delete every dangling tuple,
and finally join the reduced relations with a regular-shuffle hash plan.

Each distributed semijoin ``R ⋉ S`` on shared attributes ``A``:

1. *Local preprocessing* — project ``S`` on ``A`` and de-duplicate;
2. *Shuffle* — hash-partition both ``R`` and the projection on ``A``
   (the paper stresses that, unlike classical two-site semijoins, *both*
   sides must be re-shuffled because every relation is distributed — this
   extra communication is why semijoins did not pay off in their workload);
3. *Local join* — filter ``R`` by set membership.
"""

from __future__ import annotations

from typing import Optional

from ..engine.cluster import Cluster
from ..engine.frame import Frame
from ..engine.runtime import RuntimeLike, WorkerRuntime, resolve_runtime
from ..engine.stats import ExecutionStats
from ..query.atoms import ConjunctiveQuery, Variable
from ..query.catalog import Catalog
from ..query.hypergraph import join_tree
from .binary import left_deep_plan
from .executor import (
    ExecutionResult,
    _canonical,
    _scan_atoms,
    run_regular_pipeline,
)
from .plans import RS_HJ
from ..engine.shuffle import regular_shuffle


def _distributed_semijoin(
    target: list[Frame],
    source: list[Frame],
    shared: tuple[Variable, ...],
    cluster: Cluster,
    stats: ExecutionStats,
    label: str,
    phase: str,
    runtime: WorkerRuntime,
) -> list[Frame]:
    """Replace ``target`` with ``target ⋉ source`` on the shared variables."""
    workers = cluster.workers
    key = _canonical(shared)

    # local preprocessing: project + dedup the source
    projected: list[Frame] = []
    for worker, frame in enumerate(source):
        stats.charge(worker, len(frame), f"{phase}:project")
        projected.append(frame.project(key, dedup=True))

    # the old target partitioning streams out as the shuffle sends, so its
    # residency is freed before the receive buffers fill
    cluster.release_frames(target)
    shuffled_target = regular_shuffle(
        target,
        key,
        workers,
        stats,
        name=f"SJ {label} target -> h{tuple(v.name for v in key)}",
        phase=f"{phase}:shuffle",
        memory=cluster.memory,
    )
    shuffled_source = regular_shuffle(
        projected,
        key,
        workers,
        stats,
        name=f"SJ {label} keys -> h{tuple(v.name for v in key)}",
        phase=f"{phase}:shuffle",
        memory=cluster.memory,
    )

    def semijoin_task(worker, ledger):
        keys = set(shuffled_source[worker].rows)
        indices = shuffled_target[worker].indices_of(key)
        kept = [
            row
            for row in shuffled_target[worker].rows
            if tuple(row[i] for i in indices) in keys
        ]
        ledger.stats.charge(
            worker,
            len(shuffled_target[worker].rows) + len(keys),
            f"{phase}:semijoin",
        )
        # the key buffer and the filtered-out target rows leave memory
        released = len(shuffled_source[worker].rows) + (
            len(shuffled_target[worker].rows) - len(kept)
        )
        if released:
            ledger.memory.release(worker, released)
        return Frame(shuffled_target[worker].variables, kept)

    return runtime.map_workers(
        range(workers), semijoin_task, stats, cluster.memory
    )


def execute_semijoin(
    query: ConjunctiveQuery,
    cluster: Cluster,
    catalog: Optional[Catalog] = None,
    runtime: RuntimeLike = None,
) -> ExecutionResult:
    """Full semijoin plan: reduce all relations, then a regular RS_HJ join.

    Raises ``ValueError`` for cyclic queries — "only acyclic queries admit
    full semijoin reductions".
    """
    if cluster.database is None:
        raise RuntimeError("cluster has no loaded database; call cluster.load()")
    tree = join_tree(query)  # raises for cyclic queries
    catalog = catalog or Catalog(cluster.database)
    worker_runtime = resolve_runtime(runtime)
    stats = ExecutionStats(
        query=query.name, strategy="SJ_HJ", workers=cluster.workers
    )
    cluster.memory.reset()

    frames, pending = _scan_atoms(query, cluster, stats)
    atoms = {atom.alias: atom for atom in query.atoms}

    def shared_of(a: str, b: str) -> tuple[Variable, ...]:
        return tuple(
            v for v in atoms[a].variables() if v in set(atoms[b].variables())
        )

    # Bottom-up: each removed ear reduces its parent.
    for position, child in enumerate(tree.removal_order):
        parent = tree.parents[child]
        if parent is None:
            continue
        shared = shared_of(parent, child)
        if not shared:
            continue
        frames[parent] = _distributed_semijoin(
            frames[parent],
            frames[child],
            shared,
            cluster,
            stats,
            label=f"{parent}<-{child}",
            phase=f"semijoin-up{position}",
            runtime=worker_runtime,
        )

    # Top-down: parents reduce their children, in reverse removal order.
    for position, child in enumerate(reversed(tree.removal_order)):
        parent = tree.parents[child]
        if parent is None:
            continue
        shared = shared_of(child, parent)
        if not shared:
            continue
        frames[child] = _distributed_semijoin(
            frames[child],
            frames[parent],
            shared,
            cluster,
            stats,
            label=f"{child}<-{parent}",
            phase=f"semijoin-down{position}",
            runtime=worker_runtime,
        )

    plan = left_deep_plan(query, catalog)
    rows = run_regular_pipeline(
        query, cluster, RS_HJ, plan, stats, frames, pending, worker_runtime
    )
    return ExecutionResult(rows=rows, stats=stats, plan=plan)
