"""Distributed semijoin reduction (paper Sec. 3.6 and Appendix).

Implements the distributed Yannakakis reduction as described in the GYM
paper [Afrati et al.] and evaluated by the paper on its acyclic queries
(Q3, Q7): build a join tree (a GHD of the acyclic query, Fig. 16), run a
bottom-up then a top-down pass of semijoins to delete every dangling tuple,
and finally join the reduced relations with a regular-shuffle hash plan.

Each distributed semijoin ``R ⋉ S`` on shared attributes ``A``:

1. *Local preprocessing* — project ``S`` on ``A`` and de-duplicate;
2. *Shuffle* — hash-partition both ``R`` and the projection on ``A``
   (the paper stresses that, unlike classical two-site semijoins, *both*
   sides must be re-shuffled because every relation is distributed — this
   extra communication is why semijoins did not pay off in their workload);
3. *Local join* — filter ``R`` by set membership.

The whole pass is expressed in the physical-plan IR
(:func:`~repro.planner.physical.lower_semijoin` emits the multi-round
``SemiJoinProject``/``Exchange``/``SemiJoinFilter`` sequence followed by
the RS_HJ pipeline over the reduced slots) and executed by the same
operator scheduler as the six grid strategies.
"""

from __future__ import annotations

from typing import Optional

from ..engine.cluster import Cluster
from ..engine.faults import FaultsLike, PolicyLike
from ..engine.runtime import RuntimeLike
from ..query.atoms import ConjunctiveQuery
from ..query.catalog import Catalog
from .executor import ExecutionResult, execute_physical
from .physical import lower_semijoin


def execute_semijoin(
    query: ConjunctiveQuery,
    cluster: Cluster,
    catalog: Optional[Catalog] = None,
    runtime: RuntimeLike = None,
    kernels: Optional[str] = None,
    faults: FaultsLike = None,
    recovery: PolicyLike = None,
) -> ExecutionResult:
    """Full semijoin plan: reduce all relations, then a regular RS_HJ join.

    Raises ``ValueError`` for cyclic queries — "only acyclic queries admit
    full semijoin reductions".  ``faults``/``recovery`` enable deterministic
    fault injection, as in :func:`~repro.planner.executor.execute_physical`.
    """
    if cluster.database is None:
        raise RuntimeError("cluster has no loaded database; call cluster.load()")
    catalog = catalog or Catalog(cluster.database)
    physical = lower_semijoin(query, catalog)
    return execute_physical(
        physical, cluster, runtime=runtime, kernels=kernels,
        faults=faults, recovery=recovery,
    )
