"""Physical-plan IR: the explicit operator graph every strategy lowers to.

The paper's Sec. 3 presents the six evaluated configurations (RS/BR/HC x
HJ/TJ) as compositions of a handful of physical operators — scans with
selection pushdown, an exchange (regular hash shuffle, broadcast, or the
HyperCube shuffle), and a local join (pipelined hash join or the Tributary
multiway join).  This module makes those compositions *data* instead of
code: a :class:`PhysicalPlan` is a sequence of :class:`Round` barriers, each
holding driver-side **global** operators (scans, exchanges, the data-driven
configuration steps) followed by per-worker **local** operators executed in
one worker task through the runtime (:mod:`~repro.engine.runtime`).

Each of the six strategies — plus the Sec. 3.6 semijoin reduction — is a
small pure *lowering* function ``query -> PhysicalPlan``; a single
interpreter (:mod:`~repro.engine.scheduler`) executes any plan.  Lowering is
fully static: join variables, output schemas, comparison deferral, phase
names, and head projections are all computed from the query and catalog, so
the same plan can be rendered before execution (EXPLAIN), executed on any
cluster size, and annotated with counted metrics afterwards (EXPLAIN
ANALYZE, :mod:`~repro.planner.explain`).

Two decisions are data-dependent and stay in the plan as explicit operators
rather than branches in executor code: the broadcast strategy keeps the
*largest scanned* relation in place (:class:`ChooseAnchor` binds it at run
time, and broadcast exchanges carry ``skip_if_anchor``), and the HyperCube
configuration is optimized from post-selection cardinalities
(:class:`ConfigureHyperCube`).

Phase names and memory registration/release semantics are part of each
operator's contract (declared by ``phases`` and documented per operator),
which is what makes the scheduler's counted metrics bit-identical to the
historical per-strategy execution loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence, Union

from ..engine.hash_join import join_output_variables
from ..engine.local import scanned_query
from ..hypercube.config import HyperCubeConfig
from ..leapfrog.variable_order import best_join_order, full_variable_order
from ..query.atoms import Atom, Comparison, ConjunctiveQuery, Variable
from ..query.catalog import Catalog
from ..query.hypergraph import join_tree
from .binary import LeftDeepPlan, left_deep_plan, shared_variables
from .plans import ALL_STRATEGIES, JoinKind, ShuffleKind, Strategy

#: strategy spellings accepted by :func:`lower` beyond the 3x2 grid
SEMIJOIN_STRATEGY = "SJ_HJ"

#: the multi-stage hybrid plan shape (binary stage -> WCOJ stage)
HYBRID_STRATEGY = "HYBRID"

StrategyLike = Union[str, Strategy]


class ExchangeKind(Enum):
    """The three data-movement operators of Sec. 3."""

    REGULAR = "regular"
    BROADCAST = "broadcast"
    HYPERCUBE = "hypercube"


def canonical_key(variables: Sequence[Variable]) -> tuple[Variable, ...]:
    """Canonical (name-sorted) key ordering so co-partitioning checks are
    order-free — the partitioning produced by ``h(x,y)`` equals ``h(y,x)``."""
    return tuple(sorted(variables, key=lambda v: v.name))


class PhysicalOp:
    """Base class for all physical operators.

    ``GLOBAL`` operators run on the driver against the shared stats/memory
    (scans, exchanges, configuration); local operators run inside one worker
    task per worker, charging an isolated
    :class:`~repro.engine.runtime.WorkerLedger`.  ``phases`` lists the
    statistics phases this operator charges CPU into — the EXPLAIN ANALYZE
    layer uses it to attribute :class:`~repro.engine.stats.ExecutionStats`
    charges back to operators.
    """

    GLOBAL = True

    @property
    def phases(self) -> tuple[str, ...]:
        """Stat phases this operator charges work units into."""
        return ()

    def input_slots(self) -> tuple[str, ...]:
        """Slot names this operator reads, in dependency order.

        This is the plan's lineage metadata: together with
        :meth:`output_slots` it lets the scheduler compute per-operator
        tuple flow for traces and lets the recovery layer report which
        surviving inputs a failed Round would recompute from.
        """
        return ()

    def output_slots(self) -> tuple[str, ...]:
        """Slot names this operator binds."""
        return ()

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        raise NotImplementedError


def _names(variables: Sequence[Variable]) -> str:
    return ", ".join(v.name for v in variables)


@dataclass(frozen=True)
class Scan(PhysicalOp):
    """Scan one atom on every worker with selection pushdown.

    Applies the atom's constant/repeated-variable selections plus every
    comparison fully covered by the atom, then registers each post-selection
    fragment as resident (phase ``scan`` in the memory budget).  Charges no
    CPU — the paper's metrics start at the first shuffle.
    """

    atom: Atom
    out: str
    filters: tuple[Comparison, ...] = ()

    def output_slots(self) -> tuple[str, ...]:
        """The scanned fragment slot (scans read durable relations)."""
        return (self.out,)

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        pushed = f" [+{len(self.filters)} pushed filter(s)]" if self.filters else ""
        return f"scan {self.atom.relation} as {self.atom.alias}{pushed} -> {self.out}"


@dataclass(frozen=True)
class ScanIntermediate(PhysicalOp):
    """Re-scan a prior stage's output slot as a first-class stage input.

    The stage-boundary operator of hybrid plans: projects each worker's
    fragment of ``input`` onto ``variables`` (optionally de-duplicating when
    the projection dropped columns) and binds the result under ``out`` so
    downstream exchanges can re-partition the materialized intermediate
    exactly like a scanned base relation.  Charges one work unit per input
    tuple into ``phase``; de-duplicated rows are released from residency
    (the projection itself is width-free — the memory model counts tuples).
    """

    input: str
    out: str
    variables: tuple[Variable, ...]
    phase: str
    dedup: bool = False

    @property
    def phases(self) -> tuple[str, ...]:
        """The stage-boundary projection phase."""
        return (self.phase,)

    def input_slots(self) -> tuple[str, ...]:
        """The prior stage's materialized output."""
        return (self.input,)

    def output_slots(self) -> tuple[str, ...]:
        """The intermediate re-exposed as a scannable relation."""
        return (self.out,)

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        note = ", dedup" if self.dedup else ""
        return (
            f"scan-intermediate {self.input} "
            f"on ({_names(self.variables)}){note} -> {self.out}"
        )


@dataclass(frozen=True)
class ChooseAnchor(PhysicalOp):
    """Bind the broadcast anchor: the largest post-selection input.

    The broadcast strategy keeps the largest scanned relation partitioned
    in place and ships everything else; which relation that is depends on
    runtime selectivity, so the choice is an explicit plan step.  Ties break
    to the earliest atom (the scheduler scans ``aliases`` in atom order).
    """

    aliases: tuple[str, ...]

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        return f"choose-anchor largest of ({', '.join(self.aliases)}) stays in place"


@dataclass(frozen=True)
class ConfigureHyperCube(PhysicalOp):
    """Fix the HyperCube configuration from post-selection cardinalities.

    Runs the paper's Algorithm 1 (:func:`~repro.hypercube.config.optimize_config`)
    over the scanned sizes unless an explicit configuration was supplied,
    then binds the per-dimension hash mapping used by every hypercube
    exchange and the ``workers_used`` domain of the local join round.
    """

    aliases: tuple[str, ...]
    config: Optional[HyperCubeConfig] = None
    seed: int = 0
    query: Optional[ConjunctiveQuery] = None

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        how = repr(self.config) if self.config is not None else "Algorithm 1"
        return (
            f"configure-hypercube over ({', '.join(self.aliases)}) "
            f"via {how}, seed={self.seed}"
        )


@dataclass(frozen=True)
class Exchange(PhysicalOp):
    """One data movement: regular shuffle, broadcast, or HyperCube shuffle.

    Consumes ``input`` (releasing its residency as the tuples stream out,
    unless ``release_input`` is off — e.g. semijoin key projections that
    were never registered) and registers the received partitions with the
    consumers' memory budgets.  Charges one work unit per tuple sent and
    one per tuple received into ``phase`` and appends one
    :class:`~repro.engine.stats.ShuffleRecord` named ``name``.
    """

    kind: ExchangeKind
    input: str
    out: str
    name: str
    phase: str
    key: tuple[Variable, ...] = ()
    atom: Optional[Atom] = None
    release_input: bool = True
    skip_if_anchor: bool = False

    @property
    def phases(self) -> tuple[str, ...]:
        """The (possibly shared) shuffle phase this exchange charges."""
        return (self.phase,)

    def input_slots(self) -> tuple[str, ...]:
        """The partitioning being moved."""
        return (self.input,)

    def output_slots(self) -> tuple[str, ...]:
        """The received partitioning."""
        return (self.out,)

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        if self.kind is ExchangeKind.REGULAR:
            detail = f" on h({_names(self.key)})"
        elif self.kind is ExchangeKind.HYPERCUBE:
            detail = f" via {self.atom.alias} coordinates"
        else:
            detail = " to all workers"
            if self.skip_if_anchor:
                detail += " (skipped for the anchor)"
        return f"exchange[{self.kind.value}] {self.input} -> {self.out}{detail}"


@dataclass(frozen=True)
class LocalHashJoin(PhysicalOp):
    """One per-worker symmetric hash join step of a left-deep pipeline.

    Charges build+probe+output units into ``step{k}:join``, applies every
    ready pending comparison (``step{k}:filter``), and releases the consumed
    inputs plus filter-dropped rows so only the live intermediate stays
    resident.
    """

    GLOBAL = False

    left: str
    right: str
    out: str
    join_vars: tuple[Variable, ...]
    step: int
    out_variables: tuple[Variable, ...]
    pending: tuple[Comparison, ...] = ()

    @property
    def phases(self) -> tuple[str, ...]:
        """Join and filter phases, unique to this step."""
        return (f"step{self.step}:join", f"step{self.step}:filter")

    def input_slots(self) -> tuple[str, ...]:
        """Build and probe sides, left first."""
        return (self.left, self.right)

    def output_slots(self) -> tuple[str, ...]:
        """The joined (and filtered) intermediate."""
        return (self.out,)

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        on = f"({_names(self.join_vars)})" if self.join_vars else "(cartesian)"
        note = f", filter {len(self.pending)} pending" if self.pending else ""
        return (
            f"hash-join {self.left} >< {self.right} on {on}"
            f" -> {self.out} [step {self.step}]{note}"
        )


@dataclass(frozen=True)
class MergeJoinStep(PhysicalOp):
    """One per-worker binary merge join (a degenerate 2-atom Tributary join).

    Sorting charges ``n log n`` comparisons into ``step{k}:sort`` (and a
    scratch sorted copy of both inputs against memory); seeks plus output
    materialization go to ``step{k}:join``; ready comparisons filter in
    ``step{k}:filter``; consumed inputs and dropped rows are released.
    """

    GLOBAL = False

    left: str
    right: str
    out: str
    join_vars: tuple[Variable, ...]
    step: int
    out_variables: tuple[Variable, ...]
    order: tuple[Variable, ...] = ()
    pending: tuple[Comparison, ...] = ()

    @property
    def phases(self) -> tuple[str, ...]:
        """Sort, join, and filter phases, unique to this step."""
        return (
            f"step{self.step}:sort",
            f"step{self.step}:join",
            f"step{self.step}:filter",
        )

    def input_slots(self) -> tuple[str, ...]:
        """The two sorted-and-merged sides, left first."""
        return (self.left, self.right)

    def output_slots(self) -> tuple[str, ...]:
        """The joined (and filtered) intermediate."""
        return (self.out,)

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        on = f"({_names(self.join_vars)})" if self.join_vars else "(cartesian)"
        note = f", filter {len(self.pending)} pending" if self.pending else ""
        return (
            f"merge-join {self.left} >< {self.right} on {on}"
            f" -> {self.out} [step {self.step}]{note}"
        )


@dataclass(frozen=True)
class LocalTributaryJoin(PhysicalOp):
    """The full multiway Tributary join over one worker's local fragments.

    Sorting all fragments charges into ``sort`` (with the sorted copies as
    scratch memory, released when the join finishes); seeks plus result
    materialization charge into ``tributary join``.  Produces head rows
    directly (the join projects the head internally).
    """

    GLOBAL = False

    query: ConjunctiveQuery
    inputs: tuple[tuple[str, str], ...]  # (atom alias, slot) pairs
    out: str
    order: tuple[Variable, ...]

    @property
    def phases(self) -> tuple[str, ...]:
        """The sort and join phases of the local multiway join."""
        return ("sort", "tributary join")

    def input_slots(self) -> tuple[str, ...]:
        """Every atom's local fragment slot, in atom order."""
        return tuple(slot for _, slot in self.inputs)

    def output_slots(self) -> tuple[str, ...]:
        """The per-worker head-row lists."""
        return (self.out,)

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        slots = ", ".join(slot for _, slot in self.inputs)
        order = " < ".join(v.name for v in self.order)
        return f"tributary-join ({slots}) order {order} -> {self.out}"


@dataclass(frozen=True)
class SemiJoinProject(PhysicalOp):
    """Local preprocessing of a distributed semijoin: project + dedup keys.

    Charges one unit per scanned source tuple into ``{phase}:project``.  The
    projected key frames are transient (never registered as resident): they
    stream straight into the key shuffle.
    """

    source: str
    out: str
    key: tuple[Variable, ...]
    phase: str

    @property
    def phases(self) -> tuple[str, ...]:
        """The projection phase of this semijoin round."""
        return (self.phase,)

    def input_slots(self) -> tuple[str, ...]:
        """The source relation whose keys are projected."""
        return (self.source,)

    def output_slots(self) -> tuple[str, ...]:
        """The deduplicated key frames."""
        return (self.out,)

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        return f"semijoin-project {self.source} on ({_names(self.key)}) -> {self.out}"


@dataclass(frozen=True)
class SemiJoinFilter(PhysicalOp):
    """Per-worker semijoin: keep target rows whose key appears in ``keys``.

    Charges target rows plus distinct probe keys into ``{phase}:semijoin``
    and releases the key buffer and every filtered-out target row.
    """

    GLOBAL = False

    target: str
    keys: str
    out: str
    key: tuple[Variable, ...]
    phase: str

    @property
    def phases(self) -> tuple[str, ...]:
        """The semijoin filter phase of this round."""
        return (self.phase,)

    def input_slots(self) -> tuple[str, ...]:
        """The target partitioning, then the probe-key partitioning."""
        return (self.target, self.keys)

    def output_slots(self) -> tuple[str, ...]:
        """The reduced target."""
        return (self.out,)

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output."""
        return (
            f"semijoin-filter {self.target} |>< {self.keys} "
            f"on ({_names(self.key)}) -> {self.out}"
        )


#: worker domains a round's local operators may run over
LOCAL_ALL = "all"
LOCAL_HC = "hc"


@dataclass(frozen=True)
class Round:
    """One communication-round barrier of a physical plan.

    Global operators execute first, in order, on the driver; the round's
    local operators then run *fused* — one worker task per worker executes
    the whole local sequence against a single isolated ledger, exactly the
    granularity the worker runtime commits and the OOM model observes.
    ``local_workers`` is :data:`LOCAL_ALL` (every cluster worker) or
    :data:`LOCAL_HC` (the ``workers_used`` of the HyperCube configuration).

    ``stage`` groups rounds into the subquery stages of a hybrid plan;
    pure single-strategy plans leave every round at stage 0.  Recovery CPU
    for stage > 0 rounds is attributed to a stage-qualified recovery phase
    (``recovery:stageN``) so per-stage conservation holds across faults.
    """

    label: str
    ops: tuple[PhysicalOp, ...]
    local_workers: str = LOCAL_ALL
    stage: int = 0

    def global_ops(self) -> tuple[PhysicalOp, ...]:
        """The driver-side operators of this round, in execution order."""
        return tuple(op for op in self.ops if op.GLOBAL)

    def local_ops(self) -> tuple[PhysicalOp, ...]:
        """The per-worker operators of this round, in execution order."""
        return tuple(op for op in self.ops if not op.GLOBAL)

    def consumed_slots(self) -> tuple[str, ...]:
        """Slots this round reads from *earlier* rounds, in first-use order.

        This is the round's recompute lineage: the surviving state a retry
        re-runs from.  Slots both produced and read within the round are
        internal and excluded; scan rounds consume nothing (they re-read
        the cluster's durable fragments).
        """
        produced: set[str] = set()
        consumed: list[str] = []
        for op in self.ops:
            for name in op.input_slots():
                if name not in produced and name not in consumed:
                    consumed.append(name)
            produced.update(op.output_slots())
        return tuple(consumed)

    def produced_slots(self) -> tuple[str, ...]:
        """Slots this round binds, in first-bind order."""
        produced: list[str] = []
        for op in self.ops:
            for name in op.output_slots():
                if name not in produced:
                    produced.append(name)
        return tuple(produced)


#: how the final slot is interpreted: per-worker frames or bare row lists
RESULT_FRAMES = "frames"
RESULT_ROWS = "rows"


@dataclass(frozen=True)
class PhysicalPlan:
    """A fully lowered, executable physical plan.

    The plan is pure data: rendering it performs no execution, and the
    :mod:`~repro.engine.scheduler` interpreter is the only component that
    runs one.  ``head_indices`` projects the final frames onto the query
    head (``None`` when the local join already emits head rows);  ``dedup``
    removes duplicates of non-full queries and ``dedup_full`` additionally
    de-duplicates full-query results (the HyperCube replication case).
    """

    query: ConjunctiveQuery
    strategy: str
    rounds: tuple[Round, ...]
    result: str
    result_kind: str = RESULT_FRAMES
    head_indices: Optional[tuple[int, ...]] = None
    dedup_full: bool = False
    left_deep: Optional[LeftDeepPlan] = None
    variable_order: Optional[tuple[Variable, ...]] = None
    pending: tuple[Comparison, ...] = field(default=())

    def operators(self):
        """Yield ``(round_index, op_index, round, op)`` over the whole plan."""
        for round_index, round_ in enumerate(self.rounds):
            for op_index, op in enumerate(round_.ops):
                yield round_index, op_index, round_, op

    def stages(self) -> tuple[int, ...]:
        """Distinct round stage ids, in plan order."""
        return tuple(dict.fromkeys(round_.stage for round_ in self.rounds))

    @property
    def is_multistage(self) -> bool:
        """Whether this plan mixes more than one subquery stage (hybrid)."""
        return len(self.stages()) > 1

    def local_phase_owners(self) -> dict[str, PhysicalOp]:
        """Map each local-operator stat phase to its unique owning operator.

        Exchange phases can be shared between the exchanges of one round
        (their charges are split via their shuffle records instead); local
        phases must be uniquely owned — asserted here — which is what makes
        per-operator CPU attribution exact.
        """
        owners: dict[str, PhysicalOp] = {}
        for _, _, _, op in self.operators():
            if isinstance(op, Exchange):
                continue
            for phase in op.phases:
                if phase in owners:
                    raise AssertionError(
                        f"phase {phase!r} owned by two operators: "
                        f"{owners[phase].describe()} / {op.describe()}"
                    )
                owners[phase] = op
        return owners

    def render(self) -> str:
        """Multi-line textual form of the plan (the EXPLAIN output)."""
        lines = [f"physical plan {self.query.name} [{self.strategy}]"]
        multistage = self.is_multistage
        for round_index, round_ in enumerate(self.rounds):
            domain = "" if round_.local_workers == LOCAL_ALL else " (hc workers)"
            stage = f" [stage {round_.stage}]" if multistage else ""
            lines.append(f"round {round_index} <{round_.label}>{stage}{domain}:")
            for op in round_.ops:
                lines.append(f"  {op.describe()}")
        head = _names(self.query.head)
        finale = f"finalize: emit ({head})"
        if self.head_indices is not None:
            finale += f" via columns {list(self.head_indices)}"
        if not self.query.is_full():
            finale += ", dedup projection"
        if self.dedup_full:
            finale += ", dedup full rows"
        lines.append(finale)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Lowering: query -> PhysicalPlan, one small pure function per strategy
# ----------------------------------------------------------------------


def split_scan_comparisons(
    query: ConjunctiveQuery,
) -> tuple[dict[str, tuple[Comparison, ...]], tuple[Comparison, ...]]:
    """Partition comparisons into scan-pushed and pipeline-deferred.

    A comparison fully covered by a single atom is pushed into *every*
    covering atom's scan; everything else stays pending for the join
    pipeline."""
    coverable: dict[str, list[Comparison]] = {
        atom.alias: [] for atom in query.atoms
    }
    remaining: list[Comparison] = []
    for comparison in query.comparisons:
        cover = [
            atom.alias
            for atom in query.atoms
            if set(comparison.variables()) <= set(atom.variables())
        ]
        if cover:
            for alias in cover:
                coverable[alias].append(comparison)
        else:
            remaining.append(comparison)
    return (
        {alias: tuple(filters) for alias, filters in coverable.items()},
        tuple(remaining),
    )


def _scan_round(query: ConjunctiveQuery) -> tuple[Round, tuple[Comparison, ...]]:
    """The scan round shared by every strategy, plus the deferred filters."""
    coverable, pending = split_scan_comparisons(query)
    ops = tuple(
        Scan(atom=atom, out=atom.alias, filters=coverable[atom.alias])
        for atom in query.atoms
    )
    return Round(label="scan", ops=ops), pending


def _defer(
    pending: Sequence[Comparison], available: Sequence[Variable]
) -> tuple[Comparison, ...]:
    """Comparisons still missing a variable after this step's output."""
    out = set(available)
    return tuple(c for c in pending if set(c.variables()) - out)


def _regular_rounds(
    query: ConjunctiveQuery,
    strategy: Strategy,
    plan: LeftDeepPlan,
    pending: tuple[Comparison, ...],
    slot_of: dict[str, str],
) -> tuple[list[Round], str, tuple[Variable, ...]]:
    """Lower the left-deep shuffle-then-join pipeline over scanned slots.

    Shared by RS_HJ/RS_TJ and the semijoin plan's final join phase (which
    runs it over reduced relations).  Returns the step rounds, the final
    slot, and its variables."""
    atoms = {atom.alias: atom for atom in query.atoms}
    rounds: list[Round] = []
    first = atoms[plan.order[0]]
    current_slot = slot_of[first.alias]
    current_vars: tuple[Variable, ...] = first.variables()
    partition_key: Optional[frozenset[Variable]] = None

    for step, alias in enumerate(plan.order[1:], start=1):
        atom = atoms[alias]
        join_vars = shared_variables(current_vars, atom)
        shuffle_phase = f"step{step}:shuffle"
        ops: list[PhysicalOp] = []
        if join_vars:
            key = canonical_key(join_vars)
            if partition_key != frozenset(key):
                left_slot = f"left@step{step}"
                ops.append(
                    Exchange(
                        kind=ExchangeKind.REGULAR,
                        input=current_slot,
                        out=left_slot,
                        key=key,
                        name=(
                            f"RS {query.name} step{step} left -> "
                            f"h{tuple(v.name for v in key)}"
                        ),
                        phase=shuffle_phase,
                    )
                )
                current_slot = left_slot
            right_slot = f"{alias}@step{step}"
            ops.append(
                Exchange(
                    kind=ExchangeKind.REGULAR,
                    input=slot_of[alias],
                    out=right_slot,
                    key=key,
                    name=f"RS {alias} -> h{tuple(v.name for v in key)}",
                    phase=shuffle_phase,
                )
            )
            partition_key = frozenset(key)
        else:
            # Cartesian step: replicate the disconnected atom everywhere.
            right_slot = f"{alias}@step{step}"
            ops.append(
                Exchange(
                    kind=ExchangeKind.BROADCAST,
                    input=slot_of[alias],
                    out=right_slot,
                    name=f"BR {alias} (cartesian)",
                    phase=shuffle_phase,
                )
            )

        out_slot = f"join@step{step}"
        out_vars = join_output_variables(current_vars, atom.variables())
        if strategy.join is JoinKind.HASH:
            ops.append(
                LocalHashJoin(
                    left=current_slot,
                    right=right_slot,
                    out=out_slot,
                    join_vars=join_vars,
                    step=step,
                    out_variables=out_vars,
                    pending=pending,
                )
            )
        else:
            order = tuple(join_vars) + tuple(
                v for v in out_vars if v not in set(join_vars)
            )
            ops.append(
                MergeJoinStep(
                    left=current_slot,
                    right=right_slot,
                    out=out_slot,
                    join_vars=join_vars,
                    step=step,
                    out_variables=out_vars,
                    order=order,
                    pending=pending,
                )
            )
        pending = _defer(pending, out_vars)
        rounds.append(Round(label=f"step {step}", ops=tuple(ops)))
        current_slot, current_vars = out_slot, out_vars
    return rounds, current_slot, current_vars


def _hash_pipeline_ops(
    query: ConjunctiveQuery,
    plan: LeftDeepPlan,
    pending: tuple[Comparison, ...],
    slot_of: dict[str, str],
) -> tuple[list[PhysicalOp], str, tuple[Variable, ...]]:
    """The fused per-worker left-deep hash pipeline (BR/HC local phase)."""
    atoms = {atom.alias: atom for atom in query.atoms}
    current_slot = slot_of[plan.order[0]]
    current_vars: tuple[Variable, ...] = atoms[plan.order[0]].variables()
    ops: list[PhysicalOp] = []
    for step, alias in enumerate(plan.order[1:], start=1):
        atom = atoms[alias]
        join_vars = shared_variables(current_vars, atom)
        out_vars = join_output_variables(current_vars, atom.variables())
        out_slot = f"join@step{step}"
        ops.append(
            LocalHashJoin(
                left=current_slot,
                right=slot_of[alias],
                out=out_slot,
                join_vars=join_vars,
                step=step,
                out_variables=out_vars,
                pending=pending,
            )
        )
        pending = _defer(pending, out_vars)
        current_slot, current_vars = out_slot, out_vars
    return ops, current_slot, current_vars


def _resolve_order(
    query: ConjunctiveQuery,
    catalog: Catalog,
    variable_order: Optional[Sequence[Variable]],
) -> tuple[Variable, ...]:
    """The Tributary variable order: supplied, or the Sec. 5 cost model."""
    if variable_order is not None:
        return tuple(variable_order)
    best = best_join_order(query, catalog)
    return full_variable_order(query, best.order)


def _head_indices(
    query: ConjunctiveQuery, variables: Sequence[Variable]
) -> tuple[int, ...]:
    variables = list(variables)
    return tuple(variables.index(v) for v in query.head)


def lower_regular(
    query: ConjunctiveQuery,
    strategy: Strategy,
    catalog: Catalog,
    plan: Optional[LeftDeepPlan] = None,
) -> PhysicalPlan:
    """Lower RS_HJ / RS_TJ: a left-deep shuffle-then-join pipeline."""
    plan = plan or left_deep_plan(query, catalog)
    scan_round, pending = _scan_round(query)
    slot_of = {atom.alias: atom.alias for atom in query.atoms}
    rounds, result, result_vars = _regular_rounds(
        query, strategy, plan, pending, slot_of
    )
    return PhysicalPlan(
        query=query,
        strategy=strategy.name,
        rounds=(scan_round, *rounds),
        result=result,
        result_kind=RESULT_FRAMES,
        head_indices=_head_indices(query, result_vars),
        left_deep=plan,
        pending=pending,
    )


def lower_broadcast(
    query: ConjunctiveQuery,
    strategy: Strategy,
    catalog: Catalog,
    plan: Optional[LeftDeepPlan] = None,
    variable_order: Optional[Sequence[Variable]] = None,
) -> PhysicalPlan:
    """Lower BR_HJ / BR_TJ: anchor the largest input, broadcast the rest,
    then evaluate the whole query locally on every worker."""
    plan = plan or left_deep_plan(query, catalog)
    scan_round, pending = _scan_round(query)
    aliases = tuple(atom.alias for atom in query.atoms)
    exchange_ops: list[PhysicalOp] = [ChooseAnchor(aliases=aliases)]
    slot_of: dict[str, str] = {}
    for atom in query.atoms:
        out = f"{atom.alias}@bcast"
        exchange_ops.append(
            Exchange(
                kind=ExchangeKind.BROADCAST,
                input=atom.alias,
                out=out,
                name=f"Broadcast {atom.alias}",
                phase="broadcast",
                skip_if_anchor=True,
            )
        )
        slot_of[atom.alias] = out
    broadcast_round = Round(label="broadcast", ops=tuple(exchange_ops))

    if strategy.join is JoinKind.TRIBUTARY:
        order = _resolve_order(query, catalog, variable_order)
        local = LocalTributaryJoin(
            query=scanned_query(query),
            inputs=tuple((alias, slot_of[alias]) for alias in aliases),
            out="result",
            order=order,
        )
        return PhysicalPlan(
            query=query,
            strategy=strategy.name,
            rounds=(
                scan_round,
                broadcast_round,
                Round(label="local tributary join", ops=(local,)),
            ),
            result="result",
            result_kind=RESULT_ROWS,
            left_deep=plan,
            variable_order=order,
            pending=pending,
        )

    ops, result, result_vars = _hash_pipeline_ops(query, plan, pending, slot_of)
    return PhysicalPlan(
        query=query,
        strategy=strategy.name,
        rounds=(
            scan_round,
            broadcast_round,
            Round(label="local hash pipeline", ops=tuple(ops)),
        ),
        result=result,
        result_kind=RESULT_FRAMES,
        head_indices=_head_indices(query, result_vars),
        left_deep=plan,
        pending=pending,
    )


def lower_hypercube(
    query: ConjunctiveQuery,
    strategy: Strategy,
    catalog: Catalog,
    plan: Optional[LeftDeepPlan] = None,
    hc_config: Optional[HyperCubeConfig] = None,
    variable_order: Optional[Sequence[Variable]] = None,
    hc_seed: int = 0,
) -> PhysicalPlan:
    """Lower HC_HJ / HC_TJ: one HyperCube shuffle of every atom, then a
    single local evaluation round on the configuration's used workers."""
    scan_round, pending = _scan_round(query)
    aliases = tuple(atom.alias for atom in query.atoms)
    shuffle_ops: list[PhysicalOp] = [
        ConfigureHyperCube(aliases=aliases, config=hc_config, seed=hc_seed)
    ]
    slot_of: dict[str, str] = {}
    for atom in query.atoms:
        out = f"{atom.alias}@hc"
        shuffle_ops.append(
            Exchange(
                kind=ExchangeKind.HYPERCUBE,
                input=atom.alias,
                out=out,
                atom=atom,
                name=f"HCS {atom.alias}",
                phase="hypercube shuffle",
            )
        )
        slot_of[atom.alias] = out
    shuffle_round = Round(label="hypercube shuffle", ops=tuple(shuffle_ops))

    if strategy.join is JoinKind.TRIBUTARY:
        order = _resolve_order(query, catalog, variable_order)
        local = LocalTributaryJoin(
            query=scanned_query(query),
            inputs=tuple((alias, slot_of[alias]) for alias in aliases),
            out="result",
            order=order,
        )
        return PhysicalPlan(
            query=query,
            strategy=strategy.name,
            rounds=(
                scan_round,
                shuffle_round,
                Round(
                    label="local tributary join",
                    ops=(local,),
                    local_workers=LOCAL_HC,
                ),
            ),
            result="result",
            result_kind=RESULT_ROWS,
            dedup_full=True,
            left_deep=plan,
            variable_order=order,
            pending=pending,
        )

    plan = plan or left_deep_plan(query, catalog)
    ops, result, result_vars = _hash_pipeline_ops(query, plan, pending, slot_of)
    return PhysicalPlan(
        query=query,
        strategy=strategy.name,
        rounds=(
            scan_round,
            shuffle_round,
            Round(
                label="local hash pipeline",
                ops=tuple(ops),
                local_workers=LOCAL_HC,
            ),
        ),
        result=result,
        result_kind=RESULT_FRAMES,
        head_indices=_head_indices(query, result_vars),
        dedup_full=True,
        left_deep=plan,
        pending=pending,
    )


def lower_semijoin(
    query: ConjunctiveQuery,
    catalog: Catalog,
) -> PhysicalPlan:
    """Lower the Sec. 3.6 semijoin plan: a bottom-up then top-down pass of
    distributed semijoin rounds over the join tree, then the RS_HJ pipeline
    over the reduced relations — all in the same IR.

    Raises ``ValueError`` for cyclic queries — only acyclic queries admit
    full semijoin reductions."""
    from .plans import RS_HJ

    tree = join_tree(query)  # raises for cyclic queries
    scan_round, pending = _scan_round(query)
    atoms = {atom.alias: atom for atom in query.atoms}
    slot_of = {atom.alias: atom.alias for atom in query.atoms}

    def shared_of(a: str, b: str) -> tuple[Variable, ...]:
        """Variables atom ``a`` shares with atom ``b``, in ``a``'s order."""
        return tuple(
            v for v in atoms[a].variables() if v in set(atoms[b].variables())
        )

    def semijoin_round(
        target: str, source: str, label: str, phase: str,
        shared: tuple[Variable, ...],
    ) -> Round:
        """One distributed semijoin: project keys, co-partition, filter."""
        key = canonical_key(shared)
        keys_slot = f"keys@{phase}"
        keys_part = f"{keys_slot}.part"
        target_part = f"{target}@{phase}"
        reduced = f"{target}@{phase}.reduced"
        ops: tuple[PhysicalOp, ...] = (
            SemiJoinProject(
                source=slot_of[source],
                out=keys_slot,
                key=key,
                phase=f"{phase}:project",
            ),
            Exchange(
                kind=ExchangeKind.REGULAR,
                input=slot_of[target],
                out=target_part,
                key=key,
                name=f"SJ {label} target -> h{tuple(v.name for v in key)}",
                phase=f"{phase}:shuffle",
            ),
            Exchange(
                kind=ExchangeKind.REGULAR,
                input=keys_slot,
                out=keys_part,
                key=key,
                name=f"SJ {label} keys -> h{tuple(v.name for v in key)}",
                phase=f"{phase}:shuffle",
                release_input=False,
            ),
            SemiJoinFilter(
                target=target_part,
                keys=keys_part,
                out=reduced,
                key=key,
                phase=f"{phase}:semijoin",
            ),
        )
        slot_of[target] = reduced
        return Round(label=f"semijoin {label} [{phase}]", ops=ops)

    rounds: list[Round] = []
    # Bottom-up: each removed ear reduces its parent.
    for position, child in enumerate(tree.removal_order):
        parent = tree.parents[child]
        if parent is None:
            continue
        shared = shared_of(parent, child)
        if not shared:
            continue
        rounds.append(
            semijoin_round(
                target=parent,
                source=child,
                label=f"{parent}<-{child}",
                phase=f"semijoin-up{position}",
                shared=shared,
            )
        )
    # Top-down: parents reduce their children, in reverse removal order.
    for position, child in enumerate(reversed(tree.removal_order)):
        parent = tree.parents[child]
        if parent is None:
            continue
        shared = shared_of(child, parent)
        if not shared:
            continue
        rounds.append(
            semijoin_round(
                target=child,
                source=parent,
                label=f"{child}<-{parent}",
                phase=f"semijoin-down{position}",
                shared=shared,
            )
        )

    plan = left_deep_plan(query, catalog)
    join_rounds, result, result_vars = _regular_rounds(
        query, RS_HJ, plan, pending, slot_of
    )
    return PhysicalPlan(
        query=query,
        strategy=SEMIJOIN_STRATEGY,
        rounds=(scan_round, *rounds, *join_rounds),
        result=result,
        result_kind=RESULT_FRAMES,
        head_indices=_head_indices(query, result_vars),
        left_deep=plan,
        pending=pending,
    )


def lower(
    query: ConjunctiveQuery,
    strategy: StrategyLike,
    catalog: Catalog,
    plan: Optional[LeftDeepPlan] = None,
    hc_config: Optional[HyperCubeConfig] = None,
    variable_order: Optional[Sequence[Variable]] = None,
    hc_seed: int = 0,
) -> PhysicalPlan:
    """Lower a query to a :class:`PhysicalPlan` for any strategy.

    ``strategy`` is a :class:`~repro.planner.plans.Strategy`, one of the six
    grid names, ``"SJ_HJ"`` for the semijoin-reduction plan, or
    ``"HYBRID"`` for the multi-stage binary-then-WCOJ plan."""
    if isinstance(strategy, str):
        if strategy == SEMIJOIN_STRATEGY:
            return lower_semijoin(query, catalog)
        if strategy == HYBRID_STRATEGY:
            from .decompose import lower_hybrid

            return lower_hybrid(
                query, catalog, variable_order=variable_order, hc_seed=hc_seed
            )
        try:
            strategy = Strategy.parse(strategy)
        except ValueError:
            valid = ", ".join(
                [s.name for s in ALL_STRATEGIES]
                + [SEMIJOIN_STRATEGY, HYBRID_STRATEGY]
            )
            raise ValueError(
                f"unknown strategy {strategy!r}; valid: {valid}"
            ) from None
    if strategy.shuffle is ShuffleKind.REGULAR:
        return lower_regular(query, strategy, catalog, plan=plan)
    if strategy.shuffle is ShuffleKind.BROADCAST:
        return lower_broadcast(
            query, strategy, catalog, plan=plan, variable_order=variable_order
        )
    return lower_hypercube(
        query,
        strategy,
        catalog,
        plan=plan,
        hc_config=hc_config,
        variable_order=variable_order,
        hc_seed=hc_seed,
    )
