"""The LFTJ trie-iterator API over sorted arrays (paper Sec. 2.2).

LogicBlox's Leapfrog Triejoin assumes each relation is stored in a B-tree
whose levels correspond to attributes.  The paper's Tributary join instead
sorts each (post-shuffle) fragment and implements the same API with binary
search: ``seek`` costs ``O(log n)`` per call instead of amortized ``O(1)``,
which keeps the join worst-case optimal up to a log factor.

The API, following Veldhuizen:

- ``open()``  — descend to the first key of the next attribute level;
- ``up()``    — return to the previous level;
- ``key()``   — the current key at the current level;
- ``next()``  — advance to the next *distinct* key at this level;
- ``seek(v)`` — least key ``>= v`` at this level (the binary search);
- ``at_end`` — no further keys at this level within the parent's range.

Every ``seek``/``next`` is counted in :attr:`TrieIterator.seeks`, the unit
of the Sec. 5 cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.sorted import SortedRelation


@dataclass
class _Level:
    """Open state for one trie level: the parent range and cursor position."""

    lo: int  # parent range start (rows sharing the prefix above this level)
    hi: int  # parent range end
    position: int  # start of the current key's block
    block_end: int  # end of the current key's block


class TrieIterator:
    """A trie cursor over a :class:`SortedRelation`'s key columns."""

    def __init__(self, relation: SortedRelation, key_depth: int | None = None) -> None:
        self.relation = relation
        self.max_depth = key_depth if key_depth is not None else relation.depth()
        if self.max_depth > len(relation.permutation):
            raise ValueError("key depth exceeds relation arity")
        self._levels: list[_Level] = []
        self.at_end = len(relation) == 0
        self.seeks = 0  # binary searches performed (cost-model unit)

    @property
    def depth(self) -> int:
        """Current trie depth: 0 = before any level is open."""
        return len(self._levels)

    def _parent_range(self) -> tuple[int, int]:
        if not self._levels:
            return 0, len(self.relation)
        top = self._levels[-1]
        return top.position, top.block_end

    def open(self) -> None:
        """Descend to the first key of the next attribute level."""
        if self.depth >= self.max_depth:
            raise RuntimeError("cannot open below the deepest key level")
        lo, hi = self._parent_range()
        if lo >= hi:
            raise RuntimeError("cannot open an empty range")
        depth = self.depth
        block_end = self.relation.upper_bound(
            depth, self.relation.key_at(depth, lo), lo, hi
        )
        self.seeks += 1
        self._levels.append(_Level(lo=lo, hi=hi, position=lo, block_end=block_end))
        self.at_end = False

    def up(self) -> None:
        """Ascend one level, restoring the parent cursor."""
        if not self._levels:
            raise RuntimeError("already at the root")
        self._levels.pop()
        self.at_end = False

    def key(self) -> int:
        """The current key at the current level."""
        if not self._levels or self.at_end:
            raise RuntimeError("no current key")
        level = self._levels[-1]
        return self.relation.key_at(len(self._levels) - 1, level.position)

    def next(self) -> None:
        """Advance to the next distinct key at this level."""
        level = self._levels[-1]
        depth = len(self._levels) - 1
        level.position = level.block_end
        if level.position >= level.hi:
            self.at_end = True
            return
        level.block_end = self.relation.upper_bound(
            depth, self.relation.key_at(depth, level.position), level.position, level.hi
        )
        self.seeks += 1

    def seek(self, value: int) -> None:
        """Position at the least key ``>= value`` (binary search)."""
        level = self._levels[-1]
        depth = len(self._levels) - 1
        position = self.relation.lower_bound(depth, value, level.position, level.hi)
        self.seeks += 1
        if position >= level.hi:
            level.position = position
            self.at_end = True
            return
        level.position = position
        level.block_end = self.relation.upper_bound(
            depth, self.relation.key_at(depth, position), position, level.hi
        )
        self.seeks += 1

    def current_range(self) -> tuple[int, int]:
        """Row range of the current key's block (the 'residual relation')."""
        if not self._levels or self.at_end:
            raise RuntimeError("no current block")
        level = self._levels[-1]
        return level.position, level.block_end
