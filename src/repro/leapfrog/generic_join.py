"""Generic Join — the NPRR-style worst-case-optimal join.

The paper builds on two families of worst-case-optimal sequential joins:
Leapfrog Triejoin (which it implements as the Tributary join) and the NPRR
algorithm of Ngo et al.; "a concise, unified presentation is given in
[Skew strikes back, Algorithm 3]" — the *Generic Join*.  This module
implements that unified algorithm over hash-trie indexes:

for each variable in the global order, intersect the candidate values by
enumerating the smallest participant's distinct values and probing the
others in O(1) per probe — instead of the leapfrog's ordered seeks.

Included as the paper's referenced baseline; it matches the Tributary join
result-for-result (see the property tests) and lets benchmarks compare the
probe-counted cost profiles of the two worst-case-optimal strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence

from ..query.atoms import Comparison, ConjunctiveQuery, Variable
from ..storage.relation import Relation
from .tributary import Encoder, _identity_encoder


@dataclass
class GenericJoinStats:
    """Work counters for one Generic Join execution."""

    probes: int = 0  # hash probes (the NPRR analogue of seeks)
    results: int = 0
    index_cost: int = 0  # tuples inserted while building the hash tries


def _build_trie(
    rows: Sequence[tuple[int, ...]], positions: Sequence[int]
) -> dict:
    """Nested dicts keyed by the values at ``positions``, in order."""
    root: dict = {}
    for row in rows:
        node = root
        for position in positions[:-1]:
            node = node.setdefault(row[position], {})
        node[row[positions[-1]]] = True
    return root


@dataclass
class _IndexedAtom:
    alias: str
    key_variables: tuple[Variable, ...]
    trie: dict


class GenericJoin:
    """One multiway Generic Join for a fixed global variable order.

    The public surface mirrors :class:`~repro.leapfrog.tributary
    .TributaryJoin`: constants, repeated variables, comparisons, and head
    projection with de-duplication are all supported.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        relations: Mapping[str, Relation],
        order: Optional[Sequence[Variable]] = None,
        encoder: Encoder = _identity_encoder,
        project_head: bool = True,
    ) -> None:
        self.query = query
        self.order = tuple(order) if order is not None else query.variables()
        if set(self.order) != set(query.variables()):
            raise ValueError(
                f"order {self.order} must cover all query variables "
                f"{query.variables()}"
            )
        self.project_head = project_head
        self.stats = GenericJoinStats()
        self._indexed: list[_IndexedAtom] = []
        for atom in query.atoms:
            relation = (
                relations[atom.alias]
                if atom.alias in relations
                else relations[atom.relation]
            )
            rows = relation.rows
            for position, constant in atom.constants():
                value = encoder(constant.value)
                rows = [row for row in rows if row[position] == value]
            for variable in atom.variables():
                positions = atom.positions_of(variable)
                if len(positions) > 1:
                    first = positions[0]
                    rows = [
                        row
                        for row in rows
                        if all(row[p] == row[first] for p in positions)
                    ]
            key_variables = tuple(v for v in self.order if v in atom.variables())
            if set(key_variables) != set(atom.variables()):
                missing = set(atom.variables()) - set(key_variables)
                raise ValueError(
                    f"variable order misses {missing} of atom {atom.alias}"
                )
            positions = [atom.positions_of(v)[0] for v in key_variables]
            if positions:
                trie = _build_trie(rows, positions)
            else:
                # a variable-free atom is a boolean guard: non-empty rows
                # satisfy it (marker entry), empty rows kill the query
                trie = {0: True} if rows else {}
            self._indexed.append(_IndexedAtom(atom.alias, key_variables, trie))
            self.stats.index_cost += len(rows)

        depth_of = {variable: i for i, variable in enumerate(self.order)}
        self._comparisons_at_depth: list[list[Comparison]] = [[] for _ in self.order]
        for comparison in query.comparisons:
            fire = max(depth_of[v] for v in comparison.variables())
            self._comparisons_at_depth[fire].append(comparison)
        self._head_positions = [depth_of[v] for v in query.head]

    def run(self) -> list[tuple[int, ...]]:
        results = list(self.iterate())
        if self.project_head and not self.query.is_full():
            results = list(dict.fromkeys(results))
        return results

    def iterate(self) -> Iterator[tuple[int, ...]]:
        if any(not indexed.trie for indexed in self._indexed):
            return
        binding = [0] * len(self.order)
        nodes = {indexed.alias: indexed.trie for indexed in self._indexed}
        yield from self._join(0, binding, nodes)

    def _join(
        self,
        depth: int,
        binding: list[int],
        nodes: dict[str, dict],
    ) -> Iterator[tuple[int, ...]]:
        variable = self.order[depth]
        participants = [
            indexed
            for indexed in self._indexed
            if variable in indexed.key_variables
        ]
        # enumerate the smallest candidate set, probe the rest (the O(1)
        # intersection at the heart of NPRR's worst-case optimality)
        smallest = min(participants, key=lambda p: len(nodes[p.alias]))
        others = [p for p in participants if p is not smallest]
        for value in nodes[smallest.alias]:
            self.stats.probes += 1
            if any(value not in nodes[other.alias] for other in others):
                self.stats.probes += len(others)
                continue
            self.stats.probes += len(others)
            binding[depth] = value
            if not self._filters_pass(depth, binding):
                continue
            if depth + 1 == len(self.order):
                self.stats.results += 1
                yield tuple(binding[p] for p in self._head_positions)
                continue
            descended = dict(nodes)
            for participant in participants:
                descended[participant.alias] = nodes[participant.alias][value]
            yield from self._join(depth + 1, binding, descended)

    def _filters_pass(self, depth: int, binding: list[int]) -> bool:
        comparisons = self._comparisons_at_depth[depth]
        if not comparisons:
            return True
        bound = {
            variable: binding[i]
            for i, variable in enumerate(self.order)
            if i <= depth
        }
        return all(comparison.evaluate(bound) for comparison in comparisons)


def generic_join(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    order: Optional[Sequence[Variable]] = None,
    encoder: Encoder = _identity_encoder,
) -> list[tuple[int, ...]]:
    """Convenience one-shot wrapper around :class:`GenericJoin`."""
    return GenericJoin(query, relations, order=order, encoder=encoder).run()
