"""Tributary join — the paper's array-based Leapfrog Triejoin (Sec. 2.2).

Given a global order of the join variables, every relation is sorted
lexicographically by (its subset of) that order, and the multiway join is a
nested leapfrog: at level ``i`` the trie iterators of every atom containing
variable ``order[i]`` repeatedly seek to each other's keys until they all
agree on a value, at which point the algorithm recurses into the residual
query — which is just a sub-range of each sorted array.

The whole query is computed in one operator with **no intermediate
results**, the property that makes HC_TJ win on cyclic queries with large
intermediates (Q1, Q2, Q5, Q6).

Supports the paper's full workload surface: self-joins (aliases), constant
selections (pushed down before sorting), comparison predicates (applied at
the shallowest depth where both sides are bound, e.g. Q4's ``f1 > f2``),
and head projection with duplicate elimination for non-full queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Optional, Sequence, Union

from ..query.atoms import Atom, Comparison, ConjunctiveQuery, Variable
from ..storage.btree import BPlusTree
from ..storage.relation import Relation
from ..storage.sorted import SortedRelation
from .btree_iterator import BTreeTrieIterator
from .iterator import TrieIterator

Encoder = Callable[[Union[int, str]], int]

#: LFTJ backends: "sorted" is the paper's Tributary join (sort + binary
#: search); "btree" is the LogicBlox layout (on-the-fly B-tree build +
#: finger-search seeks) included for the Sec. 2.2 comparison.
BACKENDS = ("sorted", "btree")


def _identity_encoder(value: Union[int, str]) -> int:
    if not isinstance(value, int):
        raise TypeError(
            f"string constant {value!r} requires a Database encoder; "
            "pass encoder=db.encode"
        )
    return value


class SeekBudgetExceeded(RuntimeError):
    """The join exceeded its ``max_seeks`` budget.

    Pathological variable orders make LFTJ-style joins explore near-cross-
    products of the active domains; the paper handled this by terminating
    queries after 1,000 seconds (Sec. 5.2).  ``max_seeks`` is the simulator
    equivalent of that timeout.
    """

    def __init__(self, seeks: int, budget: int) -> None:
        super().__init__(f"seek budget exhausted: {seeks} > {budget}")
        self.seeks = seeks
        self.budget = budget


@dataclass
class TributaryStats:
    """Work counters for one Tributary join execution."""

    seeks: int = 0  # binary searches (the Sec. 5 cost-model unit)
    results: int = 0  # tuples emitted (before head projection dedup)
    sort_cost: int = 0  # comparison-count proxy charged for preparing inputs
    sorted_tuples: int = 0  # total input tuples prepared


@dataclass
class _PreparedAtom:
    atom: Atom
    iterator: Union[TrieIterator, BTreeTrieIterator]
    key_variables: tuple[Variable, ...]
    size: int  # tuples after filtering
    prepare_cost: int  # sort comparisons or B-tree build node visits


def prepare_atom(
    atom: Atom,
    relation: Relation,
    order: Sequence[Variable],
    encoder: Encoder = _identity_encoder,
    backend: str = "sorted",
) -> _PreparedAtom:
    """Filter an atom's relation by its constants / repeated variables and
    build the chosen LFTJ backend over it (sorted array or B-tree)."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; use one of {BACKENDS}")
    # function-local import: ``engine`` imports this module, so a top-level
    # import of the kernel layer would be circular
    from ..engine.kernels import atom_selection, filter_atom_rows

    constant_filters, repeat_groups = atom_selection(atom, encoder)
    rows = filter_atom_rows(relation.rows, constant_filters, repeat_groups)
    filtered = relation if rows is relation.rows else relation.with_rows(rows)
    key_variables = tuple(v for v in order if v in atom.variables())
    if set(key_variables) != set(atom.variables()):
        missing = set(atom.variables()) - set(key_variables)
        raise ValueError(f"variable order misses {missing} of atom {atom.alias}")
    key_positions = [atom.positions_of(v)[0] for v in key_variables]
    if backend == "sorted":
        sorted_relation = SortedRelation(filtered, key_positions, keep_rest=False)
        return _PreparedAtom(
            atom,
            TrieIterator(sorted_relation, key_depth=len(key_variables)),
            key_variables,
            size=len(sorted_relation),
            prepare_cost=sorted_relation.sort_cost,
        )
    # B-tree backend: tuple-at-a-time insertion, the "on the fly" build the
    # paper rejects as more expensive than sorting
    tree = BPlusTree()
    for row in filtered.rows:
        tree.insert(tuple(row[p] for p in key_positions))
    return _PreparedAtom(
        atom,
        BTreeTrieIterator(tree, key_depth=len(key_variables)),
        key_variables,
        size=len(tree),
        prepare_cost=tree.node_visits,
    )


class TributaryJoin:
    """One full multiway join, prepared for a fixed variable order.

    >>> from repro.query import parse_query
    >>> from repro.storage import Relation
    >>> q = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x).")
    >>> r = Relation("R", ("a","b"), [(0,1),(1,2),(2,0)])
    >>> tj = TributaryJoin(q, {"R": r, "S": r.renamed("S"), "T": r.renamed("T")})
    >>> sorted(tj.run())
    [(0, 1, 2), (1, 2, 0), (2, 0, 1)]
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        relations: Mapping[str, Relation],
        order: Optional[Sequence[Variable]] = None,
        encoder: Encoder = _identity_encoder,
        project_head: bool = True,
        backend: str = "sorted",
        max_seeks: Optional[int] = None,
    ) -> None:
        self.query = query
        self.order = tuple(order) if order is not None else query.variables()
        if set(self.order) != set(query.variables()):
            raise ValueError(
                f"order {self.order} must cover all query variables "
                f"{query.variables()}"
            )
        self.project_head = project_head
        self.backend = backend
        self.max_seeks = max_seeks
        self.stats = TributaryStats()
        self._prepared: list[_PreparedAtom] = []
        for atom in query.atoms:
            relation = relations[atom.alias] if atom.alias in relations else relations[atom.relation]
            prepared = prepare_atom(atom, relation, self.order, encoder, backend)
            self.stats.sort_cost += prepared.prepare_cost
            self.stats.sorted_tuples += prepared.size
            self._prepared.append(prepared)
        # atoms participating at each depth
        self._atoms_at_depth: list[list[_PreparedAtom]] = []
        for variable in self.order:
            participants = [
                p for p in self._prepared if variable in p.key_variables
            ]
            self._atoms_at_depth.append(participants)
        # comparisons fire at the deepest variable they mention
        depth_of = {variable: i for i, variable in enumerate(self.order)}
        self._comparisons_at_depth: list[list[Comparison]] = [
            [] for _ in self.order
        ]
        for comparison in query.comparisons:
            fire_depth = max(depth_of[v] for v in comparison.variables())
            self._comparisons_at_depth[fire_depth].append(comparison)
        self._head_positions = [depth_of[v] for v in query.head]

    # ------------------------------------------------------------------

    def run(self) -> list[tuple[int, ...]]:
        """Execute the join; returns head tuples (deduplicated if non-full)."""
        results = list(self.iterate())
        if self.project_head and not self.query.is_full():
            results = list(dict.fromkeys(results))
        return results

    def iterate(self) -> Iterator[tuple[int, ...]]:
        """Stream head tuples (duplicates possible for non-full queries).

        Under numpy kernels on the ``sorted`` backend the trie walk runs
        block-at-a-time through :mod:`~repro.leapfrog.vectorized` (same
        rows, same order, same seek counts — only faster); every other
        configuration takes the scalar tuple-at-a-time walk.
        """
        if any(p.size == 0 for p in self._prepared):
            return
        # function-local import: vectorized imports engine.kernels, which
        # would be circular at module load (engine imports this module)
        from .vectorized import VectorizedTributaryRun

        vectorized = VectorizedTributaryRun.build(self)
        try:
            if vectorized is not None:
                for block in vectorized.blocks():
                    yield from block
            else:
                binding = [0] * len(self.order)
                yield from self._join(0, binding)
        finally:
            # runs on generator close too, so partially-consumed iterations
            # (max_seeks aborts, early-stopping consumers) still record the
            # seeks performed so far
            self.stats.seeks = self.total_seeks()

    def _check_seek_budget(self) -> None:
        """Raise :class:`SeekBudgetExceeded` when past ``max_seeks``."""
        if self.max_seeks is not None:
            seeks = self.total_seeks()
            if seeks > self.max_seeks:
                raise SeekBudgetExceeded(seeks, self.max_seeks)

    def _join(self, depth: int, binding: list[int]) -> Iterator[tuple[int, ...]]:
        participants = self._atoms_at_depth[depth]
        iterators = [p.iterator for p in participants]
        for iterator in iterators:
            iterator.open()
        try:
            for value in _leapfrog(iterators):
                self._check_seek_budget()
                binding[depth] = value
                if not self._filters_pass(depth, binding):
                    continue
                if depth + 1 == len(self.order):
                    self.stats.results += 1
                    yield tuple(binding[p] for p in self._head_positions)
                else:
                    yield from self._join(depth + 1, binding)
        finally:
            for iterator in iterators:
                iterator.up()

    def _filters_pass(self, depth: int, binding: list[int]) -> bool:
        comparisons = self._comparisons_at_depth[depth]
        if not comparisons:
            return True
        bound = {
            variable: binding[i]
            for i, variable in enumerate(self.order)
            if i <= depth
        }
        return all(comparison.evaluate(bound) for comparison in comparisons)

    def total_seeks(self) -> int:
        return sum(p.iterator.seeks for p in self._prepared)


def _leapfrog(iterators: list[TrieIterator]) -> Iterator[int]:
    """Leapfrog intersection of the open iterators' current levels.

    Yields every value present in all of them, in increasing order.  The
    iterators must all be freshly ``open``ed; they are left exhausted (or
    wherever the consumer stopped) when the generator finishes.
    """
    if any(iterator.at_end for iterator in iterators):
        return
    iterators = sorted(iterators, key=lambda iterator: iterator.key())
    count = len(iterators)
    p = 0
    max_key = iterators[-1].key()
    while True:
        iterator = iterators[p]
        key = iterator.key()
        if key == max_key:
            # all iterators agree on max_key
            yield max_key
            iterator.next()
            if iterator.at_end:
                return
            max_key = iterator.key()
            p = (p + 1) % count
        else:
            iterator.seek(max_key)
            if iterator.at_end:
                return
            max_key = iterator.key()
            p = (p + 1) % count


def tributary_join(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    order: Optional[Sequence[Variable]] = None,
    encoder: Encoder = _identity_encoder,
) -> list[tuple[int, ...]]:
    """Convenience one-shot wrapper around :class:`TributaryJoin`."""
    return TributaryJoin(query, relations, order=order, encoder=encoder).run()
