"""Worst-case-optimal joins: the Tributary join (LFTJ over sorted arrays or
B-trees), the NPRR-style Generic Join, and the variable-order optimizer."""

from .btree_iterator import BTreeTrieIterator
from .generic_join import GenericJoin, GenericJoinStats, generic_join
from .iterator import TrieIterator
from .tributary import (
    BACKENDS,
    SeekBudgetExceeded,
    TributaryJoin,
    TributaryStats,
    prepare_atom,
    tributary_join,
)
from .variable_order import (
    OrderCost,
    best_join_order,
    enumerate_join_orders,
    estimate_order_cost,
    full_variable_order,
)

__all__ = [
    "BACKENDS",
    "BTreeTrieIterator",
    "GenericJoin",
    "GenericJoinStats",
    "OrderCost",
    "SeekBudgetExceeded",
    "TributaryJoin",
    "TributaryStats",
    "TrieIterator",
    "best_join_order",
    "enumerate_join_orders",
    "estimate_order_cost",
    "full_variable_order",
    "generic_join",
    "prepare_atom",
    "tributary_join",
]
