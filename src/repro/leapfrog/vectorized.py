"""Block-at-a-time numpy backend for the Tributary join inner loop.

The scalar :class:`~repro.leapfrog.tributary.TributaryJoin` pays a Python
binary search per ``seek`` — the last tuple-at-a-time hot loop left after
PR 2 vectorized the shuffle and sort paths.  This module executes the same
leapfrog trie walk level by level over *arrays of trie contexts*, so the
seeks of thousands of sibling contexts collapse into a handful of
``np.searchsorted`` calls (HoneyComb's batched-intersection idea, arXiv
2502.06715), and result tuples are emitted in blocks instead of one
generator yield each.

Counted-metric contract (enforced by ``tests/test_wcoj_differential.py``):
result rows, their order, ``TributaryStats.seeks`` / ``results`` /
``sort_cost`` / ``sorted_tuples``, and the per-iterator ``seeks`` counters
are bit-identical to the scalar backend.  The walk replicates the scalar
seek accounting exactly:

- ``open``      → 1 seek (the block-end upper bound);
- ``next``      → 1 seek when a new key exists, 0 on exhaustion;
- ``seek(v)``   → 1 seek (lower bound) always, +1 (upper bound) on a hit.

The key observation enabling batching: a :class:`SortedRelation`'s rows are
sorted lexicographically, so the packed prefix keys of
:func:`~repro.engine.kernels.packed_key_levels` are globally non-decreasing
and a per-block binary search equals a single global ``searchsorted``.

Execution shape:

- **level 0** with one participant is expanded wholesale from precomputed
  run boundaries; with several participants it is enumerated with the
  scalar trie iterators (a single context gains nothing from batching, and
  the scalar walk counts its own seeks);
- the level-0 domain is split into **chunks** (at least two whenever it has
  two or more values), each descended to the deepest level and emitted as
  one block — this is the HoneyComb-style top-variable domain partitioning,
  and it keeps partially-consumed generators recording strictly fewer
  seeks than exhausted ones (the PR 2 ``try/finally`` contract);
- deeper levels run either the **wholesale** single-participant expansion
  or the **lockstep leapfrog**: per-context cursor arrays advance in the
  same round-robin order as the scalar algorithm, grouped by acting
  participant so each step is at most a few ``searchsorted`` calls per
  participant.

Emissions are restored to depth-first order with a stable sort on the
context index before recursing, so the output order (which downstream
dedup, shuffles, and the golden captures pin) matches the scalar walk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..engine import kernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tributary import TributaryJoin

#: cap on contexts descended per top-level chunk; bounds peak frontier
#: memory while keeping searchsorted batches large
_CHUNK_CAP = 65536


class _AtomArrays:
    """Columnar search structures for one prepared atom.

    Wraps the atom's sorted ``(width, n)`` column array with the packed
    prefix keys of every depth plus (lazily) the run boundaries per level —
    everything the batched walk needs, built once per join.
    """

    __slots__ = ("columns", "packed", "lows", "spans", "length", "_runs")

    def __init__(
        self,
        columns: np.ndarray,
        packed: list[np.ndarray],
        lows: list[int],
        spans: list[int],
    ) -> None:
        self.columns = columns
        self.packed = packed
        self.lows = lows
        self.spans = spans
        self.length = columns.shape[1]
        self._runs: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def runs(self, level: int) -> tuple[np.ndarray, np.ndarray]:
        """(starts, ends) of the equal-key runs of ``packed[level]``."""
        cached = self._runs.get(level)
        if cached is None:
            packed = self.packed[level]
            change = np.flatnonzero(packed[1:] != packed[:-1]) + 1
            starts = np.concatenate(
                (np.zeros(1, dtype=np.int64), change.astype(np.int64))
            )
            ends = np.concatenate(
                (starts[1:], np.asarray([packed.size], dtype=np.int64))
            )
            cached = (starts, ends)
            self._runs[level] = cached
        return cached


class VectorizedTributaryRun:
    """One batched execution of a prepared :class:`TributaryJoin`."""

    def __init__(self, join: "TributaryJoin", arrays: dict[int, _AtomArrays]):
        self.join = join
        self.arrays = arrays
        # order[depth] -> participating prepared-atom indices
        self._participants: list[list[int]] = [
            [
                i
                for i, p in enumerate(join._prepared)
                if variable in p.key_variables
            ]
            for variable in join.order
        ]
        # (atom index, depth) -> the atom's own trie level for that depth
        self._levels: dict[tuple[int, int], int] = {}
        for depth, variable in enumerate(join.order):
            for i in self._participants[depth]:
                self._levels[(i, depth)] = join._prepared[
                    i
                ].key_variables.index(variable)
        # seeks counted by the batched walk, flushed into the scalar
        # iterators' counters so ``total_seeks()`` stays the one source
        self._pending: dict[int, int] = {
            i: 0 for i in range(len(join._prepared))
        }

    # ------------------------------------------------------------------

    @classmethod
    def build(cls, join: "TributaryJoin") -> Optional["VectorizedTributaryRun"]:
        """A batched run for this join, or ``None`` when unsupported.

        Requires the ``sorted`` backend under numpy kernels with columnar
        sorted arrays present, and every atom's key ranges packable into 64
        bits; anything else falls back to the scalar walk.
        """
        if join.backend != "sorted":
            return None
        if kernels.get_backend() != "numpy":
            return None
        arrays = getattr(join, "_vector_arrays", None)
        if arrays is None:
            arrays = {}
            for i, prepared in enumerate(join._prepared):
                relation = prepared.iterator.relation
                columns = getattr(relation, "_columns_array", None)
                if columns is None:
                    return None
                packing = kernels.packed_key_levels(columns)
                if packing is None and columns.shape[0] > 0:
                    return None
                packed, lows, spans = packing if packing else ([], [], [])
                arrays[i] = _AtomArrays(columns, packed, lows, spans)
            join._vector_arrays = arrays
        return cls(join, arrays)

    # ------------------------------------------------------------------

    def blocks(self):
        """Yield result-tuple blocks in exact scalar emission order."""
        join = self.join
        depth_count = len(join.order)
        root = self._root_frontier()
        values = root[0]
        keep = self._filter_mask(0, [values])
        if keep is not None:
            values = values[keep]
            root = (values, {
                i: (lo[keep], hi[keep]) for i, (lo, hi) in root[1].items()
            })
        count = values.size
        if count == 0:
            return
        block_lo: dict[int, np.ndarray] = {}
        block_hi: dict[int, np.ndarray] = {}
        for i in range(len(join._prepared)):
            if i in root[1]:
                block_lo[i], block_hi[i] = root[1][i]
            else:
                block_lo[i] = np.zeros(count, dtype=np.int64)
                block_hi[i] = np.full(
                    count, self.arrays[i].length, dtype=np.int64
                )
        chunk = max(1, min(count // 2, _CHUNK_CAP))
        for start in range(0, count, chunk):
            stop = min(start + chunk, count)
            bindings = [values[start:stop]]
            lo = {i: a[start:stop] for i, a in block_lo.items()}
            hi = {i: a[start:stop] for i, a in block_hi.items()}
            emptied = False
            for depth in range(1, depth_count):
                bindings, lo, hi = self._descend(depth, bindings, lo, hi)
                if bindings is None:
                    emptied = True
                    break
            if not emptied:
                yield self._emit(bindings)

    # ------------------------------------------------------------------

    def _root_frontier(
        self,
    ) -> tuple[np.ndarray, dict[int, tuple[np.ndarray, np.ndarray]]]:
        """Enumerate level 0 over the single root context."""
        join = self.join
        part = self._participants[0]
        if len(part) == 1:
            index = part[0]
            arrays = self.arrays[index]
            starts, ends = arrays.runs(self._levels[(index, 0)])
            # 1 open + one next per further distinct key
            self._pending[index] += starts.size
            self._flush_seeks()
            return arrays.columns[self._levels[(index, 0)]][starts], {
                index: (starts, ends)
            }
        # several participants over one context: the scalar leapfrog is the
        # batched algorithm at batch size one, minus the numpy overhead —
        # and it counts its own seeks
        from .tributary import _leapfrog

        iterators = [join._prepared[i].iterator for i in part]
        for iterator in iterators:
            iterator.open()
        values: list[int] = []
        captured: dict[int, tuple[list[int], list[int]]] = {
            i: ([], []) for i in part
        }
        try:
            for value in _leapfrog(iterators):
                join._check_seek_budget()
                values.append(value)
                for i in part:
                    lo, hi = join._prepared[i].iterator.current_range()
                    captured[i][0].append(lo)
                    captured[i][1].append(hi)
        finally:
            for iterator in iterators:
                iterator.up()
        blocks = {
            i: (
                np.asarray(captured[i][0], dtype=np.int64),
                np.asarray(captured[i][1], dtype=np.int64),
            )
            for i in part
        }
        return np.asarray(values, dtype=np.int64), blocks

    def _descend(self, depth, bindings, block_lo, block_hi):
        """Expand every context one level down; ``(None, None, None)`` when
        the frontier empties."""
        join = self.join
        part = self._participants[depth]
        if len(part) == 1:
            parent_idx, values, blocks = self._single(part[0], depth, block_lo, block_hi)
        else:
            parent_idx, values, blocks = self._lockstep(part, depth, block_lo, block_hi)
        self._flush_seeks()
        if values.size == 0:
            return None, None, None
        child_bindings = [b[parent_idx] for b in bindings]
        child_bindings.append(values)
        child_lo: dict[int, np.ndarray] = {}
        child_hi: dict[int, np.ndarray] = {}
        for i in range(len(join._prepared)):
            if i in blocks:
                child_lo[i], child_hi[i] = blocks[i]
            else:
                child_lo[i] = block_lo[i][parent_idx]
                child_hi[i] = block_hi[i][parent_idx]
        keep = self._filter_mask(depth, child_bindings)
        if keep is not None:
            child_bindings = [b[keep] for b in child_bindings]
            child_lo = {i: a[keep] for i, a in child_lo.items()}
            child_hi = {i: a[keep] for i, a in child_hi.items()}
            if child_bindings[0].size == 0:
                return None, None, None
        return child_bindings, child_lo, child_hi

    def _single(self, index, depth, block_lo, block_hi):
        """Wholesale expansion of a one-participant level: every context's
        distinct keys are exactly the packed-key runs inside its block."""
        arrays = self.arrays[index]
        level = self._levels[(index, depth)]
        starts, ends = arrays.runs(level)
        lo = block_lo[index]
        hi = block_hi[index]
        # block bounds are run boundaries of this level (trie blocks nest),
        # so the runs of context c are starts[first[c] : last[c]]
        first = np.searchsorted(starts, lo, side="left")
        last = np.searchsorted(starts, hi, side="left")
        counts = last - first
        total = int(counts.sum())
        # 1 open + (distinct - 1) nexts per context = its run count
        self._pending[index] += total
        offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1])
        )
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts)
            + np.repeat(first, counts)
        )
        child_lo = starts[flat]
        child_hi = ends[flat]
        parent_idx = np.repeat(np.arange(lo.size, dtype=np.int64), counts)
        values = arrays.columns[level][child_lo]
        return parent_idx, values, {index: (child_lo, child_hi)}

    def _lockstep(self, part, depth, block_lo, block_hi):
        """Round-robin leapfrog over arrays of contexts.

        Per-context state mirrors the scalar algorithm exactly — cursor
        position/block-end per participant, the stable initial-key slot
        order, the acting-pointer ``p``, and ``max_key`` — advanced for all
        live contexts at once, grouped by acting participant so each step
        costs at most three ``searchsorted`` batches per participant.
        """
        count = len(part)
        context_count = block_lo[part[0]].size
        levels = [self._levels[(i, depth)] for i in part]
        arrays = [self.arrays[i] for i in part]
        pos: list[np.ndarray] = []
        end: list[np.ndarray] = []
        keys = np.empty((count, context_count), dtype=np.int64)
        for j, i in enumerate(part):
            packed = arrays[j].packed[levels[j]]
            opened = block_lo[i].astype(np.int64, copy=True)
            pos.append(opened)
            end.append(kernels.run_bounds(packed, opened).astype(np.int64))
            self._pending[i] += context_count  # the open() upper bound
            keys[j] = arrays[j].columns[levels[j]][opened]
        his = [block_hi[i] for i in part]
        slot_order = np.argsort(keys, axis=0, kind="stable")
        max_key = keys.max(axis=0)
        pointer = np.zeros(context_count, dtype=np.int64)
        active = np.ones(context_count, dtype=bool)
        emit_ctx: list[np.ndarray] = []
        emit_val: list[np.ndarray] = []
        emit_blocks: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(count)
        ]
        while True:
            acting = np.flatnonzero(active)
            if acting.size == 0:
                break
            current = slot_order[pointer[acting], acting]
            agreed = keys[current, acting] == max_key[acting]
            hits = acting[agreed]
            if hits.size:
                emit_ctx.append(hits)
                emit_val.append(max_key[hits])
                for j in range(count):
                    emit_blocks[j].append((pos[j][hits], end[j][hits]))
            for j, i in enumerate(part):
                mine = current == j
                if not mine.any():
                    continue
                contexts = acting[mine]
                matched = agreed[mine]
                packed = arrays[j].packed[levels[j]]
                column = arrays[j].columns[levels[j]]
                new_pos = np.empty(contexts.size, dtype=np.int64)
                if matched.any():
                    # next(): hop to the block end
                    new_pos[matched] = end[j][contexts[matched]]
                missed = ~matched
                if missed.any():
                    # seek(max_key): one batched lower bound
                    seeking = contexts[missed]
                    level = levels[j]
                    if level > 0:
                        prefixes = arrays[j].packed[level - 1][pos[j][seeking]]
                    else:
                        prefixes = np.zeros(seeking.size, dtype=np.uint64)
                    new_pos[missed] = kernels.batched_seek_lower_bounds(
                        packed,
                        prefixes,
                        max_key[seeking],
                        arrays[j].lows[level],
                        arrays[j].spans[level],
                    )
                    self._pending[i] += int(seeking.size)
                exhausted = new_pos >= his[j][contexts]
                active[contexts[exhausted]] = False
                alive = contexts[~exhausted]
                if alive.size:
                    landed = new_pos[~exhausted]
                    pos[j][alive] = landed
                    end[j][alive] = kernels.run_bounds(packed, landed)
                    self._pending[i] += int(alive.size)  # block-end bound
                    fresh = column[landed]
                    keys[j, alive] = fresh
                    max_key[alive] = fresh
                    pointer[alive] = (pointer[alive] + 1) % count
        if not emit_ctx:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, {i: (empty, empty) for i in part}
        all_ctx = np.concatenate(emit_ctx)
        all_val = np.concatenate(emit_val)
        # chronological emissions per context are ascending; a stable sort
        # on the context index restores global depth-first order
        order = np.argsort(all_ctx, kind="stable")
        blocks = {}
        for j, i in enumerate(part):
            lo = np.concatenate([c[0] for c in emit_blocks[j]])[order]
            hi = np.concatenate([c[1] for c in emit_blocks[j]])[order]
            blocks[i] = (lo, hi)
        return all_ctx[order], all_val[order], blocks

    # ------------------------------------------------------------------

    def _filter_mask(self, depth, bindings) -> Optional[np.ndarray]:
        """Comparison-predicate mask at this depth (``None`` = keep all)."""
        comparisons = self.join._comparisons_at_depth[depth]
        if not comparisons:
            return None
        order = self.join.order
        columns = [b.tolist() for b in bindings]
        keep = np.ones(len(columns[0]), dtype=bool)
        for row in range(len(columns[0])):
            bound = {
                order[i]: columns[i][row] for i in range(depth + 1)
            }
            if not all(c.evaluate(bound) for c in comparisons):
                keep[row] = False
        return keep

    def _emit(self, bindings) -> list[tuple[int, ...]]:
        """Materialize one chunk's head tuples in scalar emission order."""
        join = self.join
        total = bindings[0].size
        join.stats.results += total
        head = join._head_positions
        if not head:
            return [()] * total
        columns = [bindings[p].tolist() for p in head]
        if len(columns) == 1:
            return [(value,) for value in columns[0]]
        return list(zip(*columns))

    def _flush_seeks(self) -> None:
        """Commit batched seek counts to the iterators, then check budget."""
        prepared = self.join._prepared
        for i, pending in self._pending.items():
            if pending:
                prepared[i].iterator.seeks += pending
                self._pending[i] = 0
        self.join._check_seek_budget()
