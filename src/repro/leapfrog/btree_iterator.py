"""The LFTJ trie-iterator API over a B+-tree — the LogicBlox variant.

Together with :class:`~repro.storage.btree.BPlusTree` this reproduces the
implementation the paper compares its Tributary join against: ``seek`` uses
finger search from the current position, so monotone scans touch O(1) nodes
amortized instead of the sorted-array implementation's O(log n) binary
search.  The trade-off the paper exploits is on the *build* side: the tree
must exist before the join, and building it tuple-at-a-time after a shuffle
costs more than sorting (see ``benchmarks/test_btree_vs_sort.py``).
"""

from __future__ import annotations

from typing import Optional

from ..storage.btree import BPlusTree, _Node

#: sentinel smaller than any value ever stored in a tuple position
_NEG = -(2**62)


class BTreeTrieIterator:
    """A trie cursor over a B+-tree of fixed-width key tuples.

    Implements the same API as
    :class:`~repro.leapfrog.iterator.TrieIterator`: ``open``/``up``/
    ``key``/``next``/``seek``/``at_end``, with ``seeks`` counting the seek
    operations issued (node-level work accumulates on ``tree.node_visits``).

    State: ``_open_levels`` trie levels are open; the current key of level
    ``L`` is column ``L-1`` of the current tuple; the keys of levels
    ``1..L-1`` are fixed and stored in ``_prefix``.
    """

    def __init__(self, tree: BPlusTree, key_depth: int) -> None:
        self.tree = tree
        self.max_depth = key_depth
        self._open_levels = 0
        self._prefix: list[int] = []
        self._saved: list[tuple[Optional[_Node], int, bool]] = []
        self._leaf: Optional[_Node] = tree.first_leaf() if len(tree) else None
        self._slot = 0
        self.at_end = len(tree) == 0
        self.seeks = 0

    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of open trie levels (0 = nothing open yet)."""
        return self._open_levels

    def _current(self) -> tuple[int, ...]:
        assert self._leaf is not None
        return self._leaf.keys[self._slot]

    def _matches_prefix(self) -> bool:
        if self._leaf is None:
            return False
        row = self._current()
        return list(row[: len(self._prefix)]) == self._prefix

    def open(self) -> None:
        """Descend to the first key of the next attribute level."""
        if self._open_levels >= self.max_depth:
            raise RuntimeError("cannot open below the deepest key level")
        if self._open_levels > 0:
            if self.at_end:
                raise RuntimeError("cannot open at end")
            self._prefix.append(self.key())
        elif self._leaf is None:
            raise RuntimeError("cannot open an empty tree")
        self._saved.append((self._leaf, self._slot, self.at_end))
        self._open_levels += 1
        self.at_end = False

    def up(self) -> None:
        """Ascend one level, restoring the parent position."""
        if self._open_levels == 0:
            raise RuntimeError("already at the root")
        self._leaf, self._slot, self.at_end = self._saved.pop()
        self._open_levels -= 1
        if self._prefix:
            self._prefix.pop()

    def key(self) -> int:
        """The current key at the current level."""
        if self._open_levels == 0:
            raise RuntimeError("no level open")
        if self.at_end or self._leaf is None:
            raise RuntimeError("no current key")
        return self._current()[self._open_levels - 1]

    def _seek_tuple(self, target: tuple[int, ...]) -> None:
        self.seeks += 1
        self._leaf, self._slot = self.tree.finger_seek(
            self._leaf, self._slot, target
        )
        self.at_end = self._leaf is None or not self._matches_prefix()

    def _pad(self, value: int) -> tuple[int, ...]:
        """Least possible tuple extending the prefix with ``value``."""
        padding = self.max_depth - self._open_levels
        return tuple(self._prefix) + (value,) + (_NEG,) * padding

    def next(self) -> None:
        """Advance to the next distinct key at this level."""
        current = self.key()
        self._seek_tuple(self._pad(current + 1))

    def seek(self, value: int) -> None:
        """Position at the least key ``>= value`` at this level."""
        if self._open_levels == 0:
            raise RuntimeError("no level open")
        if self.at_end:
            raise RuntimeError("seek past the end")
        self._seek_tuple(self._pad(value))
