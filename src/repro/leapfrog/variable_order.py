"""Variable-order optimization for the Tributary join (paper Sec. 5).

LFTJ is worst-case optimal for *any* global variable order, but in practice
a bad order can be orders of magnitude slower (Table 7 shows up to ~100x).
The paper's cost model estimates the number of binary searches a given order
will trigger:

- ``S_1 = min over atoms containing the first variable of V(R_j, first var)``
  — the smallest active domain bounds the first-level intersection;
- ``S_i = min over atoms containing variable i of
  V(R_j, p_{i,j}) / V(R_j, p_{i-1,j})`` — the expected number of distinct
  values of variable ``i`` inside one residual relation, estimated from
  distinct-prefix statistics;
- ``Cost = S_1 + S_1*S_2 + S_1*S_2*S_3 + ...`` (the recursion of Eq. 4).

Non-join variables do not constrain anything and are appended after the
join variables, as in the paper ("a global order of all attributes that
participate in the join").
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..query.atoms import Atom, ConjunctiveQuery, Variable
from ..query.catalog import Catalog


@dataclass(frozen=True)
class OrderCost:
    """A candidate variable order with its estimated cost."""

    order: tuple[Variable, ...]
    cost: float
    step_sizes: tuple[float, ...]


def _atom_prefix_positions(
    atom: Atom, order: Sequence[Variable], upto: int
) -> list[int]:
    """Attribute positions of the atom's variables among ``order[:upto]``."""
    prefix_vars = [v for v in order[:upto] if v in atom.variables()]
    return [atom.positions_of(v)[0] for v in prefix_vars]


def estimate_order_cost(
    query: ConjunctiveQuery,
    catalog: Catalog,
    join_order: Sequence[Variable],
) -> OrderCost:
    """Estimated number of binary searches for a join-variable order."""
    join_order = tuple(join_order)
    if catalog.empty_atoms(query):
        # an empty post-selection atom makes the whole result empty: every
        # order is trivially optimal, and the V(p_i)/V(p_{i-1}) ratios below
        # would be 0/0 noise — report zero cost without forming them
        return OrderCost(
            order=join_order, cost=0.0, step_sizes=(0.0,) * len(join_order)
        )
    step_sizes: list[float] = []
    for i, variable in enumerate(join_order, start=1):
        candidates: list[float] = []
        for atom in query.atoms:
            if variable not in atom.variables():
                continue
            prefix_i = _atom_prefix_positions(atom, join_order, i)
            prefix_prev = _atom_prefix_positions(atom, join_order, i - 1)
            v_i = catalog.atom_prefix_count_positions(atom, prefix_i)
            if i == 1 or not prefix_prev:
                candidates.append(float(v_i))
                continue
            v_prev = catalog.atom_prefix_count_positions(atom, prefix_prev)
            if prefix_i == prefix_prev:
                # the atom gained no new attribute at this step; it does not
                # constrain the intersection here
                continue
            candidates.append(v_i / max(1, v_prev))
        step_sizes.append(min(candidates) if candidates else 1.0)

    cost = 0.0
    product = 1.0
    for size in step_sizes:
        product *= size
        cost += product
    return OrderCost(order=join_order, cost=cost, step_sizes=tuple(step_sizes))


def enumerate_join_orders(
    query: ConjunctiveQuery,
    limit: Optional[int] = None,
    sample: Optional[int] = None,
    seed: int = 0,
) -> Iterator[tuple[Variable, ...]]:
    """Permutations of the join variables.

    With ``sample`` set, draws that many random permutations (the paper's
    Fig. 12 methodology draws 20 random orders per query); otherwise yields
    all ``n!`` orders, truncated to ``limit`` when given.
    """
    join_vars = list(query.join_variables())
    if sample is not None:
        rng = random.Random(seed)
        seen: set[tuple[Variable, ...]] = set()
        attempts = 0
        while len(seen) < sample and attempts < sample * 50:
            candidate = tuple(rng.sample(join_vars, len(join_vars)))
            attempts += 1
            if candidate not in seen:
                seen.add(candidate)
                yield candidate
        return
    for index, order in enumerate(itertools.permutations(join_vars)):
        if limit is not None and index >= limit:
            return
        yield order


def best_join_order(
    query: ConjunctiveQuery,
    catalog: Catalog,
    limit: int = 5040,
    seed: int = 0,
) -> OrderCost:
    """The join-variable order with the minimum estimated cost.

    Exhaustive while ``n!`` fits in ``limit`` (7 join variables by default);
    beyond that, scores ``limit`` random orders instead — still cutting
    runtimes by orders of magnitude per Table 7 while staying fast.
    """
    join_vars = list(query.join_variables())
    if catalog.empty_atoms(query):
        # empty result: skip the enumeration entirely (trivial plan)
        return estimate_order_cost(query, catalog, tuple(join_vars))
    factorial = math.factorial(len(join_vars))
    if factorial <= limit:
        orders = enumerate_join_orders(query)
    else:
        orders = enumerate_join_orders(query, sample=limit, seed=seed)
    best: Optional[OrderCost] = None
    for order in orders:
        candidate = estimate_order_cost(query, catalog, order)
        if best is None or candidate.cost < best.cost:
            best = candidate
    if best is None:
        return OrderCost(order=(), cost=0.0, step_sizes=())
    return best


def full_variable_order(
    query: ConjunctiveQuery, join_order: Sequence[Variable]
) -> tuple[Variable, ...]:
    """Extend a join-variable order with the non-join variables (appended
    last, in query order) so it covers every body variable."""
    join_set = set(join_order)
    tail = [v for v in query.variables() if v not in join_set]
    return tuple(join_order) + tuple(tail)
