"""In-memory relations and databases.

Relations store rows as Python tuples of ints.  String values (e.g. Freebase
entity names) are dictionary-encoded at load time via :class:`Database`, the
standard trick in analytic engines; query constants are encoded the same way
at plan time so all runtime comparisons are int comparisons.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence, Union


class Relation:
    """An immutable bag of fixed-arity int tuples with named columns."""

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[tuple[int, ...]] = (),
    ) -> None:
        self.name = name
        self.columns = tuple(columns)
        if not self.columns:
            raise ValueError(f"relation {name} needs at least one column")
        self._rows: list[tuple[int, ...]] = list(rows)
        self._digest: Union[int, None] = None
        arity = len(self.columns)
        for row in self._rows:
            if len(row) != arity:
                raise ValueError(
                    f"row {row} has arity {len(row)}, expected {arity} in {name}"
                )

    @property
    def arity(self) -> int:
        return len(self.columns)

    @property
    def rows(self) -> list[tuple[int, ...]]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"Relation({self.name}, {self.columns}, {len(self)} rows)"

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(f"relation {self.name} has no column {column!r}") from None

    def select(self, position: int, value: int) -> "Relation":
        """Rows whose ``position``-th attribute equals ``value``."""
        return Relation(
            self.name,
            self.columns,
            (row for row in self._rows if row[position] == value),
        )

    def filter(self, predicate: Callable[[tuple[int, ...]], bool]) -> "Relation":
        return Relation(self.name, self.columns, (r for r in self._rows if predicate(r)))

    def project(self, positions: Sequence[int], dedup: bool = False) -> "Relation":
        """Project onto the given positions, optionally de-duplicating."""
        columns = [self.columns[p] for p in positions]
        projected = (tuple(row[p] for p in positions) for row in self._rows)
        if dedup:
            seen: dict[tuple[int, ...], None] = dict.fromkeys(projected)
            projected = iter(seen)
        return Relation(self.name, columns, projected)

    def distinct(self) -> "Relation":
        return Relation(self.name, self.columns, dict.fromkeys(self._rows))

    def content_digest(self) -> int:
        """A digest of this relation's rows, computed once and memoized.

        Relations are immutable by contract (mutation replaces the instance
        — see :meth:`with_rows`), so the digest is stable for the lifetime
        of the object.  The statistics catalog combines these into a
        database fingerprint for plan-cache invalidation.
        """
        if self._digest is None:
            self._digest = hash(tuple(self._rows))
        return self._digest

    def with_rows(self, rows: list[tuple[int, ...]]) -> "Relation":
        """Same schema over a subset of this relation's rows.

        Skips arity validation — the rows must come from this relation (e.g.
        a scan filter's output), where they were already validated.
        """
        relation = Relation(self.name, self.columns, ())
        relation._rows = rows
        return relation

    def renamed(self, name: str) -> "Relation":
        relation = Relation(name, self.columns, ())
        relation._rows = self._rows  # share the row storage; rows are immutable
        return relation


Value = Union[int, str]


class Database:
    """A named collection of relations plus a shared string dictionary.

    >>> db = Database()
    >>> db.add_encoded("Name", ["id", "name"], [(1, "Joe Pesci")])
    >>> db.encode("Joe Pesci") == db["Name"].rows[0][1]
    True
    """

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._dictionary: dict[str, int] = {}
        self._reverse: dict[int, str] = {}

    # -- string dictionary -------------------------------------------------

    def encode(self, value: Value) -> int:
        """Dictionary-encode a value; ints pass through unchanged."""
        if isinstance(value, int):
            return value
        if value not in self._dictionary:
            # Encoded strings live in a distinct high range so they never
            # collide with small integer ids used by generators.
            code = 1_000_000_000 + len(self._dictionary)
            self._dictionary[value] = code
            self._reverse[code] = value
        return self._dictionary[value]

    def decode(self, code: int) -> Value:
        return self._reverse.get(code, code)

    # -- relations ----------------------------------------------------------

    def add(self, relation: Relation) -> None:
        self._relations[relation.name] = relation

    def add_rows(
        self, name: str, columns: Sequence[str], rows: Iterable[tuple[int, ...]]
    ) -> Relation:
        relation = Relation(name, columns, rows)
        self.add(relation)
        return relation

    def add_encoded(
        self, name: str, columns: Sequence[str], rows: Iterable[Sequence[Value]]
    ) -> Relation:
        """Add rows that may contain strings; strings are dictionary-encoded."""
        encoded = (tuple(self.encode(value) for value in row) for row in rows)
        return self.add_rows(name, columns, encoded)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(
                f"unknown relation {name!r}; known: {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relations(self) -> Mapping[str, Relation]:
        return dict(self._relations)

    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def total_rows(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}[{len(r)}]" for n, r in self._relations.items())
        return f"Database({parts})"
