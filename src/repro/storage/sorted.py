"""Lexicographically sorted relations — the substrate of the Tributary join.

The paper's key engineering decision (Sec. 2.2) is that, because relation
fragments only exist *after* the shuffle, preprocessing into B-trees is
impossible; instead each fragment is sorted on the fly and the LFTJ API is
implemented with binary search over the sorted array (``seek`` costs
``O(log n)`` instead of LogicBlox's amortized ``O(1)``, keeping the join
worst-case optimal up to a log factor).

:class:`SortedRelation` stores rows *reordered* into the sort-column order so
plain tuple comparison gives lexicographic order, and exposes the range and
seek primitives the trie iterator needs.

Sorting and seeking run through the kernel layer
(:mod:`~repro.engine.kernels`): the numpy backend sorts column arrays with
a packed radix sort (falling back to ``np.lexsort``) and answers
``lower_bound``/``upper_bound`` with ``np.searchsorted``; row tuples are
only materialized lazily, on first access to :attr:`SortedRelation.rows`.
Both backends produce the same sorted order, the same seek answers, and the
same :attr:`SortedRelation.sort_cost` — the counted cost model never
depends on the backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from .relation import Relation

if TYPE_CHECKING:
    from ..engine import kernels as _kernels_type  # noqa: F401

_kernels = None


def _kernel_module():
    """Resolve :mod:`repro.engine.kernels` lazily.

    ``engine`` imports ``leapfrog.tributary`` which imports this module, so
    a top-level ``from ..engine import kernels`` would leave
    :class:`SortedRelation` undefined when the import chain enters through
    ``repro.storage``.
    """
    global _kernels
    if _kernels is None:
        from ..engine import kernels

        _kernels = kernels
    return _kernels


def _sort_cost(n: int) -> int:
    """Comparison-count proxy for sorting ``n`` rows (``n log2 n``)."""
    if n <= 1:
        return n
    return int(n * max(1, (n - 1).bit_length()))


class SortedRelation:
    """Rows of a relation, permuted and sorted for a given column order.

    ``order`` is a sequence of column positions of the base relation; row
    ``(a, b, c)`` sorted with ``order=(2, 0)`` is stored as ``(c, a)`` —
    trailing columns not named in ``order`` are dropped only if
    ``keep_rest=False``; by default they are appended in base order so no
    information is lost.
    """

    def __init__(
        self,
        relation: Relation,
        order: Sequence[int],
        keep_rest: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        arity = relation.arity
        order = tuple(order)
        if len(set(order)) != len(order):
            raise ValueError(f"duplicate positions in sort order {order}")
        for position in order:
            if not 0 <= position < arity:
                raise ValueError(f"position {position} out of range for {relation.name}")
        rest = tuple(p for p in range(arity) if p not in order) if keep_rest else ()
        self.base = relation
        self.order = order
        self.permutation = order + rest
        self.columns = tuple(relation.columns[p] for p in self.permutation)
        kernels = _kernel_module()
        self._kernels = kernels
        rows, columns_array = kernels.sort_projected(
            relation.rows, self.permutation, backend
        )
        #: sorted projected rows (materialized lazily on the numpy backend)
        self._rows: Optional[list[tuple[int, ...]]] = rows
        #: ``(width, n)`` int64 column store for searchsorted seeks, or None
        self._columns_array = columns_array
        self._length = (
            len(rows) if rows is not None else columns_array.shape[1]
        )
        #: comparison-count proxy recorded so the engine can charge sort cost
        self.sort_cost = _sort_cost(self._length)

    @property
    def name(self) -> str:
        return self.base.name

    @property
    def rows(self) -> list[tuple[int, ...]]:
        """The sorted projected rows as tuples (materialized on demand)."""
        if self._rows is None:
            self._rows = self._kernels.rows_from_columns(self._columns_array)
        return self._rows

    def __len__(self) -> int:
        return self._length

    def depth(self) -> int:
        """Number of key columns (the length of the sort order)."""
        return len(self.order)

    # ------------------------------------------------------------------
    # Range / seek primitives used by the trie iterator
    # ------------------------------------------------------------------

    def key_at(self, depth: int, index: int) -> int:
        """The ``depth``-th key of the row at ``index`` (columnar access)."""
        if self._columns_array is not None:
            return int(self._columns_array[depth, index])
        return self._rows[index][depth]

    def lower_bound(self, depth: int, value: int, lo: int, hi: int) -> int:
        """First index in ``[lo, hi)`` whose ``depth``-th key is ``>= value``.

        Only valid when rows in ``[lo, hi)`` share a common prefix of length
        ``depth``, which the trie iterator guarantees.
        """
        return self._kernels.lower_bound(
            self._rows, depth, value, lo, hi, self._columns_array
        )

    def upper_bound(self, depth: int, value: int, lo: int, hi: int) -> int:
        """First index in ``[lo, hi)`` whose ``depth``-th key is ``> value``."""
        return self._kernels.upper_bound(
            self._rows, depth, value, lo, hi, self._columns_array
        )

    def value_range(
        self, depth: int, value: int, lo: int, hi: int
    ) -> tuple[int, int]:
        """The sub-range of ``[lo, hi)`` whose ``depth``-th key equals ``value``."""
        start = self.lower_bound(depth, value, lo, hi)
        end = self.upper_bound(depth, value, start, hi)
        return start, end

    # ------------------------------------------------------------------
    # Statistics for the Sec. 5 cost model
    # ------------------------------------------------------------------

    def distinct_prefix_count(self, length: int) -> int:
        """Number of distinct key prefixes of the given length, ``V(R, p)``.

        ``length=0`` counts the empty prefix (1 when non-empty).  Computed in
        one linear scan over the sorted data.
        """
        if length > len(self.permutation):
            raise ValueError(f"prefix length {length} exceeds arity")
        if self._columns_array is not None:
            return self._kernels.distinct_prefix_count(
                range(self._length), length, self._columns_array
            )
        return self._kernels.distinct_prefix_count(self._rows, length)
