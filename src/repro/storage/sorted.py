"""Lexicographically sorted relations — the substrate of the Tributary join.

The paper's key engineering decision (Sec. 2.2) is that, because relation
fragments only exist *after* the shuffle, preprocessing into B-trees is
impossible; instead each fragment is sorted on the fly and the LFTJ API is
implemented with binary search over the sorted array (``seek`` costs
``O(log n)`` instead of LogicBlox's amortized ``O(1)``, keeping the join
worst-case optimal up to a log factor).

:class:`SortedRelation` stores rows *reordered* into the sort-column order so
plain tuple comparison gives lexicographic order, and exposes the range and
seek primitives the trie iterator needs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .relation import Relation


def _sort_cost(n: int) -> int:
    """Comparison-count proxy for sorting ``n`` rows (``n log2 n``)."""
    if n <= 1:
        return n
    return int(n * max(1, (n - 1).bit_length()))


class SortedRelation:
    """Rows of a relation, permuted and sorted for a given column order.

    ``order`` is a sequence of column positions of the base relation; row
    ``(a, b, c)`` sorted with ``order=(2, 0)`` is stored as ``(c, a)`` —
    trailing columns not named in ``order`` are dropped only if
    ``keep_rest=False``; by default they are appended in base order so no
    information is lost.
    """

    def __init__(
        self,
        relation: Relation,
        order: Sequence[int],
        keep_rest: bool = True,
    ) -> None:
        arity = relation.arity
        order = tuple(order)
        if len(set(order)) != len(order):
            raise ValueError(f"duplicate positions in sort order {order}")
        for position in order:
            if not 0 <= position < arity:
                raise ValueError(f"position {position} out of range for {relation.name}")
        rest = tuple(p for p in range(arity) if p not in order) if keep_rest else ()
        self.base = relation
        self.order = order
        self.permutation = order + rest
        self.columns = tuple(relation.columns[p] for p in self.permutation)
        self.rows: list[tuple[int, ...]] = sorted(
            tuple(row[p] for p in self.permutation) for row in relation.rows
        )
        #: comparison-count proxy recorded so the engine can charge sort cost
        self.sort_cost = _sort_cost(len(self.rows))

    @property
    def name(self) -> str:
        return self.base.name

    def __len__(self) -> int:
        return len(self.rows)

    def depth(self) -> int:
        """Number of key columns (the length of the sort order)."""
        return len(self.order)

    # ------------------------------------------------------------------
    # Range / seek primitives used by the trie iterator
    # ------------------------------------------------------------------

    def lower_bound(self, depth: int, value: int, lo: int, hi: int) -> int:
        """First index in ``[lo, hi)`` whose ``depth``-th key is ``>= value``.

        Only valid when rows in ``[lo, hi)`` share a common prefix of length
        ``depth``, which the trie iterator guarantees.
        """
        rows = self.rows
        while lo < hi:
            mid = (lo + hi) // 2
            if rows[mid][depth] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def upper_bound(self, depth: int, value: int, lo: int, hi: int) -> int:
        """First index in ``[lo, hi)`` whose ``depth``-th key is ``> value``."""
        rows = self.rows
        while lo < hi:
            mid = (lo + hi) // 2
            if rows[mid][depth] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def value_range(
        self, depth: int, value: int, lo: int, hi: int
    ) -> tuple[int, int]:
        """The sub-range of ``[lo, hi)`` whose ``depth``-th key equals ``value``."""
        start = self.lower_bound(depth, value, lo, hi)
        end = self.upper_bound(depth, value, start, hi)
        return start, end

    # ------------------------------------------------------------------
    # Statistics for the Sec. 5 cost model
    # ------------------------------------------------------------------

    def distinct_prefix_count(self, length: int) -> int:
        """Number of distinct key prefixes of the given length, ``V(R, p)``.

        ``length=0`` counts the empty prefix (1 when non-empty).  Computed in
        one linear scan over the sorted rows.
        """
        if length == 0:
            return 1 if self.rows else 0
        if length > len(self.permutation):
            raise ValueError(f"prefix length {length} exceeds arity")
        count = 0
        previous: Optional[tuple[int, ...]] = None
        for row in self.rows:
            prefix = row[:length]
            if prefix != previous:
                count += 1
                previous = prefix
        return count
