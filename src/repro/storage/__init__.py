"""Relations, sorted relations, and synthetic dataset generators."""

from .generators import (
    ACADEMY_AWARDS,
    JOE_PESCI,
    ROBERT_DE_NIRO,
    FreebaseConfig,
    freebase_database,
    random_relation,
    twitter_database,
    twitter_graph,
)
from .btree import BPlusTree
from .relation import Database, Relation
from .sorted import SortedRelation

__all__ = [
    "ACADEMY_AWARDS",
    "BPlusTree",
    "Database",
    "FreebaseConfig",
    "JOE_PESCI",
    "ROBERT_DE_NIRO",
    "Relation",
    "SortedRelation",
    "freebase_database",
    "random_relation",
    "twitter_database",
    "twitter_graph",
]
