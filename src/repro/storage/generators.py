"""Synthetic datasets standing in for the paper's Twitter and Freebase data.

The paper evaluates on (a) a 1.1M-edge subset of the Twitter follower graph
and (b) the Freebase knowledge base partitioned by predicate (Table 1).
Neither dataset ships with this repository, so we generate scaled-down
synthetic equivalents that preserve the two properties every experimental
conclusion rests on:

- **Power-law degree skew** in the graph (drives the regular-shuffle skew in
  Tables 2–4 and the paths >> triangles intermediate blow-up of Q1/Q2/Q5/Q6);
- **Selectivity / fan-out profile** of the Freebase relations (tiny selective
  name lookups make Q3/Q7 favor the regular shuffle; many-to-many
  actor-performance-film fan-out makes Q4/Q8 intermediates explode).

All generators are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .relation import Database, Relation

JOE_PESCI = "Joe Pesci"
ROBERT_DE_NIRO = "Robert De Niro"
ACADEMY_AWARDS = "The Academy Awards"


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def _zipf_sample(
    rng: np.random.Generator, n: int, size: int, exponent: float
) -> np.ndarray:
    """Sample ``size`` values in ``[0, n)`` with Zipf(rank^-exponent) weights."""
    cumulative = np.cumsum(_zipf_weights(n, exponent))
    uniform = rng.random(size)
    return np.searchsorted(cumulative, uniform, side="right")


def twitter_graph(
    nodes: int = 10_000,
    edges: int = 30_000,
    exponent: float = 0.8,
    seed: int = 7,
) -> Relation:
    """A directed follower graph with power-law in- and out-degrees.

    Both edge endpoints are Zipf distributed over a *shared* popularity
    ranking — hub accounts both follow and are followed heavily, as in the
    real Twitter graph [Faloutsos et al.].  This is what gives the paper's
    workload its two key properties: heavy value skew under single-attribute
    hash partitioning (Table 2) and a two-hop path count that dwarfs the
    edge count (the Q1 intermediate blow-up).  Self-loops and duplicate
    edges are removed, so the realized edge count is slightly below
    ``edges``.
    """
    rng = np.random.default_rng(seed)
    # oversample to compensate for dropped duplicates/self-loops
    oversample = int(edges * 1.6)
    src = _zipf_sample(rng, nodes, oversample, exponent)
    dst = _zipf_sample(rng, nodes, oversample, exponent)
    mask = src != dst
    pairs = dict.fromkeys(zip(src[mask].tolist(), dst[mask].tolist()))
    rows = list(pairs)[:edges]
    return Relation("Twitter", ("src", "dst"), rows)


def twitter_database(
    nodes: int = 10_000,
    edges: int = 30_000,
    exponent: float = 0.8,
    seed: int = 7,
) -> Database:
    """A database holding the synthetic Twitter relation."""
    db = Database()
    db.add(twitter_graph(nodes=nodes, edges=edges, exponent=exponent, seed=seed))
    return db


@dataclass(frozen=True)
class FreebaseConfig:
    """Size knobs for the synthetic Freebase-like knowledge base.

    Defaults are scaled ~1:60 from the paper's Table 1 / Table 8 relations,
    preserving the ratios between relations (ObjectName dwarfs the rest;
    ActorPerform ~ PerformFilm; DirectorFilm ~1/6 of PerformFilm).
    """

    actors: int = 3_000
    films: int = 700
    performances: int = 9_000
    directors: int = 200
    filler_objects: int = 40_000
    honors: int = 1_800
    awards: int = 30
    year_low: int = 1960
    year_high: int = 2015
    #: fan-out skew of films and directors (drives Q4's intermediate blow-up)
    fanout_exponent: float = 0.65
    #: fan-out skew of actors — much flatter, like the real ActorPerform
    #: (~2.4 performances per actor on average); keeps Q8's intermediates
    #: moderate, which is what lets RS_HJ win Q8 in the paper
    actor_exponent: float = 0.4
    seed: int = 11


def freebase_database(config: FreebaseConfig | None = None) -> Database:
    """Build the synthetic Freebase-like knowledge base.

    Relations (mirroring the paper's Table 1 and Table 8):

    - ``ObjectName(object_id, name)`` — all entities plus filler rows, so it
      is far larger than the others; the two actor names used by Q3 and the
      award name used by Q7 are present exactly once each.
    - ``ActorPerform(actor_id, perform_id)`` — one actor per performance,
      Zipf-many performances per actor.
    - ``PerformFilm(perform_id, film_id)`` — one film per performance, Zipf
      cast sizes per film.
    - ``DirectorFilm(director_id, film_id)`` — one director per film, Zipf
      filmographies.
    - ``HonorAward(honor_id, award_id)``, ``HonorActor(honor_id, actor_id)``,
      ``HonorYear(honor_id, year)`` — honor events for Q7.

    Entity ids live in disjoint ranges so joins cannot accidentally match
    across entity kinds.
    """
    cfg = config or FreebaseConfig()
    rng = np.random.default_rng(cfg.seed)
    db = Database()

    actor_base, perform_base, film_base = 1_000, 200_000, 400_000
    director_base, honor_base, award_base = 500_000, 600_000, 700_000

    actor_ids = [actor_base + i for i in range(cfg.actors)]
    film_ids = [film_base + i for i in range(cfg.films)]
    perform_ids = [perform_base + i for i in range(cfg.performances)]
    director_ids = [director_base + i for i in range(cfg.directors)]
    honor_ids = [honor_base + i for i in range(cfg.honors)]
    award_ids = [award_base + i for i in range(cfg.awards)]

    # The named actors live in the Zipf tail so the paper's selective name
    # lookups ("considered as only containing very few tuples", footnote 3)
    # stay selective: Joe Pesci and Robert De Niro have a handful of
    # performances, not a superstar's hundreds.
    joe, deniro = actor_ids[cfg.actors // 2], actor_ids[cfg.actors // 2 + 1]
    academy = award_ids[0]

    # ActorPerform / PerformFilm: assign each performance a Zipf-popular
    # actor and a Zipf-popular film.
    perf_actor = _zipf_sample(
        rng, cfg.actors, cfg.performances, cfg.actor_exponent
    )
    perf_film = _zipf_sample(rng, cfg.films, cfg.performances, cfg.fanout_exponent)
    actor_perform = [
        (actor_ids[int(a)], perform_ids[i]) for i, a in enumerate(perf_actor)
    ]
    perform_film = [
        (perform_ids[i], film_ids[int(f)]) for i, f in enumerate(perf_film)
    ]

    # Guarantee Joe Pesci and Robert De Niro co-star in a few mid-popularity
    # films (modest casts) so Q3 has the non-trivial but small answer the
    # paper's query has.
    shared_films = film_ids[cfg.films // 3 : cfg.films // 3 + 4]
    extra_perform = perform_base + cfg.performances
    for film in shared_films:
        for lead in (joe, deniro):
            actor_perform.append((lead, extra_perform))
            perform_film.append((extra_perform, film))
            extra_perform += 1

    db.add_rows("ActorPerform", ("actor_id", "perform_id"), actor_perform)
    db.add_rows("PerformFilm", ("perform_id", "film_id"), perform_film)

    # DirectorFilm: each film directed by one Zipf-popular director.
    film_director = _zipf_sample(rng, cfg.directors, cfg.films, cfg.fanout_exponent)
    db.add_rows(
        "DirectorFilm",
        ("director_id", "film_id"),
        [(director_ids[int(d)], film_ids[i]) for i, d in enumerate(film_director)],
    )

    # Honor events: award, actor, year per honor id.
    honor_award = _zipf_sample(rng, cfg.awards, cfg.honors, 1.0)
    honor_actor = _zipf_sample(rng, cfg.actors, cfg.honors, cfg.actor_exponent)
    honor_year = rng.integers(cfg.year_low, cfg.year_high, cfg.honors)
    db.add_rows(
        "HonorAward",
        ("honor_id", "award_id"),
        [(honor_ids[i], award_ids[int(a)]) for i, a in enumerate(honor_award)],
    )
    db.add_rows(
        "HonorActor",
        ("honor_id", "actor_id"),
        [(honor_ids[i], actor_ids[int(a)]) for i, a in enumerate(honor_actor)],
    )
    db.add_rows(
        "HonorYear",
        ("honor_id", "year"),
        [(honor_ids[i], int(y)) for i, y in enumerate(honor_year)],
    )

    # ObjectName: named entities + filler to make it by far the largest
    # relation, as in the paper (59M rows vs ~1M for the others).
    object_name: list[tuple[int, int]] = [
        (joe, db.encode(JOE_PESCI)),
        (deniro, db.encode(ROBERT_DE_NIRO)),
        (academy, db.encode(ACADEMY_AWARDS)),
    ]
    generic_name = db.encode("entity")
    for entity_id in actor_ids[2:]:
        object_name.append((entity_id, generic_name))
    for entity_id in film_ids:
        object_name.append((entity_id, generic_name))
    filler_base = 2_000_000
    filler_names = rng.integers(0, 1_000, cfg.filler_objects)
    for i in range(cfg.filler_objects):
        object_name.append(
            (filler_base + i, db.encode(f"filler-{int(filler_names[i])}"))
        )
    db.add_rows("ObjectName", ("object_id", "name"), object_name)
    return db


def random_relation(
    name: str,
    arity: int,
    rows: int,
    domain: int,
    seed: int = 0,
) -> Relation:
    """A uniform random relation — handy for tests and property checks."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, domain, size=(rows, arity))
    return Relation(
        name,
        tuple(f"c{i}" for i in range(arity)),
        [tuple(int(v) for v in row) for row in data],
    )
