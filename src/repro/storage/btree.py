"""A B+-tree over int tuples — LogicBlox's storage layout for LFTJ.

The paper's Sec. 2.2 contrasts two implementations of the Leapfrog Triejoin
API: LogicBlox stores each relation in a B-tree, giving amortized O(1)
``seek``; the paper's Tributary join cannot preprocess (fragments only
exist after the shuffle), so it sorts arrays instead, arguing that
"sorting on the fly is cheaper than computing a B-tree on the fly".

This module provides the B-tree side of that comparison: a textbook B+-tree
with leaf chaining, tuple-at-a-time insertion (the "on the fly" build whose
cost the paper rejects), bulk loading from sorted data (the preprocessing
LogicBlox assumes), and finger-based search that makes monotone forward
seeks amortized O(1).  All node visits are counted so benchmarks can weigh
build and probe costs against the sorted-array implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

Row = tuple[int, ...]


@dataclass
class _Node:
    is_leaf: bool
    keys: list[Row] = field(default_factory=list)
    #: children for internal nodes (len(keys) + 1 of them)
    children: list["_Node"] = field(default_factory=list)
    next_leaf: Optional["_Node"] = None
    parent: Optional["_Node"] = None

    def max_key(self) -> Row:
        if self.is_leaf:
            return self.keys[-1]
        return self.children[-1].max_key()


class BPlusTree:
    """A B+-tree storing distinct int tuples in lexicographic order.

    ``branching`` bounds the number of keys per node; ``node_visits`` counts
    every node touched by searches, insertions, and bulk loading — the cost
    unit for the sort-vs-btree comparison.
    """

    def __init__(self, branching: int = 32) -> None:
        if branching < 4:
            raise ValueError("branching factor must be at least 4")
        self.branching = branching
        self.root: _Node = _Node(is_leaf=True)
        self.size = 0
        self.node_visits = 0
        self.height = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def insert(self, row: Row) -> bool:
        """Tuple-at-a-time insertion ("computing a B-tree on the fly").

        Returns False (and changes nothing) for duplicates.
        """
        leaf = self._descend_to_leaf(row)
        index = _lower_bound(leaf.keys, row)
        if index < len(leaf.keys) and leaf.keys[index] == row:
            return False
        leaf.keys.insert(index, row)
        self.size += 1
        if len(leaf.keys) > self.branching:
            self._split(leaf)
        return True

    @classmethod
    def bulk_build(cls, sorted_rows: Iterable[Row], branching: int = 32) -> "BPlusTree":
        """Bottom-up bulk load from sorted, distinct rows (preprocessing)."""
        tree = cls(branching=branching)
        rows = list(sorted_rows)
        if not rows:
            return tree
        half = max(2, branching // 2)
        leaves: list[_Node] = []
        for start in range(0, len(rows), half):
            leaf = _Node(is_leaf=True, keys=rows[start : start + half])
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
            tree.node_visits += 1
        level = leaves
        height = 1
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), half):
                group = level[start : start + half]
                parent = _Node(
                    is_leaf=False,
                    keys=[child.max_key() for child in group[:-1]],
                    children=group,
                )
                for child in group:
                    child.parent = parent
                parents.append(parent)
                tree.node_visits += 1
            level = parents
            height += 1
        tree.root = level[0]
        tree.size = len(rows)
        tree.height = height
        return tree

    def _descend_to_leaf(self, row: Row) -> _Node:
        node = self.root
        self.node_visits += 1
        while not node.is_leaf:
            # separators are left-subtree maxima: rows <= keys[i] belong to
            # child i, so route with lower_bound (first separator >= row)
            index = _lower_bound(node.keys, row)
            node = node.children[min(index, len(node.children) - 1)]
            self.node_visits += 1
        return node

    def _split(self, node: _Node) -> None:
        middle = len(node.keys) // 2
        if node.is_leaf:
            right = _Node(is_leaf=True, keys=node.keys[middle:])
            right.next_leaf = node.next_leaf
            node.next_leaf = right
            node.keys = node.keys[:middle]
            separator = node.keys[-1]
        else:
            right = _Node(
                is_leaf=False,
                keys=node.keys[middle + 1 :],
                children=node.children[middle + 1 :],
            )
            for child in right.children:
                child.parent = right
            separator = node.keys[middle]
            node.keys = node.keys[:middle]
            node.children = node.children[: middle + 1]
        self.node_visits += 2
        parent = node.parent
        if parent is None:
            new_root = _Node(
                is_leaf=False, keys=[separator], children=[node, right]
            )
            node.parent = new_root
            right.parent = new_root
            self.root = new_root
            self.height += 1
            return
        right.parent = parent
        index = _upper_bound(parent.keys, separator)
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, right)
        if len(parent.keys) > self.branching:
            self._split(parent)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def first_leaf(self) -> Optional[_Node]:
        if self.size == 0:
            return None
        node = self.root
        self.node_visits += 1
        while not node.is_leaf:
            node = node.children[0]
            self.node_visits += 1
        return node

    def seek_leaf(self, target: Row) -> tuple[Optional[_Node], int]:
        """(leaf, slot) of the least row >= target, or (None, 0) at end."""
        node = self.root
        self.node_visits += 1
        while not node.is_leaf:
            index = _lower_bound(node.keys, target)
            node = node.children[min(index, len(node.children) - 1)]
            self.node_visits += 1
        index = _lower_bound(node.keys, target)
        if index == len(node.keys):
            node = node.next_leaf
            if node is None:
                return None, 0
            self.node_visits += 1
            index = 0
        return node, index

    def finger_seek(
        self, leaf: Optional[_Node], slot: int, target: Row
    ) -> tuple[Optional[_Node], int]:
        """Seek forward from a current position (the amortized-O(1) path).

        If the target lies within the current or the immediately following
        leaf, no root descent happens — this is what makes monotone LFTJ
        scans cheap on a B-tree.  Otherwise falls back to a root descent.
        """
        if leaf is None:
            return self.seek_leaf(target)
        for _ in range(2):  # current leaf, then its successor
            self.node_visits += 1
            if leaf.keys and leaf.keys[-1] >= target:
                index = _lower_bound(leaf.keys, target, lo=slot)
                if index < len(leaf.keys):
                    return leaf, index
            slot = 0
            if leaf.next_leaf is None:
                return None, 0
            leaf = leaf.next_leaf
        return self.seek_leaf(target)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Row]:
        leaf = self.first_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next_leaf

    def check_invariants(self) -> None:
        """Validate ordering, balance, and leaf chaining (for tests)."""
        rows = list(self)
        assert rows == sorted(rows), "leaf chain out of order"
        assert len(rows) == self.size, "size mismatch"

        def depth_of(node: _Node) -> set[int]:
            if node.is_leaf:
                return {1}
            depths = set()
            for child in node.children:
                depths |= {d + 1 for d in depth_of(child)}
            return depths

        assert len(depth_of(self.root)) == 1, "tree not balanced"


def _lower_bound(keys: list[Row], target: Row, lo: int = 0) -> int:
    hi = len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _upper_bound(keys: list[Row], target: Row) -> int:
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= target:
            lo = mid + 1
        else:
            hi = mid
    return lo
