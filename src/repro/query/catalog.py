"""Statistics catalog.

Section 5.1 of the paper assumes "commonly used statistics": the cardinality
of every relation, the number of distinct values of each variable in each
relation, and the number of distinct *prefix* values ``V(R, p)`` under a
candidate global variable order.  :class:`Catalog` computes and caches these
over a :class:`~repro.storage.relation.Database`.

Every statistic is computed on the relation *after* the atom's constant
selections (selection pushdown, the paper's footnote 3) and memoized:

- the filtered relation itself is cached per ``(relation, constants)``;
- distinct-prefix counts are cached per ``(relation, constants, positions)``;
- heavy-hitter counts (the largest key group, used by the cost-based
  optimizer's skew estimates) are cached the same way.

Zero-cardinality contract: the raw statistics (:meth:`Catalog.atom_cardinality`,
:meth:`Catalog.atom_prefix_count`, :meth:`Catalog.distinct_prefix`, ...)
report truthful counts *including zero* — a constant selecting nothing is an
empty relation and the statistics say so.  Consumers that need positive
numbers clamp explicitly at their own boundary: :func:`cardinalities_for`
clamps to ``max(1, .)`` because the shares LP and the AGM bound need strictly
positive inputs, and the cost models (``leapfrog/variable_order``,
``planner/optimizer``) short-circuit empty queries to trivial plans instead
of dividing by a zero prefix count.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..storage.relation import Database, Relation
from .atoms import Atom, ConjunctiveQuery, Variable


class Catalog:
    """Cardinality and distinct-prefix statistics over a database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._prefix_cache: dict[tuple[str, tuple[int, ...]], int] = {}
        self._atom_prefix_cache: dict[tuple, int] = {}
        self._filtered_cache: dict[tuple, Relation] = {}
        self._group_counts_cache: dict[tuple, dict[tuple[int, ...], int]] = {}
        self._join_product_cache: dict[tuple, int] = {}

    def cardinality(self, relation_name: str) -> int:
        """Base cardinality of one stored relation."""
        return len(self.database[relation_name])

    def atom_cardinalities(self, query: ConjunctiveQuery) -> dict[str, int]:
        """Cardinality per atom alias (self-join copies share their base size)."""
        return {atom.alias: self.cardinality(atom.relation) for atom in query.atoms}

    def distinct_prefix(self, relation_name: str, positions: Sequence[int]) -> int:
        """``V(R, p)``: distinct combinations of the given attribute positions.

        ``positions=()`` is the empty prefix: 1 for a non-empty relation.
        """
        key = (relation_name, tuple(positions))
        if key in self._prefix_cache:
            return self._prefix_cache[key]
        relation = self.database[relation_name]
        count = _distinct_count(relation, tuple(positions))
        self._prefix_cache[key] = count
        return count

    def distinct_values(self, relation_name: str, position: int) -> int:
        """``V(R, x)``: distinct values of one attribute."""
        return self.distinct_prefix(relation_name, (position,))

    def atom_prefix_count(
        self, atom: Atom, order: Sequence[Variable], length: int
    ) -> int:
        """``V(R_j, p_{i,j})`` for the atom's key prefix of the given length.

        The prefix is the first ``length`` variables of ``order`` *that occur
        in this atom*, mapped to their attribute positions.  Variables bound
        to several positions in the atom contribute their first position (the
        remaining positions act as filters, which the cost model ignores —
        the standard independence simplification).

        Delegates to :meth:`atom_prefix_count_positions` so repeated calls
        hit the per-(relation, constants, positions) cache — the optimizer's
        cost loops evaluate the same prefixes for every candidate strategy.
        """
        atom_vars = [v for v in order if v in atom.variables()][:length]
        positions = [atom.positions_of(v)[0] for v in atom_vars]
        return self.atom_prefix_count_positions(atom, positions)

    def atom_prefix_count_positions(
        self, atom: Atom, positions: Sequence[int]
    ) -> int:
        """``V(R_j, p)`` for explicit attribute positions of an atom.

        Statistics are computed on the relation after the atom's constant
        selections (selection pushdown), and cached per
        (relation, constants, positions).
        """
        key = (atom.relation, atom.constants(), tuple(positions))
        if key in self._atom_prefix_cache:
            return self._atom_prefix_cache[key]
        count = _distinct_count(self._filtered(atom), tuple(positions))
        self._atom_prefix_cache[key] = count
        return count

    def atom_distinct_values(self, atom: Atom, variable: Variable) -> int:
        """``V(R_j, x)`` for one variable of an atom (post-selection)."""
        positions = atom.positions_of(variable)
        if not positions:
            raise KeyError(f"{variable!r} does not occur in atom {atom.alias}")
        return self.atom_prefix_count_positions(atom, positions[:1])

    def atom_cardinality(self, atom: Atom) -> int:
        """Cardinality of the atom's relation after applying its constants.

        Returns the truthful count — 0 when the constants select nothing
        (see the module docstring's zero-cardinality contract).
        """
        return len(self._filtered(atom))

    def atom_group_counts(
        self, atom: Atom, positions: Sequence[int]
    ) -> Mapping[tuple[int, ...], int]:
        """Per-key group sizes: ``{key value: |rows with that key|}``.

        The key-frequency histogram behind the optimizer's skew statistics.
        ``positions=()`` groups everything into the empty key.  Cached per
        (relation, constants, positions); callers must not mutate the
        returned mapping.
        """
        key = (atom.relation, atom.constants(), tuple(positions))
        cached = self._group_counts_cache.get(key)
        if cached is not None:
            return cached
        groups: dict[tuple[int, ...], int] = {}
        for row in self._filtered(atom).rows:
            group = tuple(row[p] for p in positions)
            groups[group] = groups.get(group, 0) + 1
        self._group_counts_cache[key] = groups
        return groups

    def atom_max_group(self, atom: Atom, positions: Sequence[int]) -> int:
        """The largest key group: ``max_v |{rows with key = v}|``.

        This is the heavy-hitter statistic behind the optimizer's consumer
        skew estimates — every tuple of the heaviest key lands on one worker
        under a hash shuffle, so the max per-worker receive load is at least
        this number.  ``positions=()`` returns the filtered cardinality (one
        group).
        """
        return max(self.atom_group_counts(atom, positions).values(), default=0)

    def join_group_product(
        self,
        left: Atom,
        left_positions: Sequence[int],
        right: Atom,
        right_positions: Sequence[int],
    ) -> int:
        """Exact equi-join size of two base atoms on the given key columns:
        ``sum over key values v of |left rows with v| * |right rows with v|``.

        On skewed data this is the number the System-R independence estimate
        ``|L|*|R| / max(V)`` misses by orders of magnitude (a power-law
        two-hop join is dominated by its heavy hitters), so the optimizer's
        intermediate-size estimates anchor on it.  Cached symmetrically per
        (left key, right key); cost is one pass over the smaller histogram.
        """
        left_key = (left.relation, left.constants(), tuple(left_positions))
        right_key = (right.relation, right.constants(), tuple(right_positions))
        cache_key = (left_key, right_key)
        cached = self._join_product_cache.get(cache_key)
        if cached is not None:
            return cached
        a = self.atom_group_counts(left, left_positions)
        b = self.atom_group_counts(right, right_positions)
        if len(b) < len(a):
            a, b = b, a
        product = sum(count * b.get(group, 0) for group, count in a.items())
        self._join_product_cache[cache_key] = product
        self._join_product_cache[(right_key, left_key)] = product
        return product

    def empty_atoms(self, query: ConjunctiveQuery) -> tuple[str, ...]:
        """Aliases whose post-selection relation is empty.

        A conjunctive query with any empty atom has an empty result; cost
        models use this to short-circuit to a trivial plan instead of
        forming ``V(p_i)/V(p_{i-1})`` ratios over zero counts.
        """
        return tuple(
            atom.alias for atom in query.atoms if self.atom_cardinality(atom) == 0
        )

    def fingerprint(self) -> int:
        """A digest of the database contents for plan-cache keying.

        Combines every relation's name, schema, and content digest (cached
        on the immutable :class:`~repro.storage.relation.Relation` itself),
        so replacing or reloading a relation changes the fingerprint while
        repeated calls over unchanged data are cheap.
        """
        return hash(
            tuple(
                (name, relation.columns, relation.content_digest())
                for name, relation in sorted(self.database.relations().items())
            )
        )

    def _filtered(self, atom: Atom) -> Relation:
        """The atom's relation after constant selections, cached.

        Cached per (relation, constants) so the optimizer's repeated
        selection pushdown during costing reuses one materialization.
        """
        key = (atom.relation, atom.constants())
        cached = self._filtered_cache.get(key)
        if cached is not None:
            return cached
        relation = self.database[atom.relation]
        for position, constant in atom.constants():
            relation = relation.select(position, self.database.encode(constant.value))
        self._filtered_cache[key] = relation
        return relation


def _distinct_count(relation: Relation, positions: tuple[int, ...]) -> int:
    """Distinct combinations of ``positions`` (empty prefix: 1 if non-empty)."""
    if not positions:
        return 1 if len(relation) else 0
    seen = {tuple(row[p] for p in positions) for row in relation.rows}
    return len(seen)


def cardinalities_for(
    query: ConjunctiveQuery, database: Database
) -> Mapping[str, int]:
    """Per-alias cardinalities after constant selections are pushed down.

    The paper pushes selections like ``ObjectName(a1, "Joe Pesci")`` below
    the shuffle (its footnote 3), so the shares LP and the planner both see
    the post-selection sizes.  Clamped to ``max(1, .)`` — the LP and the AGM
    bound need strictly positive cardinalities; callers that must
    distinguish a genuinely empty selection use
    :meth:`Catalog.atom_cardinality` / :meth:`Catalog.empty_atoms` instead.
    """
    catalog = Catalog(database)
    return {atom.alias: max(1, catalog.atom_cardinality(atom)) for atom in query.atoms}
