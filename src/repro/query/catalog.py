"""Statistics catalog.

Section 5.1 of the paper assumes "commonly used statistics": the cardinality
of every relation, the number of distinct values of each variable in each
relation, and the number of distinct *prefix* values ``V(R, p)`` under a
candidate global variable order.  :class:`Catalog` computes and caches these
over a :class:`~repro.storage.relation.Database`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..storage.relation import Database, Relation
from .atoms import Atom, ConjunctiveQuery, Variable


class Catalog:
    """Cardinality and distinct-prefix statistics over a database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._prefix_cache: dict[tuple[str, tuple[int, ...]], int] = {}
        self._atom_prefix_cache: dict[tuple, int] = {}

    def cardinality(self, relation_name: str) -> int:
        return len(self.database[relation_name])

    def atom_cardinalities(self, query: ConjunctiveQuery) -> dict[str, int]:
        """Cardinality per atom alias (self-join copies share their base size)."""
        return {atom.alias: self.cardinality(atom.relation) for atom in query.atoms}

    def distinct_prefix(self, relation_name: str, positions: Sequence[int]) -> int:
        """``V(R, p)``: distinct combinations of the given attribute positions.

        ``positions=()`` is the empty prefix: 1 for a non-empty relation.
        """
        key = (relation_name, tuple(positions))
        if key in self._prefix_cache:
            return self._prefix_cache[key]
        relation = self.database[relation_name]
        if not positions:
            count = 1 if len(relation) else 0
        else:
            seen = {tuple(row[p] for p in positions) for row in relation.rows}
            count = len(seen)
        self._prefix_cache[key] = count
        return count

    def distinct_values(self, relation_name: str, position: int) -> int:
        """``V(R, x)``: distinct values of one attribute."""
        return self.distinct_prefix(relation_name, (position,))

    def atom_prefix_count(
        self, atom: Atom, order: Sequence[Variable], length: int
    ) -> int:
        """``V(R_j, p_{i,j})`` for the atom's key prefix of the given length.

        The prefix is the first ``length`` variables of ``order`` *that occur
        in this atom*, mapped to their attribute positions.  Variables bound
        to several positions in the atom contribute their first position (the
        remaining positions act as filters, which the cost model ignores —
        the standard independence simplification).
        """
        atom_vars = [v for v in order if v in atom.variables()][:length]
        positions = [atom.positions_of(v)[0] for v in atom_vars]
        # Constant positions in the atom pre-filter the relation; the
        # statistics are computed on the filtered relation.
        relation = self._filtered(atom)
        if not positions:
            return 1 if len(relation) else 0
        seen = {tuple(row[p] for p in positions) for row in relation.rows}
        return len(seen)

    def atom_prefix_count_positions(
        self, atom: Atom, positions: Sequence[int]
    ) -> int:
        """``V(R_j, p)`` for explicit attribute positions of an atom.

        Statistics are computed on the relation after the atom's constant
        selections (selection pushdown), and cached per
        (relation, constants, positions).
        """
        key = (atom.relation, atom.constants(), tuple(positions))
        if key in self._atom_prefix_cache:
            return self._atom_prefix_cache[key]
        relation = self._filtered(atom)
        if not positions:
            count = 1 if len(relation) else 0
        else:
            seen = {tuple(row[p] for p in positions) for row in relation.rows}
            count = len(seen)
        self._atom_prefix_cache[key] = count
        return count

    def atom_cardinality(self, atom: Atom) -> int:
        """Cardinality of the atom's relation after applying its constants."""
        return len(self._filtered(atom))

    def _filtered(self, atom: Atom) -> Relation:
        relation = self.database[atom.relation]
        for position, constant in atom.constants():
            relation = relation.select(position, self.database.encode(constant.value))
        return relation


def cardinalities_for(
    query: ConjunctiveQuery, database: Database
) -> Mapping[str, int]:
    """Per-alias cardinalities after constant selections are pushed down.

    The paper pushes selections like ``ObjectName(a1, "Joe Pesci")`` below
    the shuffle (its footnote 3), so the shares LP and the planner both see
    the post-selection sizes.
    """
    catalog = Catalog(database)
    return {atom.alias: max(1, catalog.atom_cardinality(atom)) for atom in query.atoms}
