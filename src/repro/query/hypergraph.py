"""Query hypergraphs: acyclicity, join trees, and fractional LP bounds.

A conjunctive query maps to a hypergraph whose vertices are the query
variables and whose hyperedges are the atoms.  This module provides the
pieces of theory the paper builds on:

- **GYO reduction** — decides (alpha-)acyclicity and, for acyclic queries,
  produces the join tree used by the Yannakakis semijoin reduction
  (paper Sec. 3.6 and Fig. 16).
- **Fractional edge cover LP** — yields the AGM bound on the output size,
  the quantity worst-case-optimal joins are measured against.
- **Fractional share exponents LP** (Beame, Koutris, Suciu) — yields the
  theoretically optimal (fractional) HyperCube shares which Sec. 4 of the
  paper rounds into practical integral configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np
from scipy.optimize import linprog

from .atoms import ConjunctiveQuery, Variable


@dataclass(frozen=True)
class Hyperedge:
    """A hyperedge: the variable set of one atom, tagged with its alias."""

    alias: str
    variables: frozenset[Variable]


class Hypergraph:
    """The hypergraph of a conjunctive query."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        self.query = query
        self.edges: tuple[Hyperedge, ...] = tuple(
            Hyperedge(atom.alias, frozenset(atom.variables())) for atom in query.atoms
        )
        self.vertices: tuple[Variable, ...] = query.variables()

    def edges_with(self, variable: Variable) -> tuple[Hyperedge, ...]:
        return tuple(edge for edge in self.edges if variable in edge.variables)

    # ------------------------------------------------------------------
    # GYO reduction / acyclicity
    # ------------------------------------------------------------------

    def gyo_reduction(self) -> "GYOResult":
        """Run the GYO ear-removal algorithm.

        Repeatedly (a) drop vertices that occur in a single remaining edge and
        (b) remove edges contained in another remaining edge, recording the
        containing edge as the removed edge's join-tree parent.  The query is
        alpha-acyclic iff at most one edge remains.
        """
        remaining: dict[str, set[Variable]] = {
            edge.alias: set(edge.variables) for edge in self.edges
        }
        parents: dict[str, Optional[str]] = {}
        removal_order: list[str] = []

        changed = True
        while changed and len(remaining) > 1:
            changed = False
            # (a) remove vertices unique to one edge
            counts: dict[Variable, int] = {}
            for variables in remaining.values():
                for variable in variables:
                    counts[variable] = counts.get(variable, 0) + 1
            for variables in remaining.values():
                lonely = {v for v in variables if counts[v] == 1}
                if lonely:
                    variables -= lonely
                    changed = True
            # (b) remove an edge contained in another edge
            aliases = list(remaining)
            for alias in aliases:
                if alias not in remaining:
                    continue
                variables = remaining[alias]
                for other_alias, other_variables in remaining.items():
                    if other_alias == alias:
                        continue
                    if variables <= other_variables:
                        parents[alias] = other_alias
                        removal_order.append(alias)
                        del remaining[alias]
                        changed = True
                        break

        acyclic = len(remaining) <= 1
        root = next(iter(remaining)) if remaining else None
        if acyclic and root is not None:
            parents[root] = None
        return GYOResult(
            acyclic=acyclic,
            parents=parents if acyclic else {},
            root=root if acyclic else None,
            removal_order=tuple(removal_order),
        )

    def is_acyclic(self) -> bool:
        return self.gyo_reduction().acyclic

    def is_cyclic(self) -> bool:
        return not self.is_acyclic()

    # ------------------------------------------------------------------
    # Fractional edge cover / AGM bound
    # ------------------------------------------------------------------

    def fractional_edge_cover(
        self, cardinalities: Mapping[str, int]
    ) -> dict[str, float]:
        """Minimum-weight fractional edge cover.

        Minimizes ``sum_j u_j * log|R_j|`` subject to covering every variable
        (``sum_{j : x in vars(j)} u_j >= 1``).  The optimum exponentiates to
        the AGM bound.
        """
        edge_count = len(self.edges)
        costs = np.array(
            [math.log(max(2, cardinalities[edge.alias])) for edge in self.edges]
        )
        # -A u <= -1 encodes the >= 1 covering constraints.
        rows = []
        for vertex in self.vertices:
            rows.append(
                [-1.0 if vertex in edge.variables else 0.0 for edge in self.edges]
            )
        result = linprog(
            c=costs,
            A_ub=np.array(rows),
            b_ub=-np.ones(len(self.vertices)),
            bounds=[(0, None)] * edge_count,
            method="highs",
        )
        if not result.success:
            raise RuntimeError(f"edge cover LP failed: {result.message}")
        return {edge.alias: float(weight) for edge, weight in zip(self.edges, result.x)}

    def fractional_edge_packing(self) -> dict[str, float]:
        """Maximum fractional edge packing of the query hypergraph.

        Maximizes ``sum_j u_j`` subject to ``sum_{j : x in vars(j)} u_j <= 1``
        per variable.  Beame et al. prove the optimal HyperCube shares are
        tied to this packing (it is the LP dual of the vertex-cover side of
        the share program); for the triangle query its value is 3/2.
        """
        edge_count = len(self.edges)
        rows = []
        for vertex in self.vertices:
            rows.append(
                [1.0 if vertex in edge.variables else 0.0 for edge in self.edges]
            )
        result = linprog(
            c=-np.ones(edge_count),  # maximize sum u_j
            A_ub=np.array(rows),
            b_ub=np.ones(len(self.vertices)),
            bounds=[(0, None)] * edge_count,
            method="highs",
        )
        if not result.success:
            raise RuntimeError(f"edge packing LP failed: {result.message}")
        return {edge.alias: float(weight) for edge, weight in zip(self.edges, result.x)}

    def agm_bound(self, cardinalities: Mapping[str, int]) -> float:
        """The AGM worst-case output-size bound ``prod_j |R_j|^{u_j}``."""
        cover = self.fractional_edge_cover(cardinalities)
        log_bound = sum(
            weight * math.log(max(2, cardinalities[alias]))
            for alias, weight in cover.items()
        )
        return math.exp(log_bound)

    # ------------------------------------------------------------------
    # Fractional HyperCube shares (Beame et al.)
    # ------------------------------------------------------------------

    def fractional_share_exponents(
        self,
        cardinalities: Mapping[str, int],
        servers: int,
    ) -> dict[Variable, float]:
        """Optimal fractional share *exponents* ``e_i`` with ``sum e_i = 1``.

        Following Beame et al., shares are ``p_i = p**e_i`` and the per-server
        load from relation ``R_j`` is ``|R_j| / p**(sum of e_i over its
        variables)``.  We minimize the maximum per-relation load, which is a
        linear program in ``(e, L)`` after taking logs::

            minimize  L
            s.t.      log|R_j| - (sum_{i in vars(j)} e_i) log p  <=  L
                      sum_i e_i = 1,   e_i >= 0

        Returns a map variable -> exponent.
        """
        if servers < 1:
            raise ValueError("servers must be >= 1")
        if servers == 1:
            return {variable: 0.0 for variable in self.vertices}
        log_p = math.log(servers)
        variables = list(self.vertices)
        var_index = {variable: i for i, variable in enumerate(variables)}
        n_vars = len(variables)
        # decision vector: [e_1..e_k, L]
        costs = np.zeros(n_vars + 1)
        costs[-1] = 1.0
        a_ub = []
        b_ub = []
        for edge in self.edges:
            row = np.zeros(n_vars + 1)
            for variable in edge.variables:
                row[var_index[variable]] = -log_p
            row[-1] = -1.0
            a_ub.append(row)
            b_ub.append(-math.log(max(2, cardinalities[edge.alias])))
        a_eq = np.zeros((1, n_vars + 1))
        a_eq[0, :n_vars] = 1.0
        bounds = [(0.0, 1.0)] * n_vars + [(None, None)]
        result = linprog(
            c=costs,
            A_ub=np.array(a_ub),
            b_ub=np.array(b_ub),
            A_eq=a_eq,
            b_eq=np.array([1.0]),
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            raise RuntimeError(f"share exponent LP failed: {result.message}")
        return {variable: float(result.x[var_index[variable]]) for variable in variables}

    def fractional_shares(
        self,
        cardinalities: Mapping[str, int],
        servers: int,
    ) -> dict[Variable, float]:
        """Optimal fractional shares ``p_i = p**e_i`` (product equals ``p``)."""
        exponents = self.fractional_share_exponents(cardinalities, servers)
        return {
            variable: servers**exponent for variable, exponent in exponents.items()
        }


@dataclass(frozen=True)
class GYOResult:
    """Outcome of a GYO reduction.

    ``parents`` maps each atom alias to its join-tree parent alias (``None``
    for the root) — only populated for acyclic queries.  ``removal_order``
    lists aliases from leaves upward, which is exactly the bottom-up semijoin
    order of the Yannakakis algorithm.
    """

    acyclic: bool
    parents: Mapping[str, Optional[str]]
    root: Optional[str]
    removal_order: tuple[str, ...]

    def children(self, alias: str) -> tuple[str, ...]:
        return tuple(
            child for child, parent in self.parents.items() if parent == alias
        )


def join_tree(query: ConjunctiveQuery) -> GYOResult:
    """Join tree of an acyclic query (raises ``ValueError`` if cyclic)."""
    result = Hypergraph(query).gyo_reduction()
    if not result.acyclic:
        raise ValueError(f"query {query.name} is cyclic; no join tree exists")
    return result


def uniform_cardinalities(
    query: ConjunctiveQuery, size: int
) -> dict[str, int]:
    """Convenience: assign the same cardinality to every atom alias."""
    return {atom.alias: size for atom in query.atoms}
