"""Conjunctive-query intermediate representation.

The paper (Sec. 2) works with full and non-full conjunctive queries written
in Datalog notation, e.g. the triangle query::

    T(x, y, z) :- R(x, y), S(y, z), T(z, x)

This module defines the building blocks of that IR:

- :class:`Variable` and :class:`Constant` terms,
- :class:`Atom` — one relational subgoal such as ``R(x, y)``,
- :class:`Comparison` — a non-relational predicate such as ``f1 > f2`` or
  ``y >= 1990`` (used by the paper's Q4 and Q7),
- :class:`ConjunctiveQuery` — the whole rule, with head variables.

Terms are hashable values so they can be used as dictionary keys throughout
the planner and the join algorithms.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A named query variable, e.g. ``x`` in ``R(x, y)``."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A constant term, e.g. ``"Joe Pesci"`` in ``ObjectName(a1, "Joe Pesci")``."""

    value: Union[int, str]

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


Term = Union[Variable, Constant]

_COMPARISON_OPS: Mapping[str, Callable[[int, int], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class Comparison:
    """A comparison predicate between a variable and a variable or constant.

    The paper's Q4 uses ``f1 > f2`` and Q7 uses ``y >= 1990 AND y < 2000``.
    Comparisons are evaluated as post-filters on candidate bindings.
    """

    left: Variable
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator: {self.op!r}")

    def evaluate(self, binding: Mapping[Variable, int]) -> bool:
        """Evaluate this predicate under a (possibly partial) binding.

        Returns ``True`` when the predicate is satisfied *or* when one of its
        sides is not yet bound — unbound comparisons are deferred, which lets
        join operators apply filters as early as the bindings allow.
        """
        if self.left not in binding:
            return True
        left_value = binding[self.left]
        if isinstance(self.right, Constant):
            right_value = self.right.value
        elif self.right in binding:
            right_value = binding[self.right]
        else:
            return True
        return _COMPARISON_OPS[self.op](left_value, right_value)

    def variables(self) -> tuple[Variable, ...]:
        if isinstance(self.right, Variable):
            return (self.left, self.right)
        return (self.left,)

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True)
class Atom:
    """One relational subgoal: a relation name applied to a list of terms.

    ``alias`` distinguishes repeated uses of the same stored relation in a
    self-join (the paper writes ``Twitter_R``, ``Twitter_S``, ... for the
    three copies of the Twitter relation in the triangle query).  When no
    alias is given, the relation name itself is used.
    """

    relation: str
    terms: tuple[Term, ...]
    alias: str = ""

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError(f"atom {self.relation} must have at least one term")
        if not self.alias:
            object.__setattr__(self, "alias", self.relation)

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> tuple[Variable, ...]:
        """The distinct variables of this atom, in first-occurrence order."""
        seen: list[Variable] = []
        for term in self.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def constants(self) -> tuple[tuple[int, Constant], ...]:
        """(position, constant) pairs for the constant terms of this atom."""
        return tuple(
            (position, term)
            for position, term in enumerate(self.terms)
            if isinstance(term, Constant)
        )

    def positions_of(self, variable: Variable) -> tuple[int, ...]:
        """All argument positions where ``variable`` occurs."""
        return tuple(
            position for position, term in enumerate(self.terms) if term == variable
        )

    def __repr__(self) -> str:
        args = ", ".join(repr(term) for term in self.terms)
        if self.alias != self.relation:
            return f"{self.alias}:{self.relation}({args})"
        return f"{self.relation}({args})"


def _unique_aliases(atoms: Sequence[Atom]) -> None:
    seen: set[str] = set()
    for atom in atoms:
        if atom.alias in seen:
            raise ValueError(
                f"duplicate atom alias {atom.alias!r}; give self-join atoms "
                f"distinct aliases (e.g. Twitter_R, Twitter_S)"
            )
        seen.add(atom.alias)


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query (Datalog rule) with optional comparison filters.

    ``head`` lists the output variables; a query is *full* when the head
    contains every variable of the body.  Non-full queries imply a final
    duplicate-eliminating projection, which is how the paper evaluates e.g.
    Q3 (``CastMember(cast)``).
    """

    name: str
    head: tuple[Variable, ...]
    atoms: tuple[Atom, ...]
    comparisons: tuple[Comparison, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        _unique_aliases(self.atoms)
        body_vars = set(self.variables())
        for head_var in self.head:
            if head_var not in body_vars:
                raise ValueError(f"head variable {head_var!r} not in the body")
        for comparison in self.comparisons:
            for comp_var in comparison.variables():
                if comp_var not in body_vars:
                    raise ValueError(
                        f"comparison variable {comp_var!r} not in the body"
                    )

    def variables(self) -> tuple[Variable, ...]:
        """All distinct body variables, in first-occurrence order."""
        seen: list[Variable] = []
        for atom in self.atoms:
            for variable in atom.variables():
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    def join_variables(self) -> tuple[Variable, ...]:
        """Variables occurring in at least two atoms (the 'join variables').

        Table 6 of the paper reports ``# Join Variables`` per query; this is
        that quantity.
        """
        counts: dict[Variable, int] = {}
        for atom in self.atoms:
            for variable in atom.variables():
                counts[variable] = counts.get(variable, 0) + 1
        return tuple(v for v in self.variables() if counts[v] >= 2)

    def is_full(self) -> bool:
        """True when every body variable appears in the head."""
        return set(self.head) == set(self.variables())

    def atoms_with(self, variable: Variable) -> tuple[Atom, ...]:
        return tuple(atom for atom in self.atoms if variable in atom.variables())

    def atom_by_alias(self, alias: str) -> Atom:
        for atom in self.atoms:
            if atom.alias == alias:
                return atom
        raise KeyError(f"no atom with alias {alias!r}")

    def relations(self) -> tuple[str, ...]:
        """The distinct stored relation names referenced by the body."""
        seen: list[str] = []
        for atom in self.atoms:
            if atom.relation not in seen:
                seen.append(atom.relation)
        return tuple(seen)

    def __repr__(self) -> str:
        head_args = ", ".join(repr(v) for v in self.head)
        body = ", ".join(repr(a) for a in self.atoms)
        if self.comparisons:
            body += ", " + ", ".join(repr(c) for c in self.comparisons)
        return f"{self.name}({head_args}) :- {body}"


def make_variables(names: Iterable[str]) -> tuple[Variable, ...]:
    """Convenience: build several variables at once.

    >>> x, y, z = make_variables("x y z".split())
    """
    return tuple(Variable(name) for name in names)
