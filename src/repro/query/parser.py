"""A small Datalog parser for conjunctive queries.

Grammar (informally)::

    rule        := head ":-" body ["."]
    head        := NAME "(" term ("," term)* ")"
    body        := literal ("," literal)*
    literal     := atom | comparison
    atom        := [NAME ":"] NAME "(" term ("," term)* ")"
    comparison  := term OP term          (OP in <, <=, >, >=, =, ==, !=)
    term        := NAME | NUMBER | STRING

Lower-case leading names are variables; atoms use their (capitalised or not)
relation name as written.  Self-joins can name each copy explicitly with an
alias prefix, mirroring the paper's ``Twitter_R``/``Twitter_S`` notation::

    Triangle(x, y, z) :- R:Twitter(x, y), S:Twitter(y, z), T:Twitter(z, x).

Examples
--------
>>> q = parse_query('Q(x, y) :- R(x, y), S(y, z), x < z.')
>>> q.name, len(q.atoms), len(q.comparisons)
('Q', 2, 1)
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from .atoms import Atom, Comparison, ConjunctiveQuery, Constant, Term, Variable

_TOKEN_SPEC = [
    ("STRING", r'"[^"]*"'),
    ("ARROW", r":-"),
    ("OP", r"<=|>=|==|!=|<|>|="),
    ("NUMBER", r"-?\d+"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("COLON", r":"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("AND", r"\bAND\b"),
    ("SKIP", r"[ \t\r\n]+"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class ParseError(ValueError):
    """Raised when the query text does not match the grammar."""


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> Iterator[_Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at {position}")
        kind = match.lastgroup or ""
        if kind != "SKIP":
            yield _Token(kind, match.group(), position)
        position = match.end()
    yield _Token("EOF", "", position)


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._index = 0

    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._advance()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.kind} ({token.text!r}) "
                f"at position {token.position}"
            )
        return token

    def parse_rule(self) -> ConjunctiveQuery:
        name = self._expect("NAME").text
        head = self._parse_term_list()
        head_vars = []
        for term in head:
            if not isinstance(term, Variable):
                raise ParseError("head terms must be variables")
            head_vars.append(term)
        self._expect("ARROW")
        atoms: list[Atom] = []
        comparisons: list[Comparison] = []
        while True:
            literal = self._parse_literal()
            if isinstance(literal, Atom):
                atoms.append(literal)
            else:
                comparisons.append(literal)
            token = self._peek()
            if token.kind in ("COMMA",):
                self._advance()
                continue
            # Allow the paper's "pred AND pred" connective between filters.
            if token.kind == "NAME" and token.text == "AND":
                self._advance()
                continue
            break
        if self._peek().kind == "DOT":
            self._advance()
        self._expect("EOF")
        return ConjunctiveQuery(
            name=name,
            head=tuple(head_vars),
            atoms=tuple(atoms),
            comparisons=tuple(comparisons),
        )

    def _parse_literal(self) -> Atom | Comparison:
        token = self._peek()
        if token.kind == "NAME" and self._peek(1).kind in ("LPAREN", "COLON"):
            return self._parse_atom()
        return self._parse_comparison()

    def _parse_atom(self) -> Atom:
        first = self._expect("NAME").text
        alias = ""
        relation = first
        if self._peek().kind == "COLON":
            self._advance()
            alias = first
            relation = self._expect("NAME").text
        terms = self._parse_term_list()
        return Atom(relation=relation, terms=terms, alias=alias)

    def _parse_term_list(self) -> tuple[Term, ...]:
        self._expect("LPAREN")
        terms = [self._parse_term()]
        while self._peek().kind == "COMMA":
            self._advance()
            terms.append(self._parse_term())
        self._expect("RPAREN")
        return tuple(terms)

    def _parse_term(self) -> Term:
        token = self._advance()
        if token.kind == "NAME":
            return Variable(token.text)
        if token.kind == "NUMBER":
            return Constant(int(token.text))
        if token.kind == "STRING":
            return Constant(token.text[1:-1])
        raise ParseError(f"expected a term at position {token.position}, got {token.text!r}")

    def _parse_comparison(self) -> Comparison:
        left = self._parse_term()
        if not isinstance(left, Variable):
            raise ParseError("comparison left side must be a variable")
        op = self._expect("OP").text
        right = self._parse_term()
        return Comparison(left=left, op=op, right=right)


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse one Datalog rule into a :class:`ConjunctiveQuery`."""
    return _Parser(text).parse_rule()
