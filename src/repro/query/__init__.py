"""Conjunctive-query IR, hypergraph theory, and statistics."""

from .atoms import (
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
    make_variables,
)
from .catalog import Catalog, cardinalities_for
from .hypergraph import GYOResult, Hyperedge, Hypergraph, join_tree, uniform_cardinalities
from .parser import ParseError, parse_query

__all__ = [
    "Atom",
    "Catalog",
    "Comparison",
    "ConjunctiveQuery",
    "Constant",
    "GYOResult",
    "Hyperedge",
    "Hypergraph",
    "ParseError",
    "Term",
    "Variable",
    "cardinalities_for",
    "join_tree",
    "make_variables",
    "parse_query",
    "uniform_cardinalities",
]
