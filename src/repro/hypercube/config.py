"""Integral HyperCube configurations — the paper's Sec. 4 contribution.

The fractional shares of the LP cannot be used directly ("we cannot let
``p1 = p2 = p3 = 63**(1/3)`` in the real world").  This module implements:

- :func:`round_down_config` — Naïve Algorithm 1: round each fractional share
  down to an integer (possibly wasting most of the cluster);
- :func:`optimize_config` — the paper's Algorithm 1: exhaustively enumerate
  every integral configuration using at most ``N`` workers, pick the one with
  the minimum expected per-worker workload, breaking ties toward more even
  dimension sizes (more skew-resilient).

Despite being exhaustive, the enumeration is tiny in practice (the paper
reports <100 ms for N=64 even on 8-variable queries) because configurations
are divisor vectors of numbers ``<= N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..query.atoms import ConjunctiveQuery, Variable
from .shares import FractionalShares, expected_load, fractional_shares


@dataclass(frozen=True)
class HyperCubeConfig:
    """An integral share assignment: one dimension per join variable.

    ``dims[v]`` is the size of variable ``v``'s hypercube dimension; the
    number of workers used is the product of all dimension sizes (which may
    be less than the physical cluster size — the paper notes the optimal
    configuration "may not necessarily use all N physical machines").
    """

    query_name: str
    order: tuple[Variable, ...]
    dims: Mapping[Variable, int]

    def __post_init__(self) -> None:
        for variable, dim in self.dims.items():
            if dim < 1:
                raise ValueError(f"dimension for {variable!r} must be >= 1, got {dim}")

    @property
    def workers_used(self) -> int:
        product = 1
        for variable in self.order:
            product *= self.dims[variable]
        return product

    def dim(self, variable: Variable) -> int:
        return self.dims.get(variable, 1)

    def dim_sizes(self) -> tuple[int, ...]:
        return tuple(self.dims[variable] for variable in self.order)

    def dimensionality(self) -> int:
        """Number of non-trivial (size > 1) dimensions."""
        return sum(1 for d in self.dims.values() if d > 1)

    def __repr__(self) -> str:
        sizes = "x".join(str(self.dims[v]) for v in self.order)
        return f"HyperCubeConfig({self.query_name}: {sizes})"


def enumerate_configs(
    variables: Sequence[Variable], max_workers: int
) -> Iterator[tuple[int, ...]]:
    """All integral dimension-size vectors whose product is <= max_workers."""

    def extend(prefix: tuple[int, ...], budget: int, remaining: int) -> Iterator[tuple[int, ...]]:
        if remaining == 0:
            yield prefix
            return
        for size in range(1, budget + 1):
            yield from extend(prefix + (size,), budget // size, remaining - 1)

    yield from extend((), max_workers, len(variables))


def workload(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    order: Sequence[Variable],
    sizes: Sequence[int],
) -> float:
    """Expected per-worker data load of an integral configuration."""
    shares = dict(zip(order, (float(s) for s in sizes)))
    return expected_load(query, cardinalities, shares)


def optimize_config(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    workers: int,
) -> HyperCubeConfig:
    """The paper's Algorithm 1: best integral HyperCube configuration.

    Enumerates every configuration with ``nw(c) <= workers`` and keeps the
    one with minimal ``workload(c)``; among equals prefers the smaller
    maximum dimension (e.g. ``2x2x2x2`` over ``1x4x1x4``), which partitions
    each relation on more attributes and is therefore more resilient to
    value skew.
    """
    order = tuple(query.join_variables())
    if not order:
        return HyperCubeConfig(query.name, order, {})
    best_sizes: tuple[int, ...] | None = None
    best_load = float("inf")
    for sizes in enumerate_configs(order, workers):
        load = workload(query, cardinalities, order, sizes)
        if best_sizes is None or load < best_load - 1e-12:
            best_sizes, best_load = sizes, load
        elif abs(load - best_load) <= 1e-12 and max(sizes) < max(best_sizes):
            best_sizes, best_load = sizes, load
    assert best_sizes is not None
    return HyperCubeConfig(query.name, order, dict(zip(order, best_sizes)))


def round_down_config(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    workers: int,
    fractional: FractionalShares | None = None,
) -> HyperCubeConfig:
    """Naïve Algorithm 1: floor each fractional LP share to an integer.

    This reproduces the failure mode motivating Sec. 4: for the 4-clique on
    15 servers the fractional shares are all ``15**(1/4) ~= 1.96`` and
    rounding down collapses the cube to a single worker.
    """
    optimum = fractional or fractional_shares(query, cardinalities, workers)
    order = tuple(query.join_variables())
    dims = {v: max(1, int(optimum.share(v) + 1e-9)) for v in order}
    return HyperCubeConfig(query.name, order, dims)


def config_from_sizes(
    query: ConjunctiveQuery, sizes: Sequence[int]
) -> HyperCubeConfig:
    """Build a configuration from explicit dimension sizes (paper notation
    like "a 4x4x4 cube"), ordered by the query's join variables."""
    order = tuple(query.join_variables())
    if len(sizes) != len(order):
        raise ValueError(
            f"{query.name} has {len(order)} join variables, got {len(sizes)} sizes"
        )
    return HyperCubeConfig(query.name, order, dict(zip(order, sizes)))


def config_workload(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    config: HyperCubeConfig,
) -> float:
    """Expected per-worker load of a configuration (Algorithm 1's objective)."""
    return workload(query, cardinalities, config.order, config.dim_sizes())
