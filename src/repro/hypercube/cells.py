"""Virtual-cell HyperCube configurations (the paper's Naïve Algorithms 2/3).

Sections 4's middle two approaches decouple the hypercube size from the
physical cluster: the cube is built over ``M >> N`` virtual *cells* and a
many-to-one map sends cells to the ``N`` physical workers.  Random
assignment (Naïve Algorithm 2) destroys locality — each worker ends up
covering almost every row and column of the cube, so nearly every relation
is broadcast to it (Appendix B / Fig. 18).  Computing the optimal assignment
(Naïve Algorithm 3) is a hard combinatorial problem; the paper reports >24h
with a state-of-the-art ASP solver for N=64, M=100, which is why their final
algorithm abandons virtual cells altogether.  We provide the random
allocator and a greedy locality-preserving allocator as a tractable stand-in
for Algorithm 3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..query.atoms import ConjunctiveQuery, Variable
from .config import HyperCubeConfig, round_down_config
from .shares import fractional_shares


@dataclass(frozen=True)
class CellAllocation:
    """A cube over virtual cells plus a cell -> physical worker map."""

    config: HyperCubeConfig
    workers: int
    assignment: tuple[int, ...]  # linear cell id -> worker id

    @property
    def cells(self) -> int:
        return len(self.assignment)

    def cells_of_worker(self, worker: int) -> list[tuple[int, ...]]:
        dims = self.config.dim_sizes()
        coordinates = list(itertools.product(*(range(d) for d in dims)))
        return [
            coordinates[cell]
            for cell, assigned in enumerate(self.assignment)
            if assigned == worker
        ]


def _cell_coordinates(config: HyperCubeConfig) -> list[tuple[int, ...]]:
    return list(itertools.product(*(range(d) for d in config.dim_sizes())))


def _atom_dim_indices(
    query: ConjunctiveQuery, order: Sequence[Variable]
) -> dict[str, tuple[int, ...]]:
    """Per atom alias, the cube dimension indices its variables bind."""
    result = {}
    for atom in query.atoms:
        atom_vars = set(atom.variables())
        result[atom.alias] = tuple(
            i for i, variable in enumerate(order) if variable in atom_vars
        )
    return result


def allocation_workload(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    allocation: CellAllocation,
) -> float:
    """Maximum expected data load over the physical workers.

    A worker assigned cells ``C`` receives, from relation ``R_j``, one slab
    of size ``|R_j| / prod_{i in vars_j} d_i`` for every *distinct projection*
    of ``C`` onto the dimensions bound by ``R_j`` — cells sharing a projection
    share the same slab, which is exactly the locality random allocation
    squanders.
    """
    config = allocation.config
    coordinates = _cell_coordinates(config)
    dim_indices = _atom_dim_indices(query, config.order)
    dims = config.dim_sizes()

    loads = [0.0] * allocation.workers
    for atom in query.atoms:
        indices = dim_indices[atom.alias]
        slab = cardinalities[atom.alias]
        for index in indices:
            slab /= dims[index]
        projections: list[set[tuple[int, ...]]] = [
            set() for _ in range(allocation.workers)
        ]
        for cell, worker in enumerate(allocation.assignment):
            projections[worker].add(tuple(coordinates[cell][i] for i in indices))
        for worker in range(allocation.workers):
            loads[worker] += slab * len(projections[worker])
    return max(loads) if loads else 0.0


def _cells_config(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    cells: int,
) -> HyperCubeConfig:
    """Step 1 of Naïve Algorithms 2/3: LP over ``M`` cells, rounded down."""
    fractional = fractional_shares(query, cardinalities, cells)
    return round_down_config(query, cardinalities, cells, fractional)


def random_cell_allocation(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    workers: int,
    cells: int = 4096,
    seed: int = 0,
) -> CellAllocation:
    """Naïve Algorithm 2: many cells, assigned to workers uniformly at random."""
    config = _cells_config(query, cardinalities, cells)
    used = config.workers_used
    rng = np.random.default_rng(seed)
    assignment = tuple(int(w) for w in rng.integers(0, workers, size=used))
    return CellAllocation(config=config, workers=workers, assignment=assignment)


def greedy_cell_allocation(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    workers: int,
    cells: int = 4096,
) -> CellAllocation:
    """A tractable stand-in for Naïve Algorithm 3 (optimal allocation).

    Walks the cells in lexicographic (row-major) order and deals them to
    workers in equal contiguous blocks.  Contiguous blocks keep each worker's
    projections onto prefix dimensions small, recovering most of the locality
    random assignment destroys — while the exact optimum is the >24h ASP
    problem the paper rejects as impractical.
    """
    config = _cells_config(query, cardinalities, cells)
    used = config.workers_used
    assignment = [0] * used
    block = max(1, -(-used // workers))  # ceil division
    for cell in range(used):
        assignment[cell] = min(workers - 1, cell // block)
    return CellAllocation(config=config, workers=workers, assignment=tuple(assignment))


def coverage_fractions(allocation: CellAllocation) -> list[dict[int, float]]:
    """Per worker, the fraction of each dimension's hash range it covers.

    Appendix B's Fig. 18 observation: with random allocation every worker
    covers nearly all of every dimension, so (for the path query there)
    almost the entire ``R`` and ``T`` relations are sent to every worker.
    """
    config = allocation.config
    coordinates = _cell_coordinates(config)
    dims = config.dim_sizes()
    result = []
    for worker in range(allocation.workers):
        owned = [
            coordinates[cell]
            for cell, assigned in enumerate(allocation.assignment)
            if assigned == worker
        ]
        fractions: dict[int, float] = {}
        for dim_index, dim in enumerate(dims):
            values = {coordinate[dim_index] for coordinate in owned}
            fractions[dim_index] = len(values) / dim if dim else 0.0
        result.append(fractions)
    return result
