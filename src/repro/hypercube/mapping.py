"""Tuple-to-server routing for the HyperCube shuffle (paper Sec. 2.1).

Each server is identified with a point of the hypercube
``[p_1] x ... x [p_k]``.  A tuple of atom ``S_j`` fixes the coordinates of
the dimensions whose variable occurs in ``S_j`` (to ``h_i(value)``) and is
replicated along every other dimension ("if the coordinate in a dimension is
undefined, we do not set any constraint on it").
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

from ..engine.kernels import dim_hash
from ..query.atoms import Atom, Variable
from .config import HyperCubeConfig

_MASK = 0xFFFFFFFF


class HyperCubeMapping:
    """Routes tuples to hypercube coordinates for a fixed configuration.

    Hash functions are chosen independently per dimension (seeded salts,
    multiplicative hashing) as the algorithm requires.
    """

    def __init__(self, config: HyperCubeConfig, seed: int = 0) -> None:
        self.config = config
        self.order = config.order
        self.dims = [config.dims[v] for v in self.order]
        rng = np.random.default_rng(seed)
        self._salts = [int(s) for s in rng.integers(1, _MASK, size=len(self.order))]
        # row-major strides for linearizing coordinates into worker ids
        strides = []
        stride = 1
        for dim in reversed(self.dims):
            strides.append(stride)
            stride *= dim
        self._strides = list(reversed(strides))
        self.workers_used = config.workers_used

    def hash_value(self, dim_index: int, value: int) -> int:
        return dim_hash(value, self._salts[dim_index], self.dims[dim_index])

    def worker_of(self, coordinate: Sequence[int]) -> int:
        return sum(c * s for c, s in zip(coordinate, self._strides))

    def coordinate_of(self, worker: int) -> tuple[int, ...]:
        coordinate = []
        for stride, dim in zip(self._strides, self.dims):
            coordinate.append((worker // stride) % dim)
        return tuple(coordinate)

    def _atom_dim_positions(self, atom: Atom) -> list[tuple[int, int]]:
        """(dimension index, attribute position) pairs for the atom's
        variables that own a hypercube dimension."""
        pairs = []
        for dim_index, variable in enumerate(self.order):
            positions = atom.positions_of(variable)
            if positions:
                pairs.append((dim_index, positions[0]))
        return pairs

    def replication_of(self, atom: Atom) -> int:
        """Number of servers every tuple of this atom is copied to."""
        bound_dims = {dim_index for dim_index, _ in self._atom_dim_positions(atom)}
        copies = 1
        for dim_index, dim in enumerate(self.dims):
            if dim_index not in bound_dims:
                copies *= dim
        return copies

    def destinations(self, atom: Atom, row: Sequence[int]) -> Iterator[int]:
        """Worker ids that must receive this tuple of ``atom``."""
        pairs = self._atom_dim_positions(atom)
        bound = {dim_index: self.hash_value(dim_index, row[position])
                 for dim_index, position in pairs}
        free_axes = [
            range(dim) if dim_index not in bound else (bound[dim_index],)
            for dim_index, dim in enumerate(self.dims)
        ]
        for coordinate in itertools.product(*free_axes):
            yield self.worker_of(coordinate)

    def frame_routing(
        self, atom: Atom, frame_variables: Sequence[Variable]
    ) -> tuple[list[tuple[int, int, int, int]], list[int]]:
        """The atom's routing spec against a frame's column layout, for
        :func:`~repro.engine.kernels.hypercube_partition`.

        Returns ``(bound, offsets)``: one ``(frame column, salt, dim,
        stride)`` entry per hypercube dimension whose variable the atom
        binds, and the worker-id offsets of the replication targets over
        the unconstrained dimensions, enumerated in the same
        ``itertools.product`` order as :meth:`destinations` so both routing
        paths emit copies in the same order.
        """
        frame_index = {variable: i for i, variable in enumerate(frame_variables)}
        bound: list[tuple[int, int, int, int]] = []
        constrained: set[int] = set()
        for dim_index, variable in enumerate(self.order):
            if atom.positions_of(variable):
                bound.append((
                    frame_index[variable],
                    self._salts[dim_index],
                    self.dims[dim_index],
                    self._strides[dim_index],
                ))
                constrained.add(dim_index)
        free_axes = [
            (0,) if dim_index in constrained else range(dim)
            for dim_index, dim in enumerate(self.dims)
        ]
        offsets = [
            sum(c * s for c, s in zip(coordinate, self._strides))
            for coordinate in itertools.product(*free_axes)
        ]
        return bound, offsets

    def destination_count(self) -> int:
        return self.workers_used
