"""Fractional HyperCube shares (the theoretical optimum of Beame et al.).

The HyperCube algorithm factorizes the server count ``p`` into per-variable
*shares* ``p = p_1 * p_2 * ...``.  Beame, Koutris and Suciu model the optimal
shares as a linear program whose solution is generally fractional; Sec. 4 of
the paper starts from that LP and asks how to make the shares integral in
practice.  This module computes the fractional optimum and the two
workload quantities the paper's Fig. 11 normalizes against.

Shares are assigned only to the query's *join variables* — the paper's cube
dimensionality per query (Table 6 column "# Join Variables") counts exactly
those; a non-join variable never reduces any other relation's replication.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy.optimize import linprog

from ..query.atoms import ConjunctiveQuery, Variable


@dataclass(frozen=True)
class FractionalShares:
    """The LP optimum: per-variable fractional shares and their exponents."""

    query_name: str
    servers: int
    exponents: Mapping[Variable, float]
    shares: Mapping[Variable, float]

    def share(self, variable: Variable) -> float:
        return self.shares.get(variable, 1.0)


def fractional_shares(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    servers: int,
) -> FractionalShares:
    """Solve the Beame et al. share LP restricted to the join variables.

    Minimizes the maximum per-relation per-server load
    ``|R_j| / p**(sum of exponents over vars(R_j))`` subject to
    ``sum_i e_i = 1`` and ``e_i >= 0``; shares are ``p_i = p**e_i``.
    """
    join_vars = list(query.join_variables())
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if not join_vars or servers == 1:
        exponents = {variable: 0.0 for variable in join_vars}
        return FractionalShares(
            query.name,
            servers,
            exponents,
            {variable: 1.0 for variable in join_vars},
        )
    log_p = math.log(servers)
    var_index = {variable: i for i, variable in enumerate(join_vars)}
    n_vars = len(join_vars)
    costs = np.zeros(n_vars + 1)
    costs[-1] = 1.0
    a_ub = []
    b_ub = []
    for atom in query.atoms:
        row = np.zeros(n_vars + 1)
        for variable in atom.variables():
            if variable in var_index:
                row[var_index[variable]] = -log_p
        row[-1] = -1.0
        a_ub.append(row)
        b_ub.append(-math.log(max(2, cardinalities[atom.alias])))
    a_eq = np.zeros((1, n_vars + 1))
    a_eq[0, :n_vars] = 1.0
    result = linprog(
        c=costs,
        A_ub=np.array(a_ub),
        b_ub=np.array(b_ub),
        A_eq=a_eq,
        b_eq=np.array([1.0]),
        bounds=[(0.0, 1.0)] * n_vars + [(None, None)],
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"share LP failed for {query.name}: {result.message}")
    exponents = {v: float(result.x[var_index[v]]) for v in join_vars}
    shares = {v: servers**e for v, e in exponents.items()}
    return FractionalShares(query.name, servers, exponents, shares)


def expected_load(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    shares: Mapping[Variable, float],
) -> float:
    """Expected data load per server: ``sum_j |R_j| / prod_{i in vars_j} p_i``.

    This is the ``workload(c)`` objective of the paper's Algorithm 1 and the
    quantity Fig. 11 reports as a ratio against the fractional optimum.
    Works for fractional and integral share assignments alike.
    """
    total = 0.0
    for atom in query.atoms:
        divisor = 1.0
        for variable in atom.variables():
            divisor *= shares.get(variable, 1.0)
        total += cardinalities[atom.alias] / divisor
    return total


def optimal_fractional_workload(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    servers: int,
) -> float:
    """Per-server load of the (fractional) LP optimum — Fig. 11's baseline."""
    optimum = fractional_shares(query, cardinalities, servers)
    return expected_load(query, cardinalities, optimum.shares)


def replication_factor(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    shares: Mapping[Variable, float],
) -> float:
    """Average number of copies made of each input tuple by the shuffle.

    A tuple of ``R_j`` is replicated to ``prod_{i not in vars_j} p_i``
    servers; this returns the cardinality-weighted mean over relations.
    """
    total_tuples = sum(cardinalities[atom.alias] for atom in query.atoms)
    if total_tuples == 0:
        return 1.0
    replicated = 0.0
    for atom in query.atoms:
        copies = 1.0
        atom_vars = set(atom.variables())
        for variable, share in shares.items():
            if variable not in atom_vars:
                copies *= share
        replicated += cardinalities[atom.alias] * copies
    return replicated / total_tuples
