"""HyperCube shuffle theory: shares, integral configurations, cell allocation."""

from .cells import (
    CellAllocation,
    allocation_workload,
    coverage_fractions,
    greedy_cell_allocation,
    random_cell_allocation,
)
from .config import (
    HyperCubeConfig,
    config_from_sizes,
    config_workload,
    enumerate_configs,
    optimize_config,
    round_down_config,
)
from .mapping import HyperCubeMapping
from .shares import (
    FractionalShares,
    expected_load,
    fractional_shares,
    optimal_fractional_workload,
    replication_factor,
)

__all__ = [
    "CellAllocation",
    "FractionalShares",
    "HyperCubeConfig",
    "HyperCubeMapping",
    "allocation_workload",
    "config_from_sizes",
    "config_workload",
    "coverage_fractions",
    "enumerate_configs",
    "expected_load",
    "fractional_shares",
    "greedy_cell_allocation",
    "optimal_fractional_workload",
    "optimize_config",
    "random_cell_allocation",
    "replication_factor",
    "round_down_config",
]
