"""Workload registry: the paper's eight queries bound to their datasets.

Each entry couples a query with a dataset builder at two scales:

- ``unit``  — tiny instances for fast tests (seconds for the whole suite);
- ``bench`` — the default benchmark scale, preserving the paper's
  selectivity and skew profile at roughly 1:40 of its data sizes.

``memory_tuples`` is the per-worker tuple budget used at bench scale to
reproduce the paper's out-of-memory outcomes (RS_TJ FAILs on Q4 and Q5,
Fig. 9a / Fig. 13a); ``None`` disables the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..query.atoms import ConjunctiveQuery
from ..storage.generators import FreebaseConfig, freebase_database, twitter_database
from ..storage.relation import Database
from .freebase import Q3, Q4, Q7, Q8
from .twitter import Q1, Q2, Q5, Q6

#: queries in the paper's Table 6 grouping (by increasing joined tables)
PAPER_ORDER = ("Q1", "Q7", "Q5", "Q6", "Q2", "Q8", "Q3", "Q4")


def twitter_unit() -> Database:
    """Tiny Twitter graph for fast tests."""
    return twitter_database(nodes=400, edges=1600, seed=7)


def twitter_bench() -> Database:
    """The default benchmark-scale Twitter graph (~1:55 of the paper's)."""
    return twitter_database(nodes=8_000, edges=20_000)


def twitter_bench_small() -> Database:
    """A reduced graph for the wider self-joins (Q2, Q5, Q6).

    These queries multiply the two-hop blow-up several times over (the
    paper's Q5 shuffles 1,841M tuples from a 4.4M input), and the broadcast
    plans replay the whole blow-up *per worker* (Q2's BR_HJ burns 3,138s of
    CPU in the paper).  Simulating that faithfully at the Q1 scale would
    take the Python simulator hours, so these queries run on a smaller
    graph that preserves the same blow-up ratios.
    """
    return twitter_database(nodes=4_000, edges=9_000, exponent=0.75)


_FREEBASE_UNIT = FreebaseConfig(
    actors=300,
    films=200,
    performances=1300,
    directors=40,
    filler_objects=4000,
    honors=300,
    awards=8,
)


def freebase_unit() -> Database:
    """Tiny knowledge base for fast tests."""
    return freebase_database(_FREEBASE_UNIT)


def freebase_bench() -> Database:
    """The default benchmark-scale knowledge base (~1:40 of the paper's)."""
    return freebase_database()


_FREEBASE_SMALL = FreebaseConfig(
    actors=1_100,
    films=250,
    performances=3_200,
    directors=70,
    filler_objects=15_000,
    honors=700,
    awards=12,
)


def freebase_bench_small() -> Database:
    """A half-scale knowledge base for Q4.

    Q4's broadcast plans replay its enormous co-star intermediates on every
    worker (the paper's BR_HJ burned 41,154s of CPU); at full bench scale
    that costs the Python simulator several minutes per configuration, so
    Q4 runs on a proportionally shrunk knowledge base with the same
    selectivity and fan-out profile.
    """
    return freebase_database(_FREEBASE_SMALL)


@dataclass(frozen=True)
class Workload:
    """One query of the paper's evaluation with its dataset builders."""

    name: str
    query: ConjunctiveQuery
    unit_dataset: Callable[[], Database]
    bench_dataset: Callable[[], Database]
    cyclic: bool
    #: per-worker tuple budget at bench scale (None = unlimited)
    memory_tuples: Optional[int] = None
    #: the paper's winning configuration (Table 6, last column)
    paper_best: str = ""
    #: fixed left-deep join order for the binary-join plans, mirroring the
    #: plan the paper actually ran (None = use the greedy planner).  Q4
    #: needs this: the paper's Fig. 7 plan builds the co-star pairs first
    #: and its intermediates grow monotonically to 13.1B tuples, whereas
    #: our greedy planner happens to find a cycle-closing order that avoids
    #: the blow-up — faithful reproduction requires the paper's plan.
    rs_plan_order: Optional[tuple[str, ...]] = None

    def dataset(self, scale: str = "bench") -> Database:
        """Build this workload's dataset at ``unit`` or ``bench`` scale."""
        if scale == "unit":
            return self.unit_dataset()
        if scale == "bench":
            return self.bench_dataset()
        raise ValueError(f"unknown scale {scale!r}; use 'unit' or 'bench'")


WORKLOADS: dict[str, Workload] = {
    "Q1": Workload("Q1", Q1, twitter_unit, twitter_bench, cyclic=True,
                   paper_best="HC_TJ"),
    "Q2": Workload("Q2", Q2, twitter_unit, twitter_bench_small, cyclic=True,
                   paper_best="HC_TJ"),
    "Q3": Workload("Q3", Q3, freebase_unit, freebase_bench, cyclic=False,
                   paper_best="RS_TJ"),
    "Q4": Workload("Q4", Q4, freebase_unit, freebase_bench_small, cyclic=True,
                   memory_tuples=2_850_000, paper_best="BR_TJ",
                   rs_plan_order=("AP1", "PF1", "PF2", "AP2",
                                  "AP3", "PF3", "PF4", "AP4")),
    "Q5": Workload("Q5", Q5, twitter_unit, twitter_bench_small, cyclic=True,
                   memory_tuples=645_000, paper_best="HC_TJ"),
    "Q6": Workload("Q6", Q6, twitter_unit, twitter_bench_small, cyclic=True,
                   paper_best="HC_TJ"),
    "Q7": Workload("Q7", Q7, freebase_unit, freebase_bench, cyclic=False,
                   paper_best="HC_TJ"),
    "Q8": Workload("Q8", Q8, freebase_unit, freebase_bench, cyclic=True,
                   paper_best="RS_HJ"),
}


def get_workload(name: str) -> Workload:
    """Look up one of the paper's workloads (Q1..Q8) by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
