"""The paper's eight evaluation queries and their datasets."""

from .freebase import FREEBASE_QUERIES, Q3, Q4, Q7, Q8
from .registry import (
    PAPER_ORDER,
    WORKLOADS,
    Workload,
    freebase_bench,
    freebase_unit,
    get_workload,
    twitter_bench,
    twitter_unit,
)
from .traffic import latency_summary, percentile, zipf_mix, zipf_weights
from .twitter import TWITTER_QUERIES, Q1, Q2, Q5, Q6

__all__ = [
    "FREEBASE_QUERIES",
    "PAPER_ORDER",
    "Q1",
    "Q2",
    "Q3",
    "Q4",
    "Q5",
    "Q6",
    "Q7",
    "Q8",
    "TWITTER_QUERIES",
    "WORKLOADS",
    "Workload",
    "freebase_bench",
    "freebase_unit",
    "get_workload",
    "latency_summary",
    "percentile",
    "twitter_bench",
    "twitter_unit",
    "zipf_mix",
    "zipf_weights",
]
