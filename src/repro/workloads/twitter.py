"""The paper's Twitter queries: Q1, Q2, Q5, Q6 (Secs. 3.1, 3.2, App. A).

All four are cyclic self-joins of the follower graph, written with explicit
aliases exactly as the paper subscripts them (``Twitter_R``, ``Twitter_S``,
...).  They share the property that a left-deep binary plan produces
intermediate results far larger than input or output — the regime where
HyperCube + Tributary join wins.
"""

from __future__ import annotations

from ..query.atoms import ConjunctiveQuery
from ..query.parser import parse_query

#: Q1 — all directed triangles (Sec. 3.1).
Q1 = parse_query(
    "Q1(x, y, z) :- R:Twitter(x, y), S:Twitter(y, z), T:Twitter(z, x)."
)

#: Q2 — all 4-cliques: a triangle xyz plus a vertex p connected to all of it
#: (Sec. 3.2; 6-way self-join).
Q2 = parse_query(
    "Q2(x, y, z, p) :- R:Twitter(x, y), S:Twitter(y, z), T:Twitter(z, p), "
    "P:Twitter(p, x), K:Twitter(x, z), L:Twitter(y, p)."
)

#: Q5 — all directed rectangles (App. A; 4-way self-join, between Q1 and Q2).
Q5 = parse_query(
    "Q5(x, y, z, p) :- R:Twitter(x, y), S:Twitter(y, z), T:Twitter(z, p), "
    "K:Twitter(p, x)."
)

#: Q6 — "two rings": two back-to-back triangles sharing the edge (x, z)
#: (App. A; 5-way self-join — Q5 plus the K(x, z) chord).
Q6 = parse_query(
    "Q6(x, y, z, p) :- R:Twitter(x, y), S:Twitter(y, z), T:Twitter(z, p), "
    "P:Twitter(p, x), K:Twitter(x, z)."
)

TWITTER_QUERIES: dict[str, ConjunctiveQuery] = {
    "Q1": Q1,
    "Q2": Q2,
    "Q5": Q5,
    "Q6": Q6,
}
