"""Serving-traffic generation: Zipf-popular mixes of the paper's queries.

Production query traffic is famously skewed — a handful of query shapes
dominate while a long tail trickles in.  The serving benchmark and the
``serve`` CLI command both model that with a Zipf popularity distribution
over the paper's Q1-Q8 workloads: rank ``k`` (1-based, in the order the
caller lists the workloads) is drawn with probability proportional to
``1 / k**exponent``.  ``exponent=0`` degenerates to uniform traffic;
``exponent≈1`` is the classic web-traffic shape the plan cache thrives
on.  Everything is seeded, so a traffic trace is reproducible
bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Sequence


def zipf_weights(count: int, exponent: float) -> list[float]:
    """Unnormalised Zipf weights ``1 / rank**exponent`` for ranks 1..count."""
    if count < 1:
        raise ValueError("need at least one rank")
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def zipf_mix(
    names: Sequence[str], queries: int, exponent: float = 1.0, seed: int = 0
) -> list[str]:
    """A reproducible traffic trace: ``queries`` draws from ``names``.

    ``names[0]`` is the most popular query, ``names[-1]`` the least; the
    same ``(names, queries, exponent, seed)`` always yields the same
    trace.
    """
    generator = random.Random(seed)
    weights = zipf_weights(len(names), exponent)
    return generator.choices(list(names), weights=weights, k=queries)


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction`` quantile of ``values`` by nearest-rank (0 if empty).

    Nearest-rank is the conventional latency-reporting estimator: p99 of
    100 samples is the 99th smallest, not an interpolation between two
    samples that never happened.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * len(ordered))) - 1))
    if fraction <= 0:
        rank = 0
    return ordered[rank]


def latency_summary(values: Sequence[float]) -> dict[str, float]:
    """The standard serving-latency digest: p50 / p95 / p99 / max seconds."""
    return {
        "p50_seconds": percentile(values, 0.50),
        "p95_seconds": percentile(values, 0.95),
        "p99_seconds": percentile(values, 0.99),
        "max_seconds": max(values) if values else 0.0,
    }
