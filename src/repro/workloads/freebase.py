"""The paper's Freebase queries: Q3, Q4, Q7, Q8 (Secs. 3.3, 3.4, App. A).

The queries are transcribed from the paper with one normalization: the
paper's running text flips argument orders in a couple of atoms (e.g. it
writes ``ActorPerform(p, cast)`` against the declared schema
``ActorPerform(actor_id, perform_id)``); we write every atom consistently
with the Table 1 schemas, preserving the intended semantics.
"""

from __future__ import annotations

from ..query.atoms import ConjunctiveQuery
from ..query.parser import parse_query

#: Q3 — all cast members of films starring both Joe Pesci and Robert De Niro
#: (Sec. 3.3; acyclic, 7 joins, tiny intermediates after the selective name
#: lookups).  Freebase's first example query.
Q3 = parse_query(
    'Q3(cast) :- '
    'N1:ObjectName(a1, "Joe Pesci"), AP1:ActorPerform(a1, p1), '
    'PF1:PerformFilm(p1, film), '
    'N2:ObjectName(a2, "Robert De Niro"), AP2:ActorPerform(a2, p2), '
    'PF2:PerformFilm(p2, film), '
    'PF3:PerformFilm(p, film), AP3:ActorPerform(cast, p).'
)

#: Q4 — pairs of actors who co-starred in at least two different films
#: (Sec. 3.4; cyclic, 8 joins, enormous intermediates).  Freebase's second
#: example query; ``f1 > f2`` enforces the two films be different.
Q4 = parse_query(
    "Q4(a1, a2) :- "
    "AP1:ActorPerform(a1, p1), PF1:PerformFilm(p1, f1), "
    "PF2:PerformFilm(p2, f1), AP2:ActorPerform(a2, p2), "
    "AP3:ActorPerform(a2, p3), PF3:PerformFilm(p3, f2), "
    "PF4:PerformFilm(p4, f2), AP4:ActorPerform(a1, p4), f1 > f2."
)

#: Q7 — actors honored by the Academy Awards in the 90s (App. A; acyclic
#: 4-way join: a star join on the honor id plus the award-name lookup).
Q7 = parse_query(
    'Q7(a) :- '
    'N:ObjectName(aw, "The Academy Awards"), HA:HonorAward(h, aw), '
    'HC:HonorActor(h, a), HY:HonorYear(h, y), y >= 1990, y < 2000.'
)

#: Q8 — actor/director pairs appearing in two films (App. A; cyclic 6-way
#: join).  Transcribed exactly as printed — the paper does not add a
#: disequality between the two films.
Q8 = parse_query(
    "Q8(a, d) :- "
    "AP1:ActorPerform(a, p1), AP2:ActorPerform(a, p2), "
    "PF1:PerformFilm(p1, f1), PF2:PerformFilm(p2, f2), "
    "DF1:DirectorFilm(d, f1), DF2:DirectorFilm(d, f2)."
)

FREEBASE_QUERIES: dict[str, ConjunctiveQuery] = {
    "Q3": Q3,
    "Q4": Q4,
    "Q7": Q7,
    "Q8": Q8,
}
