"""End-to-end fuzzing: random conjunctive queries on random databases.

Hypothesis generates small queries (random shapes, self-joins, projections)
and tiny databases; every execution strategy, both WCOJ implementations,
and the naive nested-loop evaluator must agree on every instance.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import Cluster
from repro.leapfrog.generic_join import generic_join
from repro.leapfrog.tributary import tributary_join
from repro.planner.decompose import enumerate_decompositions
from repro.planner.executor import execute, execute_physical
from repro.planner.physical import HYBRID_STRATEGY, lower
from repro.planner.plans import ALL_STRATEGIES
from repro.query.atoms import Atom, ConjunctiveQuery, Variable
from repro.query.catalog import Catalog
from repro.storage.relation import Database
from tests.test_golden_queries import naive_evaluate

VARIABLES = [Variable(name) for name in "abcdef"]


@st.composite
def query_and_database(draw, min_atoms=2, max_atoms=4):
    """A random connected-ish conjunctive query plus matching relations."""
    atom_count = draw(st.integers(min_atoms, max_atoms))
    relation_names = ["R0", "R1", "R2"]
    atoms = []
    used: list[Variable] = []
    for index in range(atom_count):
        if used and draw(st.booleans()):
            first = draw(st.sampled_from(used))  # stay connected
        else:
            first = draw(st.sampled_from(VARIABLES))
        second = draw(st.sampled_from(VARIABLES))
        relation = draw(st.sampled_from(relation_names))
        atoms.append(Atom(relation, (first, second), alias=f"A{index}"))
        for variable in (first, second):
            if variable not in used:
                used.append(variable)
    head_size = draw(st.integers(1, len(used)))
    head = tuple(used[:head_size])
    query = ConjunctiveQuery("F", head, tuple(atoms))

    database = Database()
    for name in relation_names:
        rows = draw(
            st.lists(
                st.tuples(st.integers(0, 4), st.integers(0, 4)),
                max_size=12,
                unique=True,
            )
        )
        database.add_rows(name, ("u", "v"), rows)
    return query, database


@given(query_and_database())
@settings(max_examples=40, deadline=None)
def test_all_execution_paths_agree_with_naive(case):
    query, database = case
    expected = naive_evaluate(query, database)

    relations = {atom.alias: database[atom.relation] for atom in query.atoms}
    assert set(tributary_join(query, relations)) == expected
    assert set(
        tributary_join(query, relations)  # idempotence under re-run
    ) == expected
    assert set(generic_join(query, relations)) == expected

    for strategy in ALL_STRATEGIES:
        cluster = Cluster(3)
        cluster.load(database)
        result = execute(query, cluster, strategy)
        assert not result.failed
        assert set(result.rows) == expected, strategy.name


@given(query_and_database(), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_worker_count_never_changes_results(case, workers):
    query, database = case
    expected = naive_evaluate(query, database)
    from repro.planner.plans import HC_TJ

    cluster = Cluster(workers)
    cluster.load(database)
    result = execute(query, cluster, HC_TJ)
    assert set(result.rows) == expected


@given(query_and_database(min_atoms=4, max_atoms=5))
@settings(max_examples=25, deadline=None)
def test_hybrid_decomposition_agrees_with_pure_baseline(case):
    """Every decomposable fuzzed query matches RS_HJ on both backends."""
    query, database = case
    catalog = Catalog(database)
    if not enumerate_decompositions(query):
        return  # e.g. no connected stage subset joins the residual
    baseline_cluster = Cluster(3)
    baseline_cluster.load(database)
    baseline = execute_physical(
        lower(query, "RS_HJ", catalog), baseline_cluster, kernels="python"
    )
    assert not baseline.failed
    expected = sorted(baseline.rows)
    for kernels in ("python", "numpy"):
        cluster = Cluster(3)
        cluster.load(database)
        result = execute_physical(
            lower(query, HYBRID_STRATEGY, catalog), cluster, kernels=kernels
        )
        assert not result.failed, kernels
        assert sorted(result.rows) == expected, kernels


@given(query_and_database(min_atoms=2, max_atoms=3))
@settings(max_examples=10, deadline=None)
def test_small_fuzzed_queries_admit_no_hybrid(case):
    query, _ = case
    assert enumerate_decompositions(query) == ()
