"""Tests for HyperCube tuple routing — including the join-correctness core:
any two joinable tuples must meet on at least one common worker."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypercube.config import config_from_sizes
from repro.hypercube.mapping import HyperCubeMapping
from repro.query.parser import parse_query

TRIANGLE = parse_query("T(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")


def triangle_mapping(sizes=(4, 4, 4), seed=0):
    return HyperCubeMapping(config_from_sizes(TRIANGLE, sizes), seed=seed)


class TestCoordinates:
    def test_worker_coordinate_roundtrip(self):
        mapping = triangle_mapping((2, 3, 4))
        for worker in range(mapping.workers_used):
            assert mapping.worker_of(mapping.coordinate_of(worker)) == worker

    def test_hash_respects_dimension_size(self):
        mapping = triangle_mapping((2, 3, 4))
        for dim_index, dim in enumerate((2, 3, 4)):
            for value in range(100):
                assert 0 <= mapping.hash_value(dim_index, value) < dim

    def test_trivial_dimension_hashes_to_zero(self):
        mapping = triangle_mapping((1, 4, 4))
        assert all(mapping.hash_value(0, v) == 0 for v in range(50))


class TestDestinations:
    def test_replication_along_missing_dimension(self):
        mapping = triangle_mapping((4, 4, 4))
        atom_r = TRIANGLE.atom_by_alias("R")  # R(x, y): free along z
        destinations = list(mapping.destinations(atom_r, (7, 9)))
        assert len(destinations) == 4
        assert len(set(destinations)) == 4
        assert mapping.replication_of(atom_r) == 4

    def test_bound_coordinates_are_fixed(self):
        mapping = triangle_mapping((4, 4, 4))
        atom_r = TRIANGLE.atom_by_alias("R")
        coords = [
            mapping.coordinate_of(w) for w in mapping.destinations(atom_r, (7, 9))
        ]
        assert len({c[0] for c in coords}) == 1  # x coordinate fixed
        assert len({c[1] for c in coords}) == 1  # y coordinate fixed
        assert len({c[2] for c in coords}) == 4  # z coordinate free

    def test_total_replication_matches_product(self):
        mapping = triangle_mapping((2, 3, 4))
        atom_s = TRIANGLE.atom_by_alias("S")  # S(y, z): free along x
        assert mapping.replication_of(atom_s) == 2

    @given(
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.integers(0, 5),
    )
    @settings(max_examples=100)
    def test_joinable_tuples_meet_exactly_once(self, x, y, z, seed):
        """The HyperCube correctness theorem: for any binding (x, y, z) the
        three tuples R(x,y), S(y,z), T(z,x) share exactly one worker."""
        mapping = triangle_mapping((2, 3, 4), seed=seed)
        r_dest = set(mapping.destinations(TRIANGLE.atom_by_alias("R"), (x, y)))
        s_dest = set(mapping.destinations(TRIANGLE.atom_by_alias("S"), (y, z)))
        t_dest = set(mapping.destinations(TRIANGLE.atom_by_alias("T"), (z, x)))
        meet = r_dest & s_dest & t_dest
        assert len(meet) == 1

    def test_repeated_variable_uses_first_position(self):
        query = parse_query("Q(x) :- R(x, x).")
        mapping = HyperCubeMapping(config_from_sizes(query, ()))
        # no join variables: single worker 0 receives everything
        destinations = list(mapping.destinations(query.atom_by_alias("R"), (3, 3)))
        assert destinations == [0]


class TestDistribution:
    def test_hashing_spreads_values(self):
        mapping = triangle_mapping((4, 4, 4))
        buckets = [mapping.hash_value(0, v) for v in range(1000)]
        counts = [buckets.count(b) for b in range(4)]
        assert min(counts) > 150  # roughly uniform

    def test_different_seeds_give_different_hashes(self):
        a = triangle_mapping(seed=1)
        b = triangle_mapping(seed=2)
        values = range(200)
        assert [a.hash_value(0, v) for v in values] != [
            b.hash_value(0, v) for v in values
        ]
