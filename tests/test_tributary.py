"""Tests for the Tributary (leapfrog) join, incl. property tests vs brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.leapfrog.tributary import TributaryJoin, tributary_join
from repro.query.atoms import Variable
from repro.query.parser import parse_query
from repro.storage.relation import Database, Relation

TRIANGLE = parse_query("Q(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")

edge_lists = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=50
)


def brute_force_triangles(edges):
    edge_set = set(edges)
    nodes = {v for e in edges for v in e}
    return {
        (x, y, z)
        for x in nodes
        for y in nodes
        for z in nodes
        if (x, y) in edge_set and (y, z) in edge_set and (z, x) in edge_set
    }


def edges_relation(edges, name="E"):
    return Relation(name, ("a", "b"), list(dict.fromkeys(edges)))


class TestTriangle:
    def test_small_example_from_paper_figure2_style(self):
        rows = [(0, 1), (2, 0), (2, 3), (2, 5), (3, 4), (4, 2), (5, 6)]
        relation = edges_relation(rows)
        result = tributary_join(
            TRIANGLE, {"R": relation, "S": relation, "T": relation}
        )
        assert set(result) == brute_force_triangles(rows)

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, edges):
        relation = edges_relation(edges)
        result = tributary_join(
            TRIANGLE, {"R": relation, "S": relation, "T": relation}
        )
        assert set(result) == brute_force_triangles(edges)
        assert len(result) == len(set(result))

    @given(edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_any_variable_order_gives_same_result(self, edges):
        relation = edges_relation(edges)
        relations = {"R": relation, "S": relation, "T": relation}
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        expected = None
        for order in itertools.permutations((x, y, z)):
            got = set(
                TributaryJoin(TRIANGLE, relations, order=order).run()
            )
            # results are emitted in head order regardless of join order
            if expected is None:
                expected = got
            assert got == expected


class TestTwoWay:
    @given(edge_lists, edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_binary_join_is_merge_join(self, left, right):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z).")
        result = tributary_join(
            query, {"R": edges_relation(left, "R"), "S": edges_relation(right, "S")}
        )
        left_set, right_set = set(left), set(right)
        expected = {
            (x, y, z) for (x, y) in left_set for (y2, z) in right_set if y == y2
        }
        assert set(result) == expected


class TestFeatures:
    def test_constant_selection(self):
        query = parse_query("Q(y) :- R(3, y).")
        relation = Relation("R", ("a", "b"), [(3, 1), (3, 2), (4, 9)])
        assert set(tributary_join(query, {"R": relation})) == {(1,), (2,)}

    def test_string_constant_requires_encoder(self):
        query = parse_query('Q(y) :- R(x, "joe"), S(x, y).')
        relation = Relation("R", ("a", "b"), [(1, 2)])
        with pytest.raises(TypeError, match="encoder"):
            tributary_join(query, {"R": relation, "S": relation})

    def test_string_constant_with_database_encoder(self):
        db = Database()
        db.add_encoded("Name", ("id", "name"), [(1, "joe"), (2, "bob")])
        db.add_rows("Act", ("id", "film"), [(1, 7), (2, 8)])
        query = parse_query('Q(f) :- Name(x, "joe"), Act(x, f).')
        result = tributary_join(
            query,
            {"Name": db["Name"], "Act": db["Act"]},
            encoder=db.encode,
        )
        assert set(result) == {(7,)}

    def test_comparison_between_variables(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z), x < z.")
        relation = Relation("R", ("a", "b"), [(1, 2), (2, 3), (3, 1)])
        result = tributary_join(query, {"R": relation, "S": relation})
        expected = {
            (x, y, z)
            for (x, y) in relation.rows
            for (y2, z) in relation.rows
            if y == y2 and x < z
        }
        assert set(result) == expected

    def test_comparison_with_constant(self):
        query = parse_query("Q(x,y) :- R(x,y), y >= 2.")
        relation = Relation("R", ("a", "b"), [(1, 1), (1, 2), (1, 5)])
        assert set(tributary_join(query, {"R": relation})) == {(1, 2), (1, 5)}

    def test_projection_deduplicates(self):
        query = parse_query("Q(x) :- R(x,y).")
        relation = Relation("R", ("a", "b"), [(1, 1), (1, 2), (2, 1)])
        result = tributary_join(query, {"R": relation})
        assert sorted(result) == [(1,), (2,)]

    def test_repeated_variable_in_atom(self):
        query = parse_query("Q(x) :- R(x,x).")
        relation = Relation("R", ("a", "b"), [(1, 1), (1, 2), (3, 3)])
        assert set(tributary_join(query, {"R": relation})) == {(1,), (3,)}

    def test_empty_input_short_circuits(self):
        relation = Relation("E", ("a", "b"), [])
        result = tributary_join(
            TRIANGLE, {"R": relation, "S": relation, "T": relation}
        )
        assert result == []

    def test_head_order_respected(self):
        query = parse_query("Q(z,x) :- R(x,y), S(y,z).")
        relation = Relation("R", ("a", "b"), [(1, 2), (2, 3)])
        result = tributary_join(query, {"R": relation, "S": relation})
        assert set(result) == {(3, 1)}

    def test_order_must_cover_all_variables(self):
        relation = edges_relation([(1, 2)])
        with pytest.raises(ValueError):
            TributaryJoin(
                TRIANGLE,
                {"R": relation, "S": relation, "T": relation},
                order=(Variable("x"), Variable("y")),
            )

    def test_stats_populated(self):
        rows = [(0, 1), (1, 2), (2, 0), (0, 2)]
        relation = edges_relation(rows)
        join = TributaryJoin(TRIANGLE, {"R": relation, "S": relation, "T": relation})
        results = join.run()
        assert join.stats.sort_cost > 0
        assert join.stats.sorted_tuples == 3 * len(rows)
        assert join.total_seeks() > 0
        assert join.stats.results == len(results)


class TestFourClique:
    def test_matches_brute_force_on_dense_graph(self):
        # complete directed graph on 5 nodes: every ordered 4-tuple of
        # distinct nodes forms the paper's Q2 pattern
        nodes = range(5)
        edges = [(i, j) for i in nodes for j in nodes if i != j]
        relation = edges_relation(edges)
        query = parse_query(
            "Q(x,y,z,p) :- R:E(x,y), S:E(y,z), T:E(z,p), P:E(p,x), "
            "K:E(x,z), L:E(y,p)."
        )
        result = tributary_join(
            query, {alias: relation for alias in "R S T P K L".split()}
        )
        expected = {
            (x, y, z, p)
            for x in nodes for y in nodes for z in nodes for p in nodes
            if len({x, y, z, p}) == 4
        }
        assert set(result) == expected


class TestSeekBudget:
    def test_budget_fires_on_expensive_join(self):
        from repro.leapfrog.tributary import SeekBudgetExceeded
        from repro.storage.generators import random_relation

        relation = random_relation("R", 2, 400, 40, seed=1)
        join = TributaryJoin(
            TRIANGLE,
            {"R": relation, "S": relation, "T": relation},
            max_seeks=200,
        )
        with pytest.raises(SeekBudgetExceeded) as excinfo:
            join.run()
        assert excinfo.value.budget == 200
        assert excinfo.value.seeks > 200

    def test_generous_budget_does_not_fire(self):
        relation = edges_relation([(0, 1), (1, 2), (2, 0)])
        join = TributaryJoin(
            TRIANGLE,
            {"R": relation, "S": relation, "T": relation},
            max_seeks=10**9,
        )
        assert set(join.run()) == {(0, 1, 2), (1, 2, 0), (2, 0, 1)}

    def test_no_budget_by_default(self):
        relation = edges_relation([(0, 1)])
        join = TributaryJoin(
            TRIANGLE, {"R": relation, "S": relation, "T": relation}
        )
        assert join.max_seeks is None
