"""Tests for the top-level run_query API."""

import pytest

from repro.planner.api import make_cluster, run_all_strategies, run_query
from repro.planner.plans import HC_TJ
from repro.storage.generators import twitter_database
from repro.workloads import Q1

TRIANGLE_TEXT = (
    "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."
)


@pytest.fixture(scope="module")
def db():
    return twitter_database(nodes=150, edges=600, seed=2)


class TestRunQuery:
    def test_accepts_query_text(self, db):
        result = run_query(TRIANGLE_TEXT, db, strategy="HC_TJ", workers=4)
        assert not result.failed
        assert result.stats.strategy == "HC_TJ"

    def test_accepts_parsed_query(self, db):
        result = run_query(Q1, db, strategy="RS_HJ", workers=4)
        assert result.stats.query == "Q1"

    def test_accepts_strategy_object(self, db):
        result = run_query(Q1, db, strategy=HC_TJ, workers=4)
        assert result.stats.strategy == "HC_TJ"

    def test_semijoin_strategy_string(self, db):
        query = "P(x, z) :- R:Twitter(x, y), S:Twitter(y, z)."
        result = run_query(query, db, strategy="SJ_HJ", workers=4)
        reference = run_query(query, db, strategy="RS_HJ", workers=4)
        assert set(result.rows) == set(reference.rows)

    def test_unknown_strategy_rejected(self, db):
        with pytest.raises(ValueError, match="valid"):
            run_query(Q1, db, strategy="XX_YY", workers=2)

    def test_memory_budget(self, db):
        result = run_query(Q1, db, strategy="RS_TJ", workers=2, memory_tuples=20)
        assert result.failed

    def test_explicit_variable_order(self, db):
        from repro.query.atoms import Variable

        order = (Variable("z"), Variable("x"), Variable("y"))
        result = run_query(Q1, db, strategy="HC_TJ", workers=4, variable_order=order)
        reference = run_query(Q1, db, strategy="HC_TJ", workers=4)
        assert set(result.rows) == set(reference.rows)
        assert result.variable_order == order


class TestRunAllStrategies:
    def test_runs_six_configurations(self, db):
        results = run_all_strategies(Q1, db, workers=4)
        assert len(results) == 6
        row_sets = {frozenset(r.rows) for r in results.values()}
        assert len(row_sets) == 1


def test_make_cluster_loads_database(db):
    cluster = make_cluster(db, workers=3)
    assert cluster.workers == 3
    assert sum(len(f) for f in cluster.fragments("Twitter")) == len(db["Twitter"])
