"""Tests for the distributed semijoin-reduction plan (Sec. 3.6)."""

import pytest

from repro.engine.cluster import Cluster
from repro.planner.executor import execute
from repro.planner.plans import RS_HJ
from repro.planner.semijoin import execute_semijoin
from repro.query.parser import parse_query
from repro.storage.relation import Database
from repro.workloads import Q3, Q7, freebase_unit


def make_cluster(db, workers=4):
    cluster = Cluster(workers)
    cluster.load(db)
    return cluster


def chain_db():
    """R(x,y), S(y,z), T(z,w) with deliberate dangling tuples."""
    db = Database()
    db.add_rows("R", ("a", "b"), [(1, 10), (2, 20), (3, 99)])  # 99 dangles
    db.add_rows("S", ("a", "b"), [(10, 100), (20, 200), (55, 500)])  # 55 dangles
    db.add_rows("T", ("a", "b"), [(100, 7), (777, 8)])  # 777 dangles
    return db


CHAIN = parse_query("Q(x, w) :- R(x,y), S(y,z), T(z,w).")


class TestCorrectness:
    def test_matches_regular_plan_on_chain(self):
        db = chain_db()
        reference = execute(CHAIN, make_cluster(db), RS_HJ)
        semijoin = execute_semijoin(CHAIN, make_cluster(db))
        assert set(semijoin.rows) == set(reference.rows)
        assert set(semijoin.rows) == {(1, 7)}

    def test_matches_on_q3(self):
        db = freebase_unit()
        reference = execute(Q3, make_cluster(db, 6), RS_HJ)
        semijoin = execute_semijoin(Q3, make_cluster(db, 6))
        assert set(semijoin.rows) == set(reference.rows)

    def test_matches_on_q7(self):
        db = freebase_unit()
        reference = execute(Q7, make_cluster(db, 6), RS_HJ)
        semijoin = execute_semijoin(Q7, make_cluster(db, 6))
        assert set(semijoin.rows) == set(reference.rows)

    def test_cyclic_query_rejected(self):
        from repro.workloads import Q1
        from repro.storage.generators import twitter_database

        db = twitter_database(nodes=50, edges=200)
        with pytest.raises(ValueError, match="cyclic"):
            execute_semijoin(Q1, make_cluster(db))

    def test_unloaded_cluster_rejected(self):
        with pytest.raises(RuntimeError):
            execute_semijoin(CHAIN, Cluster(2))


class TestReductionBehaviour:
    def test_strategy_label(self):
        result = execute_semijoin(CHAIN, make_cluster(chain_db()))
        assert result.stats.strategy == "SJ_HJ"

    def test_semijoin_shuffles_recorded(self):
        result = execute_semijoin(CHAIN, make_cluster(chain_db()))
        semijoin_shuffles = [
            r for r in result.stats.shuffles if r.name.startswith("SJ")
        ]
        assert semijoin_shuffles, "semijoin phases must shuffle keys"

    def test_extra_rounds_cost_more_than_rs_on_reduced_data(self):
        """The paper's observation: on its workload the semijoin plan
        shuffles comparable volume but pays extra rounds, so it does not
        beat the plain regular-shuffle plan."""
        db = freebase_unit()
        reference = execute(Q7, make_cluster(db, 6), RS_HJ)
        semijoin = execute_semijoin(Q7, make_cluster(db, 6))
        assert semijoin.stats.tuples_shuffled >= 0.5 * reference.stats.tuples_shuffled

    def test_dangling_tuples_do_not_reach_final_join(self):
        db = chain_db()
        result = execute_semijoin(CHAIN, make_cluster(db, 2))
        # final-join shuffles move only reduced relations: strictly fewer
        # tuples than the raw relation sizes for R (3 rows -> 2)
        final_r = [
            r
            for r in result.stats.shuffles
            if r.name.startswith("RS") and " R " in f" {r.name} "
        ]
        # the final pipeline shuffles exist and moved less than |R|+|S|+|T|
        final = [r for r in result.stats.shuffles if r.name.startswith("RS")]
        assert final
        assert sum(r.tuples_sent for r in final) < 8 * 2  # reduced volumes
