"""Tests for the query explanation facility."""

import pytest

from repro.planner.explain import explain
from repro.storage.generators import twitter_database
from repro.workloads import Q1, Q7, freebase_unit


@pytest.fixture(scope="module")
def twitter_db():
    return twitter_database(nodes=300, edges=1200, seed=4)


class TestExplain:
    def test_triangle_explanation_fields(self, twitter_db):
        explanation = explain(Q1, twitter_db, workers=16)
        assert explanation.cyclic is True
        assert explanation.agm_bound == pytest.approx(
            len(twitter_db["Twitter"]) ** 1.5, rel=1e-6
        )
        assert sorted(explanation.plan.order) == ["R", "S", "T"]
        assert explanation.hc_config.workers_used <= 16
        assert len(explanation.variable_order) == 3
        assert explanation.hc_replication >= 1.0
        # Algorithm 1 stays close to the fractional optimum
        assert (
            explanation.hc_workload
            <= 2 * explanation.hc_optimal_workload + 1e-9
        )

    def test_q7_uses_broadcast_like_config(self):
        db = freebase_unit()
        explanation = explain(Q7, db, workers=16)
        assert explanation.cyclic is False
        dims = {v.name: d for v, d in explanation.hc_config.dims.items()}
        assert dims["aw"] == 1  # tiny name lookup gets no share

    def test_render_is_complete(self, twitter_db):
        text = explain(Q1, twitter_db, workers=16).render()
        for fragment in (
            "cyclic",
            "AGM bound",
            "left-deep plan",
            "fractional shares",
            "hypercube config",
            "tributary variable order",
        ):
            assert fragment in text

    def test_no_execution_happens(self, twitter_db):
        # explain must be cheap: it returns without touching a cluster
        explanation = explain(Q1, twitter_db, workers=64)
        assert explanation.workers == 64
