"""Tests for fractional HyperCube shares (Beame et al. LP)."""

import pytest

from repro.hypercube.shares import (
    expected_load,
    fractional_shares,
    optimal_fractional_workload,
    replication_factor,
)
from repro.query.atoms import Variable
from repro.query.parser import parse_query

TRIANGLE = parse_query("T(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")
CLIQUE4 = parse_query(
    "C(x,y,z,p) :- R:E(x,y), S:E(y,z), T:E(z,p), P:E(p,x), K:E(x,z), L:E(y,p)."
)

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def uniform(query, size):
    return {atom.alias: size for atom in query.atoms}


class TestFractionalShares:
    def test_triangle_p64(self):
        result = fractional_shares(TRIANGLE, uniform(TRIANGLE, 10**6), 64)
        for share in result.shares.values():
            assert share == pytest.approx(4.0, rel=1e-3)

    def test_clique4_p16_fourth_root(self):
        result = fractional_shares(CLIQUE4, uniform(CLIQUE4, 10**6), 16)
        for share in result.shares.values():
            assert share == pytest.approx(2.0, rel=1e-3)

    def test_exponents_sum_to_one(self):
        result = fractional_shares(TRIANGLE, uniform(TRIANGLE, 1000), 63)
        assert sum(result.exponents.values()) == pytest.approx(1.0, abs=1e-6)

    def test_share_defaults_to_one_for_unknown_variable(self):
        result = fractional_shares(TRIANGLE, uniform(TRIANGLE, 1000), 64)
        assert result.share(Variable("nope")) == 1.0

    def test_single_server(self):
        result = fractional_shares(TRIANGLE, uniform(TRIANGLE, 1000), 1)
        assert all(s == 1.0 for s in result.shares.values())

    def test_no_join_variables(self):
        query = parse_query("Q(x,y) :- R(x,u), S(y,v).")
        result = fractional_shares(query, {"R": 10, "S": 10}, 16)
        assert result.shares == {}

    def test_invalid_servers(self):
        with pytest.raises(ValueError):
            fractional_shares(TRIANGLE, uniform(TRIANGLE, 10), 0)

    def test_skewed_relations_get_broadcast_pattern(self):
        # paper Sec. 2.1: tiny S1 -> p1=p2=1, p3=p (broadcast S1)
        query = parse_query("Q(x1,x2,x3) :- S1(x1,x2), S2(x2,x3), S3(x3,x1).")
        result = fractional_shares(query, {"S1": 2, "S2": 10**6, "S3": 10**6}, 64)
        shares = {v.name: s for v, s in result.shares.items()}
        assert shares["x3"] == pytest.approx(64.0, rel=1e-2)


class TestLoads:
    def test_expected_load_triangle(self):
        shares = {X: 4.0, Y: 4.0, Z: 4.0}
        load = expected_load(TRIANGLE, uniform(TRIANGLE, 10**6), shares)
        assert load == pytest.approx(3 * 10**6 / 16)

    def test_expected_load_with_missing_shares_defaults_to_one(self):
        load = expected_load(TRIANGLE, uniform(TRIANGLE, 100), {X: 2.0})
        # R(x,y): 100/2, S(y,z): 100, T(z,x): 100/2
        assert load == pytest.approx(50 + 100 + 50)

    def test_optimal_workload_matches_closed_form(self):
        # triangle, equal sizes m, p=64: 3m / p^(2/3) = 3m/16
        m = 10**6
        load = optimal_fractional_workload(TRIANGLE, uniform(TRIANGLE, m), 64)
        assert load == pytest.approx(3 * m / 16, rel=1e-3)

    def test_replication_factor_triangle(self):
        shares = {X: 4.0, Y: 4.0, Z: 4.0}
        # each atom misses one dimension -> 4 copies per tuple
        factor = replication_factor(TRIANGLE, uniform(TRIANGLE, 1000), shares)
        assert factor == pytest.approx(4.0)

    def test_replication_factor_empty(self):
        factor = replication_factor(TRIANGLE, uniform(TRIANGLE, 0), {})
        assert factor == 1.0
