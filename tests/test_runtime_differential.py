"""Differential tests: SerialRuntime and ParallelRuntime are bit-identical.

The parallel runtime must be a pure execution-order change: for every
strategy and query, result rows come back in the same order and every
counted metric (CPU charges, wall clock, shuffle volumes, skews, peak
memory) is exactly equal — no tolerance.  This is what lets benchmarks and
figures run under either backend interchangeably.
"""

import pytest

from repro.planner.api import run_query
from repro.planner.plans import ALL_STRATEGIES
from repro.query.parser import parse_query
from repro.storage.generators import twitter_database

TRIANGLE = parse_query(
    "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."
)
PROJECTION = parse_query("P(x) :- R:Twitter(x,y), S:Twitter(y,x).")
COMPARISON = parse_query(
    "C(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), x < z."
)
TWO_PATH = parse_query("P(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z).")

QUERIES = {
    "triangle": TRIANGLE,
    "projection": PROJECTION,
    "comparison": COMPARISON,
}


def assert_identical(serial, parallel):
    """Byte-identical rows and exactly equal counted metrics."""
    assert serial.rows == parallel.rows  # same rows, same order
    a, b = serial.stats, parallel.stats
    assert a.failed == b.failed
    assert a.failure == b.failure
    assert a.shuffles == b.shuffles  # tuples sent + both skews, per shuffle
    assert a.tuples_shuffled == b.tuples_shuffled
    assert a.total_cpu == b.total_cpu
    assert a.wall_clock == b.wall_clock
    assert a.phases() == b.phases()
    assert a.worker_loads() == b.worker_loads()
    assert a.peak_memory == b.peak_memory
    assert a.result_count == b.result_count
    assert a.cpu_skew == b.cpu_skew


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", [0, 7, 42])
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_all_strategies_identical_across_runtimes(strategy, seed, query_name):
    db = twitter_database(nodes=120, edges=500, seed=seed)
    query = QUERIES[query_name]
    serial = run_query(query, db, strategy=strategy, workers=6, runtime="serial")
    parallel = run_query(
        query, db, strategy=strategy, workers=6, runtime="parallel:3"
    )
    assert not serial.failed
    assert_identical(serial, parallel)


@pytest.mark.parametrize("seed", [0, 42])
def test_semijoin_plan_identical_across_runtimes(seed):
    db = twitter_database(nodes=120, edges=500, seed=seed)
    serial = run_query(TWO_PATH, db, strategy="SJ_HJ", workers=6, runtime="serial")
    parallel = run_query(
        TWO_PATH, db, strategy="SJ_HJ", workers=6, runtime="parallel"
    )
    assert not serial.failed
    assert_identical(serial, parallel)


@pytest.mark.parametrize("workers", [1, 3, 8])
def test_worker_counts_identical_across_runtimes(workers):
    db = twitter_database(nodes=120, edges=500, seed=3)
    serial = run_query(
        TRIANGLE, db, strategy="HC_TJ", workers=workers, runtime="serial"
    )
    parallel = run_query(
        TRIANGLE, db, strategy="HC_TJ", workers=workers, runtime="parallel"
    )
    assert_identical(serial, parallel)


def test_oom_failure_identical_across_runtimes():
    """A budget violation must fail identically: same failing worker, same
    phase, same partially-accumulated stats."""
    db = twitter_database(nodes=120, edges=500, seed=1)
    serial = run_query(
        TRIANGLE, db, strategy="RS_TJ", workers=4, memory_tuples=400,
        runtime="serial",
    )
    parallel = run_query(
        TRIANGLE, db, strategy="RS_TJ", workers=4, memory_tuples=400,
        runtime="parallel:4",
    )
    assert serial.failed and parallel.failed
    assert serial.stats.failure == parallel.stats.failure
    assert_identical(serial, parallel)
