"""Tests for heavy-hitter detection and the skew-resilient shuffle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.frame import Frame
from repro.engine.hash_join import symmetric_hash_join
from repro.engine.skew import detect_heavy_hitters, skew_resilient_shuffle
from repro.engine.stats import ExecutionStats
from repro.query.atoms import Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def frames_of(rows, variables, workers=3):
    out = [[] for _ in range(workers)]
    for index, row in enumerate(rows):
        out[index % workers].append(row)
    return [Frame(tuple(variables), rows) for rows in out]


class TestDetection:
    def test_flags_dominant_value(self):
        rows = [(i, 7) for i in range(90)] + [(i, i) for i in range(10)]
        frames = frames_of(rows, (X, Y))
        heavy = detect_heavy_hitters(frames, [Y], workers=4)
        assert (7,) in heavy
        assert len(heavy) == 1

    def test_uniform_data_has_no_heavy_hitters(self):
        rows = [(i, i) for i in range(100)]
        frames = frames_of(rows, (X, Y))
        assert detect_heavy_hitters(frames, [Y], workers=4) == set()

    def test_threshold_factor(self):
        rows = [(i, i % 4) for i in range(100)]  # each key has 25 of 100
        frames = frames_of(rows, (X, Y))
        # avg worker load = 25; factor 0.9 flags every key, 1.1 flags none
        assert len(detect_heavy_hitters(frames, [Y], 4, factor=0.9)) == 4
        assert detect_heavy_hitters(frames, [Y], 4, factor=1.1) == set()

    def test_empty_input(self):
        assert detect_heavy_hitters([], [Y], 4) == set()
        assert detect_heavy_hitters(frames_of([], (X, Y)), [Y], 4) == set()


class TestSkewResilientShuffle:
    def _join_all(self, build, probe, workers):
        rows = []
        for worker in range(workers):
            out = symmetric_hash_join(
                build[worker], probe[worker], [Y], worker, ExecutionStats(), "j"
            )
            rows.extend(out.rows)
        return rows

    def test_results_complete_and_unique_with_heavy_keys(self):
        build_rows = [(i, 7) for i in range(50)] + [(100 + i, i) for i in range(5)]
        probe_rows = [(7, j) for j in range(20)] + [(i, 900 + i) for i in range(5)]
        build = frames_of(build_rows, (X, Y))
        probe = frames_of(probe_rows, (Y, Z))
        stats = ExecutionStats()
        b_out, p_out, heavy = skew_resilient_shuffle(
            build, probe, [Y], 4, stats, "skew", "p"
        )
        assert (7,) in heavy
        joined = self._join_all(b_out, p_out, 4)
        expected = [
            (x, y, z)
            for (x, y) in build_rows
            for (y2, z) in probe_rows
            if y == y2
        ]
        assert sorted(joined) == sorted(expected)
        assert len(joined) == len(expected)  # exactly-once

    def test_consumer_skew_reduced(self):
        # one giant key: plain hashing puts everything on one worker
        build_rows = [(i, 7) for i in range(200)]
        probe_rows = [(7, j) for j in range(10)]
        stats = ExecutionStats()
        b_out, _, _ = skew_resilient_shuffle(
            frames_of(build_rows, (X, Y)),
            frames_of(probe_rows, (Y, Z)),
            [Y],
            4,
            stats,
            "skew",
            "p",
        )
        build_record = stats.shuffles[0]
        assert build_record.consumer_skew < 1.2  # split round-robin

        from repro.engine.shuffle import regular_shuffle

        plain_stats = ExecutionStats()
        regular_shuffle(
            frames_of(build_rows, (X, Y)), [Y], 4, plain_stats, "plain", "p"
        )
        assert plain_stats.shuffles[0].consumer_skew == pytest.approx(4.0)

    @given(
        st.lists(st.tuples(st.integers(0, 20), st.integers(0, 3)), max_size=60),
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 20)), max_size=60),
    )
    @settings(max_examples=40)
    def test_join_equivalence_property(self, build_rows, probe_rows):
        workers = 3
        stats = ExecutionStats()
        if not build_rows or not probe_rows:
            return
        b_out, p_out, _ = skew_resilient_shuffle(
            frames_of(build_rows, (X, Y), workers),
            frames_of(probe_rows, (Y, Z), workers),
            [Y],
            workers,
            stats,
            "skew",
            "p",
            factor=1.0,
        )
        joined = self._join_all(b_out, p_out, workers)
        expected = sorted(
            (x, y, z)
            for (x, y) in build_rows
            for (y2, z) in probe_rows
            if y == y2
        )
        assert sorted(joined) == expected
