"""Differential suite: IR execution ≡ the seed executor, bit for bit.

``tests/golden/seed_executor_metrics.json`` was captured from the
hand-written per-strategy executor (commit 56d3084) before the physical-plan
IR existed: every workload x strategy at unit scale plus mid-plan OOM
cases, recording ordered result rows (as a digest), tuples shuffled,
per-shuffle skews, per-phase CPU/wall, peak memory, and failure outcomes.
These tests re-run every case through the lowering + scheduler path and
require exact equality — the tentpole invariant of the refactor.

The suite honors two environment switches so CI can sweep the whole
matrix without duplicating test code:

- ``REPRO_DIFF_RUNTIME`` — worker runtime spec (default ``serial``);
- ``REPRO_KERNELS``     — kernel backend (the engine-wide default).
"""

import hashlib
import json
import os

import pytest

from repro.engine.cluster import Cluster
from repro.engine.memory import MemoryBudget
from repro.planner.executor import execute
from repro.planner.plans import ALL_STRATEGIES
from repro.planner.semijoin import execute_semijoin
from repro.query.parser import parse_query
from repro.storage.generators import twitter_database
from repro.workloads.registry import get_workload

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "seed_executor_metrics.json"
)
with open(GOLDEN_PATH) as _handle:
    GOLDEN = json.load(_handle)

RUNTIME = os.environ.get("REPRO_DIFF_RUNTIME", "serial")
WORKERS = 4
TRIANGLE = "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."

STRATEGIES = {s.name: s for s in ALL_STRATEGIES}
GRID_CASES = sorted(k for k in GOLDEN if "/" in k)
OOM_CASES = sorted(k for k in GOLDEN if "/" not in k)

_DATASETS: dict = {}


def unit_dataset(name):
    """Memoize unit datasets: generating Freebase per case is the slow part."""
    if name not in _DATASETS:
        _DATASETS[name] = get_workload(name).dataset("unit")
    return _DATASETS[name]


def rows_digest(rows) -> str:
    return hashlib.sha256(repr(list(rows)).encode()).hexdigest()


def assert_matches(result, expected):
    stats = result.stats
    assert rows_digest(result.rows) == expected["rows_sha256"]
    assert stats.result_count == expected["result_count"]
    assert stats.failed == expected["failed"]
    assert stats.failure == expected["failure"]
    assert stats.tuples_shuffled == expected["tuples_shuffled"]
    assert stats.total_cpu == expected["total_cpu"]
    assert stats.wall_clock == expected["wall_clock"]
    assert stats.cpu_skew == expected["cpu_skew"]
    assert stats.max_consumer_skew == expected["max_consumer_skew"]
    assert [
        [r.name, r.tuples_sent, r.producer_skew, r.consumer_skew]
        for r in stats.shuffles
    ] == expected["shuffles"]
    assert [
        [phase, stats.phase_cpu(phase), stats.phase_wall(phase)]
        for phase in stats.phases()
    ] == expected["phases"]
    assert {
        str(w): stats.peak_memory[w] for w in sorted(stats.peak_memory)
    } == expected["peak_memory"]


@pytest.mark.parametrize("case", GRID_CASES)
def test_grid_case_matches_seed(case):
    name, strategy_name = case.split("/")
    workload = get_workload(name)
    cluster = Cluster(WORKERS)
    cluster.load(unit_dataset(name))
    if strategy_name == "SJ_HJ":
        result = execute_semijoin(workload.query, cluster, runtime=RUNTIME)
    else:
        result = execute(
            workload.query, cluster, STRATEGIES[strategy_name], runtime=RUNTIME
        )
    expected = GOLDEN[case]
    assert_matches(result, expected)
    if expected.get("hc_config") is not None:
        assert repr(result.hc_config) == expected["hc_config"]
    if expected.get("variable_order") is not None:
        assert [v.name for v in result.variable_order] == expected["variable_order"]
    if expected.get("plan_order") is not None:
        assert list(result.plan.order) == expected["plan_order"]


@pytest.mark.parametrize("case", OOM_CASES)
def test_oom_case_matches_seed(case):
    expected = GOLDEN[case]
    strategy = STRATEGIES[case.replace("OOM_", "").replace("SCAN", "RS_HJ")]
    cluster = Cluster(
        expected["workers"],
        MemoryBudget(per_worker_tuples=expected["budget"]),
    )
    cluster.load(twitter_database(nodes=200, edges=900, seed=5))
    result = execute(parse_query(TRIANGLE), cluster, strategy, runtime=RUNTIME)
    assert_matches(result, expected)
