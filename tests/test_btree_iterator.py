"""Tests for the B-tree LFTJ iterator and backend equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.leapfrog.btree_iterator import BTreeTrieIterator
from repro.leapfrog.tributary import TributaryJoin, prepare_atom
from repro.query.parser import parse_query
from repro.storage.btree import BPlusTree
from repro.storage.relation import Relation

edge_lists = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=50
)

TRIANGLE = parse_query("Q(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")


def tree_of(rows, branching=4):
    tree = BPlusTree(branching=branching)
    for row in rows:
        tree.insert(row)
    return tree


def walk_level(iterator):
    values = []
    while not iterator.at_end:
        values.append(iterator.key())
        iterator.next()
    return values


class TestNavigation:
    def test_first_level_distinct_keys(self):
        iterator = BTreeTrieIterator(tree_of([(2, 1), (1, 5), (2, 9)]), 2)
        iterator.open()
        assert walk_level(iterator) == [1, 2]

    def test_second_level_scoped(self):
        iterator = BTreeTrieIterator(tree_of([(1, 3), (1, 5), (2, 4)]), 2)
        iterator.open()
        iterator.open()
        assert walk_level(iterator) == [3, 5]

    def test_up_restores_parent(self):
        iterator = BTreeTrieIterator(tree_of([(1, 3), (1, 5), (2, 4)]), 2)
        iterator.open()
        iterator.open()
        iterator.up()
        assert iterator.key() == 1
        iterator.next()
        assert iterator.key() == 2

    def test_seek_least_geq(self):
        iterator = BTreeTrieIterator(tree_of([(1, 0), (4, 0), (9, 0)]), 2)
        iterator.open()
        iterator.seek(5)
        assert iterator.key() == 9

    def test_seek_past_end(self):
        iterator = BTreeTrieIterator(tree_of([(1, 0)]), 2)
        iterator.open()
        iterator.seek(5)
        assert iterator.at_end

    def test_errors(self):
        iterator = BTreeTrieIterator(tree_of([(1, 2)]), 2)
        with pytest.raises(RuntimeError):
            iterator.key()
        with pytest.raises(RuntimeError):
            iterator.up()
        iterator.open()
        iterator.open()
        with pytest.raises(RuntimeError):
            iterator.open()

    def test_empty_tree(self):
        iterator = BTreeTrieIterator(tree_of([]), 2)
        assert iterator.at_end

    @given(edge_lists)
    @settings(max_examples=50)
    def test_full_walk_reconstructs_relation(self, rows):
        tree = tree_of(rows)
        if not len(tree):
            return
        iterator = BTreeTrieIterator(tree, 2)
        reconstructed = set()
        iterator.open()
        while not iterator.at_end:
            first = iterator.key()
            iterator.open()
            while not iterator.at_end:
                reconstructed.add((first, iterator.key()))
                iterator.next()
            iterator.up()
            iterator.next()
        assert reconstructed == set(rows)


class TestBackendEquivalence:
    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_triangle_same_results_both_backends(self, edges):
        relation = Relation("E", ("a", "b"), list(dict.fromkeys(edges)))
        relations = {"R": relation, "S": relation, "T": relation}
        sorted_run = set(TributaryJoin(TRIANGLE, relations).run())
        btree_run = set(
            TributaryJoin(TRIANGLE, relations, backend="btree").run()
        )
        assert sorted_run == btree_run

    def test_comparisons_and_projection_work_on_btree(self):
        query = parse_query("Q(x) :- R(x,y), S(y,z), x < z.")
        relation = Relation("R", ("a", "b"), [(1, 2), (2, 3), (3, 1)])
        sorted_run = TributaryJoin(
            query, {"R": relation, "S": relation}
        ).run()
        btree_run = TributaryJoin(
            query, {"R": relation, "S": relation}, backend="btree"
        ).run()
        assert set(sorted_run) == set(btree_run)

    def test_unknown_backend_rejected(self):
        relation = Relation("E", ("a", "b"), [(1, 2)])
        with pytest.raises(ValueError, match="backend"):
            TributaryJoin(
                TRIANGLE,
                {"R": relation, "S": relation, "T": relation},
                backend="rocksdb",
            )

    def test_prepare_cost_reported_for_both(self):
        relation = Relation("E", ("a", "b"), [(i, i + 1) for i in range(50)])
        atom = TRIANGLE.atom_by_alias("R")
        order = TRIANGLE.variables()
        sorted_prep = prepare_atom(atom, relation, order)
        btree_prep = prepare_atom(atom, relation, order, backend="btree")
        assert sorted_prep.prepare_cost > 0
        assert btree_prep.prepare_cost > 0
        assert sorted_prep.size == btree_prep.size == 50
