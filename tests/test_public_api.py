"""Meta-tests: the public API surface stays importable and documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.query",
    "repro.storage",
    "repro.hypercube",
    "repro.leapfrog",
    "repro.engine",
    "repro.planner",
    "repro.workloads",
    "repro.experiments",
]


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("package_name", SUBPACKAGES)
def test_subpackage_all_resolves(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, f"{package_name} lacks a package docstring"
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name}"


def _iter_modules():
    for package_name in SUBPACKAGES:
        package = importlib.import_module(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            yield importlib.import_module(f"{package_name}.{info.name}")


def test_every_module_has_a_docstring():
    for module in _iter_modules():
        assert module.__doc__ and module.__doc__.strip(), module.__name__


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in _iter_modules():
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(item) or inspect.isfunction(item)):
                continue
            if getattr(item, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their home
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_version_defined():
    assert repro.__version__
