"""Higher-arity coverage: ternary atoms through the whole stack.

The paper's workloads are all binary relations; these tests make sure the
machinery (Tributary join, shuffles, executor) is not silently
binary-only.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import Cluster
from repro.planner.executor import execute
from repro.planner.plans import ALL_STRATEGIES, RS_HJ
from repro.leapfrog.tributary import tributary_join
from repro.query.parser import parse_query
from repro.storage.relation import Database, Relation

triples = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
    max_size=30,
)
pairs = st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30)


class TestTernaryTributary:
    @given(triples, pairs)
    @settings(max_examples=50, deadline=None)
    def test_ternary_binary_join(self, r_rows, s_rows):
        query = parse_query("Q(x,y,z,w) :- R(x,y,z), S(z,w).")
        r = Relation("R", ("a", "b", "c"), list(dict.fromkeys(r_rows)))
        s = Relation("S", ("a", "b"), list(dict.fromkeys(s_rows)))
        got = set(tributary_join(query, {"R": r, "S": s}))
        expected = {
            (x, y, z, w)
            for (x, y, z) in set(r.rows)
            for (z2, w) in set(s.rows)
            if z == z2
        }
        assert got == expected

    @given(triples)
    @settings(max_examples=40, deadline=None)
    def test_ternary_self_join_on_two_variables(self, rows):
        query = parse_query("Q(x,y,z,w) :- R1:R(x,y,z), R2:R(y,z,w).")
        r = Relation("R", ("a", "b", "c"), list(dict.fromkeys(rows)))
        got = set(tributary_join(query, {"R1": r, "R2": r}))
        rows_set = set(r.rows)
        expected = {
            (x, y, z, w)
            for (x, y, z) in rows_set
            for (y2, z2, w) in rows_set
            if y2 == y and z2 == z
        }
        assert got == expected

    def test_constant_in_middle_position(self):
        query = parse_query("Q(x,z) :- R(x, 7, z).")
        r = Relation("R", ("a", "b", "c"), [(1, 7, 2), (1, 8, 3), (4, 7, 5)])
        assert set(tributary_join(query, {"R": r})) == {(1, 2), (4, 5)}


class TestTernaryDistributed:
    def _db(self):
        import numpy as np

        rng = np.random.default_rng(3)
        db = Database()
        db.add_rows(
            "F",
            ("a", "b", "c"),
            {tuple(map(int, row)) for row in rng.integers(0, 12, (150, 3))},
        )
        db.add_rows(
            "G",
            ("a", "b"),
            {tuple(map(int, row)) for row in rng.integers(0, 12, (100, 2))},
        )
        return db

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_all_strategies_agree_on_ternary_query(self, strategy):
        query = parse_query("Q(x,y,z,w) :- F(x,y,z), G(z,w), F2:F(w,x,v).")
        db = self._db()
        cluster = Cluster(4)
        cluster.load(db)
        reference_cluster = Cluster(4)
        reference_cluster.load(db)
        reference = execute(query, reference_cluster, RS_HJ)
        result = execute(query, cluster, strategy)
        assert not result.failed
        assert set(result.rows) == set(reference.rows)

    def test_ternary_star_join(self):
        query = parse_query("Q(x) :- F(x,y,z), G(x,w).")
        db = self._db()
        cluster = Cluster(3)
        cluster.load(db)
        result = execute(query, cluster, RS_HJ)
        f_first = {row[0] for row in db["F"].rows}
        g_first = {row[0] for row in db["G"].rows}
        assert set(r[0] for r in result.rows) == f_first & g_first
