"""Unit tests for the conjunctive-query IR."""

import pytest

from repro.query.atoms import (
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Variable,
    make_variables,
)

X, Y, Z = make_variables("x y z".split())


def test_variable_identity_and_ordering():
    assert Variable("x") == X
    assert Variable("a") < Variable("b")
    assert len({Variable("x"), Variable("x"), Y}) == 2


def test_constant_repr_distinguishes_strings():
    assert repr(Constant(3)) == "3"
    assert repr(Constant("joe")) == '"joe"'
    assert Constant(3) != Constant("3")


class TestAtom:
    def test_alias_defaults_to_relation(self):
        atom = Atom("R", (X, Y))
        assert atom.alias == "R"

    def test_explicit_alias(self):
        atom = Atom("Twitter", (X, Y), alias="R")
        assert atom.alias == "R"
        assert atom.relation == "Twitter"

    def test_variables_first_occurrence_order(self):
        atom = Atom("R", (Y, X, Y))
        assert atom.variables() == (Y, X)

    def test_constants_with_positions(self):
        atom = Atom("R", (X, Constant("joe"), Constant(5)))
        assert atom.constants() == ((1, Constant("joe")), (2, Constant(5)))

    def test_positions_of_repeated_variable(self):
        atom = Atom("R", (X, Y, X))
        assert atom.positions_of(X) == (0, 2)
        assert atom.positions_of(Y) == (1,)
        assert atom.positions_of(Z) == ()

    def test_arity(self):
        assert Atom("R", (X, Y, Z)).arity == 3

    def test_empty_atom_rejected(self):
        with pytest.raises(ValueError):
            Atom("R", ())


class TestComparison:
    def test_variable_vs_constant(self):
        comparison = Comparison(X, ">", Constant(5))
        assert comparison.evaluate({X: 6})
        assert not comparison.evaluate({X: 5})

    def test_variable_vs_variable(self):
        comparison = Comparison(X, "<", Y)
        assert comparison.evaluate({X: 1, Y: 2})
        assert not comparison.evaluate({X: 2, Y: 2})

    def test_unbound_sides_defer(self):
        comparison = Comparison(X, "<", Y)
        assert comparison.evaluate({})
        assert comparison.evaluate({X: 99})
        assert comparison.evaluate({Y: 0})

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 2, 3, False),
            ("=", 2, 2, True),
            ("==", 2, 3, False),
            ("!=", 2, 3, True),
        ],
    )
    def test_all_operators(self, op, left, right, expected):
        comparison = Comparison(X, op, Y)
        assert comparison.evaluate({X: left, Y: right}) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(X, "<>", Y)

    def test_variables(self):
        assert Comparison(X, "<", Y).variables() == (X, Y)
        assert Comparison(X, "<", Constant(1)).variables() == (X,)


class TestConjunctiveQuery:
    def _triangle(self):
        return ConjunctiveQuery(
            "T",
            (X, Y, Z),
            (
                Atom("E", (X, Y), alias="R"),
                Atom("E", (Y, Z), alias="S"),
                Atom("E", (Z, X), alias="T"),
            ),
        )

    def test_variables_in_first_occurrence_order(self):
        assert self._triangle().variables() == (X, Y, Z)

    def test_join_variables_triangle(self):
        assert set(self._triangle().join_variables()) == {X, Y, Z}

    def test_join_variables_excludes_singletons(self):
        w = Variable("w")
        query = ConjunctiveQuery(
            "Q", (X,), (Atom("R", (X, Y)), Atom("S", (Y, w)))
        )
        assert query.join_variables() == (Y,)

    def test_full_query_detection(self):
        assert self._triangle().is_full()
        partial = ConjunctiveQuery("Q", (X,), (Atom("R", (X, Y)),))
        assert not partial.is_full()

    def test_head_variable_must_be_in_body(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery("Q", (Z,), (Atom("R", (X, Y)),))

    def test_comparison_variable_must_be_in_body(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(
                "Q",
                (X,),
                (Atom("R", (X, Y)),),
                comparisons=(Comparison(Z, "<", Constant(1)),),
            )

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(
                "Q", (X,), (Atom("R", (X, Y)), Atom("R", (Y, X)))
            )

    def test_atoms_with(self):
        triangle = self._triangle()
        assert {a.alias for a in triangle.atoms_with(X)} == {"R", "T"}

    def test_atom_by_alias(self):
        triangle = self._triangle()
        assert triangle.atom_by_alias("S").terms == (Y, Z)
        with pytest.raises(KeyError):
            triangle.atom_by_alias("missing")

    def test_relations_deduplicates(self):
        assert self._triangle().relations() == ("E",)

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery("Q", (), ())
