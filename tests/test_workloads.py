"""Tests for the paper's eight workload queries and the registry."""

import pytest

from repro.query.hypergraph import Hypergraph
from repro.workloads import (
    PAPER_ORDER,
    WORKLOADS,
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    Q6,
    Q7,
    Q8,
    get_workload,
)

#: Table 6 ground truth: (tables, join variables, cyclic).
#: Note on Q3: the paper reports 7 join variables, which counts the
#: projected output variable `cast`; only 6 variables occur in two or more
#: atoms (a1, p1, film, a2, p2, p), and that is the structural count our
#: ``join_variables()`` returns.
TABLE6 = {
    "Q1": (3, 3, True),
    "Q7": (4, 2, False),
    "Q5": (4, 4, True),
    "Q6": (5, 4, True),
    "Q2": (6, 4, True),
    "Q8": (6, 6, True),
    "Q3": (8, 6, False),
    "Q4": (8, 8, True),
}


class TestQueryShapes:
    @pytest.mark.parametrize("name", list(TABLE6))
    def test_table6_columns(self, name):
        tables, join_vars, cyclic = TABLE6[name]
        query = WORKLOADS[name].query
        assert len(query.atoms) == tables, f"{name}: #tables"
        assert len(query.join_variables()) == join_vars, f"{name}: #join vars"
        assert Hypergraph(query).is_cyclic() == cyclic, f"{name}: cyclicity"

    def test_q1_is_triangle(self):
        assert Q1.is_full()
        assert {a.relation for a in Q1.atoms} == {"Twitter"}

    def test_q2_extends_q1(self):
        q1_aliases = {frozenset(v.name for v in a.variables()) for a in Q1.atoms}
        q2_aliases = {frozenset(v.name for v in a.variables()) for a in Q2.atoms}
        assert q1_aliases <= q2_aliases or len(Q2.atoms) == 6

    def test_q4_has_film_inequality(self):
        assert len(Q4.comparisons) == 1
        assert Q4.comparisons[0].op == ">"

    def test_q7_year_range(self):
        assert len(Q7.comparisons) == 2
        ops = {c.op for c in Q7.comparisons}
        assert ops == {">=", "<"}

    def test_q3_q7_project(self):
        assert not Q3.is_full()
        assert not Q7.is_full()

    def test_q6_is_q5_plus_chord(self):
        q5_edges = {tuple(v.name for v in a.variables()) for a in Q5.atoms}
        q6_edges = {tuple(v.name for v in a.variables()) for a in Q6.atoms}
        assert q5_edges <= q6_edges
        assert len(q6_edges - q5_edges) == 1


class TestRegistry:
    def test_all_eight_registered(self):
        assert set(WORKLOADS) == {f"Q{i}" for i in range(1, 9)}
        assert set(PAPER_ORDER) == set(WORKLOADS)

    def test_get_workload(self):
        assert get_workload("Q1").name == "Q1"
        with pytest.raises(KeyError):
            get_workload("Q99")

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_unit_datasets_provide_required_relations(self, name):
        workload = get_workload(name)
        db = workload.dataset("unit")
        for relation in workload.query.relations():
            assert relation in db
            assert len(db[relation]) > 0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_workload("Q1").dataset("huge")

    def test_cyclic_flags_match_hypergraph(self):
        for workload in WORKLOADS.values():
            assert workload.cyclic == Hypergraph(workload.query).is_cyclic()

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_unit_queries_have_nonempty_results(self, name):
        """Every workload must exercise a non-trivial answer at unit scale."""
        from repro.experiments import run_workload
        from repro.planner.plans import HC_TJ

        grid = run_workload(name, scale="unit", workers=4, strategies=[HC_TJ])
        result = grid["HC_TJ"]
        assert not result.failed
        assert len(result.rows) > 0, f"{name} returns empty at unit scale"
