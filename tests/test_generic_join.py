"""Tests for the NPRR-style Generic Join and its TJ equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.leapfrog.generic_join import GenericJoin, generic_join
from repro.leapfrog.tributary import tributary_join
from repro.query.atoms import Variable
from repro.query.parser import parse_query
from repro.storage.relation import Database, Relation

TRIANGLE = parse_query("Q(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")

edge_lists = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=50
)


def edges_relation(edges, name="E"):
    return Relation(name, ("a", "b"), list(dict.fromkeys(edges)))


class TestEquivalenceWithTributary:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_triangle(self, edges):
        relation = edges_relation(edges)
        relations = {"R": relation, "S": relation, "T": relation}
        assert set(generic_join(TRIANGLE, relations)) == set(
            tributary_join(TRIANGLE, relations)
        )

    @given(edge_lists, edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_path_query(self, left, right):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z).")
        relations = {
            "R": edges_relation(left, "R"),
            "S": edges_relation(right, "S"),
        }
        assert set(generic_join(query, relations)) == set(
            tributary_join(query, relations)
        )

    def test_comparisons_and_constants(self):
        query = parse_query("Q(y,z) :- R(3, y), S(y, z), y < z.")
        relation = Relation("R", ("a", "b"), [(3, 1), (3, 5), (1, 2), (5, 9)])
        relations = {"R": relation, "S": relation.renamed("S")}
        assert set(generic_join(query, relations)) == set(
            tributary_join(query, relations)
        )

    def test_projection_dedup(self):
        query = parse_query("Q(x) :- R(x,y).")
        relation = Relation("R", ("a", "b"), [(1, 1), (1, 2), (2, 1)])
        result = generic_join(query, {"R": relation})
        assert sorted(result) == [(1,), (2,)]

    def test_string_constants_with_encoder(self):
        db = Database()
        db.add_encoded("Name", ("id", "name"), [(1, "joe"), (2, "bob")])
        db.add_rows("Act", ("id", "film"), [(1, 7), (2, 8)])
        query = parse_query('Q(f) :- Name(x, "joe"), Act(x, f).')
        result = generic_join(
            query, {"Name": db["Name"], "Act": db["Act"]}, encoder=db.encode
        )
        assert set(result) == {(7,)}


class TestMechanics:
    def test_empty_relation_short_circuits(self):
        relation = edges_relation([])
        result = generic_join(
            TRIANGLE, {"R": relation, "S": relation, "T": relation}
        )
        assert result == []

    def test_stats_counted(self):
        relation = edges_relation([(0, 1), (1, 2), (2, 0), (0, 2)])
        join = GenericJoin(
            TRIANGLE, {"R": relation, "S": relation, "T": relation}
        )
        results = join.run()
        assert join.stats.probes > 0
        assert join.stats.index_cost == 3 * 4
        assert join.stats.results == len(results)

    def test_order_must_cover_variables(self):
        relation = edges_relation([(1, 2)])
        with pytest.raises(ValueError):
            GenericJoin(
                TRIANGLE,
                {"R": relation, "S": relation, "T": relation},
                order=(Variable("x"),),
            )

    def test_repeated_variable_atom(self):
        query = parse_query("Q(x) :- R(x,x).")
        relation = Relation("R", ("a", "b"), [(1, 1), (1, 2), (3, 3)])
        assert set(generic_join(query, {"R": relation})) == {(1,), (3,)}

    def test_any_order_same_results(self):
        relation = edges_relation([(0, 1), (1, 2), (2, 0), (1, 0), (0, 2)])
        relations = {"R": relation, "S": relation, "T": relation}
        import itertools

        x, y, z = Variable("x"), Variable("y"), Variable("z")
        expected = None
        for order in itertools.permutations((x, y, z)):
            got = set(GenericJoin(TRIANGLE, relations, order=order).run())
            if expected is None:
                expected = got
            assert got == expected
