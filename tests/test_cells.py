"""Tests for virtual-cell allocation (Naïve Algorithms 2/3, Appendix B)."""

import pytest

from repro.hypercube.cells import (
    allocation_workload,
    coverage_fractions,
    greedy_cell_allocation,
    random_cell_allocation,
)
from repro.hypercube.shares import optimal_fractional_workload
from repro.query.parser import parse_query

TRIANGLE = parse_query("T(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")
PATH = parse_query("A(x,y,z,p) :- R(x,y), S(y,z), T(z,p).")


def uniform(query, size=10**6):
    return {atom.alias: size for atom in query.atoms}


class TestRandomAllocation:
    def test_assignment_covers_all_cells(self):
        allocation = random_cell_allocation(TRIANGLE, uniform(TRIANGLE), 4, cells=64)
        assert allocation.cells == allocation.config.workers_used
        assert all(0 <= w < 4 for w in allocation.assignment)

    def test_deterministic_given_seed(self):
        a = random_cell_allocation(TRIANGLE, uniform(TRIANGLE), 4, cells=64, seed=1)
        b = random_cell_allocation(TRIANGLE, uniform(TRIANGLE), 4, cells=64, seed=1)
        assert a.assignment == b.assignment

    def test_random_allocation_replicates_heavily(self):
        """Appendix B: random allocation makes every worker cover most of
        every dimension, so workload blows up vs. the fractional optimum."""
        cards = uniform(TRIANGLE)
        allocation = random_cell_allocation(TRIANGLE, cards, 64, cells=4096)
        ratio = allocation_workload(TRIANGLE, cards, allocation) / (
            optimal_fractional_workload(TRIANGLE, cards, 64)
        )
        assert ratio > 2.0  # paper Fig. 11: ~3.7 for Q1

    def test_greedy_beats_random(self):
        cards = uniform(TRIANGLE)
        random_alloc = random_cell_allocation(TRIANGLE, cards, 64, cells=4096)
        greedy_alloc = greedy_cell_allocation(TRIANGLE, cards, 64, cells=4096)
        assert allocation_workload(TRIANGLE, cards, greedy_alloc) < (
            allocation_workload(TRIANGLE, cards, random_alloc)
        )


class TestWorkloadAccounting:
    def test_single_worker_gets_everything(self):
        cards = uniform(TRIANGLE, 1000)
        allocation = greedy_cell_allocation(TRIANGLE, cards, 1, cells=8)
        # one worker holds all cells -> full copy of every relation
        assert allocation_workload(TRIANGLE, cards, allocation) == pytest.approx(
            3000.0
        )

    def test_workload_at_least_fair_share(self):
        cards = uniform(TRIANGLE)
        for allocation in (
            random_cell_allocation(TRIANGLE, cards, 8, cells=64),
            greedy_cell_allocation(TRIANGLE, cards, 8, cells=64),
        ):
            load = allocation_workload(TRIANGLE, cards, allocation)
            assert load >= sum(cards.values()) / 8 - 1e-9


class TestCoverage:
    def test_appendix_b_coverage_pattern(self):
        """Fig. 18's observation: with random allocation, each worker covers
        a large fraction of every dimension's hash range."""
        cards = uniform(PATH)
        allocation = random_cell_allocation(PATH, cards, 4, cells=64, seed=0)
        fractions = coverage_fractions(allocation)
        for worker_fractions in fractions:
            nontrivial = [f for f in worker_fractions.values() if f > 0]
            assert nontrivial, "every worker owns at least one cell"
            assert max(nontrivial) > 0.5

    def test_greedy_coverage_is_tighter_on_leading_dimension(self):
        cards = uniform(PATH)
        greedy = greedy_cell_allocation(PATH, cards, 4, cells=64)
        random_alloc = random_cell_allocation(PATH, cards, 4, cells=64, seed=0)
        lead = greedy.config.order[0]
        lead_index = greedy.config.order.index(lead)
        greedy_lead = max(f[lead_index] for f in coverage_fractions(greedy))
        random_lead = max(f[lead_index] for f in coverage_fractions(random_alloc))
        assert greedy_lead <= random_lead

    def test_cells_of_worker(self):
        cards = uniform(TRIANGLE, 100)
        allocation = greedy_cell_allocation(TRIANGLE, cards, 2, cells=8)
        total = sum(len(allocation.cells_of_worker(w)) for w in range(2))
        assert total == allocation.cells
