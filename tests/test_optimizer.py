"""Tests for the cost-based strategy optimizer and its plan cache.

Covers the two catalog regressions this change fixed (prefix-count cache
misses, empty-selection zero-cardinality handling), the statistics the
optimizer consumes (group histograms, exact join products), the plan
cache's hit/invalidation semantics, and the auto-vs-explicit differential:
``strategy="auto"`` must be bit-identical to naming the chosen strategy.
"""

import pytest

import repro.query.catalog as catalog_module
from repro.planner import (
    ALL_STRATEGIES,
    AUTO_STRATEGY,
    PlanCache,
    estimate_costs,
    explain,
    optimize,
    run_query,
)
from repro.planner.optimizer import TRIVIAL_STRATEGY, normalize_query
from repro.query.atoms import Atom, Constant, Variable
from repro.query.catalog import Catalog
from repro.query.parser import parse_query
from repro.storage.generators import twitter_database
from repro.storage.relation import Database

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

TRIANGLE = parse_query(
    "Q(x, y, z) :- R:Twitter(x, y), S:Twitter(y, z), T:Twitter(z, x)."
)

STRATEGY_NAMES = tuple(s.name for s in ALL_STRATEGIES)


def small_db():
    db = Database()
    db.add_rows(
        "R", ("a", "b"),
        [(1, 10), (1, 20), (2, 10), (2, 10), (3, 30)],
    )
    db.add_rows("S", ("b", "c"), [(10, 100), (10, 200), (20, 100)])
    return db


def graph_db(**overrides):
    params = dict(nodes=400, edges=1600, seed=7)
    params.update(overrides)
    return twitter_database(**params)


# ----------------------------------------------------------------------
# Catalog regressions: the statistics the optimizer feeds on
# ----------------------------------------------------------------------


class TestAtomPrefixCountCache:
    def test_repeated_calls_compute_once(self, monkeypatch):
        catalog = Catalog(small_db())
        atom = Atom("R", (X, Y), alias="R1")
        calls = []
        real = catalog_module._distinct_count

        def counting(relation, positions):
            calls.append(positions)
            return real(relation, positions)

        monkeypatch.setattr(catalog_module, "_distinct_count", counting)
        first = catalog.atom_prefix_count(atom, (X, Y), 1)
        second = catalog.atom_prefix_count(atom, (X, Y), 1)
        assert first == second == 3
        assert len(calls) == 1, "second call must hit _atom_prefix_cache"

    def test_prefix_count_shares_cache_with_positions_form(self, monkeypatch):
        catalog = Catalog(small_db())
        atom = Atom("R", (X, Y), alias="R1")
        calls = []
        real = catalog_module._distinct_count

        def counting(relation, positions):
            calls.append(positions)
            return real(relation, positions)

        monkeypatch.setattr(catalog_module, "_distinct_count", counting)
        via_order = catalog.atom_prefix_count(atom, (Y, X), 1)
        via_positions = catalog.atom_prefix_count_positions(atom, [1])
        assert via_order == via_positions == 3
        assert len(calls) == 1, (
            "order-based and position-based lookups must share one entry"
        )

    def test_constants_key_separate_entries(self):
        catalog = Catalog(small_db())
        plain = Atom("R", (X, Y))
        selected = Atom("R", (Constant(1), Y))
        assert catalog.atom_prefix_count_positions(plain, [1]) == 3
        assert catalog.atom_prefix_count_positions(selected, [1]) == 2
        assert len(catalog._atom_prefix_cache) == 2


class TestFilteredCache:
    def test_filtered_relation_is_reused(self):
        catalog = Catalog(small_db())
        atom = Atom("R", (Constant(1), Y))
        first = catalog._filtered(atom)
        second = catalog._filtered(atom)
        assert first is second
        assert len(catalog._filtered_cache) == 1

    def test_statistics_share_the_filtered_relation(self):
        catalog = Catalog(small_db())
        atom = Atom("R", (Constant(2), Y))
        assert catalog.atom_cardinality(atom) == 2
        assert catalog.atom_prefix_count_positions(atom, [1]) == 1
        assert len(catalog._filtered_cache) == 1


class TestGroupStatistics:
    def test_atom_group_counts_histogram(self):
        catalog = Catalog(small_db())
        atom = Atom("R", (X, Y))
        groups = catalog.atom_group_counts(atom, (0,))
        assert dict(groups) == {(1,): 2, (2,): 2, (3,): 1}

    def test_atom_group_counts_empty_positions(self):
        catalog = Catalog(small_db())
        atom = Atom("R", (X, Y))
        assert dict(catalog.atom_group_counts(atom, ())) == {(): 5}

    def test_atom_max_group_matches_histogram(self):
        catalog = Catalog(small_db())
        atom = Atom("R", (X, Y))
        assert catalog.atom_max_group(atom, (1,)) == 3  # b=10 thrice

    def test_join_group_product_is_exact(self):
        catalog = Catalog(small_db())
        r = Atom("R", (X, Y))
        s = Atom("S", (Y, Z))
        product = catalog.join_group_product(r, (1,), s, (0,))
        # b=10: 3 rows in R, 2 in S; b=20: 1 row in R, 1 in S
        assert product == 3 * 2 + 1 * 1
        # symmetric call hits the mirrored cache entry
        assert catalog.join_group_product(s, (0,), r, (1,)) == product


# ----------------------------------------------------------------------
# Zero-cardinality semantics: empty selections end-to-end
# ----------------------------------------------------------------------


EMPTY_SELECTION = "Q(y, z) :- R:Twitter(999999, y), S:Twitter(y, z)."


class TestEmptySelection:
    def test_catalog_reports_truthful_zero(self):
        catalog = Catalog(graph_db())
        atom = Atom("Twitter", (Constant(999999), Y), alias="R")
        assert catalog.atom_cardinality(atom) == 0

    def test_empty_atoms_lists_the_empty_alias(self):
        query = parse_query(EMPTY_SELECTION)
        catalog = Catalog(graph_db())
        assert catalog.empty_atoms(query) == ("R",)

    def test_estimate_costs_short_circuits_to_trivial(self):
        query = parse_query(EMPTY_SELECTION)
        report = estimate_costs(query, Catalog(graph_db()), workers=16)
        assert report.trivial
        assert report.choice == TRIVIAL_STRATEGY
        assert {c.strategy for c in report.costs} == set(STRATEGY_NAMES)
        assert all(c.wall_clock == 0.0 for c in report.costs)

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES + (AUTO_STRATEGY,))
    def test_run_query_returns_zero_rows(self, strategy):
        result = run_query(
            EMPTY_SELECTION, graph_db(), strategy=strategy, workers=4
        )
        assert result.rows == []
        assert not result.stats.failed

    def test_explain_auto_handles_empty_selection(self):
        explanation = explain(
            EMPTY_SELECTION, graph_db(), workers=4, strategy=AUTO_STRATEGY
        )
        assert explanation.cost_report is not None
        assert explanation.cost_report.trivial
        assert explanation.strategy == TRIVIAL_STRATEGY
        assert "trivial" in explanation.render()


# ----------------------------------------------------------------------
# The cost report
# ----------------------------------------------------------------------


class TestCostReport:
    def test_all_six_strategies_priced(self):
        report = estimate_costs(TRIANGLE, Catalog(graph_db()), workers=16)
        assert {c.strategy for c in report.costs} == set(STRATEGY_NAMES)
        assert report.choice in STRATEGY_NAMES
        assert all(c.wall_clock > 0 for c in report.costs)

    def test_ranking_sorted_by_cost(self):
        report = estimate_costs(TRIANGLE, Catalog(graph_db()), workers=16)
        ranked = report.ranking()
        costs = [entry.cost for entry in ranked]
        assert costs == sorted(costs)
        assert ranked[0].strategy == report.choice

    def test_render_marks_the_choice(self):
        report = estimate_costs(TRIANGLE, Catalog(graph_db()), workers=16)
        rendered = report.render()
        assert "<- chosen" in rendered
        for name in STRATEGY_NAMES:
            assert name in rendered


# ----------------------------------------------------------------------
# The plan cache
# ----------------------------------------------------------------------


class TestPlanCache:
    def test_second_lookup_hits(self):
        db = graph_db()
        catalog = Catalog(db)
        cache = PlanCache()
        first = optimize(TRIANGLE, catalog, workers=8, cache=cache)
        second = optimize(TRIANGLE, catalog, workers=8, cache=cache)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.physical is first.physical
        assert second.report is first.report
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1

    def test_rule_rename_still_hits(self):
        renamed = parse_query(
            "Other(x, y, z) :- R:Twitter(x, y), S:Twitter(y, z), "
            "T:Twitter(z, x)."
        )
        assert normalize_query(renamed) == normalize_query(TRIANGLE)
        catalog = Catalog(graph_db())
        cache = PlanCache()
        optimize(TRIANGLE, catalog, workers=8, cache=cache)
        hit = optimize(renamed, catalog, workers=8, cache=cache)
        assert hit.cache_hit

    def test_data_mutation_changes_fingerprint_and_misses(self):
        db = graph_db()
        cache = PlanCache()
        before = Catalog(db).fingerprint()
        optimize(TRIANGLE, Catalog(db), workers=8, cache=cache)
        relation = db["Twitter"]
        rows = list(relation.rows) + [(999999, 999998)]
        db.add_rows("Twitter", relation.columns, rows)
        after = Catalog(db).fingerprint()
        assert before != after
        refreshed = optimize(TRIANGLE, Catalog(db), workers=8, cache=cache)
        assert not refreshed.cache_hit
        assert cache.misses == 2 and len(cache) == 2

    def test_cluster_shape_keys_separately(self):
        catalog = Catalog(graph_db())
        cache = PlanCache()
        optimize(TRIANGLE, catalog, workers=8, cache=cache)
        other_workers = optimize(TRIANGLE, catalog, workers=16, cache=cache)
        other_memory = optimize(
            TRIANGLE, catalog, workers=8, memory_tuples=10_000, cache=cache
        )
        assert not other_workers.cache_hit
        assert not other_memory.cache_hit
        assert len(cache) == 3

    def test_cache_none_bypasses(self):
        catalog = Catalog(graph_db())
        first = optimize(TRIANGLE, catalog, workers=8, cache=None)
        second = optimize(TRIANGLE, catalog, workers=8, cache=None)
        assert not first.cache_hit and not second.cache_hit

    def test_variable_order_override_bypasses(self):
        catalog = Catalog(graph_db())
        cache = PlanCache()
        ordered = optimize(
            TRIANGLE, catalog, workers=8, variable_order=(X, Y, Z), cache=cache
        )
        assert not ordered.cache_hit
        assert len(cache) == 0, "overridden plans must not poison the cache"

    def test_clear_resets_counters(self):
        catalog = Catalog(graph_db())
        cache = PlanCache()
        optimize(TRIANGLE, catalog, workers=8, cache=cache)
        optimize(TRIANGLE, catalog, workers=8, cache=cache)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


# ----------------------------------------------------------------------
# Auto vs. explicit: the differential the optimizer must not break
# ----------------------------------------------------------------------


class TestAutoGoldenDifferential:
    @pytest.mark.parametrize(
        "query_text",
        [
            "Q(x, y, z) :- R:Twitter(x, y), S:Twitter(y, z), "
            "T:Twitter(z, x).",
            "Q(x, y) :- R:Twitter(x, y), S:Twitter(y, x).",
        ],
    )
    def test_auto_is_bit_identical_to_chosen_strategy(self, query_text):
        db = graph_db()
        query = parse_query(query_text)
        choice = estimate_costs(query, Catalog(db), workers=8).choice
        auto = run_query(query, db, strategy=AUTO_STRATEGY, workers=8)
        explicit = run_query(query, db, strategy=choice, workers=8)
        assert auto.stats.strategy == choice
        assert auto.rows == explicit.rows
        assert auto.stats.wall_clock == explicit.stats.wall_clock
        assert auto.stats.total_cpu == explicit.stats.total_cpu
        assert auto.stats.tuples_shuffled == explicit.stats.tuples_shuffled

    def test_auto_result_carries_the_cost_report(self):
        db = graph_db()
        result = run_query(TRIANGLE, db, strategy=AUTO_STRATEGY, workers=8)
        assert result.cost_report is not None
        assert result.cost_report.choice == result.stats.strategy
