"""Integration tests: the six strategies agree and their stats make sense."""

import pytest

from repro.engine.cluster import Cluster
from repro.engine.memory import MemoryBudget
from repro.planner.executor import execute
from repro.planner.plans import ALL_STRATEGIES, HC_TJ, RS_HJ, RS_TJ, Strategy
from repro.query.parser import parse_query
from repro.storage.generators import twitter_database
from repro.storage.relation import Database

TRIANGLE = parse_query(
    "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."
)


def run(query, db, strategy, workers=5, memory=None):
    cluster = Cluster(workers, MemoryBudget(per_worker_tuples=memory))
    cluster.load(db)
    return execute(query, cluster, strategy)


@pytest.fixture(scope="module")
def twitter_db():
    return twitter_database(nodes=200, edges=900, seed=5)


class TestStrategyAgreement:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_triangle_agrees_with_reference(self, twitter_db, strategy):
        reference = set(run(TRIANGLE, twitter_db, RS_HJ).rows)
        result = run(TRIANGLE, twitter_db, strategy)
        assert not result.failed
        assert set(result.rows) == reference

    @pytest.mark.parametrize("workers", [1, 2, 3, 7, 16])
    def test_worker_count_does_not_change_results(self, twitter_db, workers):
        reference = set(run(TRIANGLE, twitter_db, RS_HJ, workers=4).rows)
        for strategy in (RS_HJ, HC_TJ):
            result = run(TRIANGLE, twitter_db, strategy, workers=workers)
            assert set(result.rows) == reference

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_projection_query_agrees(self, twitter_db, strategy):
        query = parse_query("P(x) :- R:Twitter(x,y), S:Twitter(y,x).")
        reference = set(run(query, twitter_db, RS_HJ).rows)
        result = run(query, twitter_db, strategy)
        assert set(result.rows) == reference
        # deduplicated projection
        assert len(result.rows) == len(set(result.rows))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_comparison_query_agrees(self, twitter_db, strategy):
        query = parse_query(
            "P(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), x < z."
        )
        reference = set(run(query, twitter_db, RS_HJ).rows)
        result = run(query, twitter_db, strategy)
        assert set(result.rows) == reference

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_constants_and_strings_agree(self, strategy):
        db = Database()
        db.add_encoded(
            "Name", ("id", "name"), [(1, "joe"), (2, "bob"), (3, "joe")]
        )
        db.add_rows("Act", ("id", "film"), [(1, 7), (2, 8), (3, 7), (3, 9)])
        query = parse_query('Q(f) :- Name(x, "joe"), Act(x, f).')
        result = run(query, db, strategy, workers=3)
        assert set(result.rows) == {(7,), (9,)}


class TestStatsSanity:
    def test_hypercube_shuffles_once_per_atom(self, twitter_db):
        result = run(TRIANGLE, twitter_db, HC_TJ, workers=8)
        assert len(result.stats.shuffles) == 3
        assert all(r.name.startswith("HCS") for r in result.stats.shuffles)

    def test_regular_shuffle_includes_intermediates(self, twitter_db):
        result = run(TRIANGLE, twitter_db, RS_HJ, workers=8)
        # two join steps: R+S shuffles, then intermediate + T
        assert len(result.stats.shuffles) == 4

    def test_broadcast_keeps_largest_in_place(self, twitter_db):
        result = run(TRIANGLE, twitter_db, Strategy.parse("BR_HJ"), workers=8)
        assert len(result.stats.shuffles) == 2  # only two of three copies move

    def test_wall_clock_not_more_than_cpu(self, twitter_db):
        for strategy in ALL_STRATEGIES:
            stats = run(TRIANGLE, twitter_db, strategy, workers=8).stats
            assert stats.wall_clock <= stats.total_cpu + 1e-9

    def test_result_count_matches_rows(self, twitter_db):
        result = run(TRIANGLE, twitter_db, HC_TJ, workers=8)
        assert result.stats.result_count == len(result.rows)

    def test_elapsed_seconds_recorded(self, twitter_db):
        result = run(TRIANGLE, twitter_db, RS_HJ)
        assert result.stats.elapsed_seconds > 0

    def test_hc_config_attached(self, twitter_db):
        result = run(TRIANGLE, twitter_db, HC_TJ, workers=8)
        assert result.hc_config is not None
        assert result.hc_config.workers_used <= 8


class TestFailureModes:
    def test_oom_reported_as_failure(self, twitter_db):
        result = run(TRIANGLE, twitter_db, RS_TJ, workers=2, memory=50)
        assert result.failed
        assert result.rows == []
        assert "memory" in result.stats.failure

    def test_unloaded_cluster_rejected(self, twitter_db):
        cluster = Cluster(2)
        with pytest.raises(RuntimeError):
            execute(TRIANGLE, cluster, RS_HJ)

    def test_tight_budget_fails_tj_before_hj(self, twitter_db):
        """The sort materialization makes TJ hit the budget first.

        A budget exactly equal to RS_HJ's measured peak working set admits
        the hash pipeline but not the Tributary one, whose sorted input
        copies push its peak higher (the paper's Fig. 9 failure mode).
        """
        hj_peak = max(
            run(TRIANGLE, twitter_db, RS_HJ, workers=4).stats.peak_memory.values()
        )
        hj = run(TRIANGLE, twitter_db, RS_HJ, workers=4, memory=hj_peak)
        tj = run(TRIANGLE, twitter_db, RS_TJ, workers=4, memory=hj_peak)
        assert not hj.failed
        assert tj.failed
        assert "memory" in tj.stats.failure


class TestSingleWorker:
    def test_all_strategies_degenerate_gracefully(self, twitter_db):
        reference = None
        for strategy in ALL_STRATEGIES:
            result = run(TRIANGLE, twitter_db, strategy, workers=1)
            rows = set(result.rows)
            if reference is None:
                reference = rows
            assert rows == reference


class TestPipelineDetails:
    def test_co_partitioned_intermediate_skips_reshuffle(self):
        """Two consecutive joins on the same key: the intermediate is
        already partitioned correctly and must not be re-shuffled."""
        from repro.query.parser import parse_query
        from repro.storage.relation import Database

        db = Database()
        db.add_rows("A", ("a", "b"), [(i, i % 5) for i in range(40)])
        db.add_rows("B", ("a", "b"), [(i % 5, i) for i in range(40)])
        db.add_rows("C", ("a", "b"), [(i % 5, i + 100) for i in range(40)])
        # both joins are on y: A(x,y) |> B(y,u) |> C(y,v)
        query = parse_query("Q(x,y,u,v) :- A(x,y), B(y,u), C(y,v).")
        result = run(query, db, RS_HJ, workers=4)
        names = [record.name for record in result.stats.shuffles]
        # step1 shuffles A and B; step2 only ships C (intermediate stays)
        lefts = [n for n in names if "left" in n]
        assert len(lefts) == 1, names

    def test_cartesian_step_broadcasts_disconnected_atom(self):
        from repro.query.parser import parse_query
        from repro.storage.relation import Database

        db = Database()
        db.add_rows("A", ("a", "b"), [(1, 2), (3, 4)])
        db.add_rows("B", ("a", "b"), [(7, 8)])
        query = parse_query("Q(x,y,u,v) :- A(x,y), B(u,v).")
        result = run(query, db, RS_HJ, workers=3)
        assert set(result.rows) == {(1, 2, 7, 8), (3, 4, 7, 8)}
        assert any("cartesian" in r.name for r in result.stats.shuffles)

    def test_rs_plan_override_changes_shuffle_sequence(self):
        from repro.experiments.harness import run_grid
        from repro.storage.generators import twitter_database
        from repro.workloads import Q1

        db = twitter_database(nodes=150, edges=600, seed=2)
        natural = run_grid(Q1, db, workers=3, strategies=[RS_HJ])
        forced = run_grid(
            Q1, db, workers=3, strategies=[RS_HJ], plan_order=("T", "S", "R")
        )
        assert forced["RS_HJ"].plan.order == ("T", "S", "R")
        assert set(forced["RS_HJ"].rows) == set(natural["RS_HJ"].rows)
