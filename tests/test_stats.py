"""Tests for execution statistics and the wall-clock model."""

import pytest

from repro.engine.stats import ExecutionStats, WorkerStats, skew_factor


class TestSkewFactor:
    def test_balanced_loads(self):
        assert skew_factor([10, 10, 10]) == pytest.approx(1.0)

    def test_skewed_loads(self):
        assert skew_factor([30, 10, 20]) == pytest.approx(1.5)

    def test_empty_and_zero(self):
        assert skew_factor([]) == 1.0
        assert skew_factor([0, 0]) == 1.0

    def test_single_hot_worker(self):
        assert skew_factor([100, 0, 0, 0]) == pytest.approx(4.0)


class TestCharging:
    def test_total_cpu_sums_everything(self):
        stats = ExecutionStats(workers=2)
        stats.charge(0, 10, "a")
        stats.charge(1, 20, "a")
        stats.charge(0, 5, "b")
        assert stats.total_cpu == 35

    def test_wall_clock_is_sum_of_phase_maxima(self):
        stats = ExecutionStats(workers=2)
        stats.charge(0, 10, "shuffle")
        stats.charge(1, 30, "shuffle")
        stats.charge(0, 50, "join")
        stats.charge(1, 5, "join")
        assert stats.wall_clock == 30 + 50

    def test_phase_accessors(self):
        stats = ExecutionStats(workers=2)
        stats.charge(0, 10, "a")
        stats.charge(1, 4, "a")
        assert stats.phase_wall("a") == 10
        assert stats.phase_cpu("a") == 14
        assert stats.phase_wall("missing") == 0
        assert stats.phases() == ("a",)

    def test_worker_loads_across_phases(self):
        stats = ExecutionStats(workers=2)
        stats.charge(0, 10, "a")
        stats.charge(0, 5, "b")
        assert stats.worker_loads() == {0: 15}
        assert stats.worker_loads("b") == {0: 5}

    def test_cpu_skew_counts_idle_workers(self):
        stats = ExecutionStats(workers=4)
        stats.charge(0, 100, "a")
        assert stats.cpu_skew == pytest.approx(4.0)


class TestShuffleRecords:
    def test_record_computes_skews(self):
        stats = ExecutionStats()
        record = stats.record_shuffle("test", [10, 10], [15, 5])
        assert record.tuples_sent == 20
        assert record.producer_skew == pytest.approx(1.0)
        assert record.consumer_skew == pytest.approx(1.5)

    def test_tuples_shuffled_accumulates(self):
        stats = ExecutionStats()
        stats.record_shuffle("a", [10], [10])
        stats.record_shuffle("b", [5], [5])
        assert stats.tuples_shuffled == 15

    def test_max_consumer_skew(self):
        stats = ExecutionStats()
        stats.record_shuffle("a", [10], [10, 0])
        stats.record_shuffle("b", [9], [3, 3, 3])
        assert stats.max_consumer_skew == pytest.approx(2.0)

    def test_max_consumer_skew_defaults_to_one(self):
        assert ExecutionStats().max_consumer_skew == 1.0


class TestFailureAndMemory:
    def test_mark_failed(self):
        stats = ExecutionStats()
        stats.mark_failed("out of memory")
        assert stats.failed
        assert "memory" in stats.failure

    def test_memory_high_water(self):
        stats = ExecutionStats()
        stats.record_memory(0, 100)
        stats.record_memory(0, 50)
        stats.record_memory(0, 120)
        assert stats.peak_memory[0] == 120

    def test_summary_mentions_failure(self):
        stats = ExecutionStats(query="Q1", strategy="RS_TJ")
        stats.mark_failed("boom")
        assert "FAIL" in stats.summary()


class TestWorkerLedger:
    def test_charges_accumulate_per_phase(self):
        ledger = WorkerStats(worker=2)
        ledger.charge(2, 10, "a")
        ledger.charge(2, 5, "a")
        ledger.charge(2, 1, "b")
        assert ledger.phase_loads == {"a": 15.0, "b": 1.0}

    def test_record_memory_keeps_high_water(self):
        ledger = WorkerStats(worker=0)
        ledger.record_memory(0, 40)
        ledger.record_memory(0, 10)
        assert ledger.peak_memory == 40

    def test_wrong_worker_rejected(self):
        ledger = WorkerStats(worker=1)
        with pytest.raises(ValueError):
            ledger.charge(0, 1, "a")
        with pytest.raises(ValueError):
            ledger.record_memory(3, 1)

    def test_merge_equals_direct_charging(self):
        """Charging through ledgers + merge must be indistinguishable from
        charging the shared stats directly."""
        direct = ExecutionStats(workers=3)
        merged = ExecutionStats(workers=3)
        for worker in range(3):
            direct.charge(worker, 10.0 * worker, "join")
            direct.charge(worker, 2.0, "filter")
            direct.record_memory(worker, 7 * worker)

            ledger = WorkerStats(worker)
            ledger.charge(worker, 10.0 * worker, "join")
            ledger.charge(worker, 2.0, "filter")
            ledger.record_memory(worker, 7 * worker)
            merged.merge_worker(ledger)
        assert merged.phases() == direct.phases()
        assert merged.worker_loads() == direct.worker_loads()
        assert merged.peak_memory == direct.peak_memory
        assert merged.total_cpu == direct.total_cpu
        assert merged.wall_clock == direct.wall_clock

    def test_merge_keeps_existing_peak(self):
        stats = ExecutionStats()
        stats.record_memory(0, 100)
        ledger = WorkerStats(0)
        ledger.record_memory(0, 60)
        stats.merge_worker(ledger)
        assert stats.peak_memory[0] == 100
