"""Tests for the simulated cluster."""

import pytest

from repro.engine.cluster import Cluster
from repro.storage.relation import Database


def make_db(rows=10):
    db = Database()
    db.add_rows("R", ("a", "b"), [(i, i + 1) for i in range(rows)])
    return db


class TestCluster:
    def test_round_robin_partitioning(self):
        cluster = Cluster(3)
        cluster.load(make_db(10))
        fragments = cluster.fragments("R")
        assert [len(f) for f in fragments] == [4, 3, 3]
        assert fragments[0][0] == (0, 1)
        assert fragments[1][0] == (1, 2)

    def test_fragments_cover_relation(self):
        cluster = Cluster(4)
        db = make_db(17)
        cluster.load(db)
        combined = [row for fragment in cluster.fragments("R") for row in fragment]
        assert sorted(combined) == sorted(db["R"].rows)

    def test_fragment_relation_view(self):
        cluster = Cluster(2)
        cluster.load(make_db(4))
        fragment = cluster.fragment_relation("R", 1)
        assert fragment.columns == ("a", "b")
        assert fragment.rows == [(1, 2), (3, 4)]

    def test_unknown_relation(self):
        cluster = Cluster(2)
        cluster.load(make_db())
        with pytest.raises(KeyError, match="not loaded"):
            cluster.fragments("missing")

    def test_requires_at_least_one_worker(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_encoder_requires_loaded_database(self):
        cluster = Cluster(2)
        with pytest.raises(RuntimeError):
            cluster.encoder()

    def test_reload_replaces_fragments(self):
        cluster = Cluster(2)
        cluster.load(make_db(4))
        cluster.load(make_db(6))
        assert sum(len(f) for f in cluster.fragments("R")) == 6

    def test_single_worker_holds_everything(self):
        cluster = Cluster(1)
        cluster.load(make_db(5))
        assert len(cluster.fragments("R")[0]) == 5
