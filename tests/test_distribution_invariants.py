"""Property tests of the core distribution theorem.

The HyperCube shuffle's correctness rests on: evaluating the query locally
on every worker's fragment and unioning the results equals evaluating the
query sequentially on the whole database — for any hash seed, any worker
count, and any integral configuration.  These tests drive that invariant
with random data through the real executor.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import Cluster
from repro.planner.executor import execute
from repro.planner.plans import HC_HJ, HC_TJ
from repro.hypercube.config import config_from_sizes
from repro.leapfrog.tributary import tributary_join
from repro.query.parser import parse_query
from repro.storage.relation import Database

TRIANGLE = parse_query("T(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")
PATH = parse_query("P(x,y,z) :- R:E(x,y), S:E(y,z).")

edges = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=50
)


def run_hc(query, db, workers, seed, strategy=HC_TJ, config=None):
    cluster = Cluster(workers)
    cluster.load(db)
    return execute(query, cluster, strategy, hc_config=config, hc_seed=seed)


def db_of(rows):
    db = Database()
    db.add_rows("E", ("a", "b"), dict.fromkeys(rows))
    return db


@given(edges, st.integers(1, 10), st.integers(0, 3))
@settings(max_examples=50, deadline=None)
def test_hypercube_tj_equals_sequential_tj(rows, workers, seed):
    db = db_of(rows)
    sequential = set(
        tributary_join(TRIANGLE, {a.alias: db["E"] for a in TRIANGLE.atoms})
    )
    distributed = run_hc(TRIANGLE, db, workers, seed)
    assert not distributed.failed
    assert set(distributed.rows) == sequential


@given(edges, st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_explicit_configs_all_give_same_result(rows, seed):
    db = db_of(rows)
    reference = None
    for sizes in ((1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2), (1, 3, 2)):
        config = config_from_sizes(TRIANGLE, sizes)
        result = run_hc(
            TRIANGLE, db, config.workers_used, seed, config=config
        )
        rows_set = set(result.rows)
        if reference is None:
            reference = rows_set
        assert rows_set == reference, f"config {sizes} diverged"


@given(edges, st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_hc_hash_join_agrees_with_hc_tributary(rows, workers):
    db = db_of(rows)
    hj = run_hc(PATH, db, workers, seed=0, strategy=HC_HJ)
    tj = run_hc(PATH, db, workers, seed=0, strategy=HC_TJ)
    assert set(hj.rows) == set(tj.rows)


@given(edges)
@settings(max_examples=25, deadline=None)
def test_full_query_results_are_produced_exactly_once(rows):
    """Each full binding fixes every cube coordinate, so no worker pair
    ever produces the same output tuple — the union needs no dedup."""
    db = db_of(rows)
    cluster = Cluster(8)
    cluster.load(db)
    result = execute(TRIANGLE, cluster, HC_TJ)
    assert len(result.rows) == len(set(result.rows))
