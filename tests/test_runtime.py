"""Unit tests for the pluggable worker runtimes and their ledger merge."""

import pytest

from repro.engine.memory import MemoryBudget, OutOfMemoryError
from repro.engine.runtime import (
    ParallelRuntime,
    ProcessRuntime,
    SerialRuntime,
    WorkerRuntime,
    resolve_runtime,
)
from repro.engine.stats import ExecutionStats

RUNTIMES = [
    SerialRuntime(),
    ParallelRuntime(max_workers=3),
    ProcessRuntime(processes=2),
]
RUNTIME_IDS = ["serial", "parallel", "process"]


class TestResolveRuntime:
    def test_none_is_serial(self):
        assert isinstance(resolve_runtime(None), SerialRuntime)

    def test_serial_spelling(self):
        assert isinstance(resolve_runtime("serial"), SerialRuntime)

    def test_parallel_spelling(self):
        runtime = resolve_runtime("parallel")
        assert isinstance(runtime, ParallelRuntime)
        assert runtime.max_workers is None

    def test_parallel_with_pool_size(self):
        runtime = resolve_runtime("parallel:3")
        assert isinstance(runtime, ParallelRuntime)
        assert runtime.max_workers == 3

    def test_instance_passes_through(self):
        runtime = ParallelRuntime(max_workers=2)
        assert resolve_runtime(runtime) is runtime

    def test_process_spelling(self):
        runtime = resolve_runtime("parallel:proc")
        assert isinstance(runtime, ProcessRuntime)
        assert runtime.processes is None

    def test_process_with_pool_size(self):
        runtime = resolve_runtime("parallel:4:proc")
        assert isinstance(runtime, ProcessRuntime)
        assert runtime.processes == 4

    @pytest.mark.parametrize(
        "bad",
        ["threads", "parallel:x", "parallel:", "parallel:proc:4",
         "parallel:x:proc", "parallel::proc", "proc"],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_runtime(bad)

    def test_zero_pool_rejected(self):
        with pytest.raises(ValueError):
            ParallelRuntime(max_workers=0)

    def test_zero_process_pool_rejected(self):
        with pytest.raises(ValueError):
            ProcessRuntime(processes=0)


@pytest.mark.parametrize("runtime", RUNTIMES, ids=RUNTIME_IDS)
class TestMapWorkers:
    def test_values_in_worker_order(self, runtime):
        stats = ExecutionStats(workers=4)
        memory = MemoryBudget()
        values = runtime.map_workers(
            range(4), lambda w, ledger: w * 10, stats, memory
        )
        assert values == [0, 10, 20, 30]

    def test_charges_merge_into_shared_stats(self, runtime):
        stats = ExecutionStats(workers=3)
        memory = MemoryBudget()

        def task(worker, ledger):
            ledger.stats.charge(worker, 5.0 * (worker + 1), "join")
            ledger.stats.charge(worker, 1.0, "filter")

        runtime.map_workers(range(3), task, stats, memory)
        assert stats.worker_loads("join") == {0: 5.0, 1: 10.0, 2: 15.0}
        assert stats.worker_loads("filter") == {0: 1.0, 1: 1.0, 2: 1.0}
        assert stats.total_cpu == 33.0
        assert stats.wall_clock == 16.0  # max(join)=15 + max(filter)=1

    def test_memory_commits_back_to_budget(self, runtime):
        stats = ExecutionStats(workers=2)
        memory = MemoryBudget()
        memory.allocate(0, 100, "scan")
        memory.allocate(1, 100, "scan")

        def task(worker, ledger):
            ledger.memory.allocate(worker, 50, "join")
            ledger.stats.record_memory(worker, ledger.memory.resident(worker))
            ledger.memory.release(worker, 120)  # consumed inputs + scratch

        runtime.map_workers(range(2), task, stats, memory)
        for worker in range(2):
            assert memory.resident(worker) == 30
            assert memory.peak(worker) == 150
            assert stats.peak_memory[worker] == 150

    def test_empty_worker_set(self, runtime):
        stats = ExecutionStats()
        assert runtime.map_workers(
            [], lambda worker, ledger: worker, stats, MemoryBudget()
        ) == []

    def test_ledger_isolated_until_commit(self, runtime):
        """Operators inside a task never touch the shared budget directly.

        The observation is returned from the task (not written to a shared
        dict) so the same assertion holds under forked workers, whose
        side effects never reach the parent."""
        stats = ExecutionStats(workers=2)
        memory = MemoryBudget()

        def task(worker, ledger):
            ledger.memory.allocate(worker, 10, "join")
            # the shared budget must not see the allocation mid-task
            return memory.resident(worker)

        observed = runtime.map_workers(range(2), task, stats, memory)
        assert observed == [0, 0]
        assert memory.resident(0) == 10 and memory.resident(1) == 10

    def test_oom_raised_for_lowest_failing_worker(self, runtime):
        """Workers 1 and 3 both exceed the budget; the error and the merged
        state must match a serial execution stopping at worker 1."""
        stats = ExecutionStats(workers=4)
        memory = MemoryBudget(per_worker_tuples=100)

        def task(worker, ledger):
            ledger.stats.charge(worker, 7.0, "join")
            tuples = 200 if worker in (1, 3) else 10
            ledger.memory.allocate(worker, tuples, "join")

        with pytest.raises(OutOfMemoryError) as excinfo:
            runtime.map_workers(range(4), task, stats, memory)
        assert excinfo.value.worker == 1
        # workers 0 and 1 committed (1 partially); 2 and 3 discarded
        assert stats.worker_loads("join") == {0: 7.0, 1: 7.0}
        assert memory.resident(0) == 10
        assert memory.resident(2) == 0 and memory.resident(3) == 0


class TestSerialParallelEquivalence:
    def test_identical_merged_state(self):
        def task(worker, ledger):
            ledger.stats.charge(worker, 2.5 * worker, "a")
            ledger.stats.charge(worker, 1.0, "b")
            ledger.memory.allocate(worker, worker + 1, "a")
            ledger.stats.record_memory(worker, ledger.memory.resident(worker))
            return worker * worker

        results = {}
        for runtime in (SerialRuntime(), ParallelRuntime(max_workers=4)):
            stats = ExecutionStats(workers=8)
            memory = MemoryBudget()
            values = runtime.map_workers(range(8), task, stats, memory)
            results[runtime.name] = (
                values,
                stats.phases(),
                stats.worker_loads(),
                stats.peak_memory,
                [memory.resident(w) for w in range(8)],
            )
        assert results["serial"] == results["parallel"]

    def test_contract_is_abstract(self):
        with pytest.raises(NotImplementedError):
            WorkerRuntime().map_workers(
                range(1), lambda worker, ledger: worker,
                ExecutionStats(), MemoryBudget(),
            )


class TestProcessRuntime:
    """Process-specific behavior beyond the shared map_workers battery.

    The shared battery above already pins that forked execution merges
    ledgers, values, and OOM failures identically to serial — including
    :class:`OutOfMemoryError` crossing a real worker pipe.  These tests
    cover the process-only surface."""

    def test_merged_state_matches_serial(self):
        def task(worker, ledger):
            ledger.stats.charge(worker, 2.5 * worker, "a")
            ledger.stats.charge(worker, 1.0, "b")
            ledger.memory.allocate(worker, worker + 1, "a")
            ledger.stats.record_memory(worker, ledger.memory.resident(worker))
            return worker * worker

        results = {}
        for runtime in (SerialRuntime(), ProcessRuntime(processes=3)):
            stats = ExecutionStats(workers=8)
            memory = MemoryBudget()
            values = runtime.map_workers(range(8), task, stats, memory)
            results[runtime.name] = (
                values,
                stats.phases(),
                stats.worker_loads(),
                stats.peak_memory,
                [memory.resident(w) for w in range(8)],
            )
        assert results["serial"] == results["process"]

    def test_fault_safe_degrades_to_threads(self):
        """Fault sessions hold driver-side mutable state a forked worker
        cannot observe; the scheduler swaps in the thread runtime."""
        runtime = ProcessRuntime(processes=4)
        safe = runtime.fault_safe()
        assert isinstance(safe, ParallelRuntime)
        assert safe.max_workers == 4

    def test_fault_safe_is_identity_elsewhere(self):
        for runtime in (SerialRuntime(), ParallelRuntime(max_workers=2)):
            assert runtime.fault_safe() is runtime

    def test_oom_error_survives_pickling(self):
        import pickle

        error = OutOfMemoryError(3, "join", 150, 100)
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.worker, clone.phase, clone.resident, clone.budget) == (
            3, "join", 150, 100,
        )
        assert str(clone) == str(error)

    def test_repr_names_pool_size(self):
        assert "4" in repr(ProcessRuntime(processes=4))
