"""Tests for the symmetric hash join and comparison filters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.frame import Frame
from repro.engine.hash_join import (
    apply_comparisons,
    join_output_variables,
    symmetric_hash_join,
)
from repro.engine.memory import MemoryBudget, OutOfMemoryError
from repro.engine.stats import ExecutionStats
from repro.query.atoms import Comparison, Constant, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

pairs = st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=40)


def test_join_output_variables_order():
    assert join_output_variables((X, Y), (Y, Z)) == (X, Y, Z)
    assert join_output_variables((X,), (Y,)) == (X, Y)


class TestSymmetricHashJoin:
    def _join(self, left_rows, right_rows, memory=None):
        stats = ExecutionStats()
        out = symmetric_hash_join(
            Frame((X, Y), left_rows),
            Frame((Y, Z), right_rows),
            [Y],
            worker=0,
            stats=stats,
            phase="join",
            memory=memory,
        )
        return out, stats

    def test_simple_join(self):
        out, _ = self._join([(1, 2)], [(2, 3)])
        assert out.variables == (X, Y, Z)
        assert out.rows == [(1, 2, 3)]

    def test_no_matches(self):
        out, _ = self._join([(1, 2)], [(9, 3)])
        assert out.rows == []

    @given(pairs, pairs)
    @settings(max_examples=60)
    def test_matches_nested_loop(self, left, right):
        out, _ = self._join(left, right)
        expected = sorted(
            (x, y, z) for (x, y) in left for (y2, z) in right if y == y2
        )
        assert sorted(out.rows) == expected

    def test_cross_product_on_empty_key(self):
        stats = ExecutionStats()
        out = symmetric_hash_join(
            Frame((X,), [(1,), (2,)]),
            Frame((Y,), [(7,), (8,)]),
            [],
            0,
            stats,
            "join",
        )
        assert sorted(out.rows) == [(1, 7), (1, 8), (2, 7), (2, 8)]

    def test_multi_variable_key(self):
        stats = ExecutionStats()
        out = symmetric_hash_join(
            Frame((X, Y), [(1, 2), (1, 3)]),
            Frame((X, Y, Z), [(1, 2, 9)]),
            [X, Y],
            0,
            stats,
            "join",
        )
        assert out.rows == [(1, 2, 9)]

    def test_work_charged(self):
        _, stats = self._join([(1, 2)] * 10, [(2, 3)] * 5)
        assert stats.phase_cpu("join") >= 2 * 15 + 50

    def test_memory_accounting_charges_output(self):
        memory = MemoryBudget(per_worker_tuples=10)
        with pytest.raises(OutOfMemoryError):
            # 4 x 4 matching rows -> 16 output tuples > budget of 10
            self._join([(1, 2)] * 4, [(2, 3)] * 4, memory=memory)

    def test_inputs_alone_do_not_charge_memory(self):
        memory = MemoryBudget(per_worker_tuples=10)
        # 20 input rows but no matches -> no output, no allocation
        out, _ = self._join([(1, 2)] * 10, [(9, 3)] * 10, memory=memory)
        assert out.rows == []


class TestApplyComparisons:
    def test_ready_comparison_filters(self):
        frame = Frame((X, Y), [(1, 2), (3, 2)])
        stats = ExecutionStats()
        out, deferred = apply_comparisons(
            frame, [Comparison(X, "<", Y)], 0, stats, "f"
        )
        assert out.rows == [(1, 2)]
        assert deferred == []

    def test_unready_comparison_deferred(self):
        frame = Frame((X,), [(1,)])
        comparison = Comparison(X, "<", Z)
        out, deferred = apply_comparisons(
            frame, [comparison], 0, ExecutionStats(), "f"
        )
        assert out.rows == [(1,)]
        assert deferred == [comparison]

    def test_constant_comparison(self):
        frame = Frame((X,), [(1,), (5,)])
        out, _ = apply_comparisons(
            frame, [Comparison(X, ">=", Constant(5))], 0, ExecutionStats(), "f"
        )
        assert out.rows == [(5,)]

    def test_no_comparisons_no_charge(self):
        frame = Frame((X,), [(1,)])
        stats = ExecutionStats()
        out, deferred = apply_comparisons(frame, [], 0, stats, "f")
        assert out is frame
        assert stats.total_cpu == 0

    def test_mixed_ready_and_deferred(self):
        frame = Frame((X, Y), [(1, 2), (2, 1)])
        ready = Comparison(X, "<", Y)
        later = Comparison(Y, "<", Z)
        out, deferred = apply_comparisons(
            frame, [ready, later], 0, ExecutionStats(), "f"
        )
        assert out.rows == [(1, 2)]
        assert deferred == [later]
