"""Unit tests for the shared-memory row transport of the process runtime."""

import pytest

from repro.engine.memory import MemoryBudget
from repro.engine.runtime import ProcessRuntime
from repro.engine.shm import SHARED_MIN_ROWS, share_rows
from repro.engine.stats import ExecutionStats


def _rows(count, width=3):
    return [tuple(i * width + j for j in range(width)) for i in range(count)]


class TestShareRows:
    def test_round_trip_preserves_rows_and_order(self):
        rows = _rows(SHARED_MIN_ROWS)
        handle = share_rows(rows)
        assert handle is not None
        assert (handle.count, handle.width) == (len(rows), 3)
        assert handle.load() == rows

    def test_segment_released_after_load(self):
        from multiprocessing import shared_memory

        handle = share_rows(_rows(SHARED_MIN_ROWS))
        handle.load()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)

    def test_small_blocks_decline(self):
        assert share_rows(_rows(SHARED_MIN_ROWS - 1)) is None
        assert share_rows([]) is None

    def test_ragged_rows_decline(self):
        rows = _rows(SHARED_MIN_ROWS)
        rows[100] = (1,)  # width mismatch: keep the pickle path
        assert share_rows(rows) is None

    def test_non_integer_rows_decline(self):
        rows = _rows(SHARED_MIN_ROWS)
        rows[0] = ("a", "b", "c")
        assert share_rows(rows) is None

    def test_zero_width_rows_round_trip(self):
        rows = [()] * SHARED_MIN_ROWS
        handle = share_rows(rows)
        assert handle is not None
        assert handle.load() == rows


class TestTransportThroughRuntime:
    """Large row blocks returned by forked workers arrive intact."""

    def test_large_row_block_returns_through_shared_memory(self):
        expected = {w: _rows(SHARED_MIN_ROWS + w) for w in range(3)}

        def task(worker, ledger):
            return _rows(SHARED_MIN_ROWS + worker)

        runtime = ProcessRuntime(processes=2)
        values = runtime.map_workers(
            range(3), task, ExecutionStats(workers=3), MemoryBudget()
        )
        assert values == [expected[w] for w in range(3)]

    def test_no_segments_leak(self):
        import os

        def task(worker, ledger):
            return _rows(SHARED_MIN_ROWS)

        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
        ProcessRuntime(processes=2).map_workers(
            range(2), task, ExecutionStats(workers=2), MemoryBudget()
        )
        if os.path.isdir("/dev/shm"):
            leaked = {
                n for n in set(os.listdir("/dev/shm")) - before
                if n.startswith("psm_")
            }
            assert leaked == set()
