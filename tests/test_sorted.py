"""Tests for sorted relations, including property-based cursor laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.relation import Relation
from repro.storage.sorted import SortedRelation, _sort_cost

rows_strategy = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60
)


def make_sorted(rows, order=(0, 1)):
    return SortedRelation(Relation("R", ("a", "b"), rows), order)


class TestConstruction:
    def test_rows_are_sorted_lexicographically(self):
        sr = make_sorted([(3, 1), (1, 2), (1, 1), (2, 9)])
        assert sr.rows == [(1, 1), (1, 2), (2, 9), (3, 1)]

    def test_order_permutes_columns(self):
        sr = make_sorted([(1, 2), (3, 0)], order=(1, 0))
        assert sr.rows == [(0, 3), (2, 1)]
        assert sr.columns == ("b", "a")

    def test_keep_rest_appends_unnamed_columns(self):
        relation = Relation("R", ("a", "b", "c"), [(1, 2, 3)])
        sr = SortedRelation(relation, (2,))
        assert sr.columns == ("c", "a", "b")
        assert sr.rows == [(3, 1, 2)]

    def test_keep_rest_false_drops_columns(self):
        relation = Relation("R", ("a", "b", "c"), [(1, 2, 3)])
        sr = SortedRelation(relation, (2, 0), keep_rest=False)
        assert sr.columns == ("c", "a")
        assert sr.rows == [(3, 1)]

    def test_duplicate_order_positions_rejected(self):
        with pytest.raises(ValueError):
            make_sorted([], order=(0, 0))

    def test_out_of_range_position_rejected(self):
        with pytest.raises(ValueError):
            make_sorted([], order=(5,))

    def test_sort_cost_monotone(self):
        assert _sort_cost(0) == 0
        assert _sort_cost(1) == 1
        assert _sort_cost(100) > _sort_cost(10) > 0


class TestBounds:
    def test_lower_bound_finds_first_geq(self):
        sr = make_sorted([(1, 0), (3, 0), (3, 1), (5, 0)])
        assert sr.lower_bound(0, 3, 0, 4) == 1
        assert sr.lower_bound(0, 4, 0, 4) == 3
        assert sr.lower_bound(0, 9, 0, 4) == 4

    def test_upper_bound_finds_first_greater(self):
        sr = make_sorted([(1, 0), (3, 0), (3, 1), (5, 0)])
        assert sr.upper_bound(0, 3, 0, 4) == 3
        assert sr.upper_bound(0, 0, 0, 4) == 0

    def test_value_range(self):
        sr = make_sorted([(1, 0), (3, 0), (3, 1), (5, 0)])
        assert sr.value_range(0, 3, 0, 4) == (1, 3)
        assert sr.value_range(0, 2, 0, 4) == (1, 1)

    def test_second_level_bounds_within_prefix_block(self):
        sr = make_sorted([(1, 5), (1, 7), (1, 9), (2, 1)])
        lo, hi = sr.value_range(0, 1, 0, 4)
        assert (lo, hi) == (0, 3)
        assert sr.lower_bound(1, 7, lo, hi) == 1
        assert sr.upper_bound(1, 7, lo, hi) == 2

    @given(rows_strategy, st.integers(0, 21))
    @settings(max_examples=80)
    def test_lower_bound_postcondition(self, rows, value):
        sr = make_sorted(rows)
        index = sr.lower_bound(0, value, 0, len(sr.rows))
        for row in sr.rows[:index]:
            assert row[0] < value
        for row in sr.rows[index:]:
            assert row[0] >= value

    @given(rows_strategy, st.integers(0, 21))
    @settings(max_examples=80)
    def test_upper_bound_postcondition(self, rows, value):
        sr = make_sorted(rows)
        index = sr.upper_bound(0, value, 0, len(sr.rows))
        for row in sr.rows[:index]:
            assert row[0] <= value
        for row in sr.rows[index:]:
            assert row[0] > value


class TestDistinctPrefixes:
    def test_counts(self):
        sr = make_sorted([(1, 1), (1, 2), (2, 1), (2, 1)])
        assert sr.distinct_prefix_count(0) == 1
        assert sr.distinct_prefix_count(1) == 2
        assert sr.distinct_prefix_count(2) == 3

    def test_empty_relation(self):
        sr = make_sorted([])
        assert sr.distinct_prefix_count(0) == 0
        assert sr.distinct_prefix_count(1) == 0

    def test_length_beyond_arity_rejected(self):
        with pytest.raises(ValueError):
            make_sorted([(1, 2)]).distinct_prefix_count(3)

    @given(rows_strategy)
    @settings(max_examples=60)
    def test_matches_set_semantics(self, rows):
        sr = make_sorted(rows)
        expected = len({row[:1] for row in sr.rows})
        assert sr.distinct_prefix_count(1) == expected
        expected2 = len(set(sr.rows))
        assert sr.distinct_prefix_count(2) == expected2
