"""Golden correctness: workload queries vs a naive in-memory evaluator.

A completely independent reference implementation (nested-loop evaluation
of the Datalog rule over the raw relations) cross-checks the entire
distributed stack on the paper's actual queries at unit scale.
"""

import pytest

from repro.engine.cluster import Cluster
from repro.planner.executor import execute
from repro.planner.plans import HC_TJ, RS_HJ
from repro.query.atoms import Constant
from repro.workloads import get_workload


def naive_evaluate(query, database):
    """Nested-loop Datalog evaluation; exponential, for tiny data only."""
    bindings = [{}]
    for atom in query.atoms:
        relation = database[atom.relation]
        new_bindings = []
        for binding in bindings:
            for row in relation.rows:
                extended = dict(binding)
                ok = True
                for position, term in enumerate(atom.terms):
                    value = row[position]
                    if isinstance(term, Constant):
                        if value != database.encode(term.value):
                            ok = False
                            break
                    else:
                        if term in extended and extended[term] != value:
                            ok = False
                            break
                        extended[term] = value
                if ok:
                    new_bindings.append(extended)
        bindings = new_bindings
    results = set()
    for binding in bindings:
        if all(c.evaluate(binding) for c in query.comparisons):
            results.add(tuple(binding[v] for v in query.head))
    return results


@pytest.mark.parametrize("name", ["Q1", "Q7"])
def test_workload_queries_match_naive_evaluation(name):
    workload = get_workload(name)
    # shrink further: naive evaluation is exponential in the atom count
    if name == "Q1":
        from repro.storage.generators import twitter_database

        db = twitter_database(nodes=60, edges=220, seed=1)
    else:
        from repro.storage.generators import FreebaseConfig, freebase_database

        db = freebase_database(
            FreebaseConfig(
                actors=40, films=25, performances=120, directors=8,
                filler_objects=100, honors=60, awards=4,
            )
        )
    expected = naive_evaluate(workload.query, db)

    for strategy in (RS_HJ, HC_TJ):
        cluster = Cluster(3)
        cluster.load(db)
        result = execute(workload.query, cluster, strategy)
        assert set(result.rows) == expected, f"{name}/{strategy.name}"


def test_naive_evaluator_sanity():
    """The reference itself is checked on a hand-computable instance."""
    from repro.query.parser import parse_query
    from repro.storage.relation import Database

    db = Database()
    db.add_rows("E", ("a", "b"), [(0, 1), (1, 2), (2, 0), (0, 2)])
    query = parse_query("T(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")
    assert naive_evaluate(query, db) == {(0, 1, 2), (1, 2, 0), (2, 0, 1)}
