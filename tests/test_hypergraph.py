"""Tests for hypergraph theory: GYO, join trees, edge cover LPs, share LPs."""

import math

import pytest

from repro.query.hypergraph import Hypergraph, join_tree, uniform_cardinalities
from repro.query.parser import parse_query

TRIANGLE = parse_query("T(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")
PATH = parse_query("P(x,z) :- R(x,y), S(y,z).")
CLIQUE4 = parse_query(
    "C(x,y,z,p) :- R:E(x,y), S:E(y,z), T:E(z,p), P:E(p,x), K:E(x,z), L:E(y,p)."
)
STAR = parse_query("Q(a) :- HA(h, aw), HC(h, a), HY(h, y).")


class TestGYO:
    def test_triangle_is_cyclic(self):
        assert Hypergraph(TRIANGLE).is_cyclic()

    def test_path_is_acyclic(self):
        assert Hypergraph(PATH).is_acyclic()

    def test_star_is_acyclic(self):
        assert Hypergraph(STAR).is_acyclic()

    def test_clique_is_cyclic(self):
        assert Hypergraph(CLIQUE4).is_cyclic()

    def test_rectangle_is_cyclic(self):
        rect = parse_query("Q(x,y,z,p) :- R:E(x,y), S:E(y,z), T:E(z,p), K:E(p,x).")
        assert Hypergraph(rect).is_cyclic()

    def test_single_atom_is_acyclic(self):
        single = parse_query("Q(x,y) :- R(x,y).")
        result = Hypergraph(single).gyo_reduction()
        assert result.acyclic
        assert result.root == "R"

    def test_join_tree_structure_of_chain(self):
        chain = parse_query("Q(a) :- R(x,y), S(y,z), T(z,a).")
        tree = join_tree(chain)
        assert tree.acyclic
        # root holds the others directly or transitively
        aliases = {"R", "S", "T"}
        assert set(tree.parents) == aliases
        assert sum(1 for parent in tree.parents.values() if parent is None) == 1

    def test_join_tree_raises_on_cyclic(self):
        with pytest.raises(ValueError):
            join_tree(TRIANGLE)

    def test_removal_order_lists_non_roots(self):
        tree = join_tree(STAR)
        assert set(tree.removal_order) | {tree.root} == {"HA", "HC", "HY"}

    def test_children_inverse_of_parents(self):
        tree = join_tree(STAR)
        for child in tree.removal_order:
            parent = tree.parents[child]
            assert child in tree.children(parent)

    def test_q3_shape_is_acyclic_and_q4_cyclic(self):
        from repro.workloads import Q3, Q4

        assert Hypergraph(Q3).is_acyclic()
        assert Hypergraph(Q4).is_cyclic()


class TestEdgeCover:
    def test_triangle_agm_bound(self):
        m = 10_000
        bound = Hypergraph(TRIANGLE).agm_bound(uniform_cardinalities(TRIANGLE, m))
        assert bound == pytest.approx(m**1.5, rel=1e-6)

    def test_path_agm_bound_is_product(self):
        m = 1000
        bound = Hypergraph(PATH).agm_bound(uniform_cardinalities(PATH, m))
        assert bound == pytest.approx(m**2, rel=1e-6)

    def test_cover_weights_cover_every_vertex(self):
        hg = Hypergraph(CLIQUE4)
        cover = hg.fractional_edge_cover(uniform_cardinalities(CLIQUE4, 500))
        for vertex in hg.vertices:
            weight = sum(
                cover[edge.alias] for edge in hg.edges if vertex in edge.variables
            )
            assert weight >= 1 - 1e-6

    def test_clique4_agm_bound_is_m_squared(self):
        # the 4-clique with 6 edges has fractional cover number 2
        m = 1000
        bound = Hypergraph(CLIQUE4).agm_bound(uniform_cardinalities(CLIQUE4, m))
        assert bound == pytest.approx(m**2, rel=1e-4)


class TestShareLP:
    def test_triangle_equal_sizes_gives_cube_root_shares(self):
        hg = Hypergraph(TRIANGLE)
        shares = hg.fractional_shares(uniform_cardinalities(TRIANGLE, 10**6), 64)
        for share in shares.values():
            assert share == pytest.approx(4.0, rel=1e-3)

    def test_skewed_sizes_push_shares_to_shared_variable(self):
        # paper Sec. 2.1: |S1| << |S2| = |S3| -> p1 = p2 = 1, p3 = p
        # (hash-partition S2, S3 on their shared variable, broadcast S1)
        query = parse_query("Q(x1,x2,x3) :- S1(x1,x2), S2(x2,x3), S3(x3,x1).")
        hg = Hypergraph(query)
        cards = {"S1": 10, "S2": 10**6, "S3": 10**6}
        shares = hg.fractional_shares(cards, 64)
        from repro.query.atoms import Variable

        assert shares[Variable("x3")] == pytest.approx(64.0, rel=1e-2)
        assert shares[Variable("x1")] == pytest.approx(1.0, abs=1e-2)
        assert shares[Variable("x2")] == pytest.approx(1.0, abs=1e-2)

    def test_share_product_equals_server_count(self):
        hg = Hypergraph(TRIANGLE)
        shares = hg.fractional_shares(uniform_cardinalities(TRIANGLE, 1000), 63)
        product = math.prod(shares.values())
        assert product == pytest.approx(63.0, rel=1e-3)

    def test_single_server_all_shares_one(self):
        hg = Hypergraph(TRIANGLE)
        shares = hg.fractional_shares(uniform_cardinalities(TRIANGLE, 1000), 1)
        assert all(s == 1.0 for s in shares.values())

    def test_invalid_server_count(self):
        hg = Hypergraph(TRIANGLE)
        with pytest.raises(ValueError):
            hg.fractional_share_exponents(uniform_cardinalities(TRIANGLE, 10), 0)
