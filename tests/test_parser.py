"""Unit tests for the Datalog parser."""

import pytest

from repro.query.atoms import Constant, Variable
from repro.query.parser import ParseError, parse_query


def test_simple_rule():
    query = parse_query("Q(x, y) :- R(x, y).")
    assert query.name == "Q"
    assert query.head == (Variable("x"), Variable("y"))
    assert len(query.atoms) == 1
    assert query.atoms[0].relation == "R"


def test_trailing_dot_optional():
    assert parse_query("Q(x) :- R(x, y)").name == "Q"


def test_alias_prefix():
    query = parse_query("T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x).")
    assert [a.alias for a in query.atoms] == ["R", "S", "T"]
    assert {a.relation for a in query.atoms} == {"Twitter"}


def test_string_constant():
    query = parse_query('Q(p) :- Name(a, "Joe Pesci"), Act(a, p).')
    assert query.atoms[0].terms[1] == Constant("Joe Pesci")


def test_integer_constants_including_negative():
    query = parse_query("Q(x) :- R(x, 42), S(x, -7).")
    assert query.atoms[0].terms[1] == Constant(42)
    assert query.atoms[1].terms[1] == Constant(-7)


def test_comparisons():
    query = parse_query("Q(x, y) :- R(x, y), x < y, y >= 10.")
    assert len(query.comparisons) == 2
    assert query.comparisons[0].op == "<"
    assert query.comparisons[1].right == Constant(10)


def test_and_connective_between_filters():
    query = parse_query("Q(y) :- R(h, y), y >= 1990 AND y < 2000.")
    assert len(query.comparisons) == 2


def test_paper_q7_shape():
    query = parse_query(
        'OscarWinners(a) :- ObjectName(aw, "The Academy Awards"), '
        "HonorAward(h, aw), HonorActor(h, a), HonorYear(h, y), "
        "y >= 1990 AND y < 2000."
    )
    assert len(query.atoms) == 4
    assert len(query.comparisons) == 2
    assert not query.is_full()


def test_head_must_use_variables():
    with pytest.raises(ParseError):
        parse_query("Q(3) :- R(x, y).")


def test_garbage_rejected():
    with pytest.raises(ParseError):
        parse_query("Q(x) :- R(x,,y).")
    with pytest.raises(ParseError):
        parse_query("Q(x) R(x, y).")
    with pytest.raises(ParseError):
        parse_query("Q(x) :- R(x y).")


def test_unexpected_character():
    with pytest.raises(ParseError):
        parse_query("Q(x) :- R(x, y) & S(y).")


def test_comparison_left_must_be_variable():
    with pytest.raises(ParseError):
        parse_query("Q(x) :- R(x, y), 3 < x.")


def test_trailing_tokens_rejected():
    with pytest.raises(ParseError):
        parse_query("Q(x) :- R(x, y). extra")


def test_roundtrip_repr_is_readable():
    query = parse_query("Q(x) :- R:E(x, y), S:E(y, x), x < y.")
    text = repr(query)
    assert "R:E" in text and "x < y" in text
