"""Tests for the three shuffle algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.frame import Frame
from repro.engine.memory import MemoryBudget, OutOfMemoryError
from repro.engine.shuffle import broadcast, hash_row, hypercube_shuffle, regular_shuffle
from repro.engine.stats import ExecutionStats
from repro.hypercube.config import config_from_sizes
from repro.hypercube.mapping import HyperCubeMapping
from repro.query.atoms import Variable
from repro.query.parser import parse_query

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
TRIANGLE = parse_query("T(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")


def frames_of(rows, workers=3, variables=(X, Y)):
    """Round-robin the rows into per-worker frames."""
    per_worker = [[] for _ in range(workers)]
    for index, row in enumerate(rows):
        per_worker[index % workers].append(row)
    return [Frame(tuple(variables), rows) for rows in per_worker]


class TestHashRow:
    def test_deterministic(self):
        assert hash_row((1, 2)) == hash_row((1, 2))

    def test_salt_changes_hash(self):
        values = [(i, i + 1) for i in range(50)]
        assert [hash_row(v) for v in values] != [hash_row(v, salt=99) for v in values]

    def test_order_sensitive(self):
        assert hash_row((1, 2)) != hash_row((2, 1))


class TestRegularShuffle:
    def test_conserves_tuples(self):
        rows = [(i, i % 5) for i in range(100)]
        stats = ExecutionStats()
        out = regular_shuffle(frames_of(rows), [Y], 4, stats, "t", "p")
        assert sorted(r for f in out for r in f.rows) == sorted(rows)

    def test_co_partitions_equal_keys(self):
        rows = [(i, i % 7) for i in range(100)]
        stats = ExecutionStats()
        out = regular_shuffle(frames_of(rows), [Y], 4, stats, "t", "p")
        for worker, frame in enumerate(out):
            for row in frame.rows:
                # every row with the same key value lands on this worker
                expected = regular_shuffle(
                    [Frame((X, Y), [row])], [Y], 4, ExecutionStats(), "t", "p"
                )
                assert len(expected[worker].rows) == 1

    def test_records_stats(self):
        rows = [(i, 0) for i in range(20)]  # all same key -> max skew
        stats = ExecutionStats()
        regular_shuffle(frames_of(rows, workers=2), [Y], 4, stats, "skewed", "p")
        record = stats.shuffles[0]
        assert record.tuples_sent == 20
        assert record.consumer_skew == pytest.approx(4.0)

    def test_charges_producers_and_consumers(self):
        rows = [(i, i) for i in range(10)]
        stats = ExecutionStats()
        regular_shuffle(frames_of(rows, workers=2), [Y], 2, stats, "t", "phase")
        assert stats.phase_cpu("phase") == 20  # 10 sent + 10 received

    def test_memory_accounting_and_oom(self):
        rows = [(i, 0) for i in range(50)]
        memory = MemoryBudget(per_worker_tuples=10)
        with pytest.raises(OutOfMemoryError):
            regular_shuffle(
                frames_of(rows), [Y], 4, ExecutionStats(), "t", "p", memory=memory
            )

    def test_multi_column_key(self):
        rows = [(i, i % 3) for i in range(30)]
        stats = ExecutionStats()
        out = regular_shuffle(frames_of(rows), [X, Y], 4, stats, "t", "p")
        assert sum(len(f) for f in out) == 30

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)), max_size=60))
    @settings(max_examples=40)
    def test_partition_is_a_function_of_the_key(self, rows):
        out = regular_shuffle(
            frames_of(rows), [Y], 5, ExecutionStats(), "t", "p"
        )
        location = {}
        for worker, frame in enumerate(out):
            for row in frame.rows:
                location.setdefault(row[1], set()).add(worker)
        assert all(len(workers) == 1 for workers in location.values())


class TestBroadcast:
    def test_every_worker_gets_everything(self):
        rows = [(i, i) for i in range(10)]
        stats = ExecutionStats()
        out = broadcast(frames_of(rows), 4, stats, "t", "p")
        for frame in out:
            assert sorted(frame.rows) == sorted(rows)

    def test_tuples_sent_counts_replication(self):
        rows = [(i, i) for i in range(10)]
        stats = ExecutionStats()
        broadcast(frames_of(rows), 8, stats, "t", "p")
        assert stats.shuffles[0].tuples_sent == 80

    def test_no_consumer_skew(self):
        rows = [(i, 0) for i in range(30)]
        stats = ExecutionStats()
        broadcast(frames_of(rows), 4, stats, "t", "p")
        assert stats.shuffles[0].consumer_skew == pytest.approx(1.0)


class TestHypercubeShuffle:
    def _shuffle(self, rows, sizes=(2, 2, 2), alias="R"):
        config = config_from_sizes(TRIANGLE, sizes)
        mapping = HyperCubeMapping(config)
        atom = TRIANGLE.atom_by_alias(alias)
        variables = atom.variables()
        stats = ExecutionStats()
        out = hypercube_shuffle(
            frames_of(rows, variables=variables),
            atom,
            mapping,
            mapping.workers_used,
            stats,
            "t",
            "p",
        )
        return out, stats, mapping

    def test_replication_factor(self):
        rows = [(i, i + 1) for i in range(50)]
        out, stats, mapping = self._shuffle(rows)
        # R(x, y) misses the z dimension of size 2 -> 2 copies per tuple
        assert stats.shuffles[0].tuples_sent == 100
        assert sum(len(f) for f in out) == 100

    def test_tuples_land_on_their_coordinates(self):
        rows = [(3, 4)]
        out, stats, mapping = self._shuffle(rows)
        atom = TRIANGLE.atom_by_alias("R")
        expected = set(mapping.destinations(atom, (3, 4)))
        actual = {w for w, frame in enumerate(out) if frame.rows}
        assert actual == expected

    def test_triangle_results_complete_after_shuffle(self):
        """Joining locally after the shuffle finds every triangle."""
        edges = [(0, 1), (1, 2), (2, 0), (0, 2), (2, 1), (1, 0), (3, 0), (0, 3)]
        config = config_from_sizes(TRIANGLE, (2, 2, 2))
        mapping = HyperCubeMapping(config)
        shuffled = {}
        for alias in ("R", "S", "T"):
            atom = TRIANGLE.atom_by_alias(alias)
            stats = ExecutionStats()
            shuffled[alias] = hypercube_shuffle(
                frames_of(edges, variables=atom.variables()),
                atom,
                mapping,
                8,
                stats,
                "t",
                "p",
            )
        found = set()
        for worker in range(8):
            r = set(shuffled["R"][worker].rows)
            s = set(shuffled["S"][worker].rows)
            t = set(shuffled["T"][worker].rows)
            for (x, y) in r:
                for (y2, z) in s:
                    if y2 == y and (z, x) in t:
                        found.add((x, y, z))
        edge_set = set(edges)
        expected = {
            (x, y, z)
            for (x, y) in edge_set
            for z in range(4)
            if (y, z) in edge_set and (z, x) in edge_set
        }
        assert found == expected

    def test_consumer_skew_excludes_idle_workers(self):
        """Regression: an integral configuration using fewer than ``p``
        workers must compute consumer skew over the *used* workers only.
        The idle machines receive nothing by construction; counting them
        diluted the average and inflated every HC skew by p/used."""
        config = config_from_sizes(TRIANGLE, (5, 4, 3))
        mapping = HyperCubeMapping(config)
        workers = 64
        assert mapping.workers_used == 60 < workers
        rows = [(i, (i * 7) % 40) for i in range(200)]
        atom = TRIANGLE.atom_by_alias("R")
        stats = ExecutionStats()
        out = hypercube_shuffle(
            frames_of(rows, variables=atom.variables()),
            atom,
            mapping,
            workers,
            stats,
            "t",
            "p",
        )
        received = [len(frame) for frame in out]
        assert all(count == 0 for count in received[mapping.workers_used:])
        from repro.engine.stats import skew_factor

        record = stats.shuffles[0]
        used_skew = skew_factor(received[: mapping.workers_used])
        inflated_skew = skew_factor(received)  # the old, wrong denominator
        assert record.consumer_skew == pytest.approx(used_skew)
        assert record.consumer_skew < inflated_skew
        assert inflated_skew == pytest.approx(used_skew * workers / 60)

    def test_frame_variables_must_match_atom(self):
        config = config_from_sizes(TRIANGLE, (2, 2, 2))
        mapping = HyperCubeMapping(config)
        with pytest.raises(ValueError):
            hypercube_shuffle(
                [Frame((X, Z), [])],
                TRIANGLE.atom_by_alias("R"),
                mapping,
                8,
                ExecutionStats(),
                "t",
                "p",
            )
