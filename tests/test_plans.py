"""Tests for strategy descriptors."""

import pytest

from repro.planner.plans import (
    ALL_STRATEGIES,
    BR_TJ,
    HC_TJ,
    RS_HJ,
    JoinKind,
    ShuffleKind,
    Strategy,
)


def test_names():
    assert RS_HJ.name == "RS_HJ"
    assert HC_TJ.name == "HC_TJ"
    assert BR_TJ.name == "BR_TJ"


def test_all_strategies_cover_grid():
    assert len(ALL_STRATEGIES) == 6
    combos = {(s.shuffle, s.join) for s in ALL_STRATEGIES}
    assert combos == {
        (shuffle, join) for shuffle in ShuffleKind for join in JoinKind
    }


def test_parse_roundtrip():
    for strategy in ALL_STRATEGIES:
        assert Strategy.parse(strategy.name) == strategy


@pytest.mark.parametrize("bad", ["", "RS", "RS_XX", "XX_HJ", "rs_hj", "RS-HJ"])
def test_parse_rejects_bad_names(bad):
    with pytest.raises(ValueError):
        Strategy.parse(bad)


def test_repr_is_name():
    assert repr(RS_HJ) == "RS_HJ"
