"""Edge-case tests for the harness, plan overrides, and failure reporting."""

import math

import pytest

from repro.experiments.harness import run_grid, table6_row
from repro.planner.binary import plan_from_order
from repro.planner.plans import HC_TJ, RS_HJ, RS_TJ
from repro.query.catalog import Catalog
from repro.storage.generators import twitter_database
from repro.workloads import Q1


@pytest.fixture(scope="module")
def db():
    return twitter_database(nodes=150, edges=600, seed=8)


class TestPlanFromOrder:
    def test_rejects_incomplete_order(self, db):
        with pytest.raises(ValueError, match="cover the atoms"):
            plan_from_order(Q1, Catalog(db), ("R", "S"))

    def test_rejects_unknown_alias(self, db):
        with pytest.raises(ValueError):
            plan_from_order(Q1, Catalog(db), ("R", "S", "X"))

    def test_estimates_produced_for_each_step(self, db):
        plan = plan_from_order(Q1, Catalog(db), ("T", "R", "S"))
        assert len(plan.estimated_sizes) == 3
        assert plan.order == ("T", "R", "S")


class TestTable6Row:
    def test_failed_rs_reports_nan_ratio(self, db):
        grid = run_grid(
            Q1, db, workers=3, strategies=[RS_HJ, RS_TJ, HC_TJ], memory_tuples=60
        )
        # with a 60-tuple budget everything fails except nothing — build
        # the row anyway and check it degrades gracefully
        row = table6_row("Q1", grid, db)
        if grid["RS_HJ"].failed:
            assert row["rs_shuffled"] is None
            assert math.isnan(row["rs_over_hc_time"])

    def test_best_strategy_ignores_failures(self, db):
        grid = run_grid(
            Q1, db, workers=3, strategies=[RS_TJ, HC_TJ], memory_tuples=2000
        )
        if grid["RS_TJ"].failed and not grid["HC_TJ"].failed:
            assert grid.best_strategy() == "HC_TJ"


class TestDeterminism:
    def test_grid_is_deterministic(self, db):
        a = run_grid(Q1, db, workers=4, strategies=[HC_TJ])
        b = run_grid(Q1, db, workers=4, strategies=[HC_TJ])
        assert set(a["HC_TJ"].rows) == set(b["HC_TJ"].rows)
        assert (
            a["HC_TJ"].stats.tuples_shuffled == b["HC_TJ"].stats.tuples_shuffled
        )
        assert a["HC_TJ"].stats.wall_clock == b["HC_TJ"].stats.wall_clock

    def test_hc_seed_changes_routing_not_results(self, db):
        from repro.engine.cluster import Cluster
        from repro.planner.executor import execute

        rows = None
        volumes = set()
        for seed in (0, 1, 2):
            cluster = Cluster(4)
            cluster.load(db)
            result = execute(Q1, cluster, HC_TJ, hc_seed=seed)
            if rows is None:
                rows = set(result.rows)
            assert set(result.rows) == rows
            volumes.add(result.stats.tuples_shuffled)
        # volume is fixed by the configuration (replication), not the seed
        assert len(volumes) == 1
