"""Hybrid multi-round plans: decomposition, lowering, execution, recovery.

The hybrid strategy splits a conjunctive query into a binary hash-join
stage (the selective path atoms) and a residual WCOJ stage that HyperCube-
shuffles the materialized intermediate alongside the remaining atoms
(:mod:`repro.planner.decompose`).  These tests pin:

- the decomposition search space (connectivity, the keep-variable rule,
  the four-atom admission floor that protects the pure-strategy pins);
- lowering structure (stage tags, the ScanIntermediate boundary, per-stage
  HyperCube configuration over the stage-two subquery);
- end-to-end row correctness against the pure RS_HJ baseline on both
  kernel backends;
- the optimizer's hybrid search: ``costs`` stays the six pure rows, the
  cheapest shape rides in ``hybrids``, and at bench scale Q8 under
  ``auto`` picks the hybrid and measurably beats the pure field;
- fault injection at the cross-stage Round boundary: rows stay correct and
  CPU conservation holds per stage (``recovery:stage2`` attribution).
"""

import pytest

from repro.engine.cluster import Cluster
from repro.planner.decompose import (
    default_decomposition,
    enumerate_decompositions,
    intermediate_alias,
    stage_one_query,
    stage_two_query,
)
from repro.planner.executor import execute_physical
from repro.planner.explain import explain_analyze
from repro.planner.optimizer import estimate_costs, optimize
from repro.planner.physical import (
    HYBRID_STRATEGY,
    ConfigureHyperCube,
    ScanIntermediate,
    lower,
)
from repro.planner.plans import ALL_STRATEGIES
from repro.query.catalog import Catalog
from repro.query.parser import parse_query
from repro.workloads.registry import get_workload

STRATEGY_NAMES = tuple(s.name for s in ALL_STRATEGIES)

TRIANGLE = parse_query(
    "T(x, y, z) :- R:Twitter(x, y), S:Twitter(y, z), U:Twitter(z, x)."
)

PATH_CYCLE = parse_query(
    "PathCycle(a, e) :- A:Twitter(a, b), B:Twitter(b, c), "
    "E1:Twitter(c, d), E2:Twitter(d, e), E3:Twitter(e, c)."
)


@pytest.fixture(scope="module")
def q8():
    return get_workload("Q8")


@pytest.fixture(scope="module")
def q8_unit(q8):
    return q8.dataset("unit")


@pytest.fixture(scope="module")
def q8_catalog(q8_unit):
    return Catalog(q8_unit)


# ----------------------------------------------------------------------
# Decomposition search space
# ----------------------------------------------------------------------


def test_small_queries_admit_no_decomposition():
    # fewer than four atoms: hybrids never compete with the pure grid,
    # keeping the optimizer's triangle/2-cycle golden pins intact
    assert enumerate_decompositions(TRIANGLE) == ()


def test_q8_decompositions_are_connected_and_well_formed(q8):
    shapes = enumerate_decompositions(q8.query)
    assert shapes
    body_aliases = {atom.alias for atom in q8.query.atoms}
    for shape in shapes:
        stage_aliases = set(shape.stage_one)
        residual = set(shape.residual)
        assert stage_aliases | residual == body_aliases
        assert not stage_aliases & residual
        assert 2 <= len(shape.stage_one) <= len(body_aliases) - 2
        # the boundary must be a real join, never a cartesian re-shuffle
        residual_vars = {
            v
            for atom in q8.query.atoms
            if atom.alias in residual
            for v in atom.variables()
        }
        assert set(shape.keep) & residual_vars


def test_keep_variables_cover_head_and_residual(q8):
    head = set(q8.query.head)
    for shape in enumerate_decompositions(q8.query):
        stage_vars = {
            v
            for atom in q8.query.atoms
            if atom.alias in shape.stage_one
            for v in atom.variables()
        }
        residual_vars = {
            v
            for atom in q8.query.atoms
            if atom.alias in shape.residual
            for v in atom.variables()
        }
        keep = set(shape.keep)
        # everything downstream still needs is kept, nothing else
        assert keep == stage_vars & (residual_vars | head)
        assert shape.dedup == (len(keep) < len(stage_vars))


def test_stage_queries_are_valid_conjunctive_queries(q8):
    shape = enumerate_decompositions(q8.query)[0]
    one = stage_one_query(q8.query, shape)
    two = stage_two_query(q8.query, shape)
    assert tuple(one.head) == shape.keep
    assert {a.alias for a in one.atoms} == set(shape.stage_one)
    assert two.head == q8.query.head
    assert two.atoms[0].relation == shape.alias
    assert tuple(two.atoms[0].terms) == shape.keep
    assert {a.alias for a in two.atoms[1:]} == set(shape.residual)


def test_intermediate_alias_avoids_collisions():
    query = parse_query(
        "Q(a, c) :- I1:Twitter(a, b), I2:Twitter(b, c), "
        "X:Twitter(c, d), Y:Twitter(d, a)."
    )
    assert intermediate_alias(query) == "I3"


def test_default_decomposition_is_deterministic(q8, q8_catalog):
    first = default_decomposition(q8.query, q8_catalog)
    second = default_decomposition(q8.query, q8_catalog)
    assert first == second
    with pytest.raises(ValueError):
        default_decomposition(TRIANGLE, q8_catalog)


# ----------------------------------------------------------------------
# Lowering structure
# ----------------------------------------------------------------------


def test_lowered_hybrid_is_multistage(q8, q8_catalog):
    plan = lower(q8.query, HYBRID_STRATEGY, q8_catalog)
    assert plan.strategy == HYBRID_STRATEGY
    assert plan.is_multistage
    assert plan.stages() == (1, 2)
    ops = [op for _, _, _, op in plan.operators()]
    boundary = [op for op in ops if isinstance(op, ScanIntermediate)]
    assert len(boundary) == 1
    config = next(op for op in ops if isinstance(op, ConfigureHyperCube))
    # the stage-two HyperCube is configured over the residual subquery
    # (intermediate + leftover atoms), not the original query
    assert config.query is not None
    assert boundary[0].out in {a.alias for a in config.query.atoms}


def test_stage_tags_render_only_for_multistage(q8, q8_catalog):
    hybrid = lower(q8.query, HYBRID_STRATEGY, q8_catalog)
    assert "[stage 1]" in hybrid.render() and "[stage 2]" in hybrid.render()
    pure = lower(q8.query, "RS_HJ", q8_catalog)
    assert "[stage" not in pure.render()


# ----------------------------------------------------------------------
# Execution correctness
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kernels", ["python", "numpy"])
def test_hybrid_rows_match_pure_baseline(q8, q8_unit, q8_catalog, kernels):
    cluster = Cluster(16)
    cluster.load(q8_unit)
    hybrid = execute_physical(
        lower(q8.query, HYBRID_STRATEGY, q8_catalog), cluster, kernels=kernels
    )
    baseline_cluster = Cluster(16)
    baseline_cluster.load(q8_unit)
    baseline = execute_physical(
        lower(q8.query, "RS_HJ", q8_catalog), baseline_cluster, kernels=kernels
    )
    assert not hybrid.failed and not baseline.failed
    assert sorted(hybrid.rows) == sorted(baseline.rows)


def test_path_cycle_hybrid_rows_match_baseline():
    database = get_workload("Q1").dataset("unit")
    catalog = Catalog(database)
    cluster = Cluster(8)
    cluster.load(database)
    hybrid = execute_physical(
        lower(PATH_CYCLE, HYBRID_STRATEGY, catalog), cluster
    )
    baseline_cluster = Cluster(8)
    baseline_cluster.load(database)
    baseline = execute_physical(
        lower(PATH_CYCLE, "RS_HJ", catalog), baseline_cluster
    )
    assert sorted(hybrid.rows) == sorted(baseline.rows)


# ----------------------------------------------------------------------
# Optimizer integration
# ----------------------------------------------------------------------


def test_pure_cost_rows_unchanged_by_hybrid_search(q8, q8_catalog):
    plain = estimate_costs(q8.query, q8_catalog, workers=16)
    searched = estimate_costs(q8.query, q8_catalog, workers=16, hybrid=True)
    assert plain.hybrids == ()
    assert {c.strategy for c in plain.costs} == set(STRATEGY_NAMES)
    # the six pure rows are priced identically whether hybrids compete
    assert searched.costs == plain.costs
    assert len(searched.hybrids) == 1
    assert searched.hybrids[0].strategy == HYBRID_STRATEGY
    assert searched.hybrid_decomposition is not None
    assert searched.hybrids[0].detail == searched.hybrid_decomposition.describe()


def test_ranking_and_render_include_hybrid_row(q8, q8_catalog):
    report = estimate_costs(q8.query, q8_catalog, workers=16, hybrid=True)
    ranked = report.ranking()
    assert len(ranked) == 7
    assert ranked[0].strategy == report.choice
    assert report.cost_of(HYBRID_STRATEGY) is report.hybrids[0]
    assert "HYBRID shape:" in report.render()


def test_auto_picks_hybrid_on_q8_at_bench_scale(q8):
    database = q8.dataset("bench")
    catalog = Catalog(database)
    report = estimate_costs(
        q8.query, catalog, workers=64,
        memory_tuples=q8.memory_tuples, hybrid=True,
    )
    assert report.choice == HYBRID_STRATEGY
    hybrid_cost = report.cost_of(HYBRID_STRATEGY)
    for name in STRATEGY_NAMES:
        assert hybrid_cost.cost < report.cost_of(name).cost


def test_auto_measured_hybrid_beats_hc_tj_on_q8_bench(q8):
    database = q8.dataset("bench")
    catalog = Catalog(database)
    optimized = optimize(
        q8.query, catalog, workers=64,
        memory_tuples=q8.memory_tuples, cache=None,
    )
    assert optimized.choice == HYBRID_STRATEGY
    cluster = Cluster(64)
    cluster.load(database)
    hybrid = execute_physical(optimized.physical, cluster, kernels="numpy")
    assert not hybrid.failed
    pure_cluster = Cluster(64)
    pure_cluster.load(database)
    pure = execute_physical(
        lower(q8.query, "HC_TJ", catalog), pure_cluster, kernels="numpy"
    )
    # HC_TJ is the best measured pure strategy on Q8 at bench scale
    assert hybrid.stats.wall_clock < pure.stats.wall_clock
    assert sorted(hybrid.rows) == sorted(pure.rows)


def test_optimize_lowers_the_reported_decomposition(q8, q8_catalog):
    optimized = optimize(q8.query, q8_catalog, workers=16, cache=None)
    if optimized.choice != HYBRID_STRATEGY:
        pytest.skip("hybrid not predicted to win at this scale")
    shape = optimized.report.hybrid_decomposition
    boundary = next(
        op
        for _, _, _, op in optimized.physical.operators()
        if isinstance(op, ScanIntermediate)
    )
    assert boundary.out == shape.alias
    assert boundary.variables == shape.keep


# ----------------------------------------------------------------------
# Fault injection at the cross-stage boundary
# ----------------------------------------------------------------------


def _stage_conservation(analyzed):
    stats = analyzed.stats
    charges = sum(analyzed.operator_charges())
    assert charges + analyzed.recovery_cpu == pytest.approx(stats.total_cpu)
    summaries = analyzed.stage_summaries()
    assert sum(s.cpu + s.recovery_cpu for s in summaries) == pytest.approx(
        stats.total_cpu
    )
    assert sum(s.wall for s in summaries) == pytest.approx(stats.wall_clock)


def test_fault_at_stage_boundary_recovers_and_conserves(q8, q8_unit):
    clean = explain_analyze(q8.query, q8_unit, strategy=HYBRID_STRATEGY, workers=16)
    _stage_conservation(clean)
    faults = {
        "faults": [
            {
                "kind": "crash",
                "round": "stage boundary",
                "worker": 2,
                "phase": "hypercube shuffle",
            }
        ]
    }
    analyzed = explain_analyze(
        q8.query, q8_unit, strategy=HYBRID_STRATEGY, workers=16,
        faults=faults, recovery="retry",
    )
    assert analyzed.stats.retries == 1
    assert analyzed.stats.faults_injected == 1
    assert sorted(analyzed.result.rows) == sorted(clean.result.rows)
    # the wasted attempt is re-charged into the stage-qualified phase
    assert "recovery:stage2" in analyzed.stats.phases()
    assert analyzed.recovery_cpu > 0
    _stage_conservation(analyzed)
    summaries = {s.stage: s for s in analyzed.stage_summaries()}
    assert summaries[2].recovery_cpu == analyzed.recovery_cpu
    assert summaries[1].recovery_cpu == 0
    assert "stage 2:" in analyzed.render()


def test_fault_in_stage_one_charges_stage_one_recovery(q8, q8_unit):
    clean = explain_analyze(q8.query, q8_unit, strategy=HYBRID_STRATEGY, workers=16)
    faults = {
        "faults": [
            {"kind": "crash", "round": "step 1", "worker": 1, "phase": "step1:join"}
        ]
    }
    analyzed = explain_analyze(
        q8.query, q8_unit, strategy=HYBRID_STRATEGY, workers=16,
        faults=faults, recovery="retry",
    )
    assert sorted(analyzed.result.rows) == sorted(clean.result.rows)
    assert "recovery:stage1" in analyzed.stats.phases()
    _stage_conservation(analyzed)


def test_pure_plans_keep_the_unqualified_recovery_phase(q8, q8_unit):
    faults = {
        "faults": [
            {"kind": "crash", "round": "step 1", "worker": 1, "phase": "step1:join"}
        ]
    }
    analyzed = explain_analyze(
        q8.query, q8_unit, strategy="RS_HJ", workers=16,
        faults=faults, recovery="retry",
    )
    assert "recovery" in analyzed.stats.phases()
    assert not any(":" in p for p in analyzed.stats.phases() if p.startswith("recovery"))
    assert analyzed.recovery_cpu == analyzed.stats.phase_cpu("recovery")
