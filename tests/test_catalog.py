"""Tests for the statistics catalog."""

from repro.query.atoms import Atom, Constant, Variable
from repro.query.catalog import Catalog, cardinalities_for
from repro.query.parser import parse_query
from repro.storage.relation import Database

X, Y = Variable("x"), Variable("y")


def make_db():
    db = Database()
    db.add_rows(
        "R", ("a", "b"),
        [(1, 10), (1, 20), (2, 10), (2, 10), (3, 30)],
    )
    db.add_encoded("Name", ("id", "name"), [(1, "joe"), (2, "bob"), (3, "joe")])
    return db


class TestCardinality:
    def test_relation_cardinality(self):
        catalog = Catalog(make_db())
        assert catalog.cardinality("R") == 5

    def test_atom_cardinalities_share_base_size(self):
        query = parse_query("Q(x,y,z) :- R1:R(x,y), R2:R(y,z).")
        catalog = Catalog(make_db())
        cards = catalog.atom_cardinalities(query)
        assert cards == {"R1": 5, "R2": 5}

    def test_atom_cardinality_applies_constants(self):
        catalog = Catalog(make_db())
        atom = Atom("R", (Constant(1), Y))
        assert catalog.atom_cardinality(atom) == 2

    def test_atom_cardinality_with_string_constant(self):
        catalog = Catalog(make_db())
        atom = Atom("Name", (X, Constant("joe")))
        assert catalog.atom_cardinality(atom) == 2


class TestDistinctCounts:
    def test_distinct_values(self):
        catalog = Catalog(make_db())
        assert catalog.distinct_values("R", 0) == 3
        assert catalog.distinct_values("R", 1) == 3

    def test_distinct_prefix_pairs(self):
        catalog = Catalog(make_db())
        assert catalog.distinct_prefix("R", (0, 1)) == 4

    def test_empty_prefix(self):
        catalog = Catalog(make_db())
        assert catalog.distinct_prefix("R", ()) == 1

    def test_caching_returns_same_value(self):
        catalog = Catalog(make_db())
        first = catalog.distinct_prefix("R", (0,))
        second = catalog.distinct_prefix("R", (0,))
        assert first == second == 3

    def test_atom_prefix_count_positions_with_constants(self):
        catalog = Catalog(make_db())
        atom = Atom("R", (Constant(1), Y))
        # rows with a=1: (1,10), (1,20) -> 2 distinct b values at position 1
        assert catalog.atom_prefix_count_positions(atom, (1,)) == 2

    def test_atom_prefix_count_empty_positions(self):
        catalog = Catalog(make_db())
        atom = Atom("R", (X, Y))
        assert catalog.atom_prefix_count_positions(atom, ()) == 1


def test_cardinalities_for_pushes_selections():
    db = make_db()
    query = parse_query('Q(x) :- Name(x, "joe"), R(x, y).')
    cards = cardinalities_for(query, db)
    assert cards["Name"] == 2
    assert cards["R"] == 5


def test_cardinalities_for_never_returns_zero():
    db = make_db()
    query = parse_query('Q(x) :- Name(x, "missing"), R(x, y).')
    cards = cardinalities_for(query, db)
    assert cards["Name"] == 1  # clamped so the LPs stay well-defined
