"""Differential suite: vectorized WCOJ x process runtime, bit for bit.

The vectorized leapfrog backend (block-at-a-time trie walks under numpy
kernels) and the forked-process runtime are both pure wall-clock changes:
for every strategy, kernel backend, and worker runtime, result rows come
back in the same order and every counted metric — rows, trie seeks, tuples
shuffled with per-shuffle skews, CPU charges, wall clock, peak memory — is
exactly equal, no tolerance.  This file pins that invariant on the full
strategy matrix, plus the seek-accounting edge cases the block backend is
most likely to get wrong: partially-consumed generators and seek-budget
aborts.

Honors ``REPRO_DIFF_RUNTIME`` (default ``serial``) so CI can re-run the
backend sweep under ``parallel:4:proc`` without duplicating test code.
"""

import os

import pytest

from repro.engine.kernels import use_backend
from repro.leapfrog.tributary import SeekBudgetExceeded, TributaryJoin
from repro.planner.api import run_query
from repro.planner.plans import ALL_STRATEGIES
from repro.query.parser import parse_query
from repro.storage.generators import twitter_database
from repro.storage.relation import Relation

RUNTIME = os.environ.get("REPRO_DIFF_RUNTIME", "serial")

#: the runtime axis of the in-repo matrix; CI re-runs the whole module with
#: ``REPRO_DIFF_RUNTIME=parallel:4:proc`` for the full-width process sweep
RUNTIME_MATRIX = ("parallel:3", "parallel:2:proc")

TRIANGLE = parse_query(
    "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."
)
PROJECTION = parse_query("P(x) :- R:Twitter(x,y), S:Twitter(y,x).")
COMPARISON = parse_query(
    "C(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), x < z."
)
TWO_PATH = parse_query("P(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z).")

QUERIES = {
    "triangle": TRIANGLE,
    "projection": PROJECTION,
    "comparison": COMPARISON,
}


def assert_identical(reference, candidate):
    """Byte-identical rows and exactly equal counted metrics."""
    assert reference.rows == candidate.rows  # same rows, same order
    a, b = reference.stats, candidate.stats
    assert a.failed == b.failed
    assert a.failure == b.failure
    assert a.shuffles == b.shuffles  # tuples sent + both skews, per shuffle
    assert a.tuples_shuffled == b.tuples_shuffled
    assert a.total_cpu == b.total_cpu  # includes seeks and sort_cost charges
    assert a.wall_clock == b.wall_clock
    assert a.phases() == b.phases()
    assert a.worker_loads() == b.worker_loads()
    assert a.peak_memory == b.peak_memory
    assert a.result_count == b.result_count
    assert a.cpu_skew == b.cpu_skew


# ----------------------------------------------------------------------
# Backend sweep (under the runtime CI selects via REPRO_DIFF_RUNTIME)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", [0, 42])
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_all_strategies_identical_across_backends(strategy, seed, query_name):
    db = twitter_database(nodes=120, edges=500, seed=seed)
    query = QUERIES[query_name]
    python = run_query(
        query, db, strategy=strategy, workers=6, runtime=RUNTIME,
        kernels="python",
    )
    numpy = run_query(
        query, db, strategy=strategy, workers=6, runtime=RUNTIME,
        kernels="numpy",
    )
    assert not python.failed
    assert_identical(python, numpy)


def test_semijoin_identical_across_backends():
    db = twitter_database(nodes=120, edges=500, seed=0)
    python = run_query(
        TWO_PATH, db, strategy="SJ_HJ", workers=6, runtime=RUNTIME,
        kernels="python",
    )
    numpy = run_query(
        TWO_PATH, db, strategy="SJ_HJ", workers=6, runtime=RUNTIME,
        kernels="numpy",
    )
    assert not python.failed
    assert_identical(python, numpy)


# ----------------------------------------------------------------------
# Runtime sweep (threads and processes against the serial reference)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("runtime", RUNTIME_MATRIX)
@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
def test_all_strategies_identical_across_runtimes(strategy, runtime):
    db = twitter_database(nodes=120, edges=500, seed=7)
    serial = run_query(
        TRIANGLE, db, strategy=strategy, workers=6, runtime="serial",
        kernels="numpy",
    )
    candidate = run_query(
        TRIANGLE, db, strategy=strategy, workers=6, runtime=runtime,
        kernels="numpy",
    )
    assert not serial.failed
    assert_identical(serial, candidate)


@pytest.mark.parametrize("runtime", RUNTIME_MATRIX)
def test_semijoin_identical_across_runtimes(runtime):
    db = twitter_database(nodes=120, edges=500, seed=7)
    serial = run_query(
        TWO_PATH, db, strategy="SJ_HJ", workers=6, runtime="serial",
        kernels="numpy",
    )
    candidate = run_query(
        TWO_PATH, db, strategy="SJ_HJ", workers=6, runtime=runtime,
        kernels="numpy",
    )
    assert not serial.failed
    assert_identical(serial, candidate)


def test_oom_failure_identical_under_process_runtime():
    """A budget violation inside a forked worker must fail identically to
    serial: the :class:`OutOfMemoryError` crosses a real process pipe (its
    custom pickling), and the commit-up-to-lowest-failure stats — including
    the pinned peak-memory figures — must come back bit-identical."""
    db = twitter_database(nodes=120, edges=500, seed=1)
    serial = run_query(
        TRIANGLE, db, strategy="RS_TJ", workers=4, memory_tuples=400,
        runtime="serial", kernels="numpy",
    )
    process = run_query(
        TRIANGLE, db, strategy="RS_TJ", workers=4, memory_tuples=400,
        runtime="parallel:2:proc", kernels="numpy",
    )
    assert serial.failed and process.failed
    assert serial.stats.failure == process.stats.failure
    assert_identical(serial, process)


# ----------------------------------------------------------------------
# Seek accounting: the block backend must count exactly like the scalar
# walk even when the consumer stops early or the budget trips mid-walk
# ----------------------------------------------------------------------


def _triangle_join(max_seeks=None):
    query = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x).")
    # +5 steps mod 15 close triangles (5+5+5 = 15); +1 edges add seek noise
    rows = [(i, (i + 1) % 15) for i in range(15)] + [
        (i, (i + 5) % 15) for i in range(15)
    ]
    relation = Relation("R", ("a", "b"), rows)
    return TributaryJoin(
        query,
        {"R": relation, "S": relation.renamed("S"), "T": relation.renamed("T")},
        max_seeks=max_seeks,
    )


def _per_backend(fn):
    outcomes = {}
    for backend in ("python", "numpy"):
        with use_backend(backend):
            outcomes[backend] = fn()
    assert outcomes["python"] == outcomes["numpy"]
    return outcomes["python"]


def test_full_iteration_rows_and_seeks_identical():
    def run():
        join = _triangle_join()
        rows = list(join.iterate())
        per_iterator = tuple(p.iterator.seeks for p in join._prepared)
        return rows, join.stats.seeks, per_iterator

    rows, seeks, _ = _per_backend(run)
    assert rows and seeks > 0


def test_partially_consumed_generator_records_seeks():
    """The PR 2 stats case: stopping mid-iteration still records the seeks
    performed so far, strictly between zero and the exhausted-run count, on
    BOTH backends.  The rows consumed and the exhausted-run seek count are
    bit-identical across backends; the mid-stream count itself is allowed
    to differ (the block backend legitimately pays for a whole chunk of
    the trie walk before its first yield — that batching IS the speedup),
    but chunked emission keeps it strictly below the full-run total."""
    full_seeks = {}
    partial = {}
    for backend in ("python", "numpy"):
        with use_backend(backend):
            join = _triangle_join()
            list(join.iterate())
            full_seeks[backend] = join.stats.seeks

            join = _triangle_join()
            iterator = join.iterate()
            rows = [next(iterator) for _ in range(4)]
            iterator.close()
            partial[backend] = (rows, join.stats.seeks)
            assert 0 < join.stats.seeks < full_seeks[backend]

    assert full_seeks["python"] == full_seeks["numpy"]
    assert partial["python"][0] == partial["numpy"][0]  # same row prefix


def test_seek_budget_trips_on_both_backends():
    """Both backends abort past ``max_seeks`` and record the count they
    aborted at.  The exact overshoot may differ by a few seeks (the block
    backend checks the budget at batch-flush granularity); what is pinned
    is that both trip, past the budget, with stats matching the error."""
    for backend in ("python", "numpy"):
        with use_backend(backend):
            join = _triangle_join(max_seeks=40)
            with pytest.raises(SeekBudgetExceeded) as excinfo:
                list(join.iterate())
            assert excinfo.value.budget == 40
            assert excinfo.value.seeks > 40
            assert join.stats.seeks == excinfo.value.seeks
