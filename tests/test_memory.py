"""Tests for per-worker memory budgets and the simulated OOM."""

import pytest

from repro.engine.cluster import Cluster
from repro.engine.memory import MemoryBudget, OutOfMemoryError, WorkerMemoryAccount
from repro.planner.executor import execute
from repro.planner.plans import RS_HJ
from repro.query.parser import parse_query
from repro.storage.generators import twitter_database


class TestBudget:
    def test_unlimited_by_default(self):
        budget = MemoryBudget()
        budget.allocate(0, 10**9)
        assert budget.resident(0) == 10**9

    def test_exceeding_budget_raises(self):
        budget = MemoryBudget(per_worker_tuples=100)
        budget.allocate(0, 80, "phase-a")
        with pytest.raises(OutOfMemoryError) as excinfo:
            budget.allocate(0, 30, "phase-b")
        assert excinfo.value.worker == 0
        assert excinfo.value.phase == "phase-b"
        assert excinfo.value.resident == 110

    def test_budgets_are_per_worker(self):
        budget = MemoryBudget(per_worker_tuples=100)
        budget.allocate(0, 90)
        budget.allocate(1, 90)  # separate worker, no OOM

    def test_release(self):
        budget = MemoryBudget(per_worker_tuples=100)
        budget.allocate(0, 90)
        budget.release(0, 50)
        budget.allocate(0, 50)
        assert budget.resident(0) == 90

    def test_release_never_goes_negative(self):
        budget = MemoryBudget()
        budget.release(0, 10)
        assert budget.resident(0) == 0

    def test_release_all(self):
        budget = MemoryBudget()
        budget.allocate(2, 40)
        budget.release_all(2)
        assert budget.resident(2) == 0

    def test_peak_tracks_high_water(self):
        budget = MemoryBudget()
        budget.allocate(0, 70)
        budget.release(0, 60)
        budget.allocate(0, 20)
        assert budget.peak(0) == 70
        assert budget.resident(0) == 30

    def test_reset(self):
        budget = MemoryBudget(per_worker_tuples=10)
        budget.allocate(0, 5)
        budget.reset()
        assert budget.resident(0) == 0
        assert budget.peak(0) == 0
        budget.allocate(0, 9)  # no OOM after reset

    def test_error_message_is_informative(self):
        budget = MemoryBudget(per_worker_tuples=10)
        with pytest.raises(OutOfMemoryError, match="worker 3"):
            budget.allocate(3, 11, "sort")


class TestWorkerAccount:
    def test_baseline_snapshots_current_residency(self):
        budget = MemoryBudget()
        budget.allocate(2, 40)
        account = budget.open_account(2)
        assert account.resident(2) == 40
        assert account.peak(2) == 40

    def test_allocations_stay_local_until_commit(self):
        budget = MemoryBudget()
        budget.allocate(0, 10)
        account = budget.open_account(0)
        account.allocate(0, 30, "join")
        assert account.resident(0) == 40
        assert budget.resident(0) == 10  # untouched
        budget.commit(account)
        assert budget.resident(0) == 40
        assert budget.peak(0) == 40

    def test_commit_merges_peak_not_just_residual(self):
        budget = MemoryBudget()
        budget.allocate(0, 10)
        account = budget.open_account(0)
        account.allocate(0, 90, "join")
        account.release(0, 95)
        budget.commit(account)
        assert budget.resident(0) == 5
        assert budget.peak(0) == 100  # transient high-water survives

    def test_limit_enforced_against_baseline_plus_delta(self):
        budget = MemoryBudget(per_worker_tuples=100)
        budget.allocate(1, 60)
        account = budget.open_account(1)
        with pytest.raises(OutOfMemoryError) as excinfo:
            account.allocate(1, 50, "sort")
        assert excinfo.value.worker == 1
        assert excinfo.value.resident == 110

    def test_release_clamps_at_zero_residency(self):
        account = WorkerMemoryAccount(worker=0, baseline=20)
        account.release(0, 100)
        assert account.resident(0) == 0

    def test_wrong_worker_rejected(self):
        account = WorkerMemoryAccount(worker=1)
        with pytest.raises(ValueError):
            account.allocate(2, 5)


TRIANGLE = parse_query(
    "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."
)


class TestPeakResidency:
    """Regression: residency tracks the working set, not a cumulative sum.

    The old accounting never released anything, so a long pipeline's
    'resident' tuples were the sum of every buffer ever allocated and the
    budget tested cumulative allocation instead of peak memory."""

    def _run(self, memory=None):
        db = twitter_database(nodes=150, edges=600, seed=9)
        cluster = Cluster(4, MemoryBudget(per_worker_tuples=memory))
        cluster.load(db)
        return cluster, execute(TRIANGLE, cluster, RS_HJ)

    def test_only_final_output_stays_resident(self):
        cluster, result = self._run()
        assert not result.failed
        resident = sum(cluster.memory.resident(w) for w in range(4))
        assert resident == len(result.rows)

    def test_peak_is_below_cumulative_allocation(self):
        cluster, result = self._run()
        peak = max(cluster.memory.peak(w) for w in range(4))
        # cumulative allocation includes every scan, shuffle buffer, and
        # intermediate: 3 scanned atoms + 4 shuffles + 2 join outputs far
        # exceed the per-step working set
        shuffled = result.stats.tuples_shuffled
        assert peak < shuffled

    def test_budget_equal_to_peak_succeeds(self):
        cluster, result = self._run()
        peak = max(cluster.memory.peak(w) for w in range(4))
        _, rerun = self._run(memory=peak)
        assert not rerun.failed
        assert rerun.rows == result.rows
        _, too_tight = self._run(memory=peak - 1)
        assert too_tight.failed
