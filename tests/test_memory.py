"""Tests for per-worker memory budgets and the simulated OOM."""

import pytest

from repro.engine.memory import MemoryBudget, OutOfMemoryError


class TestBudget:
    def test_unlimited_by_default(self):
        budget = MemoryBudget()
        budget.allocate(0, 10**9)
        assert budget.resident(0) == 10**9

    def test_exceeding_budget_raises(self):
        budget = MemoryBudget(per_worker_tuples=100)
        budget.allocate(0, 80, "phase-a")
        with pytest.raises(OutOfMemoryError) as excinfo:
            budget.allocate(0, 30, "phase-b")
        assert excinfo.value.worker == 0
        assert excinfo.value.phase == "phase-b"
        assert excinfo.value.resident == 110

    def test_budgets_are_per_worker(self):
        budget = MemoryBudget(per_worker_tuples=100)
        budget.allocate(0, 90)
        budget.allocate(1, 90)  # separate worker, no OOM

    def test_release(self):
        budget = MemoryBudget(per_worker_tuples=100)
        budget.allocate(0, 90)
        budget.release(0, 50)
        budget.allocate(0, 50)
        assert budget.resident(0) == 90

    def test_release_never_goes_negative(self):
        budget = MemoryBudget()
        budget.release(0, 10)
        assert budget.resident(0) == 0

    def test_release_all(self):
        budget = MemoryBudget()
        budget.allocate(2, 40)
        budget.release_all(2)
        assert budget.resident(2) == 0

    def test_peak_tracks_high_water(self):
        budget = MemoryBudget()
        budget.allocate(0, 70)
        budget.release(0, 60)
        budget.allocate(0, 20)
        assert budget.peak(0) == 70
        assert budget.resident(0) == 30

    def test_reset(self):
        budget = MemoryBudget(per_worker_tuples=10)
        budget.allocate(0, 5)
        budget.reset()
        assert budget.resident(0) == 0
        assert budget.peak(0) == 0
        budget.allocate(0, 9)  # no OOM after reset

    def test_error_message_is_informative(self):
        budget = MemoryBudget(per_worker_tuples=10)
        with pytest.raises(OutOfMemoryError, match="worker 3"):
            budget.allocate(3, 11, "sort")
