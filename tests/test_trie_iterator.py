"""Tests for the LFTJ trie-iterator API over sorted arrays."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.leapfrog.iterator import TrieIterator
from repro.storage.relation import Relation
from repro.storage.sorted import SortedRelation


def make_iterator(rows, order=(0, 1)):
    relation = Relation("R", ("a", "b"), rows)
    return TrieIterator(SortedRelation(relation, order))


def level_values(iterator):
    """Collect the distinct values at the current (freshly opened) level."""
    values = []
    while not iterator.at_end:
        values.append(iterator.key())
        iterator.next()
    return values


class TestBasicNavigation:
    def test_first_level_enumerates_distinct_keys(self):
        iterator = make_iterator([(2, 1), (1, 5), (2, 9), (7, 0)])
        iterator.open()
        assert level_values(iterator) == [1, 2, 7]

    def test_second_level_scoped_to_parent(self):
        iterator = make_iterator([(1, 3), (1, 5), (2, 4)])
        iterator.open()
        iterator.seek(1)
        iterator.open()
        assert level_values(iterator) == [3, 5]

    def test_up_restores_parent_level(self):
        iterator = make_iterator([(1, 3), (1, 5), (2, 4)])
        iterator.open()
        iterator.open()
        iterator.up()
        assert iterator.key() == 1
        iterator.next()
        assert iterator.key() == 2

    def test_seek_to_existing_value(self):
        iterator = make_iterator([(1, 0), (4, 0), (9, 0)])
        iterator.open()
        iterator.seek(4)
        assert iterator.key() == 4

    def test_seek_lands_on_least_geq(self):
        iterator = make_iterator([(1, 0), (4, 0), (9, 0)])
        iterator.open()
        iterator.seek(5)
        assert iterator.key() == 9

    def test_seek_past_end(self):
        iterator = make_iterator([(1, 0), (4, 0)])
        iterator.open()
        iterator.seek(10)
        assert iterator.at_end

    def test_next_to_end(self):
        iterator = make_iterator([(1, 0)])
        iterator.open()
        iterator.next()
        assert iterator.at_end

    def test_duplicate_keys_collapse(self):
        iterator = make_iterator([(1, 0), (1, 1), (1, 2)])
        iterator.open()
        assert level_values(iterator) == [1]

    def test_current_range_is_residual_relation(self):
        iterator = make_iterator([(1, 3), (1, 5), (2, 4)])
        iterator.open()
        assert iterator.current_range() == (0, 2)
        iterator.next()
        assert iterator.current_range() == (2, 3)


class TestErrors:
    def test_empty_relation_starts_at_end(self):
        iterator = make_iterator([])
        assert iterator.at_end

    def test_open_below_max_depth(self):
        iterator = make_iterator([(1, 2)])
        iterator.open()
        iterator.open()
        with pytest.raises(RuntimeError):
            iterator.open()

    def test_up_at_root(self):
        iterator = make_iterator([(1, 2)])
        with pytest.raises(RuntimeError):
            iterator.up()

    def test_key_without_open(self):
        iterator = make_iterator([(1, 2)])
        with pytest.raises(RuntimeError):
            iterator.key()

    def test_key_at_end(self):
        iterator = make_iterator([(1, 0)])
        iterator.open()
        iterator.next()
        with pytest.raises(RuntimeError):
            iterator.key()

    def test_key_depth_validation(self):
        relation = Relation("R", ("a",), [(1,)])
        sr = SortedRelation(relation, (0,))
        with pytest.raises(ValueError):
            TrieIterator(sr, key_depth=5)


class TestSeekCounting:
    def test_seeks_are_counted(self):
        iterator = make_iterator([(1, 0), (2, 0), (3, 0)])
        iterator.open()
        before = iterator.seeks
        iterator.seek(3)
        assert iterator.seeks > before


@given(
    st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40)
)
@settings(max_examples=80)
def test_level_one_enumerates_exactly_distinct_first_columns(rows):
    iterator = make_iterator(rows)
    if not rows:
        assert iterator.at_end
        return
    iterator.open()
    assert level_values(iterator) == sorted({row[0] for row in rows})


@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=1, max_size=40
    ),
    st.integers(0, 9),
)
@settings(max_examples=80)
def test_seek_postcondition(rows, target):
    iterator = make_iterator(rows)
    iterator.open()
    iterator.seek(target)
    keys = sorted({row[0] for row in rows})
    expected = [k for k in keys if k >= target]
    if expected:
        assert iterator.key() == expected[0]
    else:
        assert iterator.at_end


@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=40
    )
)
@settings(max_examples=60)
def test_full_trie_walk_reconstructs_relation(rows):
    iterator = make_iterator(rows)
    reconstructed = set()
    iterator.open()
    while not iterator.at_end:
        first = iterator.key()
        iterator.open()
        while not iterator.at_end:
            reconstructed.add((first, iterator.key()))
            iterator.next()
        iterator.up()
        iterator.next()
    assert reconstructed == set(rows)
