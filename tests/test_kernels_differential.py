"""Differential tests: python and numpy kernel backends are bit-identical.

The kernel layer must be a pure wall-clock change: for every strategy and
query, result rows come back in the same order and every counted metric —
tuples sent, producer/consumer skew per shuffle, seeks, sort_cost, CPU
charges, wall clock, peak memory — is exactly equal, no tolerance.  This is
the invariant that lets the paper's figures be reproduced under either
backend interchangeably.
"""

import pytest

from repro.engine.kernels import use_backend
from repro.leapfrog.tributary import SeekBudgetExceeded, TributaryJoin
from repro.planner.api import run_query
from repro.planner.plans import ALL_STRATEGIES
from repro.query.parser import parse_query
from repro.storage.generators import twitter_database
from repro.storage.relation import Relation

TRIANGLE = parse_query(
    "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."
)
PROJECTION = parse_query("P(x) :- R:Twitter(x,y), S:Twitter(y,x).")
COMPARISON = parse_query(
    "C(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), x < z."
)
TWO_PATH = parse_query("P(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z).")

QUERIES = {
    "triangle": TRIANGLE,
    "projection": PROJECTION,
    "comparison": COMPARISON,
}


def assert_identical(reference, candidate):
    """Byte-identical rows and exactly equal counted metrics."""
    assert reference.rows == candidate.rows  # same rows, same order
    a, b = reference.stats, candidate.stats
    assert a.failed == b.failed
    assert a.failure == b.failure
    assert a.shuffles == b.shuffles  # tuples sent + both skews, per shuffle
    assert a.tuples_shuffled == b.tuples_shuffled
    assert a.total_cpu == b.total_cpu  # includes seeks and sort_cost charges
    assert a.wall_clock == b.wall_clock
    assert a.phases() == b.phases()
    assert a.worker_loads() == b.worker_loads()
    assert a.peak_memory == b.peak_memory
    assert a.result_count == b.result_count
    assert a.cpu_skew == b.cpu_skew


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", [0, 42])
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_all_strategies_identical_across_kernel_backends(
    strategy, seed, query_name
):
    db = twitter_database(nodes=120, edges=500, seed=seed)
    query = QUERIES[query_name]
    python = run_query(query, db, strategy=strategy, workers=6, kernels="python")
    numpy = run_query(query, db, strategy=strategy, workers=6, kernels="numpy")
    assert not python.failed
    assert_identical(python, numpy)


@pytest.mark.parametrize("seed", [0, 42])
def test_semijoin_plan_identical_across_kernel_backends(seed):
    db = twitter_database(nodes=120, edges=500, seed=seed)
    python = run_query(TWO_PATH, db, strategy="SJ_HJ", workers=6, kernels="python")
    numpy = run_query(TWO_PATH, db, strategy="SJ_HJ", workers=6, kernels="numpy")
    assert not python.failed
    assert_identical(python, numpy)


def test_oom_failure_identical_across_kernel_backends():
    """A budget violation must fail identically: same failing worker, same
    phase, same partially-accumulated stats."""
    db = twitter_database(nodes=120, edges=500, seed=1)
    python = run_query(
        TRIANGLE, db, strategy="RS_TJ", workers=4, memory_tuples=400,
        kernels="python",
    )
    numpy = run_query(
        TRIANGLE, db, strategy="RS_TJ", workers=4, memory_tuples=400,
        kernels="numpy",
    )
    assert python.failed and numpy.failed
    assert_identical(python, numpy)


def test_kernels_compose_with_parallel_runtime():
    db = twitter_database(nodes=120, edges=500, seed=7)
    python = run_query(
        TRIANGLE, db, strategy="HC_TJ", workers=6, runtime="parallel:3",
        kernels="python",
    )
    numpy = run_query(
        TRIANGLE, db, strategy="HC_TJ", workers=6, runtime="parallel:3",
        kernels="numpy",
    )
    assert_identical(python, numpy)


# ----------------------------------------------------------------------
# Seek accounting on partially-consumed iterations
# ----------------------------------------------------------------------


def _triangle_join(max_seeks=None):
    query = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x).")
    # +5 steps mod 15 close triangles (5+5+5 = 15); +1 edges add seek noise
    rows = [(i, (i + 1) % 15) for i in range(15)] + [(i, (i + 5) % 15) for i in range(15)]
    relation = Relation("R", ("a", "b"), rows)
    return TributaryJoin(
        query,
        {"R": relation, "S": relation.renamed("S"), "T": relation.renamed("T")},
        max_seeks=max_seeks,
    )


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_partial_iteration_records_seeks(backend):
    with use_backend(backend):
        exhausted = _triangle_join()
        list(exhausted.iterate())

        partial = _triangle_join()
        iterator = partial.iterate()
        next(iterator)  # consume a single result, then abandon the generator
        iterator.close()
    assert partial.stats.seeks > 0
    assert partial.stats.seeks < exhausted.stats.seeks


def test_seek_budget_abort_records_seeks():
    join = _triangle_join(max_seeks=10)
    with pytest.raises(SeekBudgetExceeded):
        list(join.iterate())
    assert join.stats.seeks > 10  # the overshooting count is recorded
