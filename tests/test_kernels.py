"""Per-kernel unit tests: python and numpy backends are interchangeable.

Every kernel in :mod:`repro.engine.kernels` must produce *identical*
outputs — same rows, same order, same bucket boundaries — under both
backends, including on the edge cases (empty inputs, zero-width
projections, replicated hypercube routing, cross products).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.engine import kernels
from repro.hypercube.config import optimize_config
from repro.hypercube.mapping import HyperCubeMapping
from repro.query.parser import parse_query
from repro.storage.relation import Relation
from repro.storage.sorted import SortedRelation


def random_rows(n, arity, hi=1000, seed=0):
    rng = random.Random(seed)
    return [tuple(rng.randrange(hi) for _ in range(arity)) for _ in range(n)]


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


def test_backend_selection_roundtrip():
    previous = kernels.get_backend()
    try:
        kernels.set_backend("python")
        assert kernels.get_backend() == "python"
        assert kernels.resolve_backend() == "python"
        assert kernels.resolve_backend("numpy") == "numpy"
        with kernels.use_backend("numpy"):
            assert kernels.get_backend() == "numpy"
        assert kernels.get_backend() == "python"
        with kernels.use_backend(None):  # no-op
            assert kernels.get_backend() == "python"
    finally:
        kernels.set_backend(previous)


def test_invalid_backend_rejected():
    with pytest.raises(ValueError):
        kernels.set_backend("cython")
    with pytest.raises(ValueError):
        kernels.resolve_backend("fortran")


def test_invalid_env_var_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "gpu")
    with pytest.raises(ValueError):
        kernels._initial_backend()
    monkeypatch.setenv("REPRO_KERNELS", "  NumPy ")
    assert kernels._initial_backend() == "numpy"


# ----------------------------------------------------------------------
# Hashing and shuffle routing
# ----------------------------------------------------------------------


@pytest.mark.parametrize("salt", [0, 1, 0xDEADBEEF])
def test_hash_rows_matches_scalar_reference(salt):
    rows = random_rows(500, 3, hi=2**31)
    for key in ([0], [1, 2], [2, 0, 1]):
        batched = kernels.hash_rows(rows, key, salt, backend="numpy")
        scalar = [kernels.hash_row([r[i] for i in key], salt) for r in rows]
        assert batched == scalar


@pytest.mark.parametrize("workers", [1, 3, 16, 64])
def test_shuffle_partition_identical_buckets(workers):
    rows = random_rows(700, 2, seed=3)
    py = kernels.shuffle_partition(rows, [0], workers, salt=5, backend="python")
    vec = kernels.shuffle_partition(rows, [0], workers, salt=5, backend="numpy")
    assert py == vec  # same rows, same order, per bucket
    assert sum(len(b) for b in vec) == len(rows)


def test_shuffle_partition_empty_and_single():
    assert kernels.shuffle_partition([], [0], 4, backend="numpy") == [[] for _ in range(4)]
    one = [(7, 8)]
    assert kernels.shuffle_partition(one, [1], 4, backend="numpy") == \
        kernels.shuffle_partition(one, [1], 4, backend="python")


def test_hypercube_partition_matches_destinations_reference():
    query = parse_query("T(x,y,z) :- R(x,y), S(y,z), T(z,x).")
    sizes = {a.alias: 1000 for a in query.atoms}
    mapping = HyperCubeMapping(optimize_config(query, sizes, 16), seed=4)
    rows = random_rows(400, 2, seed=9)
    for atom in query.atoms:
        bound, offsets = mapping.frame_routing(atom, atom.variables())
        py = kernels.hypercube_partition(rows, bound, offsets, 16, backend="python")
        vec = kernels.hypercube_partition(rows, bound, offsets, 16, backend="numpy")
        assert py == vec
        # the python loop itself must agree with the original per-row API
        reference = [[] for _ in range(16)]
        for row in rows:
            for destination in mapping.destinations(atom, row):
                reference[destination].append(row)
        assert py == reference


# ----------------------------------------------------------------------
# Sorting and sorted-array primitives
# ----------------------------------------------------------------------


@pytest.mark.parametrize("positions", [(0, 1, 2), (2, 0), (1,)])
def test_sort_projected_identical(positions):
    rows = random_rows(800, 3, hi=40, seed=1)  # many duplicate keys
    py_rows, _ = kernels.sort_projected(rows, positions, backend="python")
    none_rows, columns = kernels.sort_projected(rows, positions, backend="numpy")
    assert none_rows is None
    assert kernels.rows_from_columns(columns) == py_rows


def test_sort_projected_wide_values_fall_back_to_lexsort():
    # spans overflow the 64-bit packing, forcing the np.lexsort path
    rows = [(random.Random(5).randrange(2**40), i % 7, i) for i in range(50)]
    random.Random(6).shuffle(rows)
    rows = [(r[0] + i * 2**22, r[1], r[2]) for i, r in enumerate(rows)]
    py_rows, _ = kernels.sort_projected(rows, (0, 1, 2), backend="python")
    _, columns = kernels.sort_projected(rows, (0, 1, 2), backend="numpy")
    assert kernels.rows_from_columns(columns) == py_rows


def test_sort_projected_empty_and_zero_width():
    assert kernels.sort_projected([], (0,), backend="python")[0] == []
    _, columns = kernels.sort_projected([], (0,), backend="numpy")
    assert kernels.rows_from_columns(columns) == []
    rows = [(1, 2), (3, 4)]
    _, zero = kernels.sort_projected(rows, (), backend="numpy")
    assert kernels.rows_from_columns(zero) == [(), ()]


def test_bounds_match_python_binary_search():
    rows, _ = kernels.sort_projected(random_rows(300, 2, hi=25, seed=2), (0, 1),
                                     backend="python")
    _, columns = kernels.sort_projected(rows, (0, 1), backend="numpy")
    n = len(rows)
    for value in range(-1, 27):
        assert kernels.lower_bound(rows, 0, value, 0, n) == \
            kernels.lower_bound(None, 0, value, 0, n, columns)
        assert kernels.upper_bound(rows, 0, value, 0, n) == \
            kernels.upper_bound(None, 0, value, 0, n, columns)
    # sub-ranges sharing a first-column prefix, second-column seeks
    lo = kernels.lower_bound(rows, 0, 10, 0, n)
    hi = kernels.upper_bound(rows, 0, 10, lo, n)
    for value in range(-1, 27):
        assert kernels.lower_bound(rows, 1, value, lo, hi) == \
            kernels.lower_bound(None, 1, value, lo, hi, columns)
        assert kernels.upper_bound(rows, 1, value, lo, hi) == \
            kernels.upper_bound(None, 1, value, lo, hi, columns)


def test_distinct_prefix_count_identical():
    rows, _ = kernels.sort_projected(random_rows(400, 3, hi=12, seed=8), (0, 1, 2),
                                     backend="python")
    _, columns = kernels.sort_projected(rows, (0, 1, 2), backend="numpy")
    for length in range(4):
        assert kernels.distinct_prefix_count(rows, length) == \
            kernels.distinct_prefix_count(range(len(rows)), length, columns)
    assert kernels.distinct_prefix_count([], 1) == 0


# ----------------------------------------------------------------------
# Hash join
# ----------------------------------------------------------------------


def _join_both(left, right, lk, rk, extra):
    py = kernels.hash_join_rows(left, right, lk, rk, extra, backend="python")
    vec = kernels.hash_join_rows(left, right, lk, rk, extra, backend="numpy")
    assert py == vec
    return py


def test_hash_join_identical_with_duplicates():
    left = random_rows(300, 2, hi=30, seed=10)
    right = random_rows(250, 2, hi=30, seed=11)
    out = _join_both(left, right, [1], [0], [1])
    assert len(out) > len(left)  # duplicates fan out


def test_hash_join_output_dominated_path():
    # heavy-hitter key: output >> inputs exercises the scalar-emission path
    left = [(1, i) for i in range(200)] + [(2, 0)]
    right = [(1, j) for j in range(200)]
    out = _join_both(left, right, [0], [0], [1])
    assert len(out) == 200 * 200


def test_hash_join_cross_product_and_no_extra():
    left = random_rows(20, 2, seed=12)
    right = random_rows(15, 1, seed=13)
    assert len(_join_both(left, right, [], [], [0])) == 300
    # no new right columns: output rows are exactly the matching left rows
    out = _join_both(left, right, [0], [0], [])
    assert all(row in left for row in out)


def test_hash_join_empty_sides():
    assert kernels.hash_join_rows([], [(1,)], [0], [0], [], backend="numpy") == []
    assert kernels.hash_join_rows([(1,)], [], [0], [0], [], backend="numpy") == []


def test_hash_join_wide_keys_fall_back_to_unique():
    # key ranges too wide for 64-bit packing: np.unique id path
    left = [(i * 2**33, i % 5, i) for i in range(80)]
    right = [(i * 2**33, (i + 1) % 5, i) for i in range(80)]
    _join_both(left, right, [0, 1], [0, 1], [2])


# ----------------------------------------------------------------------
# Scan filters / projections
# ----------------------------------------------------------------------


def test_atom_selection_and_filters():
    query = parse_query("Q(x,y) :- R(x, 5, x, y).")
    atom = query.atoms[0]
    constant_filters, repeat_groups = kernels.atom_selection(atom, lambda v: v)
    assert constant_filters == [(1, 5)]
    assert [list(group) for group in repeat_groups] == [[0, 2]]
    rows = [(1, 5, 1, 9), (1, 5, 2, 9), (1, 4, 1, 9), (3, 5, 3, 0)]
    for backend in kernels.KERNEL_BACKENDS:
        filtered = kernels.filter_atom_rows(
            rows, constant_filters, repeat_groups, backend=backend
        )
        assert filtered == [(1, 5, 1, 9), (3, 5, 3, 0)]


def test_filter_atom_rows_no_filters_returns_same_object():
    rows = [(1, 2)]
    for backend in kernels.KERNEL_BACKENDS:
        assert kernels.filter_atom_rows(rows, [], [], backend=backend) is rows


def test_project_rows_identical():
    rows = random_rows(120, 4, seed=14)
    for indices in ([0, 1, 2, 3], [2, 0], [3], []):
        py = kernels.project_rows(rows, indices, backend="python")
        vec = kernels.project_rows(rows, indices, backend="numpy")
        assert py == vec
    assert kernels.project_rows([], [0], backend="numpy") == []


# ----------------------------------------------------------------------
# SortedRelation on both backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", kernels.KERNEL_BACKENDS)
def test_sorted_relation_backend_equivalence(backend):
    relation = Relation("R", ("a", "b", "c"), random_rows(300, 3, hi=15, seed=20))
    reference = SortedRelation(relation, (2, 0), backend="python")
    candidate = SortedRelation(relation, (2, 0), backend=backend)
    assert candidate.rows == reference.rows  # lazy materialization on numpy
    assert candidate.sort_cost == reference.sort_cost
    assert len(candidate) == len(reference)
    n = len(reference)
    for value in range(-1, 17):
        assert candidate.lower_bound(0, value, 0, n) == \
            reference.lower_bound(0, value, 0, n)
        assert candidate.upper_bound(0, value, 0, n) == \
            reference.upper_bound(0, value, 0, n)
        assert candidate.value_range(0, value, 0, n) == \
            reference.value_range(0, value, 0, n)
    for length in range(4):
        assert candidate.distinct_prefix_count(length) == \
            reference.distinct_prefix_count(length)
    for index in (0, n // 2, n - 1):
        for depth in range(3):
            assert candidate.key_at(depth, index) == reference.key_at(depth, index)
