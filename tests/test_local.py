"""Tests for per-worker local execution helpers."""

import pytest

from repro.engine.frame import Frame
from repro.engine.local import (
    SORT_COMPARISON_WEIGHT,
    dedup_rows,
    local_tributary_join,
    scanned_query,
)
from repro.engine.memory import MemoryBudget, OutOfMemoryError
from repro.engine.stats import ExecutionStats
from repro.query.atoms import Variable
from repro.query.parser import parse_query

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestScannedQuery:
    def test_constants_are_stripped(self):
        query = parse_query('Q(y) :- R(3, y), S(y, "joe").')
        scanned = scanned_query(query)
        assert scanned.atoms[0].terms == (Y,)
        for atom in scanned.atoms:
            assert not atom.constants()

    def test_aliases_become_relation_names(self):
        query = parse_query("Q(x,y,z) :- R:E(x,y), S:E(y,z).")
        scanned = scanned_query(query)
        assert [a.relation for a in scanned.atoms] == ["R", "S"]

    def test_comparisons_and_head_preserved(self):
        query = parse_query("Q(x) :- R(x,y), x < y.")
        scanned = scanned_query(query)
        assert scanned.comparisons == query.comparisons
        assert scanned.head == query.head

    def test_repeated_variables_collapse(self):
        query = parse_query("Q(x,y) :- R(x,x,y).")
        scanned = scanned_query(query)
        assert scanned.atoms[0].terms == (X, Y)


class TestLocalTributaryJoin:
    def _frames(self):
        return {
            "R": Frame((X, Y), [(1, 2), (2, 3)]),
            "S": Frame((Y, Z), [(2, 5), (3, 6)]),
        }

    def test_join_and_charges(self):
        query = scanned_query(parse_query("Q(x,y,z) :- R(x,y), S(y,z)."))
        stats = ExecutionStats()
        rows = local_tributary_join(query, self._frames(), 0, stats)
        assert set(rows) == {(1, 2, 5), (2, 3, 6)}
        assert stats.phase_cpu("sort") > 0
        assert stats.phase_cpu("tributary join") > 0

    def test_sort_weight_applied(self):
        query = scanned_query(parse_query("Q(x,y,z) :- R(x,y), S(y,z)."))
        stats = ExecutionStats()
        local_tributary_join(query, self._frames(), 0, stats)
        # 4 input tuples, each n log n with n=2 -> raw cost 4; weighted
        assert stats.phase_cpu("sort") == pytest.approx(
            4 * SORT_COMPARISON_WEIGHT
        )

    def test_memory_charged_before_sorting(self):
        query = scanned_query(parse_query("Q(x,y,z) :- R(x,y), S(y,z)."))
        memory = MemoryBudget(per_worker_tuples=3)
        with pytest.raises(OutOfMemoryError) as excinfo:
            local_tributary_join(
                query, self._frames(), 7, ExecutionStats(), memory=memory
            )
        assert excinfo.value.worker == 7
        assert excinfo.value.phase == "sort"

    def test_custom_phases(self):
        query = scanned_query(parse_query("Q(x,y,z) :- R(x,y), S(y,z)."))
        stats = ExecutionStats()
        local_tributary_join(
            query,
            self._frames(),
            0,
            stats,
            sort_phase="phase-a",
            join_phase="phase-b",
        )
        assert set(stats.phases()) == {"phase-a", "phase-b"}


def test_dedup_rows_preserves_order():
    assert dedup_rows([(2,), (1,), (2,), (3,), (1,)]) == [(2,), (1,), (3,)]
