"""Tests for the concurrent multi-query serving layer.

The load-bearing properties: per-query isolation (counted metrics
bit-identical to a solo run no matter what else is in flight),
deterministic scheduling under a fixed submission order, memory-governor
admission control that queues instead of OOMing, timeout/cancel eviction
that releases every resident tuple, and plan-cache sharing across
identical concurrent queries.
"""

import pytest

from repro.engine.service import (
    DEMAND_HEADROOM,
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    MemoryGovernor,
    QueryRequest,
    QueryService,
)
from repro.planner.api import run_query
from repro.planner.optimizer import PlanCache
from repro.workloads.registry import WORKLOADS
from repro.workloads.traffic import percentile, zipf_mix

WORKERS = 8

#: the unit-scale mixed workload the isolation tests serve concurrently
MIX = ("Q1", "Q7", "Q5", "Q6")


@pytest.fixture(scope="module")
def databases():
    """Unit-scale datasets, one per distinct builder (shared read-only)."""
    built = {}
    for name in MIX + ("Q3",):
        workload = WORKLOADS[name]
        if workload.unit_dataset not in built:
            built[workload.unit_dataset] = workload.dataset("unit")
    return built


def _request(name, databases, **overrides):
    workload = WORKLOADS[name]
    defaults = dict(
        query=workload.query,
        database=databases[workload.unit_dataset],
        workers=WORKERS,
        label=name,
    )
    defaults.update(overrides)
    return QueryRequest(**defaults)


def _solo(name, databases):
    workload = WORKLOADS[name]
    return run_query(
        workload.query,
        databases[workload.unit_dataset],
        strategy="auto",
        workers=WORKERS,
    )


def _counted(stats):
    """The counted-metric tuple that must be bit-identical across runs."""
    return (
        stats.result_count,
        stats.tuples_shuffled,
        stats.total_cpu,
        stats.wall_clock,
        tuple(stats.phases()),
        tuple(sorted(stats.peak_memory.items())),
    )


class TestIsolation:
    def test_concurrent_queries_match_solo_runs(self, databases):
        service = QueryService(max_inflight=4, plan_cache=PlanCache())
        for name in MIX:
            service.submit(_request(name, databases))
        outcomes = service.run_until_complete()
        assert [o.status for o in outcomes] == [STATUS_OK] * len(MIX)
        assert service.stats.peak_inflight == 4
        for outcome in outcomes:
            solo = _solo(outcome.label, databases)
            assert sorted(outcome.rows) == sorted(solo.rows)
            assert _counted(outcome.stats) == _counted(solo.stats)

    def test_interleaving_deterministic(self, databases):
        def serve():
            service = QueryService(max_inflight=3, plan_cache=PlanCache())
            for name in MIX:
                service.submit(_request(name, databases))
            return service.run_until_complete()

        first, second = serve(), serve()
        assert [o.admitted_tick for o in first] == [o.admitted_tick for o in second]
        assert [o.finished_tick for o in first] == [o.finished_tick for o in second]
        for a, b in zip(first, second):
            assert _counted(a.stats) == _counted(b.stats)

    def test_solo_service_run_matches_run_query(self, databases):
        service = QueryService(max_inflight=1, plan_cache=PlanCache())
        service.submit(_request("Q1", databases))
        (outcome,) = service.run_until_complete()
        solo = _solo("Q1", databases)
        assert sorted(outcome.rows) == sorted(solo.rows)
        assert _counted(outcome.stats) == _counted(solo.stats)


class TestGovernor:
    def test_unit_reserve_release(self):
        governor = MemoryGovernor(total=100)
        assert governor.try_reserve(1, 60)
        assert not governor.try_reserve(2, 60)
        assert governor.try_reserve(2, 40)
        assert governor.granted == 100
        governor.release(1)
        assert governor.granted == 40
        assert governor.peak_granted == 100
        assert not governor.admissible(101)
        assert governor.admissible(100)

    def test_explicit_overdemand_rejected_at_submit(self, databases):
        service = QueryService(memory_tuples=1_000, plan_cache=PlanCache())
        query_id = service.submit(
            _request("Q1", databases, memory_demand=2_000)
        )
        outcome = service.outcomes[query_id]
        assert outcome.status == STATUS_REJECTED
        assert service.stats.rejected == 1
        assert "exceeds the service budget" in outcome.detail

    def test_admission_blocks_until_grant_frees(self, databases):
        service = QueryService(
            max_inflight=4, memory_tuples=10_000, plan_cache=PlanCache()
        )
        for _ in range(2):
            service.submit(_request("Q1", databases, memory_demand=10_000))
        outcomes = service.run_until_complete()
        assert [o.status for o in outcomes] == [STATUS_OK, STATUS_OK]
        # the whole-budget demands can never overlap
        assert service.stats.peak_inflight == 1
        assert service.governor.peak_granted == 10_000
        assert outcomes[1].admitted_tick > outcomes[0].finished_tick - 1

    def test_underpredicted_grant_escalates_and_completes(self, databases):
        # Q5's HYBRID plan peaks above prediction * headroom, so its first
        # grant trips the private budget; the service must re-queue it
        # with a doubled grant instead of failing it.
        service = QueryService(
            max_inflight=4, memory_tuples=200_000, plan_cache=PlanCache()
        )
        service.submit(_request("Q5", databases))
        (outcome,) = service.run_until_complete()
        assert outcome.status == STATUS_OK
        assert outcome.retries >= 1
        assert service.stats.oom_retries >= 1
        solo = _solo("Q5", databases)
        assert _counted(outcome.stats) == _counted(solo.stats)

    def test_explicit_demand_is_a_hard_cap(self, databases):
        # an explicitly declared demand is honoured: no escalation, the
        # query fails with an OOM outcome when it exceeds its own cap
        service = QueryService(
            max_inflight=2, memory_tuples=50_000, plan_cache=PlanCache()
        )
        service.submit(_request("Q1", databases, memory_demand=10))
        (outcome,) = service.run_until_complete()
        assert outcome.status == STATUS_FAILED
        assert outcome.retries == 0
        assert "out of memory" in outcome.detail
        assert service.governor.granted == 0


class TestEviction:
    def test_timeout_rolls_back_and_releases_residency(self, databases):
        service = QueryService(max_inflight=2, plan_cache=PlanCache())
        service.submit(_request("Q1", databases, timeout_seconds=0.0))
        (outcome,) = service.run_until_complete()
        assert outcome.status == STATUS_TIMEOUT
        assert "rolled back" in outcome.detail
        assert service.stats.rounds_rolled_back >= 1
        assert outcome.rounds_completed == 0
        # eviction released every resident tuple of the private budget
        assert all(
            outcome.memory.resident(worker) == 0 for worker in range(WORKERS)
        )
        assert service.governor.granted == 0

    def test_logical_deadline_evicts_without_running(self, databases):
        service = QueryService(max_inflight=2, plan_cache=PlanCache())
        service.submit(_request("Q1", databases, deadline_ticks=0))
        (outcome,) = service.run_until_complete()
        assert outcome.status == STATUS_TIMEOUT
        assert outcome.rounds_completed == 0
        assert service.stats.rounds_executed == 0

    def test_deadline_does_not_starve_others(self, databases):
        service = QueryService(max_inflight=4, plan_cache=PlanCache())
        service.submit(_request("Q1", databases, deadline_ticks=1))
        service.submit(_request("Q7", databases))
        outcomes = service.run_until_complete()
        assert outcomes[0].status == STATUS_TIMEOUT
        assert outcomes[1].status == STATUS_OK
        solo = _solo("Q7", databases)
        assert _counted(outcomes[1].stats) == _counted(solo.stats)

    def test_cancel_queued_and_inflight(self, databases):
        service = QueryService(max_inflight=1, plan_cache=PlanCache())
        running = service.submit(_request("Q1", databases))
        queued = service.submit(_request("Q7", databases))
        service.open()
        try:
            service.step()  # admits + runs one round of the first query
            assert service.cancel(queued)  # still waiting for admission
            assert service.cancel(running)  # evicted at its next turn
            assert not service.cancel(999)
            while service.step():
                pass
        finally:
            service.close()
        assert service.outcomes[queued].status == STATUS_CANCELLED
        assert service.outcomes[running].status == STATUS_CANCELLED
        assert service.outcomes[running].rounds_completed >= 1
        assert all(
            service.outcomes[running].memory.resident(worker) == 0
            for worker in range(WORKERS)
        )
        assert service.stats.cancelled == 2
        assert not service.cancel(running)  # already finished


class TestPlanCache:
    def test_identical_queries_hit_shared_cache(self, databases):
        service = QueryService(max_inflight=4, plan_cache=PlanCache())
        for _ in range(3):
            service.submit(_request("Q1", databases))
        outcomes = service.run_until_complete()
        assert [o.status for o in outcomes] == [STATUS_OK] * 3
        assert [o.cache_hit for o in outcomes] == [False, True, True]
        assert service.stats.cache_hits == 2
        assert service.stats.cache_misses == 1
        # cached plans produce the same rows and counted metrics
        assert sorted(outcomes[0].rows) == sorted(outcomes[2].rows)
        assert _counted(outcomes[0].stats) == _counted(outcomes[2].stats)

    def test_explicit_strategy_bypasses_cache(self, databases):
        service = QueryService(max_inflight=2, plan_cache=PlanCache())
        service.submit(_request("Q1", databases, strategy="HC_TJ"))
        (outcome,) = service.run_until_complete()
        assert outcome.status == STATUS_OK
        assert outcome.strategy == "HC_TJ"
        assert service.stats.cache_hits == service.stats.cache_misses == 0


class TestTraffic:
    def test_zipf_mix_reproducible_and_skewed(self):
        names = ("Q1", "Q2", "Q3", "Q4")
        trace = zipf_mix(names, 400, exponent=1.0, seed=7)
        assert trace == zipf_mix(names, 400, exponent=1.0, seed=7)
        assert trace != zipf_mix(names, 400, exponent=1.0, seed=8)
        counts = {name: trace.count(name) for name in names}
        assert counts["Q1"] > counts["Q4"]

    def test_zipf_zero_exponent_is_roughly_uniform(self):
        trace = zipf_mix(("A", "B"), 1000, exponent=0.0, seed=1)
        assert 400 < trace.count("A") < 600

    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.99) == 99
        assert percentile(values, 1.0) == 100
        assert percentile([], 0.5) == 0.0


class TestServiceShape:
    def test_requires_positive_inflight(self):
        with pytest.raises(ValueError):
            QueryService(max_inflight=0)

    def test_unparseable_query_fails_cleanly(self, databases):
        workload = WORKLOADS["Q1"]
        service = QueryService(plan_cache=PlanCache())
        query_id = service.submit(
            QueryRequest(
                query="this is not datalog",
                database=databases[workload.unit_dataset],
                workers=WORKERS,
            )
        )
        outcomes = service.run_until_complete()
        assert service.outcomes[query_id].status == STATUS_FAILED
        assert "planning failed" in service.outcomes[query_id].detail
        assert len(outcomes) == 1

    def test_outcome_counts_cover_every_status(self, databases):
        service = QueryService(
            max_inflight=2, memory_tuples=100_000, plan_cache=PlanCache()
        )
        service.submit(_request("Q1", databases))
        service.submit(_request("Q7", databases, deadline_ticks=0))
        service.submit(_request("Q6", databases, memory_demand=200_000))
        cancelled = service.submit(_request("Q5", databases))
        service.cancel(cancelled)
        service.run_until_complete()
        counts = service.stats.outcome_counts()
        assert counts[STATUS_OK] == 1
        assert counts[STATUS_TIMEOUT] == 1
        assert counts[STATUS_REJECTED] == 1
        assert counts[STATUS_CANCELLED] == 1
        assert sum(counts.values()) == 4

    def test_headroom_constant_sane(self):
        assert DEMAND_HEADROOM >= 1.0
