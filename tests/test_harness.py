"""Tests for the experiment harness and its paper-style formatting."""

import pytest

from repro.experiments.harness import (
    figure_rows,
    format_figure,
    format_shuffle_table,
    input_size,
    run_grid,
    run_workload,
    shuffle_rows,
    table6_row,
)
from repro.planner.plans import ALL_STRATEGIES, HC_TJ, RS_HJ, RS_TJ
from repro.storage.generators import twitter_database
from repro.workloads import Q1


@pytest.fixture(scope="module")
def q1_grid():
    db = twitter_database(nodes=300, edges=1200, seed=9)
    return run_grid(Q1, db, workers=4), db


class TestRunGrid:
    def test_all_strategies_present(self, q1_grid):
        grid, _ = q1_grid
        assert set(grid.strategies()) == {s.name for s in ALL_STRATEGIES}

    def test_consistent(self, q1_grid):
        grid, _ = q1_grid
        assert grid.consistent()

    def test_best_strategy_is_a_member(self, q1_grid):
        grid, _ = q1_grid
        assert grid.best_strategy() in grid.strategies()

    def test_shared_plan_and_order(self, q1_grid):
        grid, _ = q1_grid
        assert grid.plan is not None
        assert len(grid.variable_order) == 3

    def test_subset_of_strategies(self):
        db = twitter_database(nodes=100, edges=400)
        grid = run_grid(Q1, db, workers=2, strategies=[RS_HJ, HC_TJ])
        assert set(grid.strategies()) == {"RS_HJ", "HC_TJ"}

    def test_memory_budget_propagates(self):
        db = twitter_database(nodes=300, edges=1200)
        grid = run_grid(Q1, db, workers=2, strategies=[RS_TJ], memory_tuples=10)
        assert grid["RS_TJ"].failed


class TestFormatting:
    def test_figure_rows_fields(self, q1_grid):
        grid, _ = q1_grid
        rows = figure_rows(grid)
        assert len(rows) == 6
        for row in rows:
            assert {"strategy", "wall_clock", "total_cpu", "tuples_shuffled"} <= set(row)

    def test_format_figure_contains_strategies(self, q1_grid):
        grid, _ = q1_grid
        text = format_figure(grid, "Q1 test")
        for name in ("RS_HJ", "HC_TJ", "BR_TJ"):
            assert name in text

    def test_format_figure_marks_failures(self):
        db = twitter_database(nodes=300, edges=1200)
        grid = run_grid(Q1, db, workers=2, strategies=[RS_TJ], memory_tuples=10)
        assert "FAIL" in format_figure(grid, "t")

    def test_shuffle_rows_and_table(self, q1_grid):
        grid, _ = q1_grid
        result = grid["RS_HJ"]
        rows = shuffle_rows(result)
        assert rows and all("tuples_sent" in r for r in rows)
        text = format_shuffle_table(result, "Table test")
        assert "Total" in text


class TestTable6:
    def test_row_fields(self, q1_grid):
        grid, db = q1_grid
        row = table6_row("Q1", grid, db)
        assert row["query"] == "Q1"
        assert row["tables"] == 3
        assert row["join_variables"] == 3
        assert row["cyclic"] is True
        assert row["input_size"] == 3 * len(db["Twitter"])
        assert row["rs_shuffled"] > 0
        assert row["hc_shuffled"] > 0
        assert row["rs_over_hc_time"] > 0

    def test_input_size_counts_self_join_copies(self, q1_grid):
        _, db = q1_grid
        assert input_size(Q1, db) == 3 * len(db["Twitter"])


class TestRunWorkload:
    def test_unit_scale_has_no_budget(self):
        grid = run_workload("Q4", scale="unit", workers=3, strategies=[RS_TJ])
        assert not grid["RS_TJ"].failed  # unit scale never enforces budgets

    def test_enforce_memory_flag(self):
        grid = run_workload(
            "Q1", scale="unit", workers=3, strategies=[HC_TJ], enforce_memory=True
        )
        assert not grid["HC_TJ"].failed
