"""Tests for the left-deep binary join planner."""

from repro.planner.binary import left_deep_plan, shared_variables
from repro.query.atoms import Variable
from repro.query.catalog import Catalog
from repro.query.parser import parse_query
from repro.storage.relation import Database

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def make_db(sizes):
    db = Database()
    for name, size in sizes.items():
        db.add_rows(name, ("a", "b"), [(i, i % 10) for i in range(size)])
    return db


class TestLeftDeepPlan:
    def test_starts_with_smallest_relation(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z).")
        db = make_db({"R": 1000, "S": 10})
        plan = left_deep_plan(query, Catalog(db))
        assert plan.order[0] == "S"

    def test_covers_every_atom_once(self):
        query = parse_query(
            "Q(x,y,z,p) :- R:E(x,y), S:E(y,z), T:E(z,p), K:E(p,x)."
        )
        db = make_db({"E": 100})
        plan = left_deep_plan(query, Catalog(db))
        assert sorted(plan.order) == ["K", "R", "S", "T"]

    def test_prefers_connected_atoms(self):
        # U(p, q) is disconnected from R/S; it must come last
        query = parse_query("Q(x,y,z,p,q) :- R(x,y), S(y,z), U(p,q).")
        db = make_db({"R": 100, "S": 100, "U": 1})
        plan = left_deep_plan(query, Catalog(db))
        # U is smallest so it starts, but then the planner must not be
        # forced into a cross product when a connected pair exists later;
        # all we guarantee: every consecutive prefix is as connected as
        # possible.  With U first, R and S join each other before crossing.
        assert plan.order[0] == "U"
        assert set(plan.order[1:]) == {"R", "S"}

    def test_selective_constants_shrink_start(self):
        query = parse_query('Q(y) :- R(3, x), S(x, y).')
        db = Database()
        db.add_rows("R", ("a", "b"), [(i, i) for i in range(100)])
        db.add_rows("S", ("a", "b"), [(i, i) for i in range(50)])
        plan = left_deep_plan(query, Catalog(db))
        assert plan.order[0] == "R"  # post-selection size is 1

    def test_estimated_sizes_monotone_fields(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z).")
        db = make_db({"R": 100, "S": 100})
        plan = left_deep_plan(query, Catalog(db))
        assert len(plan.estimated_sizes) == 2
        assert all(size >= 1 for size in plan.estimated_sizes)

    def test_freebase_q3_has_selective_prefix(self):
        from repro.workloads import Q3, freebase_unit

        db = freebase_unit()
        plan = left_deep_plan(Q3, Catalog(db))
        # the two selective ObjectName lookups must be joined early,
        # keeping intermediates small (the paper's Fig. 5 plan shape)
        assert plan.order[0] in ("N1", "N2")


class TestSharedVariables:
    def test_intersection_preserves_left_order(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z).")
        atom_s = query.atom_by_alias("S")
        assert shared_variables((X, Y), atom_s) == (Y,)

    def test_disjoint_is_empty(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(z,z).")
        atom_s = query.atom_by_alias("S")
        assert shared_variables((X, Y), atom_s) == ()
