"""Unit tests for relations and databases."""

import pytest

from repro.storage.relation import Database, Relation


class TestRelation:
    def test_basic_construction(self):
        relation = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        assert len(relation) == 2
        assert relation.arity == 2
        assert list(relation) == [(1, 2), (3, 4)]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Relation("R", ("a", "b"), [(1, 2, 3)])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Relation("R", (), [])

    def test_column_index(self):
        relation = Relation("R", ("a", "b"))
        assert relation.column_index("b") == 1
        with pytest.raises(KeyError):
            relation.column_index("missing")

    def test_select(self):
        relation = Relation("R", ("a", "b"), [(1, 2), (1, 3), (2, 2)])
        selected = relation.select(0, 1)
        assert selected.rows == [(1, 2), (1, 3)]

    def test_filter(self):
        relation = Relation("R", ("a", "b"), [(1, 2), (3, 1)])
        assert relation.filter(lambda row: row[0] < row[1]).rows == [(1, 2)]

    def test_project_keeps_duplicates_by_default(self):
        relation = Relation("R", ("a", "b"), [(1, 2), (1, 3)])
        assert relation.project([0]).rows == [(1,), (1,)]

    def test_project_dedup(self):
        relation = Relation("R", ("a", "b"), [(1, 2), (1, 3)])
        assert relation.project([0], dedup=True).rows == [(1,)]

    def test_project_reorders_columns(self):
        relation = Relation("R", ("a", "b"), [(1, 2)])
        projected = relation.project([1, 0])
        assert projected.columns == ("b", "a")
        assert projected.rows == [(2, 1)]

    def test_distinct(self):
        relation = Relation("R", ("a",), [(1,), (1,), (2,)])
        assert relation.distinct().rows == [(1,), (2,)]

    def test_renamed_shares_rows(self):
        relation = Relation("R", ("a",), [(1,)])
        renamed = relation.renamed("S")
        assert renamed.name == "S"
        assert renamed.rows is relation.rows


class TestDatabase:
    def test_add_and_get(self):
        db = Database()
        db.add_rows("R", ("a",), [(1,)])
        assert len(db["R"]) == 1
        assert "R" in db
        assert "S" not in db

    def test_unknown_relation_raises_helpfully(self):
        db = Database()
        db.add_rows("R", ("a",), [])
        with pytest.raises(KeyError, match="known"):
            db["S"]

    def test_string_encoding_is_stable(self):
        db = Database()
        code1 = db.encode("Joe Pesci")
        code2 = db.encode("Joe Pesci")
        assert code1 == code2
        assert db.decode(code1) == "Joe Pesci"

    def test_distinct_strings_get_distinct_codes(self):
        db = Database()
        assert db.encode("a") != db.encode("b")

    def test_integers_pass_through(self):
        db = Database()
        assert db.encode(17) == 17
        assert db.decode(17) == 17

    def test_encoded_codes_avoid_small_int_collisions(self):
        db = Database()
        assert db.encode("x") >= 1_000_000_000

    def test_add_encoded(self):
        db = Database()
        db.add_encoded("Name", ("id", "name"), [(1, "joe"), (2, "bob")])
        rows = db["Name"].rows
        assert rows[0][0] == 1
        assert db.decode(rows[0][1]) == "joe"

    def test_total_rows_and_names(self):
        db = Database()
        db.add_rows("R", ("a",), [(1,), (2,)])
        db.add_rows("S", ("a",), [(3,)])
        assert db.total_rows() == 3
        assert db.names() == ("R", "S")
