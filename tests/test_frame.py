"""Tests for variable-labelled frames and the atom scan."""

import pytest

from repro.engine.frame import Frame, atom_frame, frame_relation
from repro.query.atoms import Atom, Constant, Variable
from repro.storage.relation import Database, Relation

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestFrame:
    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            Frame((X, X), [])

    def test_index_lookup(self):
        frame = Frame((X, Y), [(1, 2)])
        assert frame.index_of(Y) == 1
        assert frame.indices_of([Y, X]) == (1, 0)
        with pytest.raises(KeyError):
            frame.index_of(Z)

    def test_project(self):
        frame = Frame((X, Y), [(1, 2), (1, 3)])
        projected = frame.project([X])
        assert projected.variables == (X,)
        assert projected.rows == [(1,), (1,)]

    def test_project_dedup(self):
        frame = Frame((X, Y), [(1, 2), (1, 3)])
        assert frame.project([X], dedup=True).rows == [(1,)]

    def test_empty_like(self):
        frame = Frame((X, Y), [(1, 2)])
        empty = frame.empty_like()
        assert empty.variables == (X, Y)
        assert len(empty) == 0


class TestAtomFrame:
    def _encoder(self):
        return Database().encode

    def test_plain_scan_relabels_columns(self):
        relation = Relation("R", ("a", "b"), [(1, 2)])
        frame = atom_frame(Atom("R", (X, Y)), relation, self._encoder())
        assert frame.variables == (X, Y)
        assert frame.rows == [(1, 2)]

    def test_constant_selection(self):
        relation = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        frame = atom_frame(Atom("R", (Constant(3), Y)), relation, self._encoder())
        assert frame.variables == (Y,)
        assert frame.rows == [(4,)]

    def test_string_constant_uses_encoder(self):
        db = Database()
        db.add_encoded("Name", ("id", "name"), [(1, "joe"), (2, "bob")])
        frame = atom_frame(
            Atom("Name", (X, Constant("joe"))), db["Name"], db.encode
        )
        assert frame.rows == [(1,)]

    def test_repeated_variable_filters_equal_columns(self):
        relation = Relation("R", ("a", "b"), [(1, 1), (1, 2), (5, 5)])
        frame = atom_frame(Atom("R", (X, X)), relation, self._encoder())
        assert frame.variables == (X,)
        assert frame.rows == [(1,), (5,)]

    def test_variable_order_follows_first_occurrence(self):
        relation = Relation("R", ("a", "b", "c"), [(1, 2, 3)])
        frame = atom_frame(Atom("R", (Y, X, Z)), relation, self._encoder())
        assert frame.variables == (Y, X, Z)
        assert frame.rows == [(1, 2, 3)]


def test_frame_relation_roundtrip():
    frame = Frame((X, Y), [(1, 2), (3, 4)])
    relation = frame_relation(frame, "I")
    assert relation.columns == ("x", "y")
    assert relation.rows == frame.rows
