"""Tests for Algorithm 1 (integral HyperCube configuration search)."""

import math

import pytest

from repro.hypercube.config import (
    HyperCubeConfig,
    config_from_sizes,
    config_workload,
    enumerate_configs,
    optimize_config,
    round_down_config,
)
from repro.hypercube.shares import optimal_fractional_workload
from repro.query.atoms import Variable
from repro.query.parser import parse_query

TRIANGLE = parse_query("T(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")
CLIQUE4 = parse_query(
    "C(x,y,z,p) :- R:E(x,y), S:E(y,z), T:E(z,p), P:E(p,x), K:E(x,z), L:E(y,p)."
)


def uniform(query, size=10**6):
    return {atom.alias: size for atom in query.atoms}


class TestEnumeration:
    def test_all_products_within_budget(self):
        variables = [Variable(n) for n in "abc"]
        for sizes in enumerate_configs(variables, 12):
            assert math.prod(sizes) <= 12
            assert all(s >= 1 for s in sizes)

    def test_count_for_one_variable(self):
        assert len(list(enumerate_configs([Variable("a")], 5))) == 5

    def test_zero_variables_yields_empty_config(self):
        assert list(enumerate_configs([], 10)) == [()]


class TestOptimizeConfig:
    def test_triangle_p64_is_4x4x4(self):
        config = optimize_config(TRIANGLE, uniform(TRIANGLE), 64)
        assert sorted(config.dim_sizes()) == [4, 4, 4]
        assert config.workers_used == 64

    def test_paper_example_p63(self):
        # paper Sec. 4 / Fig. 11b: rounding down gives 3x3x3 (ratio 1.76),
        # the practical algorithm reaches ratio ~1.06
        cards = uniform(TRIANGLE)
        ours = optimize_config(TRIANGLE, cards, 63)
        down = round_down_config(TRIANGLE, cards, 63)
        optimal = optimal_fractional_workload(TRIANGLE, cards, 63)
        ours_ratio = config_workload(TRIANGLE, cards, ours) / optimal
        down_ratio = config_workload(TRIANGLE, cards, down) / optimal
        assert down.dim_sizes() == (3, 3, 3)
        assert down_ratio == pytest.approx(1.76, abs=0.02)
        assert ours_ratio == pytest.approx(1.06, abs=0.02)

    def test_paper_example_clique_on_15_servers(self):
        # paper Sec. 4: fractional shares 15**(1/4) ~ 1.96 all round to 1,
        # collapsing the cube to a single worker; Algorithm 1 keeps
        # parallelism by searching integral configurations directly
        cards = uniform(CLIQUE4)
        down = round_down_config(CLIQUE4, cards, 15)
        assert down.workers_used == 1
        ours = optimize_config(CLIQUE4, cards, 15)
        assert ours.workers_used > 1
        assert config_workload(CLIQUE4, cards, ours) < config_workload(
            CLIQUE4, cards, down
        )

    def test_never_exceeds_worker_budget(self):
        for workers in (2, 5, 7, 16, 63, 64, 65):
            config = optimize_config(TRIANGLE, uniform(TRIANGLE), workers)
            assert config.workers_used <= workers

    def test_tie_break_prefers_even_dimensions(self):
        # A(x, y) self-join where x and y are symmetric: 2x2 and 1x4 give
        # the same expected load but 2x2 must win (more skew-resilient)
        query = parse_query("Q(x,y) :- A(x,y), B(y,x).")
        config = optimize_config(query, {"A": 1000, "B": 1000}, 4)
        assert sorted(config.dim_sizes()) == [2, 2]

    def test_skewed_sizes_choose_broadcast_pattern(self):
        # Q7-like: one tiny relation, three large sharing one variable ->
        # the optimal configuration is 1 x p (paper App. A, Q7: "1 x 64")
        query = parse_query(
            "Q(a) :- N(aw, c), HA(h, aw), HC(h, a), HY(h, y)."
        )
        cards = {"N": 1, "HA": 90_000, "HC": 120_000, "HY": 17_000}
        config = optimize_config(query, cards, 64)
        dims = {v.name: d for v, d in config.dims.items()}
        assert dims["h"] == 64
        assert dims["aw"] == 1

    def test_beats_or_matches_round_down_everywhere(self):
        for workers in (3, 8, 15, 31, 63, 64):
            for query in (TRIANGLE, CLIQUE4):
                cards = uniform(query)
                ours = config_workload(
                    query, cards, optimize_config(query, cards, workers)
                )
                down = config_workload(
                    query, cards, round_down_config(query, cards, workers)
                )
                assert ours <= down + 1e-9


class TestConfigObject:
    def test_dimensionality_counts_nontrivial_dims(self):
        config = config_from_sizes(TRIANGLE, (4, 1, 4))
        assert config.dimensionality() == 2
        assert config.workers_used == 16

    def test_dim_lookup_defaults_to_one(self):
        config = config_from_sizes(TRIANGLE, (4, 4, 4))
        assert config.dim(Variable("nope")) == 1

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            HyperCubeConfig("Q", (Variable("x"),), {Variable("x"): 0})

    def test_size_count_must_match_join_variables(self):
        with pytest.raises(ValueError):
            config_from_sizes(TRIANGLE, (4, 4))
