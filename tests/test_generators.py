"""Tests for the synthetic dataset generators."""

from collections import Counter

from repro.storage.generators import (
    ACADEMY_AWARDS,
    JOE_PESCI,
    ROBERT_DE_NIRO,
    FreebaseConfig,
    freebase_database,
    random_relation,
    twitter_database,
    twitter_graph,
)


class TestTwitter:
    def test_deterministic(self):
        a = twitter_graph(nodes=500, edges=2000, seed=3)
        b = twitter_graph(nodes=500, edges=2000, seed=3)
        assert a.rows == b.rows

    def test_different_seeds_differ(self):
        a = twitter_graph(nodes=500, edges=2000, seed=3)
        b = twitter_graph(nodes=500, edges=2000, seed=4)
        assert a.rows != b.rows

    def test_no_self_loops_or_duplicates(self):
        graph = twitter_graph(nodes=300, edges=1500)
        assert all(src != dst for src, dst in graph.rows)
        assert len(set(graph.rows)) == len(graph.rows)

    def test_edge_count_close_to_target(self):
        graph = twitter_graph(nodes=2000, edges=5000)
        assert 0.9 * 5000 <= len(graph) <= 5000

    def test_power_law_skew_present(self):
        graph = twitter_graph(nodes=2000, edges=10000)
        in_degrees = Counter(dst for _, dst in graph.rows)
        top = max(in_degrees.values())
        average = len(graph) / len(in_degrees)
        # hubs must be far above average for the paper's skew results
        assert top > 10 * average

    def test_two_path_blowup(self):
        # the Q1 intermediate must dwarf the input (paper: ~45x)
        graph = twitter_graph()
        out_d = Counter(s for s, _ in graph.rows)
        in_d = Counter(d for _, d in graph.rows)
        paths = sum(in_d[v] * out_d.get(v, 0) for v in in_d)
        assert paths > 20 * len(graph)

    def test_database_wrapper(self):
        db = twitter_database(nodes=200, edges=500)
        assert "Twitter" in db
        assert db["Twitter"].columns == ("src", "dst")


class TestFreebase:
    def test_deterministic(self):
        cfg = FreebaseConfig(seed=5)
        a = freebase_database(cfg)
        b = freebase_database(cfg)
        assert a["ActorPerform"].rows == b["ActorPerform"].rows

    def test_all_relations_present(self):
        db = freebase_database()
        for name in (
            "ObjectName",
            "ActorPerform",
            "PerformFilm",
            "DirectorFilm",
            "HonorAward",
            "HonorActor",
            "HonorYear",
        ):
            assert name in db

    def test_objectname_is_largest(self):
        db = freebase_database()
        sizes = {name: len(rel) for name, rel in db.relations().items()}
        assert sizes["ObjectName"] == max(sizes.values())

    def test_named_entities_are_selective(self):
        db = freebase_database()
        for name in (JOE_PESCI, ROBERT_DE_NIRO, ACADEMY_AWARDS):
            code = db.encode(name)
            matches = [r for r in db["ObjectName"].rows if r[1] == code]
            assert len(matches) == 1

    def test_joe_and_deniro_costar(self):
        db = freebase_database()
        joe = db.encode(JOE_PESCI)
        deniro = db.encode(ROBERT_DE_NIRO)
        joe_id = next(r[0] for r in db["ObjectName"].rows if r[1] == joe)
        deniro_id = next(r[0] for r in db["ObjectName"].rows if r[1] == deniro)
        perf_film = dict(db["PerformFilm"].rows)
        films_of = lambda actor: {
            perf_film[p] for a, p in db["ActorPerform"].rows if a == actor
        }
        assert films_of(joe_id) & films_of(deniro_id)

    def test_named_actors_in_zipf_tail(self):
        db = freebase_database()
        joe = db.encode(JOE_PESCI)
        joe_id = next(r[0] for r in db["ObjectName"].rows if r[1] == joe)
        joe_perfs = sum(1 for a, _ in db["ActorPerform"].rows if a == joe_id)
        assert joe_perfs <= 20  # selective, not a superstar

    def test_id_ranges_disjoint(self):
        db = freebase_database()
        actors = {a for a, _ in db["ActorPerform"].rows}
        perfs = {p for _, p in db["ActorPerform"].rows}
        films = {f for _, f in db["PerformFilm"].rows}
        directors = {d for d, _ in db["DirectorFilm"].rows}
        assert not actors & perfs
        assert not perfs & films
        assert not films & directors

    def test_honor_years_in_range(self):
        db = freebase_database()
        years = {y for _, y in db["HonorYear"].rows}
        assert min(years) >= 1960 and max(years) < 2015

    def test_every_performance_has_one_film_and_actor(self):
        db = freebase_database()
        ap = Counter(p for _, p in db["ActorPerform"].rows)
        pf = Counter(p for p, _ in db["PerformFilm"].rows)
        assert set(ap) == set(pf)
        assert max(ap.values()) == 1
        assert max(pf.values()) == 1


def test_random_relation_shape_and_determinism():
    a = random_relation("R", 3, 50, 10, seed=1)
    b = random_relation("R", 3, 50, 10, seed=1)
    assert a.rows == b.rows
    assert a.arity == 3
    assert len(a) == 50
    assert all(0 <= v < 10 for row in a.rows for v in row)
