"""Tests for the Sec. 5 variable-order cost model."""

import pytest

from repro.leapfrog.tributary import TributaryJoin
from repro.leapfrog.variable_order import (
    best_join_order,
    enumerate_join_orders,
    estimate_order_cost,
    full_variable_order,
)
from repro.query.atoms import Variable
from repro.query.catalog import Catalog
from repro.query.parser import parse_query
from repro.storage.generators import twitter_graph
from repro.storage.relation import Database

X, Y, Z, U = Variable("x"), Variable("y"), Variable("z"), Variable("u")


def chain_database(a_fanout=1, b_fanout=50):
    """R(x, y): few x many y; S(y, z): each y to b_fanout z values."""
    db = Database()
    db.add_rows("R", ("a", "b"), [(i, j) for i in range(3) for j in range(10)])
    db.add_rows(
        "S", ("a", "b"), [(j, 100 + j * b_fanout + k) for j in range(10) for k in range(b_fanout)]
    )
    return db


class TestCostModel:
    def test_first_step_is_min_active_domain(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z).")
        db = chain_database()
        catalog = Catalog(db)
        cost = estimate_order_cost(query, catalog, (Y,))
        # y has 10 distinct values in both R and S
        assert cost.step_sizes[0] == 10

    def test_residual_ratio_estimate(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z).")
        db = chain_database(b_fanout=50)
        catalog = Catalog(db)
        # after fixing y, S contributes V(S,(y,z))/V(S,(y)) = 500/10 = 50
        # and R contributes V(R,(y,x))/V(R,(y)) = 30/10 = 3 on variable x
        cost_yx = estimate_order_cost(query, catalog, (Y, X))
        assert cost_yx.step_sizes == (10.0, 3.0)

    def test_cost_is_sum_of_prefix_products(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z).")
        catalog = Catalog(chain_database())
        cost = estimate_order_cost(query, catalog, (Y, X))
        s1, s2 = cost.step_sizes
        assert cost.cost == pytest.approx(s1 + s1 * s2)

    def test_orders_with_lower_cost_do_fewer_seeks(self):
        # a skewed graph where starting from the high-fanout side is bad
        graph = twitter_graph(nodes=400, edges=1500, seed=2)
        db = Database()
        db.add(graph)
        catalog = Catalog(db)
        query = parse_query(
            "Q(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."
        )
        costs = {}
        seeks = {}
        for order in enumerate_join_orders(query):
            estimate = estimate_order_cost(query, catalog, order)
            join = TributaryJoin(
                query,
                {a.alias: graph for a in query.atoms},
                order=full_variable_order(query, order),
            )
            join.run()
            costs[order] = estimate.cost
            seeks[order] = join.total_seeks()
        best_by_model = min(costs, key=lambda o: costs[o])
        worst_by_model = max(costs, key=lambda o: costs[o])
        # the model must rank the extremes consistently with reality
        assert seeks[best_by_model] <= seeks[worst_by_model]


class TestEnumeration:
    def test_exhaustive_enumeration_counts(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x).")
        orders = list(enumerate_join_orders(query))
        assert len(orders) == 6
        assert len(set(orders)) == 6

    def test_limit_truncates(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z), T(z,x).")
        assert len(list(enumerate_join_orders(query, limit=2))) == 2

    def test_sampling_is_deterministic_and_distinct(self):
        query = parse_query(
            "Q(a,b,c,d) :- R(a,b), S(b,c), T(c,d), U(d,a)."
        )
        sample1 = list(enumerate_join_orders(query, sample=5, seed=9))
        sample2 = list(enumerate_join_orders(query, sample=5, seed=9))
        assert sample1 == sample2
        assert len(set(sample1)) == 5


class TestBestOrder:
    def test_best_order_minimizes_model_cost(self):
        query = parse_query("Q(x,y,z) :- R(x,y), S(y,z).")
        catalog = Catalog(chain_database())
        best = best_join_order(query, catalog)
        for order in enumerate_join_orders(query):
            assert best.cost <= estimate_order_cost(query, catalog, order).cost

    def test_query_without_join_variables(self):
        query = parse_query("Q(x) :- R(x,y).")
        catalog = Catalog(chain_database())
        best = best_join_order(query, catalog)
        assert best.order == ()
        assert best.cost == 0.0

    def test_sampling_kicks_in_for_many_variables(self):
        query = parse_query(
            "Q(a,b,c,d,e) :- R1(a,b), R2(b,c), R3(c,d), R4(d,e), R5(e,a)."
        )
        db = Database()
        for atom in query.atoms:
            db.add_rows(atom.relation, ("u", "v"), [(1, 2), (2, 3)])
        best = best_join_order(query, Catalog(db), limit=10)
        assert len(best.order) == 5  # all five join variables ordered


class TestFullOrder:
    def test_appends_non_join_variables(self):
        query = parse_query("Q(x) :- R(x,y), S(y,u).")
        order = full_variable_order(query, (Y,))
        assert order[0] == Y
        assert set(order) == {X, Y, U}

    def test_idempotent_when_complete(self):
        query = parse_query("Q(x,y) :- R(x,y), S(y,x).")
        assert full_variable_order(query, (X, Y)) == (X, Y)
