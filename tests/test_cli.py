"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import (
    EXIT_FAULT,
    EXIT_OK,
    EXIT_OOM,
    EXIT_USAGE,
    build_parser,
    main,
)

TRIANGLE = "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", TRIANGLE])
        assert args.dataset == "twitter"
        assert args.strategy == "HC_TJ"

    def test_grid_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["grid", "Q99"])

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain", TRIANGLE])
        assert args.strategy == "HC_TJ"
        assert args.analyze is False
        assert args.workers == 16


class TestCommands:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", TRIANGLE, "--workers", "4", "--show-rows", "2"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "tuples shuffled" in captured
        assert "hypercube" in captured

    def test_run_prints_memory_and_phases(self, capsys):
        code = main(["run", TRIANGLE, "--workers", "4", "--strategy", "RS_HJ"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "peak memory" in captured
        assert "phases:" in captured
        assert "step1:shuffle" in captured
        assert "step1:join" in captured

    def test_explain_renders_plan(self, capsys):
        code = main(["explain", TRIANGLE, "--workers", "4",
                     "--strategy", "RS_HJ"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "left-deep plan" in captured
        assert "physical plan" in captured
        assert "exchange[regular]" in captured
        assert "hash-join" in captured

    def test_explain_analyze_annotates_and_conserves(self, capsys):
        code = main(["explain", TRIANGLE, "--workers", "4",
                     "--strategy", "HC_TJ", "--analyze"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "(analyzed)" in captured
        assert "tuples in=" in captured
        assert "totals: cpu=" in captured
        assert "peak memory" in captured

    def test_grid_unit_scale(self, capsys):
        code = main(["grid", "Q7", "--workers", "4", "--scale", "unit"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "HC_TJ" in captured
        assert "consistent: True" in captured

    def test_config_for_workload(self, capsys):
        code = main(["config", "Q1", "--workers", "64", "--scale", "unit"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "fractional shares" in captured
        assert "Algorithm 1" in captured

    def test_config_for_adhoc_query(self, capsys):
        code = main(
            ["config", "Q(x,y) :- R(x,y), S(y,x).", "--workers", "4"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "Algorithm 1" in captured

    def test_workloads_listing(self, capsys):
        code = main(["workloads"])
        captured = capsys.readouterr().out
        assert code == 0
        for name in ("Q1", "Q4", "Q8"):
            assert name in captured

    def test_serve_mixed_traffic(self, capsys):
        code = main(["serve", "--queries", "6", "--concurrency", "3",
                     "--scale", "unit", "--workers", "4",
                     "--workloads", "Q1,Q7", "--seed", "3",
                     "--show-outcomes"])
        captured = capsys.readouterr().out
        assert code == EXIT_OK
        assert "ok=6" in captured
        assert "throughput" in captured
        assert "p99" in captured
        assert "plan cache:" in captured

    def test_serve_rejects_unknown_workload(self, capsys):
        code = main(["serve", "--queries", "2", "--workloads", "Q99"])
        assert code == EXIT_USAGE
        assert "Q99" in capsys.readouterr().err

    def test_unknown_dataset_exits(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            args = parser.parse_args(["run", TRIANGLE, "--dataset", "nope"])


class TestExitCodes:
    """Each documented failure class maps to its own exit code."""

    def test_unknown_strategy_is_usage_error(self, capsys):
        code = main(["run", TRIANGLE, "--workers", "4",
                     "--strategy", "WAT_HJ"])
        assert code == EXIT_USAGE
        assert "WAT_HJ" in capsys.readouterr().err

    def test_oom_abort(self, capsys):
        code = main(["run", TRIANGLE, "--workers", "4",
                     "--strategy", "RS_HJ", "--memory-tuples", "10"])
        captured = capsys.readouterr().out
        assert code == EXIT_OOM
        assert "FAILED" in captured

    def test_fault_abort(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"kind": "crash", "round": "step 1",'
            ' "worker": 1}]}'
        )
        code = main(["run", TRIANGLE, "--workers", "4",
                     "--strategy", "RS_HJ",
                     "--faults", str(plan), "--recovery", "fail"])
        captured = capsys.readouterr().out
        assert code == EXIT_FAULT
        assert "injected crash" in captured

    def test_fault_recovered_is_success(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"kind": "crash", "round": "step 1",'
            ' "worker": 1}]}'
        )
        code = main(["run", TRIANGLE, "--workers", "4",
                     "--strategy", "RS_HJ",
                     "--faults", str(plan), "--recovery", "retry"])
        captured = capsys.readouterr().out
        assert code == EXIT_OK
        assert "recovery:" in captured
        assert "1 fault(s) injected" in captured

    def test_unreadable_fault_plan_is_usage_error(self, capsys):
        code = main(["run", TRIANGLE, "--workers", "4",
                     "--faults", "/no/such/plan.json"])
        assert code == EXIT_USAGE
        assert "plan.json" in capsys.readouterr().err

    def test_bad_recovery_spec_is_usage_error(self, capsys):
        code = main(["run", TRIANGLE, "--workers", "4",
                     "--recovery", "retry:lots"])
        assert code == EXIT_USAGE

    def test_explain_analyze_fault_abort(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"faults": [{"kind": "crash", "round": "step 1",'
            ' "worker": 0, "attempts": [0, 1, 2]}]}'
        )
        code = main(["explain", TRIANGLE, "--workers", "4",
                     "--strategy", "RS_HJ", "--analyze",
                     "--faults", str(plan), "--recovery", "retry:2"])
        assert code == EXIT_FAULT


def test_fractional_edge_packing_triangle():
    from repro.query.hypergraph import Hypergraph
    from repro.query.parser import parse_query

    triangle = parse_query("T(x,y,z) :- R:E(x,y), S:E(y,z), T:E(z,x).")
    packing = Hypergraph(triangle).fractional_edge_packing()
    assert sum(packing.values()) == pytest.approx(1.5, rel=1e-6)
    # per-vertex capacity respected
    for vertex in ("x", "y", "z"):
        covering = sum(
            weight
            for alias, weight in packing.items()
            for atom_vars in [
                {v.name for v in triangle.atom_by_alias(alias).variables()}
            ]
            if vertex in atom_vars
        )
        assert covering <= 1 + 1e-9
