"""Metric-conservation tests for EXPLAIN ANALYZE.

The attribution contract: every work unit the simulator charges is owned by
exactly one operator annotation, so the per-operator charges sum to
``total_cpu`` exactly, and every shuffled tuple is owned by exactly one
exchange annotation, so the per-exchange counts sum to ``tuples_shuffled``.
These hold for all six grid strategies and the semijoin plan, on cyclic and
acyclic workloads.  A mid-plan OOM leaves a partial trace whose charges
under-cover ``total_cpu`` by exactly the in-flight operator's work — the
trace never over-attributes.
"""

import pytest

from repro.engine.cluster import Cluster
from repro.planner.executor import execute
from repro.planner.explain import annotate_plan, explain_analyze
from repro.planner.physical import Exchange, lower
from repro.planner.plans import ALL_STRATEGIES
from repro.query.catalog import Catalog
from repro.query.parser import parse_query
from repro.storage.generators import twitter_database
from repro.workloads.registry import get_workload

GRID = [s.name for s in ALL_STRATEGIES]
TRIANGLE = "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."

_DATASETS: dict = {}


def unit_dataset(name):
    if name not in _DATASETS:
        _DATASETS[name] = get_workload(name).dataset("unit")
    return _DATASETS[name]


def analyzed(workload_name, strategy):
    workload = get_workload(workload_name)
    return explain_analyze(
        workload.query, unit_dataset(workload_name),
        strategy=strategy, workers=4,
    )


def assert_conserved(plan):
    stats = plan.stats
    assert sum(plan.operator_charges()) == pytest.approx(
        stats.total_cpu, abs=1e-9
    )
    sent = sum(
        a.shuffle.tuples_sent for a in plan.annotations if a.shuffle is not None
    )
    assert sent == stats.tuples_shuffled


# Q1 is the cyclic triangle; Q7 is acyclic so SJ_HJ applies as well.
CASES = [("Q1", s) for s in GRID] + [("Q7", s) for s in GRID + ["SJ_HJ"]]


@pytest.mark.parametrize("workload_name,strategy", CASES)
def test_charges_conserve(workload_name, strategy):
    plan = analyzed(workload_name, strategy)
    assert not plan.result.failed
    assert_conserved(plan)


@pytest.mark.parametrize("strategy", GRID)
def test_one_annotation_per_operator(strategy):
    plan = analyzed("Q1", strategy)
    assert len(plan.annotations) == len(list(plan.physical.operators()))
    # every annotation points at a real operator slot in the plan
    for annotation in plan.annotations:
        round_ = plan.physical.rounds[annotation.round_index]
        op = round_.ops[annotation.op_index]
        assert annotation.describe == op.describe()


def test_local_phases_uniquely_owned():
    catalog = Catalog(unit_dataset("Q1"))
    for strategy in GRID:
        physical = lower(get_workload("Q1").query, strategy, catalog)
        owners = physical.local_phase_owners()
        assert owners  # at least one charged local phase per plan


def test_exchange_wall_is_shared_phase_wall():
    plan = analyzed("Q1", "RS_HJ")
    stats = plan.stats
    for annotation in plan.annotations:
        if annotation.shuffle is None or annotation.skipped:
            continue
        round_ = plan.physical.rounds[annotation.round_index]
        op = round_.ops[annotation.op_index]
        assert isinstance(op, Exchange)
        assert annotation.wall == stats.phase_wall(op.phase)


def test_skipped_anchor_charges_nothing():
    plan = analyzed("Q1", "BR_HJ")
    skipped = [a for a in plan.annotations if a.skipped]
    assert len(skipped) == 1  # the anchor's elided broadcast
    assert skipped[0].cpu == 0.0 and skipped[0].wall == 0.0
    assert skipped[0].shuffle is None
    assert_conserved(plan)


def test_oom_partial_trace_never_overattributes():
    plan = explain_analyze(
        TRIANGLE,
        twitter_database(nodes=200, edges=900, seed=5),
        strategy="RS_HJ",
        workers=4,
        memory_tuples=700,
    )
    assert plan.result.failed
    # the trace stops before the operator that blew the budget; completed
    # operators own their charges, and the uncovered remainder is exactly
    # the work the in-flight operator charged before the failure
    assert len(plan.annotations) < len(list(plan.physical.operators()))
    charged = sum(plan.operator_charges())
    assert charged <= plan.stats.total_cpu
    failing_phase = plan.stats.failure.split("'")[1]
    assert charged + plan.stats.phase_cpu(failing_phase) == pytest.approx(
        plan.stats.total_cpu, abs=1e-9
    )


def test_annotate_plan_on_manual_execution():
    query = parse_query(TRIANGLE)
    cluster = Cluster(4)
    cluster.load(twitter_database(nodes=200, edges=900, seed=5))
    trace = []
    strategy = next(s for s in ALL_STRATEGIES if s.name == "HC_TJ")
    result = execute(query, cluster, strategy, trace=trace)
    plan = annotate_plan(result.physical, result, trace)
    assert_conserved(plan)


def test_render_reports_totals_and_memory():
    plan = analyzed("Q1", "HC_TJ")
    text = plan.render()
    assert "(analyzed)" in text
    assert "totals: cpu=" in text
    assert "peak memory:" in text
    assert f"results={plan.stats.result_count:,}" in text


def test_failed_render_is_marked():
    plan = explain_analyze(
        TRIANGLE,
        twitter_database(nodes=200, edges=900, seed=5),
        strategy="RS_HJ",
        workers=4,
        memory_tuples=700,
    )
    assert "FAILED:" in plan.render()


def test_accepts_parsed_query():
    parsed = parse_query(TRIANGLE)
    plan = explain_analyze(
        parsed, twitter_database(nodes=200, edges=900, seed=5),
        strategy="RS_HJ", workers=4,
    )
    assert plan.physical.query is parsed
    assert_conserved(plan)
