"""Tests for the B+-tree substrate (the LogicBlox storage layout)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BPlusTree

row_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=120
)


class TestInsertion:
    def test_insert_and_iterate_sorted(self):
        tree = BPlusTree(branching=4)
        rows = [(3, 1), (1, 2), (2, 0), (1, 1)]
        for row in rows:
            assert tree.insert(row)
        assert list(tree) == sorted(rows)
        tree.check_invariants()

    def test_duplicates_rejected(self):
        tree = BPlusTree(branching=4)
        assert tree.insert((1, 1))
        assert not tree.insert((1, 1))
        assert len(tree) == 1

    def test_splits_maintain_invariants(self):
        tree = BPlusTree(branching=4)
        for i in range(200):
            tree.insert((i * 37 % 199, i))
        tree.check_invariants()
        assert tree.height > 1

    def test_branching_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(branching=2)

    @given(row_lists)
    @settings(max_examples=50)
    def test_matches_set_semantics(self, rows):
        tree = BPlusTree(branching=4)
        for row in rows:
            tree.insert(row)
        assert list(tree) == sorted(set(rows))
        tree.check_invariants()


class TestBulkBuild:
    def test_bulk_matches_insertion(self):
        rows = sorted({(i % 17, i % 5) for i in range(100)})
        bulk = BPlusTree.bulk_build(rows, branching=4)
        assert list(bulk) == rows
        bulk.check_invariants()

    def test_bulk_build_empty(self):
        tree = BPlusTree.bulk_build([])
        assert len(tree) == 0
        assert list(tree) == []

    def test_bulk_build_cheaper_than_insertion(self):
        """The paper's premise: preprocessing (bulk) is cheap, building on
        the fly (per-tuple inserts) is not."""
        rows = sorted({(i, i * 7 % 1000) for i in range(2000)})
        bulk = BPlusTree.bulk_build(rows, branching=16)
        incremental = BPlusTree(branching=16)
        for row in rows:
            incremental.insert(row)
        assert bulk.node_visits < incremental.node_visits / 3


class TestSearch:
    def _tree(self):
        tree = BPlusTree(branching=4)
        for i in range(0, 100, 2):
            tree.insert((i, i + 1))
        return tree

    def test_seek_leaf_exact(self):
        tree = self._tree()
        leaf, slot = tree.seek_leaf((10, 11))
        assert leaf.keys[slot] == (10, 11)

    def test_seek_leaf_between(self):
        tree = self._tree()
        leaf, slot = tree.seek_leaf((11, 0))
        assert leaf.keys[slot] == (12, 13)

    def test_seek_leaf_past_end(self):
        tree = self._tree()
        leaf, _ = tree.seek_leaf((1000, 0))
        assert leaf is None

    def test_finger_seek_forward_is_cheap(self):
        """Monotone forward seeks should touch O(1) nodes amortized —
        the amortized-O(1) property the paper credits LFTJ with."""
        tree = self._tree()
        leaf, slot = tree.seek_leaf((0, 0))
        before = tree.node_visits
        for target in range(0, 100, 2):
            leaf, slot = tree.finger_seek(leaf, slot, (target, 0))
            assert leaf.keys[slot][0] == target
        forward_cost = tree.node_visits - before

        before = tree.node_visits
        for target in range(0, 100, 2):
            tree.seek_leaf((target, 0))
        descent_cost = tree.node_visits - before
        assert forward_cost < descent_cost

    def test_finger_seek_falls_back_on_long_jumps(self):
        tree = self._tree()
        leaf, slot = tree.seek_leaf((0, 0))
        leaf, slot = tree.finger_seek(leaf, slot, (98, 0))
        assert leaf.keys[slot] == (98, 99)

    @given(row_lists, st.tuples(st.integers(0, 31), st.integers(0, 31)))
    @settings(max_examples=60)
    def test_seek_postcondition(self, rows, target):
        tree = BPlusTree(branching=4)
        for row in rows:
            tree.insert(row)
        leaf, slot = tree.seek_leaf(target)
        geq = sorted(row for row in set(rows) if row >= target)
        if geq:
            assert leaf.keys[slot] == geq[0]
        else:
            assert leaf is None
