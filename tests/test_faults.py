"""Fault injection and recovery: determinism, exact recovery, dispositions.

The contract under test (ISSUE 5):

- an *empty* fault plan leaves every execution bit-identical to the golden
  seed-executor captures;
- the same FaultPlan seed produces identical rows and counted metrics under
  every worker runtime and kernel backend;
- a crash recovered with ``retry`` reproduces the exact fault-free result
  rows and fault-free operator charges, with the wasted work visible as the
  ``recovery`` phase and the EXPLAIN ANALYZE conservation invariant
  (operator charges + recovery == total_cpu) holding;
- ``fail`` aborts with a structured report, ``degrade`` re-plans BR -> RS.
"""

import pytest

from repro.engine.faults import (
    FaultPlan,
    FaultSession,
    FaultSpec,
    RecoveryPolicy,
    resolve_faults,
    resolve_policy,
)
from repro.engine.stats import RECOVERY_PHASE
from repro.planner.api import run_query
from repro.planner.explain import explain_analyze
from repro.storage.generators import twitter_database

from tests.test_ir_differential import (
    GOLDEN,
    STRATEGIES,
    WORKERS,
    assert_matches,
    unit_dataset,
)
from repro.engine.cluster import Cluster
from repro.planner.executor import execute
from repro.workloads.registry import get_workload

TRIANGLE = "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."
CRASH_STEP1 = {
    "seed": 7,
    "faults": [{"kind": "crash", "round": "step 1", "worker": 1}],
}


@pytest.fixture(scope="module")
def db():
    return twitter_database(nodes=200, edges=800)


@pytest.fixture(scope="module")
def baseline(db):
    return run_query(TRIANGLE, db, strategy="RS_HJ", workers=4)


def metrics_signature(result):
    """Every counted metric a determinism test should pin."""
    stats = result.stats
    return {
        "rows": sorted(result.rows),
        "result_count": stats.result_count,
        "failed": stats.failed,
        "failure_kind": stats.failure_kind,
        "retries": stats.retries,
        "faults_injected": stats.faults_injected,
        "total_cpu": stats.total_cpu,
        "wall_clock": stats.wall_clock,
        "tuples_shuffled": stats.tuples_shuffled,
        "phases": [
            [phase, stats.phase_cpu(phase), stats.phase_wall(phase)]
            for phase in stats.phases()
        ],
        "shuffles": [
            [r.name, r.tuples_sent, r.producer_skew, r.consumer_skew]
            for r in stats.shuffles
        ],
        "peak_memory": dict(stats.peak_memory),
    }


class TestEmptyPlanIsFaultFree:
    """No FaultPlan (or an empty one) reproduces the golden captures."""

    @pytest.mark.parametrize("case", ["Q1/RS_HJ", "Q1/HC_TJ", "Q2/BR_HJ"])
    def test_empty_plan_matches_golden(self, case):
        name, strategy_name = case.split("/")
        workload = get_workload(name)
        cluster = Cluster(WORKERS)
        cluster.load(unit_dataset(name))
        result = execute(
            workload.query,
            cluster,
            STRATEGIES[strategy_name],
            faults=FaultPlan(),  # empty: normalizes to no fault session
            recovery="retry",
        )
        assert_matches(result, GOLDEN[case])

    def test_resolve_faults_normalizes(self):
        assert resolve_faults(None) is None
        assert resolve_faults(FaultPlan()) is None
        assert resolve_faults({"faults": []}) is None
        plan = resolve_faults({"faults": [{"kind": "oom"}]})
        assert isinstance(plan, FaultPlan)
        assert plan.faults[0].kind == "oom"


class TestDeterminism:
    """Same FaultPlan seed => identical metrics/rows everywhere."""

    FAULTS = {
        "seed": 11,
        "faults": [
            # round 2 has local worker tasks under every strategy
            # ("step 2" for RS, the local join round for BR/HC)
            {"kind": "crash", "round": 2},  # worker drawn from seed
            {"kind": "straggler", "worker": 0, "factor": 2.5},
        ],
    }

    @pytest.mark.parametrize("strategy", ["RS_HJ", "HC_TJ"])
    def test_identical_across_runtimes_and_kernels(self, db, strategy):
        signatures = []
        for runtime in ("serial", "parallel:4"):
            for kernels in ("python", "numpy"):
                result = run_query(
                    TRIANGLE,
                    db,
                    strategy=strategy,
                    workers=4,
                    runtime=runtime,
                    kernels=kernels,
                    faults=self.FAULTS,
                    recovery="retry",
                )
                signatures.append(metrics_signature(result))
        assert all(sig == signatures[0] for sig in signatures[1:])
        assert signatures[0]["faults_injected"] >= 1
        assert signatures[0]["retries"] >= 1

    def test_seeded_worker_draw_is_stable(self):
        plan = FaultPlan(faults=(FaultSpec(kind="crash"),), seed=11)
        targets = {
            FaultSession(plan, RecoveryPolicy(), 4).target(0) for _ in range(5)
        }
        assert len(targets) == 1
        assert targets.pop() in range(4)


class TestRetryRecovery:
    """Crash mid-Round under retry recovers the exact fault-free outcome."""

    def test_exact_rows_and_conserved_charges(self, db, baseline):
        recovered = run_query(
            TRIANGLE, db, strategy="RS_HJ", workers=4,
            faults=CRASH_STEP1, recovery="retry",
        )
        assert not recovered.failed
        assert sorted(recovered.rows) == sorted(baseline.rows)
        assert recovered.stats.retries == 1
        assert recovered.stats.faults_injected == 1
        recovery_cpu = recovered.stats.phase_cpu(RECOVERY_PHASE)
        assert recovery_cpu > 0
        # the final attempt reproduces the fault-free charges exactly:
        # total = fault-free total + the wasted work charged to recovery
        assert recovered.stats.total_cpu - recovery_cpu == pytest.approx(
            baseline.stats.total_cpu
        )
        assert recovered.stats.tuples_shuffled == baseline.stats.tuples_shuffled
        assert RECOVERY_PHASE in recovered.stats.phases()

    def test_explain_analyze_conservation_with_recovery(self, db):
        analyzed = explain_analyze(
            TRIANGLE, db, strategy="RS_HJ", workers=4,
            faults=CRASH_STEP1, recovery="retry",
        )
        assert not analyzed.result.failed
        assert analyzed.recovery_cpu > 0
        assert sum(analyzed.operator_charges()) + analyzed.recovery_cpu == (
            pytest.approx(analyzed.stats.total_cpu)
        )
        rendered = analyzed.render()
        assert "recovery: cpu=" in rendered
        assert "retries=1" in rendered

    @pytest.mark.parametrize(
        "fault",
        [
            {"kind": "oom", "round": "step 2", "worker": 2},
            {
                "kind": "partition_loss",
                "round": "step 1",
                "exchange": "RS S",
            },
            {
                "kind": "crash",
                "round": "step 1",
                "worker": 0,
                "phase": "step1:join",
            },
        ],
        ids=["injected-oom", "partition-loss", "phase-crash"],
    )
    def test_every_fault_kind_recovers(self, db, baseline, fault):
        result = run_query(
            TRIANGLE, db, strategy="RS_HJ", workers=4,
            faults={"seed": 3, "faults": [fault]}, recovery="retry",
        )
        assert not result.failed
        assert sorted(result.rows) == sorted(baseline.rows)
        assert result.stats.retries == 1
        assert result.stats.phase_cpu(RECOVERY_PHASE) >= 0

    def test_bounded_retries_exhaust_to_abort(self, db):
        persistent = {
            "seed": 1,
            "faults": [
                {
                    "kind": "crash",
                    "round": "step 1",
                    "worker": 1,
                    "attempts": [0, 1, 2, 3],
                }
            ],
        }
        result = run_query(
            TRIANGLE, db, strategy="RS_HJ", workers=4,
            faults=persistent, recovery="retry:2",
        )
        assert result.failed
        assert result.stats.failure_kind == "fault"
        assert result.stats.retries == 2
        assert result.stats.faults_injected == 3
        report = result.failure_report
        assert report is not None
        assert report.attempts_used == 3
        assert report.disposition == "aborted"
        assert report.lineage  # the Round's surviving inputs are named

    def test_backoff_is_charged_to_recovery(self, db):
        plain = run_query(
            TRIANGLE, db, strategy="RS_HJ", workers=4,
            faults=CRASH_STEP1, recovery=RecoveryPolicy(mode="retry"),
        )
        backoff = run_query(
            TRIANGLE, db, strategy="RS_HJ", workers=4,
            faults=CRASH_STEP1,
            recovery=RecoveryPolicy(mode="retry", backoff_units=500.0),
        )
        delta = backoff.stats.phase_cpu(RECOVERY_PHASE) - plain.stats.phase_cpu(
            RECOVERY_PHASE
        )
        assert delta == pytest.approx(500.0)


class TestStraggler:
    """Stragglers inflate charges without changing rows or shuffles."""

    def test_straggler_inflates_cpu_only(self, db, baseline):
        result = run_query(
            TRIANGLE, db, strategy="RS_HJ", workers=4,
            faults={"faults": [
                {"kind": "straggler", "worker": 0, "factor": 3.0}
            ]},
        )
        assert not result.failed
        assert sorted(result.rows) == sorted(baseline.rows)
        assert result.stats.total_cpu > baseline.stats.total_cpu
        assert result.stats.tuples_shuffled == baseline.stats.tuples_shuffled
        assert result.stats.retries == 0
        # only local phases inflate; worker 0's join loads triple
        base_loads = baseline.stats.worker_loads("step1:join")
        slow_loads = result.stats.worker_loads("step1:join")
        assert slow_loads[0] == pytest.approx(3.0 * base_loads[0])
        assert slow_loads[1] == pytest.approx(base_loads[1])


class TestDispositions:
    """The fail and degrade recovery policies."""

    def test_fail_policy_aborts_with_report(self, db):
        result = run_query(
            TRIANGLE, db, strategy="RS_HJ", workers=4,
            faults=CRASH_STEP1, recovery="fail",
        )
        assert result.failed
        assert result.stats.failure_kind == "fault"
        report = result.failure_report
        assert report.kind == "crash"
        assert report.worker == 1
        assert report.round_label == "step 1"
        assert report.policy == "fail"
        assert report.to_dict()["disposition"] == "aborted"
        assert "injected crash" in report.describe()

    def test_degrade_falls_back_broadcast_to_regular(self, db, baseline):
        faults = {
            "faults": [
                {
                    "kind": "crash",
                    "round": "broadcast",
                    "worker": 2,
                    "phase": "broadcast",
                    "attempts": [0, 1, 2],
                }
            ]
        }
        result = run_query(
            TRIANGLE, db, strategy="BR_HJ", workers=4,
            faults=faults, recovery="degrade",
        )
        assert not result.failed
        assert result.stats.strategy == "RS_HJ"
        assert result.physical.strategy == "RS_HJ"
        assert sorted(result.rows) == sorted(baseline.rows)
        report = result.failure_report
        assert report.disposition == "degraded"
        assert report.fallback == "RS_HJ"
        # the aborted broadcast attempt's work is carried as recovery CPU
        assert result.stats.phase_cpu(RECOVERY_PHASE) > 0

    def test_degrade_without_fallback_aborts(self, db):
        result = run_query(
            TRIANGLE, db, strategy="HC_TJ", workers=4,
            faults={"faults": [{"kind": "crash", "worker": 0,
                                "round": "local tributary join"}]},
            recovery="degrade",
        )
        assert result.failed
        assert result.failure_report.disposition == "aborted"


class TestDslValidation:
    """FaultPlan / RecoveryPolicy parsing and validation."""

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            '{"seed": 5, "faults": ['
            '{"kind": "crash", "round": 1, "worker": 2, "attempts": [0, 1]}]}'
        )
        plan = FaultPlan.load(str(path))
        assert plan.seed == 5
        assert plan.faults[0].attempts == (0, 1)
        assert plan.faults[0].matches_round(1, "anything")
        assert not plan.faults[0].matches_round(0, "anything")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor")
        with pytest.raises(ValueError):
            FaultSpec(kind="straggler", factor=1.0)
        with pytest.raises(ValueError):
            FaultSpec(kind="partition_loss")

    def test_policy_parsing(self):
        assert resolve_policy(None).mode == "retry"
        assert resolve_policy("retry:5").max_retries == 5
        assert resolve_policy("degrade").mode == "degrade"
        with pytest.raises(ValueError):
            resolve_policy("panic")
        with pytest.raises(ValueError):
            resolve_policy("retry:lots")
        with pytest.raises(ValueError):
            RecoveryPolicy(mode="retry", max_retries=-1)


class TestFaultSweep:
    """The experiments harness emits recovery-overhead rows."""

    def test_sweep_rows(self, db):
        from repro.experiments import fault_sweep, format_fault_sweep

        rows = fault_sweep(
            TRIANGLE,
            db,
            {
                "crash": {"seed": 1, "faults": [
                    {"kind": "crash", "round": "step 1"}
                ]},
                "abort": {"seed": 1, "faults": [
                    {"kind": "crash", "round": "step 1",
                     "attempts": [0, 1, 2]}
                ]},
            },
            strategy="RS_HJ",
            workers=4,
            recovery="retry:1",
        )
        assert [row["scenario"] for row in rows] == [
            "baseline", "crash", "abort",
        ]
        assert rows[0]["cpu_overhead"] == 1.0
        assert rows[1]["rows_match"] and not rows[1]["failed"]
        assert rows[1]["cpu_overhead"] > 1.0
        assert rows[2]["failed"] and rows[2]["disposition"] == "aborted"
        table = format_fault_sweep(rows, "sweep")
        assert "baseline" in table and "ABORT" in table
