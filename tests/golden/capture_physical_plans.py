"""Regenerate ``physical_plans.json``: rendered lowered plans, Q1..Q8.

Run from the repo root when lowering output changes on purpose::

    PYTHONPATH=src python tests/golden/capture_physical_plans.py

Every workload is lowered for all six grid strategies, plus the Sec. 3.6
semijoin plan for the acyclic workloads, against the unit-scale catalog
(lowering consults cardinalities for the left-deep order, the broadcast
anchor candidates, and partition-key reuse, so the catalog is part of the
snapshot's identity).
"""

import json
import os

from repro.planner.physical import HYBRID_STRATEGY, SEMIJOIN_STRATEGY, lower
from repro.planner.plans import ALL_STRATEGIES
from repro.query.catalog import Catalog
from repro.query.parser import parse_query
from repro.workloads.registry import PAPER_ORDER, get_workload

OUT_PATH = os.path.join(os.path.dirname(__file__), "physical_plans.json")

#: synthetic path-feeding-a-cycle query for the hybrid snapshot: two path
#: atoms (a-b-c) feed a 3-cycle (c-d-e-c); lowered over the Q1 unit catalog
PATH_CYCLE_QUERY = (
    "PathCycle(a, e) :- A:Twitter(a, b), B:Twitter(b, c), "
    "E1:Twitter(c, d), E2:Twitter(d, e), E3:Twitter(e, c)."
)


def hybrid_cases():
    """(case key, query, catalog) triples snapshotted under HYBRID."""
    q8 = get_workload("Q8")
    twitter = Catalog(get_workload("Q1").dataset("unit"))
    return [
        ("Q8", q8.query, Catalog(q8.dataset("unit"))),
        ("PathCycle", parse_query(PATH_CYCLE_QUERY), twitter),
    ]


def capture() -> dict[str, list[str]]:
    snapshots: dict[str, list[str]] = {}
    for name in PAPER_ORDER:
        workload = get_workload(name)
        catalog = Catalog(workload.dataset("unit"))
        strategies = [s.name for s in ALL_STRATEGIES]
        if not workload.cyclic:
            strategies.append(SEMIJOIN_STRATEGY)
        for strategy in strategies:
            plan = lower(workload.query, strategy, catalog)
            snapshots[f"{name}/{strategy}"] = plan.render().splitlines()
    for name, query, catalog in hybrid_cases():
        plan = lower(query, HYBRID_STRATEGY, catalog)
        snapshots[f"{name}/{HYBRID_STRATEGY}"] = plan.render().splitlines()
    return snapshots


if __name__ == "__main__":
    snapshots = capture()
    with open(OUT_PATH, "w") as handle:
        json.dump(snapshots, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(snapshots)} plan snapshots to {OUT_PATH}")
