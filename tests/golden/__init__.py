"""Golden captures and their regeneration scripts."""
