"""Capture the executor's counted metrics as golden differential data.

Runs every workload (Q1..Q8) x strategy (the six grid points plus SJ_HJ on
the acyclic queries) at unit scale plus a few out-of-memory cases, and
records everything the paper counts — ordered result rows (as a digest),
tuples shuffled, per-shuffle skews, per-phase CPU/wall, peak memory, OOM
outcomes — into ``seed_executor_metrics.json``.

The committed JSON was captured at the pre-IR seed executor (commit
56d3084, the hand-written per-strategy execution loops), so the
differential suite (``tests/test_ir_differential.py``) proves the
physical-plan IR + scheduler reproduce the seed executor bit-for-bit.
Re-run this script only to extend coverage, never to paper over a metric
change::

    PYTHONPATH=src python tests/golden/capture_seed_metrics.py
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from repro.engine.cluster import Cluster
from repro.engine.memory import MemoryBudget
from repro.engine.stats import ExecutionStats
from repro.planner.executor import execute
from repro.planner.plans import ALL_STRATEGIES
from repro.planner.semijoin import execute_semijoin
from repro.query.parser import parse_query
from repro.storage.generators import twitter_database
from repro.workloads.registry import PAPER_ORDER, get_workload

OUT_PATH = os.path.join(os.path.dirname(__file__), "seed_executor_metrics.json")

#: acyclic workloads that admit the Sec. 3.6 semijoin plan
ACYCLIC = ("Q3", "Q7")

#: out-of-memory cases: (label, query text or workload, strategy, workers,
#: per-worker tuple budget) — exercising the FAIL outcome end to end
TRIANGLE = "T(x,y,z) :- R:Twitter(x,y), S:Twitter(y,z), T:Twitter(z,x)."
OOM_CASES = (
    ("OOM_SCAN", "RS_HJ", 2, 50),  # fails while registering scan residency
    ("OOM_RS_TJ", "RS_TJ", 2, 10899),  # admits RS_HJ's peak, fails in the sort
    ("OOM_RS_HJ", "RS_HJ", 2, 9000),  # fails mid join pipeline
    ("OOM_BR_TJ", "BR_TJ", 3, 4000),  # fails in the local Tributary join
)

WORKERS = 4


def rows_digest(rows) -> str:
    """Order-sensitive digest of the result rows."""
    return hashlib.sha256(repr(list(rows)).encode()).hexdigest()


def stats_record(stats: ExecutionStats, rows, extras: Optional[dict] = None) -> dict:
    """Everything counted (no measured wall-time) for one execution."""
    record = {
        "rows_sha256": rows_digest(rows),
        "result_count": stats.result_count,
        "failed": stats.failed,
        "failure": stats.failure,
        "tuples_shuffled": stats.tuples_shuffled,
        "total_cpu": stats.total_cpu,
        "wall_clock": stats.wall_clock,
        "cpu_skew": stats.cpu_skew,
        "max_consumer_skew": stats.max_consumer_skew,
        "shuffles": [
            [r.name, r.tuples_sent, r.producer_skew, r.consumer_skew]
            for r in stats.shuffles
        ],
        "phases": [
            [phase, stats.phase_cpu(phase), stats.phase_wall(phase)]
            for phase in stats.phases()
        ],
        "peak_memory": {
            str(w): stats.peak_memory[w] for w in sorted(stats.peak_memory)
        },
    }
    record.update(extras or {})
    return record


def capture() -> dict:
    """Run every configuration and collect its golden record."""
    cases: dict[str, dict] = {}
    for name in PAPER_ORDER:
        workload = get_workload(name)
        database = workload.dataset("unit")
        for strategy in ALL_STRATEGIES:
            cluster = Cluster(WORKERS)
            cluster.load(database)
            result = execute(workload.query, cluster, strategy)
            cases[f"{name}/{strategy.name}"] = stats_record(
                result.stats,
                result.rows,
                {
                    "hc_config": repr(result.hc_config) if result.hc_config else None,
                    "variable_order": (
                        [v.name for v in result.variable_order]
                        if result.variable_order
                        else None
                    ),
                    "plan_order": list(result.plan.order) if result.plan else None,
                },
            )
            print(f"  {name}/{strategy.name}: {result.stats.summary()}")
        if name in ACYCLIC:
            cluster = Cluster(WORKERS)
            cluster.load(database)
            result = execute_semijoin(workload.query, cluster)
            cases[f"{name}/SJ_HJ"] = stats_record(
                result.stats,
                result.rows,
                {"plan_order": list(result.plan.order) if result.plan else None},
            )
            print(f"  {name}/SJ_HJ: {result.stats.summary()}")

    oom_db = twitter_database(nodes=200, edges=900, seed=5)
    triangle = parse_query(TRIANGLE)
    for label, strategy_name, workers, budget in OOM_CASES:
        strategy = next(s for s in ALL_STRATEGIES if s.name == strategy_name)
        cluster = Cluster(workers, MemoryBudget(per_worker_tuples=budget))
        cluster.load(oom_db)
        result = execute(triangle, cluster, strategy)
        cases[label] = stats_record(
            result.stats, result.rows, {"workers": workers, "budget": budget}
        )
        print(f"  {label}: {result.stats.summary()}")
    return cases


if __name__ == "__main__":
    data = capture()
    with open(OUT_PATH, "w") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(data)} cases to {OUT_PATH}")
