"""Snapshot tests: lowering output is pinned, structure is validated.

``tests/golden/physical_plans.json`` holds the rendered
:class:`~repro.planner.physical.PhysicalPlan` for every paper workload
under all six grid strategies (plus the semijoin plan for the acyclic
ones), lowered against the unit-scale catalog.  Lowering is pure — no
cluster, no execution — so these snapshots pin the planner layer in
isolation from the scheduler; regenerate them deliberately with
``tests/golden/capture_physical_plans.py`` when the plan shape changes.

Structural tests below the snapshot comparison check the IR invariants the
scheduler and EXPLAIN ANALYZE rely on: slot def-before-use, unique local
phase ownership, and round-shape conventions per strategy family.
"""

import json
import os

import pytest

from repro.planner.physical import (
    HYBRID_STRATEGY,
    SEMIJOIN_STRATEGY,
    Exchange,
    ExchangeKind,
    PhysicalOp,
    Scan,
    ScanIntermediate,
    lower,
)
from repro.planner.plans import ALL_STRATEGIES
from repro.query.catalog import Catalog
from repro.query.parser import parse_query
from repro.workloads.registry import get_workload
from tests.golden.capture_physical_plans import PATH_CYCLE_QUERY

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "physical_plans.json"
)
with open(GOLDEN_PATH) as _handle:
    GOLDEN = json.load(_handle)

CASES = sorted(GOLDEN)

_CATALOGS: dict = {}


def unit_catalog(name) -> Catalog:
    if name not in _CATALOGS:
        _CATALOGS[name] = Catalog(get_workload(name).dataset("unit"))
    return _CATALOGS[name]


def lowered(case):
    name, strategy = case.split("/")
    if name == "PathCycle":
        return lower(parse_query(PATH_CYCLE_QUERY), strategy, unit_catalog("Q1"))
    return lower(get_workload(name).query, strategy, unit_catalog(name))


def test_every_workload_and_strategy_is_snapshotted():
    grid = {s.name for s in ALL_STRATEGIES}
    for name in ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8"):
        covered = {c.split("/")[1] for c in CASES if c.startswith(f"{name}/")}
        assert grid <= covered
        if not get_workload(name).cyclic:
            assert SEMIJOIN_STRATEGY in covered
    # the multi-stage hybrid shape is pinned for Q8 and the synthetic
    # path+cycle query (multi-step stage one, dedup boundary)
    assert f"Q8/{HYBRID_STRATEGY}" in CASES
    assert f"PathCycle/{HYBRID_STRATEGY}" in CASES


@pytest.mark.parametrize("case", CASES)
def test_rendered_plan_matches_snapshot(case):
    assert lowered(case).render().splitlines() == GOLDEN[case]


@pytest.mark.parametrize("case", CASES)
def test_slots_defined_before_use(case):
    plan = lowered(case)
    defined: set[str] = set()
    for _, _, _, op in plan.operators():
        for slot in op_inputs(op):
            assert slot in defined, f"{op.describe()} reads undefined {slot!r}"
        if hasattr(op, "out"):
            defined.add(op.out)
    assert plan.result in defined


def op_inputs(op: PhysicalOp) -> list[str]:
    """The slot names an operator reads, per operator kind."""
    if isinstance(op, Scan):
        return []
    if isinstance(op, ScanIntermediate):
        return [op.input]
    if isinstance(op, Exchange):
        return [op.input]
    if hasattr(op, "left"):
        return [op.left, op.right]
    if hasattr(op, "target"):
        return [op.target, op.keys]
    if hasattr(op, "inputs"):
        return [slot for _, slot in op.inputs]
    if hasattr(op, "source"):
        return [op.source]
    if hasattr(op, "aliases"):  # anchor/config read scan sizes, not tuples
        return list(op.aliases)
    raise TypeError(op)


@pytest.mark.parametrize("case", CASES)
def test_local_phase_ownership_is_unique(case):
    # raises AssertionError inside if two local operators share a phase
    assert lowered(case).local_phase_owners()


@pytest.mark.parametrize("name", ["Q1", "Q7"])
def test_strategy_family_shapes(name):
    query = get_workload(name).query
    catalog = unit_catalog(name)
    atoms = len(query.atoms)

    rs = lower(query, "RS_HJ", catalog)
    # scan round + one round per binary step
    assert len(rs.rounds) == atoms
    assert all(
        any(isinstance(op, Exchange) for op in round_.ops)
        for round_ in rs.rounds[1:]
    )

    br = lower(query, "BR_HJ", catalog)
    # scan, anchor choice + broadcasts, one fused local round
    kinds = [
        op.kind for _, _, _, op in br.operators() if isinstance(op, Exchange)
    ]
    assert kinds.count(ExchangeKind.BROADCAST) == atoms

    hc = lower(query, "HC_TJ", catalog)
    hc_exchanges = [
        op for _, _, _, op in hc.operators() if isinstance(op, Exchange)
    ]
    assert len(hc_exchanges) == atoms
    assert all(op.kind is ExchangeKind.HYPERCUBE for op in hc_exchanges)
    assert hc.variable_order is not None
