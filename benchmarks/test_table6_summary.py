"""Table 6 — summary of the extended evaluation across all eight queries.

Paper columns per query: #tables, #join variables, cyclic?, input size,
RS-shuffled size, HC-shuffled size, max RS skew, Time(RS_HJ)/Time(HC_TJ),
and the winning configuration.  Headline paper findings encoded here:

- every *cyclic* query with large intermediates and high RS skew is won by
  HC_TJ (Q1, Q5, Q6, Q2; Q7 too, though acyclic);
- the acyclic, selective Q3 is won by the regular shuffle;
- cyclic queries whose HC cube replicates as much as RS shuffles (Q8) can
  flip back to the traditional plan.

Note: Q8's and Q4's winners are sensitive to the exact replication /
intermediate balance; we assert the robust subset of the paper's table and
report the full rows for inspection (see EXPERIMENTS.md for the
paper-vs-measured discussion).
"""

from conftest import SCALE, grid_for

from repro.experiments.harness import table6_row
from repro.workloads import PAPER_ORDER, get_workload


def _summary():
    rows = []
    for name in PAPER_ORDER:
        workload = get_workload(name)
        db = workload.dataset(SCALE)
        grid = grid_for(name)
        rows.append(table6_row(name, grid, db))
    return rows


def test_table6_summary(benchmark):
    rows = benchmark.pedantic(_summary, rounds=1, iterations=1)

    print("\nTable 6 — extended evaluation summary")
    header = (
        f"{'query':>6} {'tables':>7} {'joinvars':>9} {'cyclic':>7} "
        f"{'input':>10} {'RS size':>12} {'HC size':>12} {'RS skew':>8} "
        f"{'RS/HC time':>11} {'best':>7}"
    )
    print(header)
    by_name = {}
    for row in rows:
        by_name[row["query"]] = row
        rs = f"{row['rs_shuffled']:,}" if row["rs_shuffled"] else "FAIL"
        ratio = (
            f"{row['rs_over_hc_time']:.2f}"
            if row["rs_over_hc_time"] == row["rs_over_hc_time"]
            else "n/a"
        )
        print(
            f"{row['query']:>6} {row['tables']:>7} {row['join_variables']:>9} "
            f"{str(row['cyclic']):>7} {row['input_size']:>10,} {rs:>12} "
            f"{row['hc_shuffled']:>12,} {row['rs_skew']:>8.2f} {ratio:>11} "
            f"{row['best']:>7}"
        )

    # cyclicity column matches the paper exactly
    expected_cyclic = {
        "Q1": True, "Q7": False, "Q5": True, "Q6": True,
        "Q2": True, "Q8": True, "Q3": False, "Q4": True,
    }
    for name, cyclic in expected_cyclic.items():
        assert by_name[name]["cyclic"] == cyclic

    # the cyclic Twitter queries are won by HC_TJ with RS/HC time >> 1
    for name in ("Q1", "Q5", "Q6", "Q2"):
        assert by_name[name]["best"] == "HC_TJ", name
        assert by_name[name]["rs_over_hc_time"] > 2.0, name

    # Q3 is won by the regular shuffle (RS/HC < 1)
    assert by_name["Q3"]["best"] in ("RS_HJ", "RS_TJ")
    assert by_name["Q3"]["rs_over_hc_time"] < 1.0

    # the regular shuffle moves more data than HC on every cyclic
    # Twitter query (far more where the intermediate blow-up is worst),
    # and less on the selective Q3
    for name in ("Q1", "Q5", "Q6", "Q2"):
        row = by_name[name]
        assert row["rs_shuffled"] > row["hc_shuffled"], name
    if SCALE == "bench":
        for name in ("Q1", "Q5"):
            row = by_name[name]
            assert row["rs_shuffled"] > 2 * row["hc_shuffled"], name
    assert by_name["Q3"]["rs_shuffled"] < by_name["Q3"]["hc_shuffled"]

    # RS skew is visible on the skewed Twitter data
    assert by_name["Q1"]["rs_skew"] > 1.2
