"""Fig. 10 — scalability of HC_TJ vs RS_HJ on Q1, 2 to 64 workers.

Paper result: HC_TJ speeds up near-linearly to 64 workers while RS_HJ
stops scaling beyond ~4 workers (skew dominates); the total number of
tuples shuffled by HyperCube *grows* with cluster size (more replication),
yet per-worker sort + join time keeps dropping because each worker
processes less data.

Shapes asserted: HC_TJ's speedup at 64 workers beats RS_HJ's; HC shuffle
volume is non-decreasing in cluster size; per-worker HC_TJ work is
decreasing in cluster size.
"""

from conftest import SCALE

from repro.experiments import run_workload
from repro.planner.plans import HC_TJ, RS_HJ

CLUSTER_SIZES = (2, 4, 8, 16, 32, 64)


def _run_scaling():
    wall = {"HC_TJ": {}, "RS_HJ": {}}
    shuffled = {}
    per_worker_work = {}
    for workers in CLUSTER_SIZES:
        grid = run_workload(
            "Q1",
            scale=SCALE,
            workers=workers,
            strategies=[RS_HJ, HC_TJ],
            enforce_memory=False,
        )
        for name in ("RS_HJ", "HC_TJ"):
            wall[name][workers] = grid[name].stats.wall_clock
        hc_stats = grid["HC_TJ"].stats
        shuffled[workers] = hc_stats.tuples_shuffled
        per_worker_work[workers] = hc_stats.total_cpu / workers
    return wall, shuffled, per_worker_work


def test_fig10_scalability(benchmark):
    wall, shuffled, per_worker_work = benchmark.pedantic(
        _run_scaling, rounds=1, iterations=1
    )

    print("\nFig. 10a — speedup vs 2 workers")
    print(f"{'workers':>8} {'HC_TJ':>8} {'RS_HJ':>8}")
    speedups = {}
    for name in ("HC_TJ", "RS_HJ"):
        base = wall[name][2]
        speedups[name] = {w: base / wall[name][w] for w in CLUSTER_SIZES}
    for workers in CLUSTER_SIZES:
        print(
            f"{workers:>8} {speedups['HC_TJ'][workers]:>8.2f} "
            f"{speedups['RS_HJ'][workers]:>8.2f}"
        )

    print("\nFig. 10b — HC tuples shuffled by cluster size")
    for workers in CLUSTER_SIZES:
        print(f"{workers:>8} {shuffled[workers]:>12,}")

    print("\nFig. 10c — HC_TJ per-worker work by cluster size")
    for workers in CLUSTER_SIZES:
        print(f"{workers:>8} {per_worker_work[workers]:>12,.0f}")

    # (a) HC_TJ scales better than RS_HJ at full cluster size
    assert speedups["HC_TJ"][64] > speedups["RS_HJ"][64]
    # and HC_TJ achieves a substantial fraction of linear speedup
    assert speedups["HC_TJ"][64] > 4.0

    # (b) replication makes total shuffled volume grow with cluster size
    assert shuffled[64] > shuffled[8] > shuffled[2]

    # (c) per-worker work nevertheless keeps falling
    assert per_worker_work[64] < per_worker_work[8] < per_worker_work[2]
