#!/usr/bin/env python
"""End-to-end benchmark: query wall-clock per strategy x backend x runtime.

Runs the paper's workloads through the full engine (parse, plan, shuffle,
local joins, finalize) and records *measured* wall-clock seconds for every
(strategy, kernel backend, worker runtime) cell, alongside the counted
metrics — which the run re-verifies are identical across every cell of a
workload's matrix (rows, tuples shuffled, counted wall/CPU, peak memory).

Two axes matter for raw speed:

- ``kernels``: ``python`` (scalar reference) vs ``numpy`` (vectorized
  shuffle/sort/seek kernels, including the PR 7 block-at-a-time WCOJ);
- ``runtime``: ``serial`` vs ``parallel:4`` (threads; GIL-bound) vs
  ``parallel:4:proc`` (forked processes; true multicore).

The report records ``cpu_cores`` because the process runtime's speedup is
bounded by physical cores: on a single-core machine ``parallel:4:proc``
pays fork/IPC overhead for no parallelism and honestly loses to serial;
the CI job (multi-core runners) is the multicore measurement point.

Usage::

    python benchmarks/bench_e2e.py            # bench scale, Q1-Q8
    python benchmarks/bench_e2e.py --quick    # unit scale, 1 repeat (CI)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.planner.api import run_query  # noqa: E402
from repro.workloads.registry import PAPER_ORDER, WORKLOADS  # noqa: E402

WORKERS = 64

#: the runtime axis; 4 pool workers so thread and process cells compare 1:1
RUNTIMES = ("serial", "parallel:4", "parallel:4:proc")

#: the kernel-backend axis
BACKENDS = ("python", "numpy")


#: workloads that also measure the multi-stage HYBRID strategy (the two
#: Freebase path+cycle shapes the decomposer targets)
HYBRID_WORKLOADS = ("Q7", "Q8")


def _strategies_for(workload) -> tuple[str, ...]:
    """The workload's paper-best strategy, the RS_HJ baseline, and —
    for the hybrid-eligible workloads — the multi-stage HYBRID plan."""
    best = workload.paper_best
    strategies = (best,) if best == "RS_HJ" else (best, "RS_HJ")
    if workload.name in HYBRID_WORKLOADS:
        strategies = strategies + ("HYBRID",)
    return strategies


def _counted(result) -> tuple:
    """The counted metrics a cell must agree on with every other cell."""
    stats = result.stats
    return (
        sorted(result.rows),
        stats.result_count,
        stats.tuples_shuffled,
        stats.total_cpu,
        stats.wall_clock,
        stats.phases(),
        stats.peak_memory,
    )


def bench_workload(workload, scale: str, repeats: int) -> dict:
    """Time every (strategy, backend, runtime) cell of one workload."""
    database = workload.dataset(scale)
    cells: dict[str, dict] = {}
    reference = {}
    for strategy in _strategies_for(workload):
        for backend in BACKENDS:
            for runtime in RUNTIMES:
                if backend == "python" and runtime != "serial":
                    # scalar kernels only need the serial baseline; the
                    # runtime axis is explored under the fast backend
                    continue
                best = float("inf")
                result = None
                for _ in range(repeats):
                    started = time.perf_counter()
                    result = run_query(
                        workload.query,
                        database,
                        strategy=strategy,
                        workers=WORKERS,
                        runtime=runtime,
                        kernels=backend,
                    )
                    best = min(best, time.perf_counter() - started)
                counted = _counted(result)
                if strategy in reference:
                    if reference[strategy] != counted:
                        raise AssertionError(
                            f"{workload.name}/{strategy}: counted metrics "
                            f"diverge under {backend}/{runtime}"
                        )
                else:
                    reference[strategy] = counted
                cells[f"{strategy}/{backend}/{runtime}"] = {
                    "seconds": best,
                    "rows": result.stats.result_count,
                    "tuples_shuffled": result.stats.tuples_shuffled,
                    "counted_wall_clock": result.stats.wall_clock,
                }
    summary = {}
    for strategy in _strategies_for(workload):
        serial = cells[f"{strategy}/numpy/serial"]["seconds"]
        proc = cells[f"{strategy}/numpy/parallel:4:proc"]["seconds"]
        summary[strategy] = {
            "numpy_over_python": (
                cells[f"{strategy}/python/serial"]["seconds"] / serial
                if serial else float("inf")
            ),
            "proc_over_serial": serial / proc if proc else float("inf"),
        }
    return {"cells": cells, "speedups": summary}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="unit-scale datasets, 1 repeat (CI smoke)")
    parser.add_argument("--scale", choices=("unit", "bench"), default=None,
                        help="dataset scale (default: bench, or unit with --quick)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per cell (default: 2, or 1 with --quick)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="subset of Q1..Q8 (default: all)")
    parser.add_argument("--output", default=None,
                        help="output path (default: <repo>/BENCH_e2e.json)")
    args = parser.parse_args(argv)
    scale = args.scale or ("unit" if args.quick else "bench")
    repeats = args.repeats or (1 if args.quick else 2)
    names = args.workloads or list(PAPER_ORDER)
    output = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_e2e.json"
    )

    cores = os.cpu_count() or 1
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        pass

    per_workload = {}
    for name in names:
        workload = WORKLOADS[name]
        started = time.perf_counter()
        per_workload[name] = bench_workload(workload, scale, repeats)
        print(f"{name}: done in {time.perf_counter() - started:.1f}s", flush=True)

    report = {
        "scale": scale,
        "repeats": repeats,
        "workers": WORKERS,
        "cpu_cores": cores,
        "note": (
            "measured wall-clock; counted metrics verified identical across "
            "every cell. parallel:4:proc speedup requires >= 2 physical "
            "cores -- with cpu_cores == 1 it pays fork overhead for no "
            "parallelism and loses to serial, honestly recorded here."
        ),
        "differential_check": "pass",  # bench_workload raises on divergence
        "per_workload": per_workload,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output} (cpu_cores={cores})")
    for name in names:
        for strategy, entry in per_workload[name]["speedups"].items():
            print(
                f"  {name:<3} {strategy:<6} numpy/python "
                f"{entry['numpy_over_python']:5.2f}x   "
                f"proc/serial {entry['proc_over_serial']:5.2f}x"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
