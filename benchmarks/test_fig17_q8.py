"""Fig. 17 — Q8, actor/director pairs (App. A; cyclic 6-way join).

Paper result: the one cyclic query the *regular* shuffle wins (RS_HJ 7.1s):
its intermediates stay moderate, its skew is low (3.5), and the 6-variable
hypercube replicates so much (60M tuples for a 2.4M input, more than the
54M the regular shuffle moves) that HyperCube loses its communication edge.

Measured deviation (documented in EXPERIMENTS.md): our Algorithm-1
configuration finds a lower-replication cube for our size distribution
(~10x vs the paper's ~25x), so HC_TJ narrowly beats RS_HJ here.  The robust
paper shapes asserted: RS_HJ wins among the traditional (RS/BR) plans and
stays within a small factor of the overall winner; RS and HC shuffle
volumes are of the same order (unlike the blow-up queries); broadcast burns
the most CPU of the hash-join family.
"""

from conftest import SCALE, run_grid_benchmark

from repro.experiments import format_figure


def test_fig17_q8(benchmark):
    grid = run_grid_benchmark(benchmark, "Q8")
    print()
    print(format_figure(grid, "Fig. 17 — Q8 actor/director query"))

    assert grid.consistent()
    results = grid.results
    wall = {n: r.stats.wall_clock for n, r in results.items()}
    cpu = {n: r.stats.total_cpu for n, r in results.items()}

    # RS_HJ is the best traditional plan (paper: best overall) —
    # a bench-scale shape; unit-scale intermediates are too small
    if SCALE == "bench":
        traditional = {
            n: wall[n] for n in ("RS_HJ", "RS_TJ", "BR_HJ", "BR_TJ")
        }
        assert min(traditional, key=lambda n: traditional[n]) == "RS_HJ"

    # and it is competitive with the overall winner (paper Table 6 reports
    # Time(RS_HJ)/Time(HC_TJ) = 0.44; our cube replicates less, so the
    # ratio lands on the other side of 1 but stays small)
    if SCALE == "bench":
        best = min(wall, key=lambda n: wall[n])
        assert wall["RS_HJ"] < 3 * wall[best]

    # RS and HC volumes are of the same order — no Q1-style 4x gap
    shuffled = {n: r.stats.tuples_shuffled for n, r in results.items()}
    assert shuffled["RS_HJ"] < 3 * shuffled["HC_HJ"]
    # broadcast shuffles the most
    assert shuffled["BR_HJ"] > shuffled["RS_HJ"]
    assert shuffled["BR_HJ"] > shuffled["HC_HJ"]

    # broadcast hash join is the CPU sink (paper: 4955s)
    assert cpu["BR_HJ"] == max(
        cpu[n] for n in ("RS_HJ", "RS_TJ", "BR_HJ", "HC_HJ", "HC_TJ")
    )

    # skew on Q8's regular shuffle is mild compared to Q1's (paper: 3.5
    # here vs 20.8 there) — Freebase ids are far less skewed than Twitter
    q8_skew = results["RS_HJ"].stats.max_consumer_skew
    print(f"Q8 max RS consumer skew: {q8_skew:.2f}")
    assert q8_skew < 6.0
