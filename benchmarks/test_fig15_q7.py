"""Fig. 15 — Q7, the Oscar-winners star join (App. A).

Paper result: HC_TJ has the lowest runtime (0.77s).  The interesting
mechanism: the share optimizer picks a *1 x 64* configuration — the tiny
``ObjectName`` selection is broadcast while the three larger relations are
hash-partitioned on the shared honor id — so the HyperCube shuffle moves no
more data than the regular shuffle (0.24M tuples each in the paper) but
with a better load balance (skew 1.15 vs 1.7).

Shapes asserted: a HyperCube configuration wins; HC shuffles no more than
RS (within a whisker); broadcast shuffles an order of magnitude more; the
chosen cube gives the award-name variable share 1 and the honor-id variable
the whole cluster.
"""

from conftest import WORKERS, run_grid_benchmark

from repro.experiments import format_figure


def test_fig15_q7(benchmark):
    grid = run_grid_benchmark(benchmark, "Q7")
    print()
    print(format_figure(grid, "Fig. 15 — Q7 Oscar-winners query"))

    assert grid.consistent()
    results = grid.results

    # HyperCube wins this query (paper: HC_TJ)
    assert grid.best_strategy() in ("HC_TJ", "HC_HJ")

    # HC adapts to the skewed input sizes: no more shuffling than RS
    shuffled = {n: r.stats.tuples_shuffled for n, r in results.items()}
    assert shuffled["HC_HJ"] <= shuffled["RS_HJ"] * 1.05
    # broadcast replicates everything: far more than either
    assert shuffled["BR_HJ"] > 5 * shuffled["RS_HJ"]

    # the chosen configuration is the paper's broadcast-like 1 x p pattern
    config = results["HC_TJ"].hc_config
    dims = {v.name: d for v, d in config.dims.items()}
    assert dims["h"] == WORKERS
    assert dims["aw"] == 1

    # load balance: the HyperCube shuffle's worst consumer skew is no
    # worse than the regular shuffle's (paper: 1.15 vs 1.7)
    assert (
        results["HC_TJ"].stats.max_consumer_skew
        <= results["RS_HJ"].stats.max_consumer_skew + 1e-9
    )
