"""Tables 2-4 — per-shuffle load balance for Q1 under the three shuffles.

Paper results (64 workers):

- Table 2 (regular): the base relations shuffle with consumer skew 1.35 and
  1.72 (power-law degrees hashed on one column); the 50M-tuple intermediate
  then shuffles with *producer* skew 20.8 (skew factors "multiply").
- Table 3 (HyperCube): each copy of Twitter is sent 4x (4x4x4 cube) with
  skew ~1.05 — every value is hashed into only p^(1/3) buckets.
- Table 4 (broadcast): two full copies to all workers, skew exactly 1.

Shapes asserted: regular-shuffle consumer skew well above HyperCube's;
intermediate producer skew far above base-relation skew; replication
factors match the chosen cube; broadcast is perfectly balanced.
"""

from conftest import WORKERS, run_grid_benchmark

from repro.experiments import format_shuffle_table


def test_table2_regular_shuffle_load_balance(benchmark):
    grid = run_grid_benchmark(benchmark, "Q1")
    rs = grid["RS_HJ"]
    print()
    print(format_shuffle_table(rs, "Table 2 — regular shuffles in Q1"))

    records = rs.stats.shuffles
    base = [r for r in records if not r.name.endswith("left -> h('z',)")]
    # base-relation shuffles have visible consumer skew (power-law values)
    base_skews = [r.consumer_skew for r in records[:2]]
    assert max(base_skews) > 1.2

    # the intermediate shuffle moves far more tuples than any base shuffle
    volumes = sorted(r.tuples_sent for r in records)
    assert volumes[-1] > 5 * volumes[0]

    # producer skew of the intermediate shuffle reflects the skewed join
    intermediate = max(records, key=lambda r: r.tuples_sent)
    assert intermediate.producer_skew > 2.0


def test_table3_hypercube_shuffle_load_balance(benchmark):
    grid = run_grid_benchmark(benchmark, "Q1")
    hc = grid["HC_TJ"]
    print()
    print(format_shuffle_table(hc, "Table 3 — HyperCube shuffles in Q1"))

    records = hc.stats.shuffles
    assert len(records) == 3  # one shuffle per atom, no intermediates
    config = hc.hc_config
    for record in records:
        # consumer skew stays low: every value hashes into only a few
        # buckets (the paper reports ~1.05 on its 4x4x4 cube)
        assert record.consumer_skew < 2.0
        assert record.consumer_skew < grid["RS_HJ"].stats.max_consumer_skew
    # the three copies are each replicated according to the cube dims
    rs_records = grid["RS_HJ"].stats.shuffles
    base_volume = rs_records[0].tuples_sent
    for index, record in enumerate(records):
        assert record.tuples_sent == base_volume * _replication(config, index)


def _replication(config, atom_index):
    """Replication of the atom_index-th triangle atom: the cube dimension
    of the one variable the atom does not contain."""
    dims = [config.dims[v] for v in config.order]
    # atoms R(x,y), S(y,z), T(z,x) miss z, x, y respectively
    missing = {0: 2, 1: 0, 2: 1}[atom_index]
    return dims[missing]


def test_table4_broadcast_load_balance(benchmark):
    grid = run_grid_benchmark(benchmark, "Q1")
    br = grid["BR_TJ"]
    print()
    print(format_shuffle_table(br, "Table 4 — broadcast shuffles in Q1"))

    records = br.stats.shuffles
    assert len(records) == 2  # largest copy stays in place
    for record in records:
        assert record.consumer_skew == 1.0  # perfectly balanced
        # every tuple goes to all workers
        base = grid["RS_HJ"].stats.shuffles[0].tuples_sent
        assert record.tuples_sent == base * WORKERS


def test_skew_comparison_across_shuffles(benchmark):
    grid = run_grid_benchmark(benchmark, "Q1")
    rs_skew = grid["RS_HJ"].stats.max_consumer_skew
    hc_skew = grid["HC_TJ"].stats.max_consumer_skew
    br_skew = grid["BR_TJ"].stats.max_consumer_skew
    print(f"\nmax consumer skew: RS={rs_skew:.2f} HC={hc_skew:.2f} BR={br_skew:.2f}")
    assert br_skew <= hc_skew < rs_skew
