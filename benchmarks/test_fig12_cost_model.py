"""Fig. 12 — the variable-order cost model vs actual runtime (scatter).

Paper methodology: draw 20 random variable orders for Q3, Q4, Q7, Q8, run
each on one machine with pre-shuffled data, and plot the actual runtime
against the model's estimate.  The paper reports positive correlations
(0.658 / 0.216 / 1.0 / 0.932 — far from perfect, but enough to rank).

We run each sampled order's Tributary join for real (the seek count is the
runtime of the sequential operator) and assert a positive Spearman rank
correlation for every query.  Q7 only has two join attributes, so — as in
the paper's footnote — only its two orders are examined.
"""

import statistics

from conftest import SCALE

from repro.leapfrog.tributary import SeekBudgetExceeded, TributaryJoin
from repro.leapfrog.variable_order import (
    enumerate_join_orders,
    estimate_order_cost,
    full_variable_order,
)

#: the simulator equivalent of the paper's 1,000-second termination rule
SEEK_CAP = 2_000_000
from repro.query.catalog import Catalog
from repro.storage.generators import FreebaseConfig, freebase_database
from repro.workloads import WORKLOADS

#: a compact knowledge base: pathological orders can be ~100x slower and we
#: execute a dozen of them per query
_FIG12_CONFIG = FreebaseConfig(
    actors=250,
    films=70,
    performances=700,
    directors=25,
    filler_objects=1_500,
    honors=200,
    awards=6,
)

QUERIES = ("Q3", "Q4", "Q7", "Q8")
SAMPLES = 8 if SCALE != "unit" else 4


def _spearman(xs, ys):
    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        for rank, index in enumerate(order):
            result[index] = float(rank)
        return result

    rx, ry = ranks(xs), ranks(ys)
    mx, my = statistics.mean(rx), statistics.mean(ry)
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    sx = sum((a - mx) ** 2 for a in rx) ** 0.5
    sy = sum((b - my) ** 2 for b in ry) ** 0.5
    if sx == 0 or sy == 0:
        return 0.0
    return cov / (sx * sy)


def _scatter():
    database = freebase_database(_FIG12_CONFIG)
    catalog = Catalog(database)
    points = {}
    for name in QUERIES:
        query = WORKLOADS[name].query
        relations = {atom.alias: database[atom.relation] for atom in query.atoms}
        join_vars = query.join_variables()
        if len(join_vars) <= 3:
            orders = list(enumerate_join_orders(query))
        else:
            orders = list(enumerate_join_orders(query, sample=SAMPLES, seed=12))
        estimated, actual = [], []
        for order in orders:
            estimate = estimate_order_cost(query, catalog, order)
            join = TributaryJoin(
                query,
                relations,
                order=full_variable_order(query, order),
                encoder=database.encode,
                max_seeks=SEEK_CAP,
            )
            try:
                join.run()
                seeks = join.total_seeks()
            except SeekBudgetExceeded:
                # terminated orders are plotted at the cap, like the
                # paper's 1,000-second timeouts in Fig. 12
                seeks = SEEK_CAP
            estimated.append(estimate.cost)
            actual.append(seeks)
        points[name] = (estimated, actual)
    return points


def test_fig12_cost_model_correlation(benchmark):
    points = benchmark.pedantic(_scatter, rounds=1, iterations=1)

    print("\nFig. 12 — estimated cost vs actual seeks")
    for name, (estimated, actual) in points.items():
        correlation = _spearman(estimated, actual)
        span = max(actual) / max(1, min(actual))
        print(
            f"{name}: orders={len(actual)} spearman={correlation:+.2f} "
            f"actual spread={span:.1f}x"
        )
        # the paper only claims positive correlation; Q4's is weak (0.216)
        assert correlation > 0, f"{name} cost model anti-correlates"

    # at least one query must show a wide spread between orders —
    # otherwise there is nothing for the optimizer to win (Table 7)
    spreads = [
        max(actual) / max(1, min(actual)) for _, actual in points.values()
    ]
    assert max(spreads) > 3.0
