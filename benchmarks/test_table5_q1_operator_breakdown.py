"""Table 5 — where local-join time goes in Q1.

Paper result: under BR_TJ the Tributary join itself is only 19% of the
operator time — 73% is *sorting* the broadcast relations; under BR_HJ the
two hash joins split the time (39% / 54%).  This is the paper's explanation
for why BR_TJ loses to BR_HJ on Q1 while HC_TJ (which sorts only small
fragments) wins overall.

Shapes asserted: sorting dominates the Tributary phases under broadcast;
the per-worker sort volume under HC is a fraction of BR's; and the join
phases dominate under BR_HJ.
"""

from conftest import run_grid_benchmark


def _phase_totals(stats, keyword):
    return sum(stats.phase_cpu(p) for p in stats.phases() if keyword in p)


def test_table5_operator_breakdown(benchmark):
    grid = run_grid_benchmark(benchmark, "Q1")

    br_tj = grid["BR_TJ"].stats
    sort_cpu = _phase_totals(br_tj, "sort")
    join_cpu = _phase_totals(br_tj, "tributary join")
    local = sort_cpu + join_cpu
    sort_fraction = sort_cpu / local
    print(
        f"\nTable 5 — BR_TJ local time: sorts {sort_fraction:.0%}, "
        f"TJ {join_cpu / local:.0%} (paper: 73% / 19%)"
    )
    # sorting the broadcast relations dominates the local join work
    assert sort_fraction > 0.5

    br_hj = grid["BR_HJ"].stats
    hj_join_cpu = _phase_totals(br_hj, "join")
    assert hj_join_cpu > 0
    print(f"BR_HJ local join work: {hj_join_cpu:,.0f} units")

    # HC_TJ sorts far less data per worker than BR_TJ: broadcast forces
    # every worker to sort (almost) the entire input, HyperCube only a
    # fragment (the paper: Twitter/16 per worker vs the full Twitter)
    hc_tj = grid["HC_TJ"].stats
    hc_sort = _phase_totals(hc_tj, "sort")
    assert hc_sort < 0.7 * sort_cpu
    print(f"sort work: BR_TJ {sort_cpu:,.0f} vs HC_TJ {hc_sort:,.0f}")

    # and that is exactly why HC_TJ wins Q1 while BR_TJ does not
    assert grid["HC_TJ"].stats.wall_clock < grid["BR_TJ"].stats.wall_clock
