#!/usr/bin/env python
"""Microbenchmark: kernel wall-clock per backend, on the paper's workloads.

Times the four vectorized hot paths of :mod:`repro.engine.kernels` —
shuffle routing, hypercube routing, sort, hash join — plus the columnar
scan filter, under both the ``python`` and ``numpy`` backends, on the
Q1-Q8 workload datasets.  Writes ``BENCH_kernels.json`` with per-workload
and aggregate wall-clock seconds and the numpy-over-python speedup.

These are *measured times*; every counted metric of the simulator (tuples
shuffled, skew, seeks, sort_cost) is identical between backends by
construction — the benchmark re-verifies output equality as it runs.

Usage::

    python benchmarks/bench_kernels.py           # bench scale, 3 repeats
    python benchmarks/bench_kernels.py --quick   # unit scale, 1 repeat
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.engine import kernels  # noqa: E402
from repro.engine.frame import atom_frame  # noqa: E402
from repro.hypercube.config import optimize_config  # noqa: E402
from repro.hypercube.mapping import HyperCubeMapping  # noqa: E402
from repro.leapfrog.tributary import TributaryJoin  # noqa: E402
from repro.workloads.registry import PAPER_ORDER, WORKLOADS  # noqa: E402

WORKERS = 64
KERNELS = (
    "shuffle_routing", "hypercube_routing", "sort", "hash_join",
    "scan_filter", "wcoj_seek", "wcoj_leapfrog",
)

#: input cap per relation for the full-join microbenchmark, so the scalar
#: reference stays tractable on the widest self-joins (Q2, Q5, Q6)
WCOJ_CAP = 25_000


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Minimum wall-clock over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _workload_inputs(workload, scale: str):
    """Scan the workload's atoms once (outputs are backend-independent)."""
    database = workload.dataset(scale)
    query = workload.query
    frames = {}
    relations = {}
    for atom in query.atoms:
        relation = database[atom.relation]
        relations[atom.alias] = relation
        frames[atom.alias] = atom_frame(atom, relation, database.encode)
    sizes = {alias: max(1, len(f.rows)) for alias, f in frames.items()}
    return database, query, relations, frames, sizes


def _shared_key(left_frame, right_atom):
    left_set = set(left_frame.variables)
    return tuple(v for v in right_atom.variables() if v in left_set)


def bench_workload(workload, scale: str, repeats: int) -> dict:
    database, query, relations, frames, sizes = _workload_inputs(workload, scale)
    atoms = list(query.atoms)
    # route/sort/join the largest scanned frame — the actual hot input
    largest = max(atoms, key=lambda a: sizes[a.alias])
    frame = frames[largest.alias]
    results: dict[str, dict[str, float]] = {}

    def record(kernel: str, fn) -> None:
        timings: dict[str, float] = {}
        outputs = {}
        for backend in kernels.KERNEL_BACKENDS:
            with kernels.use_backend(backend):
                timings[backend], outputs[backend] = _best_of(fn, repeats)
        if outputs["python"] != outputs["numpy"]:
            raise AssertionError(
                f"{workload.name}/{kernel}: backends disagree on output"
            )
        timings["speedup"] = (
            timings["python"] / timings["numpy"] if timings["numpy"] else float("inf")
        )
        results[kernel] = timings

    # 1. regular-shuffle routing: partition the frame on its join key
    partner = next((a for a in atoms if a.alias != largest.alias), largest)
    key = _shared_key(frame, partner) or frame.variables[:1]
    key_indices = frame.indices_of(key)
    record(
        "shuffle_routing",
        lambda: kernels.shuffle_partition(frame.rows, key_indices, WORKERS),
    )

    # 2. hypercube routing: partition the frame to its cube coordinates
    config = optimize_config(query, sizes, WORKERS)
    mapping = HyperCubeMapping(config)
    bound, offsets = mapping.frame_routing(largest, frame.variables)
    record(
        "hypercube_routing",
        lambda: kernels.hypercube_partition(frame.rows, bound, offsets, WORKERS),
    )

    # 3. sort: the SortedRelation construction path (lazy rows on numpy, so
    # materialize tuples for the cross-backend equality check only)
    permutation = tuple(range(len(frame.variables)))

    def run_sort():
        rows, columns = kernels.sort_projected(frame.rows, permutation)
        return rows if rows is not None else kernels.rows_from_columns(columns)

    record("sort", run_sort)

    # 4. hash join: largest frame against its first shared-variable partner
    right = frames[partner.alias]
    join_vars = _shared_key(frame, partner)
    left_key = frame.indices_of(join_vars)
    right_key = right.indices_of(join_vars)
    right_extra = [
        i for i, v in enumerate(right.variables) if v not in set(frame.variables)
    ]
    record(
        "hash_join",
        lambda: kernels.hash_join_rows(
            frame.rows, right.rows, left_key, right_key, right_extra
        ),
    )

    # 5. columnar scan filters: every atom's selection pushdown
    def run_scan():
        return [
            atom_frame(atom, relations[atom.alias], database.encode).rows
            for atom in atoms
        ]

    record("scan_filter", run_scan)

    # 6. WCOJ seek micro-kernel: one trie-level seek per distinct first key
    # of the largest frame — the python side performs the TrieIterator's
    # bounded binary search per seek, the numpy side one batched
    # searchsorted over the packed run-grouped prefix keys
    with kernels.use_backend("numpy"):
        _, sorted_columns = kernels.sort_projected(frame.rows, permutation)
    if sorted_columns.shape[0] >= 2 and sorted_columns.shape[1] > 0:
        packing = kernels.packed_key_levels(sorted_columns)
    else:
        packing = None
    if packing is not None:
        sorted_rows = kernels.rows_from_columns(sorted_columns)
        packed_levels, lows, spans = packing
        level0 = packed_levels[0]
        change = np.flatnonzero(level0[1:] != level0[:-1]) + 1
        starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), change.astype(np.int64))
        )
        ends = np.concatenate(
            (starts[1:], np.asarray([level0.size], dtype=np.int64))
        )
        # seek the median second-column value of each run: realistic
        # mid-block landings, deterministic per dataset
        targets = sorted_columns[1][(starts + ends) // 2]
        prefixes = level0[starts]
        seek_args = list(zip(targets.tolist(), starts.tolist(), ends.tolist()))

        def run_seeks():
            if kernels.get_backend() == "numpy":
                return kernels.batched_seek_lower_bounds(
                    packed_levels[1], prefixes, targets, lows[1], spans[1]
                ).tolist()
            return [
                kernels.lower_bound(sorted_rows, 1, value, lo, hi)
                for value, lo, hi in seek_args
            ]

        record("wcoj_seek", run_seeks)

    # 7. the full WCOJ trie walk: scalar tuple-at-a-time vs the
    # block-at-a-time vectorized backend, same prepared join (inputs capped
    # so the scalar reference stays tractable)
    capped = {
        alias: relation
        if len(relation.rows) <= WCOJ_CAP
        else relation.with_rows(relation.rows[:WCOJ_CAP])
        for alias, relation in relations.items()
    }
    joins = {}
    for backend in kernels.KERNEL_BACKENDS:
        with kernels.use_backend(backend):
            joins[backend] = TributaryJoin(query, capped, encoder=database.encode)
    if all(p.size > 0 for p in joins["numpy"]._prepared):
        record(
            "wcoj_leapfrog",
            lambda: list(joins[kernels.get_backend()].iterate()),
        )

    results["input_rows"] = {"largest_frame": len(frame.rows), "total": sum(sizes.values())}
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="unit-scale datasets, 1 repeat (CI smoke)")
    parser.add_argument("--scale", choices=("unit", "bench"), default=None,
                        help="dataset scale (default: bench, or unit with --quick)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per kernel (default: 3, or 1 with --quick)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="subset of Q1..Q8 (default: all)")
    parser.add_argument("--output", default=None,
                        help="output path (default: <repo>/BENCH_kernels.json)")
    args = parser.parse_args(argv)
    scale = args.scale or ("unit" if args.quick else "bench")
    repeats = args.repeats or (1 if args.quick else 3)
    names = args.workloads or list(PAPER_ORDER)
    output = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    )

    per_workload = {}
    for name in names:
        workload = WORKLOADS[name]
        started = time.perf_counter()
        per_workload[name] = bench_workload(workload, scale, repeats)
        print(f"{name}: done in {time.perf_counter() - started:.1f}s", flush=True)

    aggregate = {}
    for kernel in KERNELS:
        # a kernel can be absent for a workload (e.g. wcoj_seek when the
        # key ranges do not pack into 64 bits)
        python_s = sum(
            per_workload[n][kernel]["python"] for n in names
            if kernel in per_workload[n]
        )
        numpy_s = sum(
            per_workload[n][kernel]["numpy"] for n in names
            if kernel in per_workload[n]
        )
        aggregate[kernel] = {
            "python_seconds": python_s,
            "numpy_seconds": numpy_s,
            "speedup": python_s / numpy_s if numpy_s else float("inf"),
        }

    report = {
        "scale": scale,
        "repeats": repeats,
        "workers": WORKERS,
        "differential_check": "pass",  # bench_workload raises on any mismatch
        "kernels": aggregate,
        "per_workload": per_workload,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output}")
    width = max(len(k) for k in KERNELS)
    for kernel, entry in aggregate.items():
        print(f"  {kernel:<{width}}  python {entry['python_seconds']:8.3f}s"
              f"  numpy {entry['numpy_seconds']:8.3f}s"
              f"  speedup {entry['speedup']:5.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
