"""Ablation — Algorithm 1's tie-breaking rule (paper Sec. 4).

When several integral configurations reach the same expected workload,
Algorithm 1 picks the one with more even dimension sizes: "assuming both x
and y in relation A(x,y) are join attributes, the algorithm selects
dx=2, dy=2 rather than dx=1, dy=4 ... which is more resilient to possible
skew in either attribute value."

This ablation measures exactly that: on the power-law Twitter relation,
shuffle one atom of a symmetric 2-variable self-join under the 2x2 and the
1x4 configurations (identical expected workload) and compare realized
consumer skew.
"""


from repro.engine.frame import Frame
from repro.engine.shuffle import hypercube_shuffle
from repro.engine.stats import ExecutionStats
from repro.hypercube.config import config_from_sizes, optimize_config
from repro.hypercube.mapping import HyperCubeMapping
from repro.query.parser import parse_query
from repro.storage.generators import twitter_graph

QUERY = parse_query("Q(x,y) :- A:Twitter(x,y), B:Twitter(y,x).")


def _consumer_skew(sizes, graph, seed=0):
    config = config_from_sizes(QUERY, sizes)
    mapping = HyperCubeMapping(config, seed=seed)
    atom = QUERY.atom_by_alias("A")
    stats = ExecutionStats()
    frame = Frame(atom.variables(), list(graph.rows))
    hypercube_shuffle(
        [frame], atom, mapping, config.workers_used, stats, "ablation", "p"
    )
    return stats.shuffles[0].consumer_skew


def test_ablation_even_dimension_tie_break(benchmark):
    graph = benchmark.pedantic(
        twitter_graph, kwargs={"nodes": 4000, "edges": 12000}, rounds=1, iterations=1
    )

    even_skews = [_consumer_skew((2, 2), graph, seed) for seed in range(5)]
    uneven_skews = [_consumer_skew((1, 4), graph, seed) for seed in range(5)]
    even = sum(even_skews) / len(even_skews)
    uneven = sum(uneven_skews) / len(uneven_skews)
    print(f"\nconsumer skew over 5 hash seeds: 2x2 {even:.2f} vs 1x4 {uneven:.2f}")

    # partitioning on both attributes tolerates per-attribute skew better
    assert even < uneven

    # and the search itself honors the tie-break: with symmetric inputs it
    # returns the even configuration
    cards = {"A": len(graph), "B": len(graph)}
    chosen = optimize_config(QUERY, cards, 4)
    assert sorted(chosen.dim_sizes()) == [2, 2]
