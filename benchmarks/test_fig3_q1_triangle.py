"""Fig. 3 — the triangle query Q1 under all six configurations.

Paper result (64 workers, 1.1M-edge Twitter subset):

    wall clock (s):  RS_HJ 10.9 | RS_TJ 12.8 | BR_HJ 4.5 | BR_TJ 5.4
                     HC_HJ 2.4  | HC_TJ 0.9   <- winner
    total CPU (s):   75 | 98 | 116 | 229 | 37 | 18
    tuples shuffled: 54M | 54M | 142M | 142M | 13M | 13M

Shape reproduced here: HC_TJ wins wall clock and CPU; the HyperCube
shuffle moves several times less data than the regular shuffle (which must
move the two-hop intermediate), and broadcast moves the most.
"""

from conftest import SCALE, run_grid_benchmark

from repro.experiments import format_figure


def test_fig3_q1_triangle(benchmark):
    grid = run_grid_benchmark(benchmark, "Q1")
    print()
    print(format_figure(grid, "Fig. 3 — Q1 triangle query"))

    assert grid.consistent(), "all configurations must agree on the result"
    results = grid.results

    # panel (a): HC_TJ has the lowest wall clock
    assert grid.best_strategy() == "HC_TJ"

    # panel (b): HC_TJ also has the lowest total CPU
    cpu = {name: r.stats.total_cpu for name, r in results.items()}
    assert min(cpu, key=lambda n: cpu[n]) == "HC_TJ"

    # panel (c): shuffle volumes ordered HC < RS < BR, and TJ/HJ pairs
    # shuffle identically (the shuffle is independent of the local join)
    shuffled = {name: r.stats.tuples_shuffled for name, r in results.items()}
    assert shuffled["HC_TJ"] == shuffled["HC_HJ"]
    assert shuffled["RS_TJ"] == shuffled["RS_HJ"]
    assert shuffled["BR_TJ"] == shuffled["BR_HJ"]
    assert shuffled["HC_TJ"] < shuffled["RS_HJ"] < shuffled["BR_HJ"]

    # the paper reports ~4x RS/HC savings (we measure ~4.1x at bench
    # scale; the tiny unit graphs have weaker blow-ups)
    if SCALE == "bench":
        assert shuffled["RS_HJ"] > 2 * shuffled["HC_HJ"]

    # within the HyperCube shuffle, the Tributary join beats the hash
    # pipeline because it never generates the two-hop intermediate
    assert results["HC_TJ"].stats.wall_clock < results["HC_HJ"].stats.wall_clock
    assert results["HC_TJ"].stats.total_cpu < results["HC_HJ"].stats.total_cpu
