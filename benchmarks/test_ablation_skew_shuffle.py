"""Ablation — heavy-hitter handling vs plain hashing vs HyperCube.

The paper's footnote 2: traditional engines fight join skew by detecting
heavy hitters and special-casing them; its own answer is that the HyperCube
shuffle is naturally "more resilient to data skew than a binary join"
because every value lands in only ``p^(1/k)`` buckets.

This ablation stages the Q1 first join (Twitter self-join on the follower
column — the shuffle whose consumer skew the paper reports as 1.35/1.72 in
Table 2) three ways and compares the realized max/avg consumer load:

1. plain hash partition (the paper's regular shuffle);
2. heavy-hitter split/broadcast (the footnote's mitigation);
3. the per-dimension hashing a HyperCube shuffle applies.
"""

from conftest import WORKERS

from repro.engine.frame import Frame
from repro.engine.shuffle import hypercube_shuffle, regular_shuffle
from repro.engine.skew import skew_resilient_shuffle
from repro.engine.stats import ExecutionStats
from repro.hypercube.config import optimize_config
from repro.hypercube.mapping import HyperCubeMapping
from repro.query.atoms import Variable
from repro.storage.generators import twitter_graph
from repro.workloads import Q1

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def _frames(graph, variables, workers):
    out = [[] for _ in range(workers)]
    for index, row in enumerate(graph.rows):
        out[index % workers].append(row)
    return [Frame(variables, rows) for rows in out]


def _skews(graph, workers):
    # 1. plain regular shuffle of R(x, y) on y
    plain_stats = ExecutionStats()
    regular_shuffle(
        _frames(graph, (X, Y), workers), [Y], workers, plain_stats, "plain", "p"
    )
    plain = plain_stats.shuffles[0].consumer_skew

    # 2. heavy-hitter split/broadcast against S(y, z)
    skew_stats = ExecutionStats()
    skew_resilient_shuffle(
        _frames(graph, (X, Y), workers),
        _frames(graph, (Y, Z), workers),
        [Y],
        workers,
        skew_stats,
        "mitigated",
        "p",
    )
    mitigated = skew_stats.shuffles[0].consumer_skew

    # 3. HyperCube shuffle of the same atom
    cards = {atom.alias: len(graph) for atom in Q1.atoms}
    config = optimize_config(Q1, cards, workers)
    mapping = HyperCubeMapping(config)
    hc_stats = ExecutionStats()
    atom = Q1.atom_by_alias("R")
    hypercube_shuffle(
        _frames(graph, atom.variables(), workers),
        atom,
        mapping,
        workers,
        hc_stats,
        "HCS",
        "p",
    )
    hypercube = hc_stats.shuffles[0].consumer_skew
    return plain, mitigated, hypercube


def test_ablation_skew_shuffle(benchmark):
    # a slightly steeper power law so the hub degrees clearly exceed the
    # 2x-average-load detection threshold at p=64
    graph = twitter_graph(nodes=6_000, edges=18_000, exponent=1.0)
    plain, mitigated, hypercube = benchmark.pedantic(
        _skews, args=(graph, WORKERS), rounds=1, iterations=1
    )
    print(
        f"\nconsumer skew on the Q1 first-join shuffle (p={WORKERS}): "
        f"plain={plain:.2f} heavy-hitter={mitigated:.2f} hypercube={hypercube:.2f}"
    )

    # the mitigation earns its keep on power-law data
    assert mitigated < plain
    # and the HyperCube shuffle is itself skew-resilient without any
    # special-casing (the paper's Sec. 2.1 claim; Table 2 vs Table 3)
    assert hypercube < plain
