"""Fig. 14 — the two-rings query Q6 (5-way self-join, App. A).

Paper result: HC_TJ has the lowest wall clock (1.0s) and CPU (14s); within
every shuffle the Tributary join beats the pipelined hash join; BR_HJ's CPU
explodes (3,083s) because every local join input is ~p times larger.

Shapes asserted: HC_TJ best; HC < RS < BR shuffle volumes; TJ < HJ within
the HyperCube shuffle.
"""

from conftest import run_grid_benchmark

from repro.experiments import format_figure


def test_fig14_q6_two_rings(benchmark):
    grid = run_grid_benchmark(benchmark, "Q6")
    print()
    print(format_figure(grid, "Fig. 14 — Q6 two-rings query"))

    assert grid.consistent()
    results = grid.results

    assert grid.best_strategy() == "HC_TJ"
    cpu = {n: r.stats.total_cpu for n, r in results.items()}
    assert min(cpu, key=lambda n: cpu[n]) == "HC_TJ"

    shuffled = {n: r.stats.tuples_shuffled for n, r in results.items()}
    assert shuffled["HC_HJ"] < shuffled["RS_HJ"] < shuffled["BR_HJ"]

    # the Tributary join beats the hash pipeline under the HyperCube
    # shuffle — it never generates the path intermediates
    assert results["HC_TJ"].stats.wall_clock < results["HC_HJ"].stats.wall_clock
    assert results["HC_TJ"].stats.total_cpu < results["HC_HJ"].stats.total_cpu

    # the broadcast family burns by far the most CPU (paper: BR_HJ 3083s;
    # at our scale the sorting of broadcast copies can put BR_TJ on top
    # instead — either way broadcast is the CPU sink)
    assert max(cpu, key=lambda n: cpu[n]) in ("BR_HJ", "BR_TJ")
