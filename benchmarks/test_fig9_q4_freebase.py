"""Fig. 9 — Q4, actor pairs co-starring in two films (cyclic, 8 joins).

Paper result: the regular shuffle is catastrophic — its plan's
intermediates grow monotonically to 13.1B tuples, RS_HJ takes 11,872s and
RS_TJ **fails with out-of-memory**; the winners avoid shuffling
intermediates entirely (BR_TJ 153s, HC_TJ 263s); HC shuffles the least
(210M vs BR 491M vs RS 13,893M).

This benchmark replays the paper's own Fig. 7 co-star-first plan (our
greedy planner finds a cycle-closing order that avoids the blow-up — see
EXPERIMENTS.md) with a per-worker memory budget calibrated so exactly the
paper's failing configuration fails.
"""

from conftest import SCALE, run_grid_benchmark

from repro.experiments import format_figure


def test_fig9_q4_freebase(benchmark):
    grid = run_grid_benchmark(benchmark, "Q4")
    print()
    print(format_figure(grid, "Fig. 9 — Q4 actor-pairs query"))

    assert grid.consistent()
    results = grid.results

    if SCALE == "bench":
        # RS_TJ fails: sorting the materialized co-star intermediate
        # exceeds worker memory (the paper's FAIL outcome; budgets are
        # only calibrated at bench scale)
        assert results["RS_TJ"].failed
        assert "memory" in results["RS_TJ"].stats.failure
    for name in ("RS_HJ", "BR_HJ", "BR_TJ", "HC_HJ", "HC_TJ"):
        assert not results[name].failed, name

    # shuffle volumes: the regular shuffle moves the most data of the three
    # shuffles (the paper's distinctive Q4/Q5 inversion), HC the least
    shuffled = {n: r.stats.tuples_shuffled for n, r in results.items()}
    assert shuffled["HC_HJ"] < shuffled["BR_HJ"] < shuffled["RS_HJ"]

    # the winner avoids shuffling intermediates: a single-round plan
    # (BR or HC) beats RS_HJ in wall clock
    wall = {n: r.stats.wall_clock for n, r in results.items() if not r.failed}
    best = min(wall, key=lambda n: wall[n])
    assert best in ("BR_TJ", "HC_TJ", "HC_HJ", "BR_HJ")
    assert wall[best] < wall["RS_HJ"]

    # the Tributary join is the join of choice under the HyperCube shuffle
    # (paper Sec. 3.4: "Tributary join is much more efficient in both
    # total CPU time and runtime" given the large intermediates)
    assert results["HC_TJ"].stats.total_cpu < results["HC_HJ"].stats.total_cpu

    # Fig. 8 companion: per-worker utilization spread for the two TJ plans
    # (the paper profiles HC_TJ's long-tail workers vs BR_TJ's even load)
    for name in ("HC_TJ", "BR_TJ"):
        if results[name].failed:
            continue
        skew = results[name].stats.cpu_skew
        print(f"Fig. 8 — {name} per-worker CPU skew (max/avg): {skew:.2f}")
