"""Sec. 2.2 design argument — sorted arrays vs B-trees for the LFTJ API.

The paper: "LogicBlox' implementation of LFTJ stores each database relation
in a B-tree.  In our setting, data preprocessing is not possible, because
the multi-join is performed after the reshuffling step; instead, Tributary
join simply sorts the relations ... because sorting is cheaper than
computing a B-tree on the fly", at the price of O(log n) ``seek``s instead
of amortized O(1) — "TJ is at most a factor log n slower than LFTJ".

This benchmark quantifies both halves of that trade-off on the triangle
query over the synthetic Twitter graph:

- *build*: comparisons for sorting vs node visits for tuple-at-a-time
  B-tree insertion (the post-shuffle scenario) — sorting must win;
- *probe*: seek counts are identical by construction (same algorithm), and
  the B-tree's per-seek node-visit cost benefits from finger search;
- *results*: both backends produce identical output.
"""

import time

from repro.leapfrog.tributary import TributaryJoin
from repro.storage.generators import twitter_graph
from repro.workloads import Q1


def _run(backend, graph):
    relations = {atom.alias: graph for atom in Q1.atoms}
    join = TributaryJoin(Q1, relations, backend=backend)
    started = time.perf_counter()
    rows = join.run()
    elapsed = time.perf_counter() - started
    return join, rows, elapsed


def test_btree_vs_sort(benchmark):
    graph = twitter_graph(nodes=3_000, edges=9_000)

    sorted_join, sorted_rows, sorted_time = benchmark.pedantic(
        _run, args=("sorted", graph), rounds=1, iterations=1
    )
    btree_join, btree_rows, btree_time = _run("btree", graph)

    print(
        f"\nSec. 2.2 — backend comparison on Q1 ({len(graph):,} edges):"
        f"\n  sorted: prepare={sorted_join.stats.sort_cost:,} comparisons, "
        f"seeks={sorted_join.total_seeks():,}, {sorted_time:.2f}s"
        f"\n  btree : prepare={btree_join.stats.sort_cost:,} node visits, "
        f"seeks={btree_join.total_seeks():,}, {btree_time:.2f}s"
    )

    # identical results
    assert set(sorted_rows) == set(btree_rows)

    # identical leapfrog structure: the same seek sequence is issued
    assert sorted_join.total_seeks() > 0
    assert btree_join.total_seeks() > 0

    # the paper's build-side claim — "sorting is cheaper than computing a
    # B-tree on the fly" — shows up directly in measured end-to-end time:
    # tuple-at-a-time tree construction (allocation, splits, pointer
    # chasing) loses to one bulk sort, even though the B-tree then enjoys
    # finger-search seeks
    assert sorted_time < btree_time
