"""Fig. 4 — the 4-clique query Q2 (6-way self-join) under all six configs.

Paper result (64 workers): HC_TJ wins again (1.6s wall); broadcast with a
hash-join pipeline blows up to 30x the CPU of RS_HJ because every local
join input is ~64x larger; within each shuffle the Tributary join beats the
hash pipeline.

Shapes asserted: HC_TJ best wall clock and CPU; shuffle volume order
HC < RS < BR; BR_HJ's CPU blow-up relative to RS_HJ far exceeds Q1's; and
BR_TJ < BR_HJ in wall clock (the reverse of Q1 — the paper's observation
that large local intermediates flip the sort-vs-hash trade-off).
"""

from conftest import SCALE, grid_for, run_grid_benchmark

from repro.experiments import format_figure


def test_fig4_q2_clique(benchmark):
    grid = run_grid_benchmark(benchmark, "Q2")
    print()
    print(format_figure(grid, "Fig. 4 — Q2 4-clique query"))

    assert grid.consistent()
    results = grid.results

    assert grid.best_strategy() == "HC_TJ"
    # CPU: HC_TJ is the cheapest single-round plan (the paper also has it
    # beating RS_HJ outright; at our scale RS_HJ's CPU can be marginally
    # lower because the chord-first plan tames its intermediates — see
    # EXPERIMENTS.md — but skew ruins its wall clock regardless)
    cpu = {name: r.stats.total_cpu for name, r in results.items()}
    assert cpu["HC_TJ"] == min(
        cpu[n] for n in ("BR_HJ", "BR_TJ", "HC_HJ", "HC_TJ")
    )
    assert cpu["HC_TJ"] < 2 * min(cpu.values())

    shuffled = {name: r.stats.tuples_shuffled for name, r in results.items()}
    assert shuffled["HC_TJ"] < shuffled["RS_HJ"] < shuffled["BR_HJ"]

    # paper: BR_HJ CPU is ~30x RS_HJ on Q2 (vs <2x on Q1) because every
    # local join input is ~p times larger
    q1 = grid_for("Q1")
    q2_blowup = cpu["BR_HJ"] / cpu["RS_HJ"]
    q1_blowup = (
        q1["BR_HJ"].stats.total_cpu / q1["RS_HJ"].stats.total_cpu
    )
    print(f"BR_HJ/RS_HJ CPU blow-up: Q1 {q1_blowup:.1f}x vs Q2 {q2_blowup:.1f}x")
    if SCALE == "bench":
        assert q2_blowup > q1_blowup

    # paper: BR_TJ beats BR_HJ on Q2 (the opposite of Q1) because the local
    # hash pipeline's intermediates explode at full scale.  At our reduced
    # scale the two are close (see EXPERIMENTS.md); we assert the robust
    # part: broadcast with either join stays far behind HC_TJ.
    assert results["HC_TJ"].stats.wall_clock < results["BR_TJ"].stats.wall_clock
    assert results["HC_TJ"].stats.wall_clock < results["BR_HJ"].stats.wall_clock

    # Tributary beats hash within the HyperCube shuffle
    assert results["HC_TJ"].stats.wall_clock < results["HC_HJ"].stats.wall_clock
