"""Shared configuration for the benchmark suite.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation and asserts its qualitative *shape* (who wins, what gets
shuffled, where the crossovers are) rather than absolute numbers — the
substrate here is a simulator, not the authors' 64-worker Myria cluster.

Environment knobs:

- ``REPRO_BENCH_SCALE``: ``bench`` (default, ~1:40 of the paper's data) or
  ``unit`` (tiny, for smoke-testing the suite in seconds).
- ``REPRO_BENCH_WORKERS``: cluster size (default 64, as in the paper).
"""

from __future__ import annotations

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "64"))

_GRID_CACHE: dict = {}


def grid_for(name: str, enforce_memory: bool = True):
    """Run (and cache) the full six-strategy grid for one workload."""
    from repro.experiments import run_workload

    key = (name, SCALE, WORKERS, enforce_memory)
    if key not in _GRID_CACHE:
        _GRID_CACHE[key] = run_workload(
            name, scale=SCALE, workers=WORKERS, enforce_memory=enforce_memory
        )
    return _GRID_CACHE[key]


def run_grid_benchmark(benchmark, name: str, enforce_memory: bool = True):
    """Benchmark the grid computation once and return the grid."""
    return benchmark.pedantic(
        grid_for, args=(name, enforce_memory), rounds=1, iterations=1
    )


@pytest.fixture
def workers():
    return WORKERS


@pytest.fixture
def scale():
    return SCALE
