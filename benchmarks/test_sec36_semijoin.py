"""Sec. 3.6 — semijoin-reduction plans on the acyclic queries Q3 and Q7.

Paper result: the distributed Yannakakis reduction removes dangling tuples
but must re-shuffle *both* sides of every semijoin (all relations are
distributed), so the extra rounds cancel the savings — for Q3 the semijoin
plan (4.127s) loses to RS_HJ (2.1s); for Q7 it is the second slowest
(1.427s).  Only acyclic queries admit full reductions at all.

Shapes asserted: results identical to RS_HJ; the semijoin plan's wall
clock is not better than the query's best plan; cyclic queries are
rejected.
"""

import pytest
from conftest import SCALE, WORKERS, grid_for

from repro.engine.cluster import Cluster
from repro.planner.semijoin import execute_semijoin
from repro.workloads import get_workload


def _semijoin_result(name):
    workload = get_workload(name)
    db = workload.dataset(SCALE)
    cluster = Cluster(WORKERS)
    cluster.load(db)
    return execute_semijoin(workload.query, cluster)


@pytest.mark.parametrize("name", ["Q3", "Q7"])
def test_sec36_semijoin_plans(benchmark, name):
    result = benchmark.pedantic(_semijoin_result, args=(name,), rounds=1, iterations=1)
    grid = grid_for(name)

    reference = grid["RS_HJ"]
    assert set(result.rows) == set(reference.rows)

    print(
        f"\nSec 3.6 — {name}: semijoin wall={result.stats.wall_clock:,.0f} "
        f"shuffled={result.stats.tuples_shuffled:,} vs "
        f"RS_HJ wall={reference.stats.wall_clock:,.0f} "
        f"shuffled={reference.stats.tuples_shuffled:,}"
    )

    # the paper's conclusion: "the standard semijoin reduction did not
    # improve the runtime" — the extra rounds cancel the savings.  We
    # assert the robust form: no meaningful win over the query's best plan
    # (ours lands within +-10% of RS_HJ on Q3), and the extra
    # communication is visible — the semijoin plan ships *more* tuples
    # than the plain regular-shuffle plan because both sides of every
    # semijoin must be re-shuffled.
    best = grid.results[grid.best_strategy()]
    assert result.stats.wall_clock >= 0.85 * best.stats.wall_clock
    assert result.stats.tuples_shuffled > reference.stats.tuples_shuffled

    # the reduction itself is visible: semijoin shuffles were recorded
    semijoin_shuffles = [
        r for r in result.stats.shuffles if r.name.startswith("SJ")
    ]
    assert semijoin_shuffles


def test_semijoin_rejects_cyclic_queries():
    workload = get_workload("Q1")
    db = workload.dataset("unit")
    cluster = Cluster(4)
    cluster.load(db)
    with pytest.raises(ValueError, match="cyclic"):
        execute_semijoin(workload.query, cluster)
