"""Optimizer accuracy — predicted winner vs. measured winner on Q1-Q8.

The paper's thesis (Secs. 4-5) is that cheap catalog statistics predict the
winning RS/BR/HC x HJ/TJ configuration.  This suite holds the cost-based
optimizer (:mod:`repro.planner.optimizer`) to that claim: for every query
of the evaluation matrix, the strategy it picks from statistics alone must
equal the strategy the measured six-configuration grid crowns (lowest
modeled wall clock among non-failed runs).

The full predicted-vs-measured matrix is written to
``BENCH_optimizer.json`` at the repository root (the CI
``optimizer-accuracy`` job uploads it as an artifact).  Reproduce locally
with::

    REPRO_BENCH_SCALE=unit REPRO_BENCH_WORKERS=16 \
        PYTHONPATH=src python -m pytest benchmarks/test_optimizer_accuracy.py -q
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from conftest import SCALE, WORKERS, grid_for

from repro.experiments import format_accuracy, optimizer_accuracy
from repro.workloads import PAPER_ORDER

#: the pinned query set the optimizer must get right
PINNED = tuple(PAPER_ORDER)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_optimizer.json"


@pytest.fixture(scope="module")
def accuracy_report():
    """The predicted-vs-measured matrix, computed once and written out."""
    grids = {name: grid_for(name) for name in PINNED}
    report = optimizer_accuracy(
        names=PINNED, scale=SCALE, workers=WORKERS, grids=grids
    )
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_accuracy_matrix(accuracy_report, benchmark):
    """Print the matrix and require a perfect score on the pinned set."""
    benchmark.pedantic(lambda: accuracy_report, rounds=1, iterations=1)
    print()
    print(format_accuracy(accuracy_report))
    assert accuracy_report["total"] == len(PINNED)
    assert accuracy_report["accuracy"] == 1.0


@pytest.mark.parametrize("name", PINNED)
def test_predicted_winner_matches_measured(accuracy_report, name):
    """Per-query pin: the optimizer picks the measured winner."""
    row = next(r for r in accuracy_report["queries"] if r["query"] == name)
    assert row["predicted"] == row["measured"], (
        f"{name}: optimizer predicted {row['predicted']} but the measured "
        f"grid crowned {row['measured']}\n"
        f"predicted costs: {row['predicted_wall']}\n"
        f"measured walls:  {row['measured_wall']}"
    )


def test_artifact_written(accuracy_report):
    """BENCH_optimizer.json exists and round-trips as JSON."""
    persisted = json.loads(ARTIFACT.read_text())
    assert persisted["queries"] == accuracy_report["queries"]
    assert persisted["accuracy"] == accuracy_report["accuracy"]
