"""Runtime backends — the parallel worker runtime reproduces the serial grid.

Not a paper figure: this guards the tentpole property of the worker-runtime
seam (see ``repro.engine.runtime``) at workload scale.  The whole Q1 grid is
executed under both backends; every strategy must return byte-identical
result rows and exactly equal counted metrics, because the parallel runtime
only changes the *execution schedule* of the per-worker local-join tasks,
never the accounting.
"""

from conftest import WORKERS

from repro.experiments import run_workload


def _grids():
    serial = run_workload("Q1", scale="unit", workers=WORKERS, runtime="serial")
    parallel = run_workload("Q1", scale="unit", workers=WORKERS, runtime="parallel")
    return serial, parallel


def test_parallel_runtime_matches_serial_grid(benchmark):
    serial, parallel = benchmark.pedantic(_grids, rounds=1, iterations=1)
    assert serial.consistent() and parallel.consistent()
    assert serial.strategies() == parallel.strategies()
    for name in serial.strategies():
        a, b = serial[name], parallel[name]
        assert a.rows == b.rows, name
        assert a.stats.shuffles == b.stats.shuffles, name
        assert a.stats.tuples_shuffled == b.stats.tuples_shuffled, name
        assert a.stats.total_cpu == b.stats.total_cpu, name
        assert a.stats.wall_clock == b.stats.wall_clock, name
        assert a.stats.worker_loads() == b.stats.worker_loads(), name
        assert a.stats.peak_memory == b.stats.peak_memory, name
    assert serial.best_strategy() == parallel.best_strategy()
