"""Fig. 13 — the rectangle query Q5 (4-way self-join, App. A).

Paper result: RS_TJ FAILs (out of memory sorting the enormous 3-hop
intermediate); the regular shuffle becomes the *most* expensive shuffle
(1,841M tuples — all 2-hops and 3-hops move over the network); HC_TJ wins
wall clock and CPU, and broadcast beats regular shuffle (the opposite of
Q1) because the intermediate outweighs even 64-fold input replication.
"""

from conftest import SCALE, run_grid_benchmark

from repro.experiments import format_figure


def test_fig13_q5_rectangle(benchmark):
    grid = run_grid_benchmark(benchmark, "Q5")
    print()
    print(format_figure(grid, "Fig. 13 — Q5 rectangle query"))

    assert grid.consistent()
    results = grid.results

    if SCALE == "bench":
        # RS_TJ fails: it must materialize and sort the 3-hop intermediate
        # (budgets are only calibrated at bench scale)
        assert results["RS_TJ"].failed
        assert "memory" in results["RS_TJ"].stats.failure
    # every other configuration completes
    for name in ("RS_HJ", "BR_HJ", "BR_TJ", "HC_HJ", "HC_TJ"):
        assert not results[name].failed, name

    # HC_TJ wins wall clock and CPU
    assert grid.best_strategy() == "HC_TJ"
    cpu = {n: r.stats.total_cpu for n, r in results.items() if not r.failed}
    assert min(cpu, key=lambda n: cpu[n]) == "HC_TJ"

    # shuffle volumes: RS is the largest (vs Q1 where BR was), HC smallest
    shuffled = {n: r.stats.tuples_shuffled for n, r in results.items()}
    assert shuffled["RS_HJ"] > shuffled["BR_HJ"] > shuffled["HC_HJ"]

    # broadcast beats regular shuffle in wall clock on this query
    assert results["BR_HJ"].stats.wall_clock < results["RS_HJ"].stats.wall_clock
